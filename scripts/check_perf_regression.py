#!/usr/bin/env python3
"""Perf-regression gate over BENCH_dataplane.json.

Compares a freshly generated BENCH_dataplane.json against the committed
baseline and fails on regressions beyond the threshold (default 25%):

  - "setups" (perf_smoke): every (setup, query) records_per_sec.
  - "scaling" (ext_scaling): every (setup, query, parallelism)
    records_per_sec. Gated only for keys present in BOTH files, so a
    baseline regenerated before the sweep existed — or a smoke sweep over
    a parallelism subset — never fails spuriously; extra coverage on
    either side is reported as informational.
  - "async_sinks" (ablation_overheads): every (engine, query, mode)
    records_per_sec, where mode is one of native_sync / native_async /
    beam_sync / beam_async. Intersecting keys only, like "scaling" — the
    section rides along in BENCH_dataplane.json and may be absent from
    older baselines or CI smoke runs at a different record count.

Entries present only in the baseline "setups" section (coverage removed)
fail; entries present only in the current file (coverage added) pass — new
rows become gated once the baseline is regenerated and committed.

The "profile" section (profile_smoke) is gated absolutely, not against the
baseline: the armed cost-attribution profiler must stay inside its <2%
overhead budget, and every profiled setup must attribute non-zero time
(zero attribution means an engine's execution path fell off the unified
operator invoker).

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json [--threshold 0.25]

Stdlib only.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def setups_rows(doc):
    rows = {}
    for entry in doc.get("setups", []):
        key = (entry["setup"], entry["query"])
        rows[key] = float(entry["records_per_sec"])
    return rows


def scaling_rows(doc):
    rows = {}
    for entry in doc.get("scaling", []):
        key = (entry["setup"], entry["query"], int(entry["parallelism"]))
        rows[key] = float(entry["records_per_sec"])
    return rows


def async_sinks_rows(doc):
    """(engine, query, mode) -> records_per_sec, derived from the per-mode
    execution seconds and the sweep's record count. Sub-millisecond cells
    (the low-output queries on the fastest paths) are scheduler-noise
    dominated and are excluded from gating on whichever side they occur."""
    rows = {}
    for entry in doc.get("async_sinks", []):
        records = float(entry.get("records", 0))
        for mode in ("native_sync", "native_async", "beam_sync", "beam_async"):
            seconds = float(entry.get(f"{mode}_seconds", 0))
            if records > 0 and seconds >= 1e-3:
                rows[(entry["engine"], entry["query"], mode)] = (
                    records / seconds
                )
    return rows


def profile_failures(doc, overhead_budget_pct):
    """Absolute gates on the profile_smoke section (when present): armed
    profiler overhead under budget, and non-zero attribution per setup."""
    profile = doc.get("profile")
    if not profile:
        print("  [skip] profile: no profile section in current run")
        return []
    failures = []
    overhead = profile.get("overhead", {})
    pct = float(overhead.get("overhead_pct", 0.0))
    marker = "FAIL" if pct >= overhead_budget_pct else "ok"
    print(
        f"  [{marker}] profile: armed overhead {pct:+.2f}% "
        f"(budget < {overhead_budget_pct:.0f}%)"
    )
    if pct >= overhead_budget_pct:
        failures.append(
            f"profile: armed profiler overhead {pct:.2f}% "
            f">= {overhead_budget_pct:.0f}% budget"
        )
    for entry in profile.get("setups", []):
        attributed_ms = float(entry.get("attributed_ms", 0.0))
        if attributed_ms <= 0.0:
            failures.append(
                f"profile: {entry.get('setup', '?')} attributed no time "
                "(execution path off the unified invoker?)"
            )
    return failures


def gate(label, baseline, current, threshold, missing_fails):
    """Compares one section; returns the list of failure strings."""
    failures = []
    for key, base_rps in sorted(baseline.items()):
        name = " / ".join(str(part) for part in key)
        if key not in current:
            if missing_fails:
                failures.append(f"{name}: missing from current run")
            else:
                print(f"  [skip] {label}: {name} (not in current run)")
            continue
        cur_rps = current[key]
        if base_rps <= 0:
            continue
        drop = 1.0 - cur_rps / base_rps
        marker = "FAIL" if drop > threshold else "ok"
        print(
            f"  [{marker}] {label}: {name:40s} "
            f"{base_rps:14.1f} -> {cur_rps:14.1f} rec/s ({-drop:+.1%})"
        )
        if drop > threshold:
            failures.append(
                f"{label}: {name}: {base_rps:.0f} -> {cur_rps:.0f} rec/s "
                f"({drop:.1%} drop > {threshold:.0%} allowed)"
            )

    for key in sorted(set(current) - set(baseline)):
        name = " / ".join(str(part) for part in key)
        print(f"  [new ] {label}: {name} (no baseline yet)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional drop in records_per_sec",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        default=2.0,
        help="maximum allowed armed-profiler overhead in percent",
    )
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    current_doc = load_doc(args.current)

    baseline_setups = setups_rows(baseline_doc)
    if not baseline_setups:
        print("perf gate: baseline has no setups — nothing to compare")
        return 1

    failures = gate(
        "setups",
        baseline_setups,
        setups_rows(current_doc),
        args.threshold,
        missing_fails=True,
    )
    # The scaling sweep may cover a parallelism subset in CI smoke runs;
    # only intersecting keys gate.
    failures += gate(
        "scaling",
        scaling_rows(baseline_doc),
        scaling_rows(current_doc),
        args.threshold,
        missing_fails=False,
    )
    # Same intersecting-keys policy: the async sweep may run at a different
    # scale in CI (non-comparable rps) or be absent from older baselines.
    failures += gate(
        "async_sinks",
        async_sinks_rows(baseline_doc),
        async_sinks_rows(current_doc),
        args.threshold,
        missing_fails=False,
    )
    # Absolute budget, not baseline-relative: the profiler must stay cheap
    # no matter what the committed baseline says.
    failures += profile_failures(current_doc, args.overhead_budget)

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    gated = (
        len(baseline_setups)
        + len(set(scaling_rows(baseline_doc)) & set(scaling_rows(current_doc)))
        + len(
            set(async_sinks_rows(baseline_doc))
            & set(async_sinks_rows(current_doc))
        )
    )
    print(f"\nperf gate passed: {gated} entries within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
