#!/usr/bin/env python3
"""Perf-regression gate over BENCH_dataplane.json.

Compares every (setup, query) records_per_sec in a freshly generated
BENCH_dataplane.json against the committed baseline and fails if any entry
dropped more than the threshold (default 25%). Entries present only in the
baseline (coverage removed) fail; entries present only in the current file
(coverage added) pass — new rows become gated once the baseline is
regenerated and committed.

Usage:
    check_perf_regression.py BASELINE.json CURRENT.json [--threshold 0.25]

Stdlib only.
"""

import argparse
import json
import sys


def load_setups(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for entry in doc.get("setups", []):
        key = (entry["setup"], entry["query"])
        rows[key] = float(entry["records_per_sec"])
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional drop in records_per_sec",
    )
    args = parser.parse_args()

    baseline = load_setups(args.baseline)
    current = load_setups(args.current)
    if not baseline:
        print("perf gate: baseline has no setups — nothing to compare")
        return 1

    failures = []
    for key, base_rps in sorted(baseline.items()):
        setup, query = key
        if key not in current:
            failures.append(f"{setup} / {query}: missing from current run")
            continue
        cur_rps = current[key]
        if base_rps <= 0:
            continue
        drop = 1.0 - cur_rps / base_rps
        marker = "FAIL" if drop > args.threshold else "ok"
        print(
            f"  [{marker}] {setup:18s} {query:10s} "
            f"{base_rps:14.1f} -> {cur_rps:14.1f} rec/s ({-drop:+.1%})"
        )
        if drop > args.threshold:
            failures.append(
                f"{setup} / {query}: {base_rps:.0f} -> {cur_rps:.0f} rec/s "
                f"({drop:.1%} drop > {args.threshold:.0%} allowed)"
            )

    added = sorted(set(current) - set(baseline))
    for setup, query in added:
        print(f"  [new ] {setup:18s} {query:10s} (no baseline yet)")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf gate passed: {len(baseline)} entries within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
