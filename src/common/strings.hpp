// Small string utilities shared by the workload generator and the queries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dsps {

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> split(std::string_view input, char delimiter);

/// Splits and returns views into `input` (no allocation per field content).
std::vector<std::string_view> split_views(std::string_view input,
                                          char delimiter);

/// Joins `parts` with `delimiter`.
std::string join(const std::vector<std::string>& parts, char delimiter);

/// Position of the first occurrence of `needle` in `haystack`, or npos.
///
/// The hot kernel behind the Grep query: a vectorized substring search
/// (SSE2 first/last-byte filter over 16-byte blocks, memchr elsewhere)
/// instead of std::string_view::find's byte-at-a-time scan. Every Grep
/// implementation — the three native ones and the Beam one — funnels
/// through this, so the speedup applies uniformly and the paper's
/// *relative* slowdown ordering is preserved.
std::size_t find_substring(std::string_view haystack,
                           std::string_view needle) noexcept;

/// True if `haystack` contains `needle` (the Grep query predicate).
bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Left-pads `s` with spaces to at least `width` characters.
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
std::string pad_right(std::string_view s, std::size_t width);

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision);

}  // namespace dsps
