// Clocks and stopwatches.
//
// MiniKafka stamps records with wall-clock milliseconds (LogAppendTime);
// the harness measures elapsed intervals with the steady clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace dsps {

/// Broker/event timestamps. Kafka stamps in milliseconds; MiniKafka stamps
/// in MICROSECONDS since the Unix epoch because the reproduction runs are
/// time-scaled (20k records instead of 1M) and millisecond resolution would
/// swamp the fast native runs with quantization noise. The measurement
/// methodology (difference of broker append timestamps, §III-A3) is
/// unchanged; only the unit is finer.
using Timestamp = std::int64_t;

inline Timestamp wall_clock_now() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Converts a broker timestamp difference to seconds.
inline double timestamp_delta_seconds(Timestamp delta) noexcept {
  return static_cast<double>(delta) / 1e6;
}

/// Microseconds on the monotonic clock — interval measurements only.
inline std::int64_t steady_clock_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Measures elapsed time on the steady clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_us_(steady_clock_us()) {}

  void reset() noexcept { start_us_ = steady_clock_us(); }

  std::int64_t elapsed_us() const noexcept {
    return steady_clock_us() - start_us_;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_us()) / 1e3;
  }
  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_us()) / 1e6;
  }

 private:
  std::int64_t start_us_;
};

}  // namespace dsps
