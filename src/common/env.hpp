// Environment-variable configuration knobs for the benchmark harness.
//
//   STREAMSHIM_RECORDS — input record count        (default 20,000)
//   STREAMSHIM_RUNS    — runs per setup            (default 3)
//   STREAMSHIM_SEED    — master RNG seed           (default 42)
//   STREAMSHIM_FULL=1  — paper scale: 1,000,001 records, 10 runs
#pragma once

#include <cstdint>
#include <string>

namespace dsps {

/// Returns the env var value or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the env var parsed as i64 or `fallback` when unset/unparseable.
std::int64_t env_i64(const char* name, std::int64_t fallback);

/// True when the variable is set to "1", "true", "yes" or "on".
bool env_flag(const char* name);

/// Benchmark-scale settings resolved from the environment.
struct BenchScale {
  std::uint64_t records = 20'000;
  int runs = 3;
  std::uint64_t seed = 42;
  bool full = false;
};

/// Resolves STREAMSHIM_* variables (FULL overrides records/runs to the
/// paper's 1,000,001 / 10 unless they are explicitly set too).
BenchScale resolve_bench_scale();

}  // namespace dsps
