// Bounded blocking multi-producer / multi-consumer queue, plus a
// single-producer / single-consumer ring-buffer fast path.
//
// These are the backbone of every inter-task channel in the engine
// simulators: Flink-sim network channels between unchained tasks, Spark-sim
// receiver block queues, Apex-sim inter-container streams. Close semantics
// model end-of-stream: after close(), pops drain the remaining items and
// then fail.
//
// The batch operations (`push_batch` / `pop_batch`) move a whole vector of
// items under a single lock acquisition; per-record channel crossings are
// the dominant substrate cost at high throughput, so every engine adapter
// prefers the batch forms on its hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace dsps {

/// Outcome of a non-blocking push: distinguishes transient back-pressure
/// (kFull — retry later) from permanent shutdown (kClosed — stop producing).
/// [[nodiscard]]: ignoring the result conflates back-pressure with shutdown
/// and silently drops records — every caller must branch on it.
enum class [[nodiscard]] QueuePushResult { kOk, kFull, kClosed };

/// Outcome of a non-blocking pop: kEmpty means "nothing right now, more may
/// come"; kDrained means the queue is closed and fully consumed.
enum class [[nodiscard]] QueuePopResult { kOk, kEmpty, kDrained };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "BoundedQueue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    wait_not_full(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    const bool wake = waiting_poppers_ > 0;
    lock.unlock();
    if (wake) not_empty_.notify_one();
    return true;
  }

  /// Moves every item of `items` into the queue, taking the lock once per
  /// free-capacity chunk instead of once per item. Blocks while full.
  /// Returns the number of items accepted; short only when the queue is
  /// closed mid-batch (the remainder is dropped, as with a failed push).
  std::size_t push_batch(std::vector<T>&& items) {
    std::size_t pushed = 0;
    std::unique_lock lock(mutex_);
    while (pushed < items.size()) {
      wait_not_full(lock);
      if (closed_) break;
      const std::size_t room = capacity_ - items_.size();
      const std::size_t n = std::min(items.size() - pushed, room);
      for (std::size_t i = 0; i < n; ++i) {
        items_.push_back(std::move(items[pushed + i]));
      }
      pushed += n;
      if (pushed == items.size()) {
        const bool wake = waiting_poppers_ > 0;
        lock.unlock();
        if (wake) not_empty_.notify_all();
        return pushed;
      }
      // More to push once a popper frees space; wake poppers before waiting.
      if (waiting_poppers_ > 0) not_empty_.notify_all();
    }
    return pushed;
  }

  /// Non-blocking push. kFull leaves the queue unchanged (the item is
  /// discarded, as with a failed blocking push).
  QueuePushResult try_push(T item) {
    std::unique_lock lock(mutex_);
    if (closed_) return QueuePushResult::kClosed;
    if (items_.size() >= capacity_) return QueuePushResult::kFull;
    items_.push_back(std::move(item));
    const bool wake = waiting_poppers_ > 0;
    lock.unlock();
    if (wake) not_empty_.notify_one();
    return QueuePushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    wait_not_empty(lock);
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    const bool wake = waiting_pushers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available (or the queue is drained),
  /// then moves up to `max_items` into `out` under the one lock acquisition.
  /// Returns the number appended; 0 means closed and drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) return 0;
    std::unique_lock lock(mutex_);
    wait_not_empty(lock);
    const std::size_t n = std::min(max_items, items_.size());
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    const bool wake = n > 0 && waiting_pushers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_all();  // a batch frees many slots
    return n;
  }

  /// Non-blocking pop into `out`. kEmpty and kDrained both leave `out`
  /// untouched; only kDrained is final.
  QueuePopResult try_pop(T& out) {
    std::unique_lock lock(mutex_);
    if (items_.empty()) {
      return closed_ ? QueuePopResult::kDrained : QueuePopResult::kEmpty;
    }
    out = std::move(items_.front());
    items_.pop_front();
    const bool wake = waiting_pushers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return QueuePopResult::kOk;
  }

  /// Marks the queue closed. Pending and future pushes fail; pops drain.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// True once the queue is closed and every item has been popped.
  bool is_drained() const {
    std::lock_guard lock(mutex_);
    return closed_ && items_.empty();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Waits tracking the waiter count so producers/consumers only pay for a
  // notify when somebody can actually make progress.
  void wait_not_full(std::unique_lock<std::mutex>& lock) {
    while (!closed_ && items_.size() >= capacity_) {
      ++waiting_pushers_;
      not_full_.wait(lock);
      --waiting_pushers_;
    }
  }

  void wait_not_empty(std::unique_lock<std::mutex>& lock) {
    while (!closed_ && items_.empty()) {
      ++waiting_poppers_;
      not_empty_.wait(lock);
      --waiting_poppers_;
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t waiting_poppers_ = 0;
  std::size_t waiting_pushers_ = 0;
  bool closed_ = false;
};

/// Lock-free single-producer / single-consumer ring buffer with the same
/// close/drain contract as BoundedQueue. Head and tail live on their own
/// cache lines so the producer and consumer never false-share; each side
/// additionally caches the other's index and only re-reads it when the ring
/// looks full/empty, keeping the common case to one uncontended store.
///
/// Exactly one thread may push and exactly one may pop (close() is safe from
/// the producer or a coordinator). Used for engine channels that are
/// provably single-writer, e.g. Flink-sim FORWARD edges.
template <typename T>
class SpscRingQueue {
  static_assert(std::is_default_constructible_v<T>,
                "ring slots are default-constructed");

 public:
  explicit SpscRingQueue(std::size_t min_capacity) {
    require(min_capacity > 0, "SpscRingQueue capacity must be positive");
    std::size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    buffer_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscRingQueue(const SpscRingQueue&) = delete;
  SpscRingQueue& operator=(const SpscRingQueue&) = delete;

  /// Blocks (spin, then yield, then sleep) until space is available.
  /// Returns false if the queue was closed.
  bool push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    unsigned spins = 0;
    while (tail - cached_head_ >= buffer_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ < buffer_.size()) break;
      if (closed_.load(std::memory_order_acquire)) return false;
      backoff(spins);
    }
    buffer_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Moves every item into the ring, publishing each free-space chunk with a
  /// single release store. Returns the number accepted (short on close).
  std::size_t push_batch(std::vector<T>&& items) {
    std::size_t pushed = 0;
    while (pushed < items.size()) {
      if (closed_.load(std::memory_order_acquire)) return pushed;
      const std::size_t tail = tail_.load(std::memory_order_relaxed);
      std::size_t free = buffer_.size() - (tail - cached_head_);
      unsigned spins = 0;
      while (free == 0) {
        cached_head_ = head_.load(std::memory_order_acquire);
        free = buffer_.size() - (tail - cached_head_);
        if (free > 0) break;
        if (closed_.load(std::memory_order_acquire)) return pushed;
        backoff(spins);
      }
      const std::size_t n = std::min(free, items.size() - pushed);
      for (std::size_t i = 0; i < n; ++i) {
        buffer_[(tail + i) & mask_] = std::move(items[pushed + i]);
      }
      tail_.store(tail + n, std::memory_order_release);
      pushed += n;
    }
    return pushed;
  }

  QueuePushResult try_push(T item) {
    if (closed_.load(std::memory_order_acquire)) {
      return QueuePushResult::kClosed;
    }
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= buffer_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= buffer_.size()) return QueuePushResult::kFull;
    }
    buffer_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return QueuePushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    unsigned spins = 0;
    while (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head != cached_tail_) break;
      if (closed_.load(std::memory_order_acquire)) {
        // The producer publishes its last items before close(); observing
        // closed_ (acquire) therefore makes the final tail visible.
        cached_tail_ = tail_.load(std::memory_order_acquire);
        if (head == cached_tail_) return std::nullopt;  // drained
        break;
      }
      backoff(spins);
    }
    T item = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return item;
  }

  /// Blocks until at least one item is available (or drained), then moves up
  /// to `max_items` into `out`. Returns the number appended; 0 means drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    unsigned spins = 0;
    while (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail > 0) break;
      if (closed_.load(std::memory_order_acquire)) {
        cached_tail_ = tail_.load(std::memory_order_acquire);
        avail = cached_tail_ - head;
        if (avail == 0) return 0;  // drained
        break;
      }
      backoff(spins);
    }
    const std::size_t n = std::min(avail, max_items);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(buffer_[(head + i) & mask_]));
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  QueuePopResult try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        if (!closed_.load(std::memory_order_acquire)) {
          return QueuePopResult::kEmpty;
        }
        cached_tail_ = tail_.load(std::memory_order_acquire);
        if (head == cached_tail_) return QueuePopResult::kDrained;
      }
    }
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return QueuePopResult::kOk;
  }

  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  bool is_drained() const {
    return closed() && tail_.load(std::memory_order_acquire) ==
                           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return buffer_.size(); }

 private:
  static void backoff(unsigned& spins) {
    ++spins;
    if (spins < 64) {
      // Busy-spin: the peer is typically one cache miss away.
    } else if (spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // next index to pop
  alignas(64) std::atomic<std::size_t> tail_{0};  // next index to push
  alignas(64) std::atomic<bool> closed_{false};
  alignas(64) std::size_t cached_head_ = 0;  // producer-side view of head_
  alignas(64) std::size_t cached_tail_ = 0;  // consumer-side view of tail_
};

}  // namespace dsps
