// Bounded blocking multi-producer / multi-consumer queue.
//
// This is the backbone of every inter-task channel in the engine simulators:
// Flink-sim network channels between unchained tasks, Spark-sim receiver
// block queues, Apex-sim inter-container streams. Close semantics model
// end-of-stream: after close(), pops drain the remaining items and then fail.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace dsps {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "BoundedQueue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed. Pending and future pushes fail; pops drain.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dsps
