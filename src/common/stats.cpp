#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace dsps {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double relative_stddev(const std::vector<double>& values) {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return stddev(values) / m;
}

double min_of(const std::vector<double>& values) {
  require(!values.empty(), "min_of on empty vector");
  return *std::min_element(values.begin(), values.end());
}

double max_of(const std::vector<double>& values) {
  require(!values.empty(), "max_of on empty vector");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
  require(!values.empty(), "percentile on empty vector");
  require(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::vector<std::size_t> outlier_indices(const std::vector<double>& values,
                                         double k_sigma) {
  std::vector<std::size_t> out;
  if (values.size() < 3) return out;
  const double m = mean(values);
  const double sd = stddev(values);
  if (sd == 0.0) return out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - m) > k_sigma * sd) out.push_back(i);
  }
  return out;
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucket_width_(bucket_width), buckets_(bucket_count + 1, 0) {
  require(bucket_width > 0.0, "Histogram bucket width must be positive");
  require(bucket_count > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double value) {
  const auto index = value < 0.0
                         ? std::size_t{0}
                         : static_cast<std::size_t>(value / bucket_width_);
  buckets_[std::min(index, buckets_.size() - 1)]++;
  ++count_;
  total_ += value;
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram quantile out of range");
  if (count_ == 0) return 0.0;
  const auto target =
      static_cast<std::size_t>(q * static_cast<double>(count_ - 1));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return static_cast<double>(i + 1) * bucket_width_;
  }
  return static_cast<double>(buckets_.size()) * bucket_width_;
}

}  // namespace dsps
