#include "common/noise.hpp"

#include <chrono>
#include <thread>

namespace dsps {

NoiseInjector::NoiseInjector(const NoiseConfig& config)
    : config_(config), rng_(config.seed) {}

std::int64_t NoiseInjector::draw_pause_ms() {
  if (!config_.enabled) return 0;
  if (rng_.next_double() >= config_.pause_probability) return 0;
  const std::int64_t span = config_.max_pause_ms - config_.min_pause_ms;
  if (span <= 0) return config_.min_pause_ms;
  return config_.min_pause_ms +
         static_cast<std::int64_t>(rng_.next_below(
             static_cast<std::uint64_t>(span + 1)));
}

std::int64_t NoiseInjector::maybe_pause() {
  const std::int64_t pause_ms = draw_pause_ms();
  if (pause_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }
  return pause_ms;
}

}  // namespace dsps
