// Statistics used by the harness: mean, standard deviation, relative
// standard deviation (coefficient of variation, Fig. 10), percentiles, and
// simple outlier detection (Table III analysis).
#pragma once

#include <cstddef>
#include <vector>

namespace dsps {

double mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double stddev(const std::vector<double>& values);

/// Relative standard deviation = stddev / mean; 0 when the mean is 0.
double relative_stddev(const std::vector<double>& values);

double min_of(const std::vector<double>& values);
double max_of(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Indices of values outside mean ± k·stddev (the paper eyeballs k≈2 for the
/// Flink identity runs in Table III).
std::vector<std::size_t> outlier_indices(const std::vector<double>& values,
                                         double k_sigma);

/// Streaming histogram with fixed bucket width; used by micro-benchmarks.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t bucket_count);

  void add(double value);

  std::size_t count() const noexcept { return count_; }
  double total() const noexcept { return total_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  /// Approximate quantile from bucket boundaries, q in [0, 1].
  double quantile(double q) const;

 private:
  double bucket_width_;
  std::vector<std::size_t> buckets_;  // last bucket is the overflow bucket
  std::size_t count_ = 0;
  double total_ = 0.0;
};

}  // namespace dsps
