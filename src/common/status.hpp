// Lightweight status / result types used across the streamshim libraries.
//
// We deliberately avoid exceptions on hot data paths (per-record code) and use
// Status / Result<T> for fallible control-plane operations (topic creation,
// job submission, configuration validation). Exceptions are reserved for
// programming errors (precondition violations) surfaced via DSPS_REQUIRE.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dsps {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnsupported,
  kInternal,
  kClosed,
  kUnavailable,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value for control-plane operations.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status already_exists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status failed_precondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status unsupported(std::string msg) {
    return {StatusCode::kUnsupported, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status closed(std::string msg) {
    return {StatusCode::kClosed, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Renders "Ok" or "<Code>: <message>".
  std::string to_string() const;

  /// Throws std::runtime_error if not ok. For call sites where failure is a
  /// programming error (e.g. examples, tests).
  void expect_ok() const {
    if (!is_ok()) throw std::runtime_error(to_string());
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kClosed: return "Closed";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

inline std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out{status_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

/// A value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool is_ok() const noexcept { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    require_ok();
    return std::get<T>(value_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(value_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(value_);
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Status>(value_).to_string());
    }
  }

  std::variant<T, Status> value_;
};

/// Precondition check: throws std::invalid_argument when violated.
/// Used for programming errors, not data-path failures.
inline void require(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(what);
}

}  // namespace dsps
