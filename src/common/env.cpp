#include "common/env.hpp"

#include <cstdlib>

namespace dsps {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

std::int64_t env_i64(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

bool env_flag(const char* name) {
  const std::string v = env_string(name, "");
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

BenchScale resolve_bench_scale() {
  BenchScale scale;
  scale.full = env_flag("STREAMSHIM_FULL");
  if (scale.full) {
    scale.records = 1'000'001;  // the paper's AOL record count
    scale.runs = 10;            // the paper's run count
  }
  scale.records = static_cast<std::uint64_t>(
      env_i64("STREAMSHIM_RECORDS", static_cast<std::int64_t>(scale.records)));
  scale.runs = static_cast<int>(env_i64("STREAMSHIM_RUNS", scale.runs));
  scale.seed = static_cast<std::uint64_t>(env_i64("STREAMSHIM_SEED", 42));
  if (scale.records == 0) scale.records = 1;
  if (scale.runs <= 0) scale.runs = 1;
  return scale;
}

}  // namespace dsps
