#include "common/strings.hpp"

#include <cstdio>

namespace dsps {

std::vector<std::string> split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      return parts;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_views(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      return parts;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, char delimiter) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : parts.size() - 1;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    out += parts[i];
  }
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out{s};
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

}  // namespace dsps
