#include "common/strings.hpp"

#include <cstdio>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace dsps {

std::vector<std::string> split(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      return parts;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_views(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      return parts;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, char delimiter) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : parts.size() - 1;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    out += parts[i];
  }
  return out;
}

namespace {

/// memchr-driven scan over candidate positions [from, n - k]: jump to the
/// next first-byte hit, verify with one memcmp. Also the tail path of the
/// vectorized search.
std::size_t find_by_memchr(const char* haystack, std::size_t n,
                           const char* needle, std::size_t k,
                           std::size_t from) noexcept {
  std::size_t pos = from;
  while (pos + k <= n) {
    const void* hit =
        std::memchr(haystack + pos, needle[0], n - k - pos + 1);
    if (hit == nullptr) return std::string_view::npos;
    pos = static_cast<std::size_t>(static_cast<const char*>(hit) - haystack);
    if (std::memcmp(haystack + pos, needle, k) == 0) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

}  // namespace

std::size_t find_substring(std::string_view haystack,
                           std::string_view needle) noexcept {
  const std::size_t n = haystack.size();
  const std::size_t k = needle.size();
  if (k == 0) return 0;
  if (k > n) return std::string_view::npos;
  const char* hay = haystack.data();
  if (k == 1) {
    const void* hit = std::memchr(hay, needle[0], n);
    return hit == nullptr
               ? std::string_view::npos
               : static_cast<std::size_t>(static_cast<const char*>(hit) -
                                          hay);
  }

  std::size_t pos = 0;
#if defined(__SSE2__)
  // Vectorized first/last-byte filter (the generic SIMD "memmem" scheme):
  // for 16 candidate positions at once, compare the needle's first byte at
  // offset 0 and its last byte at offset k-1; only positions where both
  // match pay a memcmp. Both loads must stay in bounds: the second load
  // reads [pos + k - 1, pos + k + 14], so the block is safe while
  // pos + k + 15 <= n.
  if (n >= k + 15) {
    const __m128i first = _mm_set1_epi8(needle[0]);
    const __m128i last = _mm_set1_epi8(needle[k - 1]);
    while (pos + k + 15 <= n) {
      const __m128i block_first = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(hay + pos));
      const __m128i block_last = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(hay + pos + k - 1));
      unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(
          _mm_and_si128(_mm_cmpeq_epi8(block_first, first),
                        _mm_cmpeq_epi8(block_last, last))));
      while (mask != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
        if (std::memcmp(hay + pos + bit, needle.data(), k) == 0) {
          return pos + bit;
        }
        mask &= mask - 1;
      }
      pos += 16;
    }
  }
#endif
  return find_by_memchr(hay, n, needle.data(), k, pos);
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return find_substring(haystack, needle) != std::string_view::npos;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out{s};
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

}  // namespace dsps
