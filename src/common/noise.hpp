// Deterministic pause injection.
//
// The paper's Table III shows outliers in the Flink identity runs, which the
// authors attribute to their (co-tenant) VM environment. To make that
// *analysis* reproducible we can inject seeded pauses into a run: the
// Table III bench enables this; every other experiment runs with noise off.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace dsps {

struct NoiseConfig {
  bool enabled = false;
  /// Probability that any given run receives a pause at all.
  double pause_probability = 0.3;
  /// Pause duration drawn uniformly from [min_pause_ms, max_pause_ms].
  std::int64_t min_pause_ms = 0;
  std::int64_t max_pause_ms = 0;
  std::uint64_t seed = 0;
};

class NoiseInjector {
 public:
  explicit NoiseInjector(const NoiseConfig& config);

  /// Decides (deterministically, per call sequence) whether this run gets a
  /// pause and returns its length in milliseconds (0 = no pause).
  std::int64_t draw_pause_ms();

  /// Sleeps for the drawn pause, if any. Returns the pause length.
  std::int64_t maybe_pause();

  bool enabled() const noexcept { return config_.enabled; }

 private:
  NoiseConfig config_;
  Xoshiro256 rng_;
};

}  // namespace dsps
