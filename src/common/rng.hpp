// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (workload synthesis, the
// Sample query, noise injection) is seeded so that runs are reproducible:
// same seed => same dataset => same query outputs.
#pragma once

#include <cstdint>

namespace dsps {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for the data paths.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Modulo bias is negligible for bound << 2^64 and irrelevant for the
    // statistical properties we test (selectivities at the 1e-3 level).
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface for <random> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dsps
