// Byte buffers and binary serialization.
//
// Inter-container streams in Apex-sim (and the Beam Apex runner's per-hop
// element transfer) serialize through these primitives, so the cost of
// crossing a container boundary is real work, not a sleep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dsps {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian integers and length-prefixed strings.
class BinaryWriter {
 public:
  explicit BinaryWriter(Bytes& out) noexcept : out_(out) {}

  void write_u8(std::uint8_t v) { out_.push_back(v); }

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }

  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }

  void write_i64(std::int64_t v) {
    write_u64(static_cast<std::uint64_t>(v));
  }

  /// u32 length prefix followed by raw bytes.
  void write_string(std::string_view s) {
    write_u32(static_cast<std::uint32_t>(s.size()));
    write_raw(s.data(), s.size());
  }

  void write_bytes(const Bytes& b) {
    write_u32(static_cast<std::uint32_t>(b.size()));
    write_raw(b.data(), b.size());
  }

 private:
  void write_raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + size);
  }

  Bytes& out_;
};

/// Reads what BinaryWriter wrote. Bounds-checked; sets a failure flag
/// instead of reading out of range.
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& in) noexcept : in_(in) {}

  std::uint8_t read_u8() {
    std::uint8_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }

  std::uint32_t read_u32() {
    std::uint32_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }

  std::uint64_t read_u64() {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
  }

  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  std::string read_string() {
    const std::uint32_t size = read_u32();
    if (failed_ || pos_ + size > in_.size()) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), size);
    pos_ += size;
    return s;
  }

  Bytes read_bytes() {
    const std::uint32_t size = read_u32();
    if (failed_ || pos_ + size > in_.size()) {
      failed_ = true;
      return {};
    }
    Bytes b(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += size;
    return b;
  }

  bool failed() const noexcept { return failed_; }
  bool exhausted() const noexcept { return pos_ == in_.size(); }
  std::size_t position() const noexcept { return pos_; }

 private:
  void read_raw(void* dst, std::size_t size) {
    if (failed_ || pos_ + size > in_.size()) {
      failed_ = true;
      std::memset(dst, 0, size);
      return;
    }
    std::memcpy(dst, in_.data() + pos_, size);
    pos_ += size;
  }

  const Bytes& in_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// FNV-1a 64-bit hash; used for key partitioning in shuffles and GroupByKey.
std::uint64_t fnv1a(std::string_view data) noexcept;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace dsps
