#include "common/bytes.hpp"

namespace dsps {

std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dsps
