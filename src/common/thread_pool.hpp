// Fixed-size thread pool with futures.
//
// Used by Spark-sim executors (task scheduling) and by the harness for
// concurrent setup work. Engine *dataflow* threads are managed by the engines
// themselves (one thread per task/container), not by this pool.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace dsps {

class ThreadPool {
 public:
  /// Creates `threads` worker threads (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    const bool accepted = tasks_.push([task] { (*task)(); });
    if (!accepted) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    return future;
  }

  /// Stops accepting work, drains queued tasks, joins workers.
  void shutdown();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace dsps
