#include "common/thread_pool.hpp"

#include <algorithm>

namespace dsps {

namespace {
constexpr std::size_t kQueueCapacity = 4096;
}

ThreadPool::ThreadPool(std::size_t threads) : tasks_(kQueueCapacity) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

}  // namespace dsps
