// Native Flink-sim implementations of the four StreamBench queries:
// Kafka source -> (query operator) -> Kafka sink, exactly the three-element
// plan of Fig. 12. Operator chaining stays enabled (the default), so the
// whole pipeline runs as one task per subtask.
#include "queries/query_factory.hpp"

#include <algorithm>
#include <memory>

#include "common/clock.hpp"
#include "flink/environment.hpp"
#include "flink/kafka_connectors.hpp"
#include "runtime/metrics.hpp"

namespace dsps::queries {

namespace {

using kafka::Payload;

flink::DataStream<Payload> apply_query_operator(
    const flink::DataStream<Payload>& lines, workload::QueryId query,
    const QueryContext& ctx) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      return lines;  // source feeds the sink directly
    case QueryId::kSample:
      return lines.filter(
          [seed = ctx.seed](const Payload& line) {
            return workload::sample_keep(line.view(), seed);
          },
          "Sample");
    case QueryId::kProjection:
      // Projection slices the payload in place — no bytes are copied on the
      // native path; only the sink's broker append materializes anything.
      return lines.map<Payload>(
          [](const Payload& line) {
            return workload::projection_payload(line);
          },
          "Projection");
    case QueryId::kGrep:
      return lines.filter(
          [](const Payload& line) {
            return workload::grep_matches(line.view());
          },
          "Filter");
  }
  throw std::invalid_argument("unknown query");
}

flink::StreamExecutionEnvironment build_environment(
    workload::QueryId query, const QueryContext& ctx,
    const std::shared_ptr<flink::CheckpointCoordinator>& checkpoint) {
  flink::StreamExecutionEnvironment env;
  env.set_parallelism(ctx.parallelism);
  flink::KafkaSourceConfig source_config{.topic = ctx.input_topic};
  flink::KafkaSinkConfig sink_config{.topic = ctx.output_topic};
  sink_config.async = ctx.async_sinks;
  // Scale-out: each parallel sink subtask writes its own output partition
  // (otherwise P subtasks serialize on a single partition-log mutex).
  if (ctx.parallelism > 1) sink_config.partition = -1;
  if (ctx.recovery.enabled) {
    // Barrier checkpointing in both modes — the sink's output is made
    // durable before the source commits the offsets that produced it.
    // `exactly_once` additionally buffers sink epochs, so a crash discards
    // uncommitted output instead of duplicating it on replay.
    source_config.resume_from_group = true;
    source_config.checkpoint = checkpoint;
    sink_config.checkpoint = checkpoint;
    sink_config.transactional = ctx.recovery.exactly_once;
  }
  auto lines = env.add_source<Payload>(
      flink::kafka_source(*ctx.broker, source_config), "Custom Source");
  apply_query_operator(lines, query, ctx)
      .add_sink(flink::kafka_sink(*ctx.broker, sink_config), "Unnamed");
  return env;
}

}  // namespace

Status run_native_flink(workload::QueryId query, const QueryContext& ctx) {
  if (!ctx.recovery.enabled) {
    auto env = build_environment(query, ctx, nullptr);
    return env.execute(workload::query_info(query).name).status();
  }
  // Restart-from-last-checkpoint: each attempt rebuilds the job with a
  // fresh coordinator (sink callbacks must not dangle across attempts);
  // sources resume from the group's committed offsets.
  const runtime::RestartPolicy policy{
      .max_attempts = 1 + std::max(0, ctx.recovery.max_restarts),
      .backoff = recovery_backoff(ctx.recovery)};
  Stopwatch watch;
  bool restarted = false;
  const Status status = runtime::run_supervised(
      policy,
      [&](int /*attempt*/) -> Status {
        auto checkpoint = std::make_shared<flink::CheckpointCoordinator>();
        auto env = build_environment(query, ctx, checkpoint);
        return env.execute(workload::query_info(query).name).status();
      },
      [&](int /*attempt*/, const Status& /*error*/) {
        restarted = true;
        runtime::MetricsRegistry::global()
            .counter("flink.recovery.restarts")
            .add(1);
      });
  if (restarted) {
    runtime::MetricsRegistry::global()
        .gauge("flink.recovery.time_ms")
        .set(watch.elapsed_ms());
  }
  return status;
}

Result<std::string> native_flink_plan(workload::QueryId query,
                                      const QueryContext& ctx) {
  auto env = build_environment(query, ctx, nullptr);
  return env.execution_plan();
}

}  // namespace dsps::queries
