// Native Flink-sim implementations of the four StreamBench queries:
// Kafka source -> (query operator) -> Kafka sink, exactly the three-element
// plan of Fig. 12. Operator chaining stays enabled (the default), so the
// whole pipeline runs as one task per subtask.
#include "queries/query_factory.hpp"

#include "flink/environment.hpp"
#include "flink/kafka_connectors.hpp"

namespace dsps::queries {

namespace {

using kafka::Payload;

flink::DataStream<Payload> apply_query_operator(
    const flink::DataStream<Payload>& lines, workload::QueryId query,
    const QueryContext& ctx) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      return lines;  // source feeds the sink directly
    case QueryId::kSample:
      return lines.filter(
          [seed = ctx.seed](const Payload&) {
            return workload::sample_keep_threadlocal(seed);
          },
          "Sample");
    case QueryId::kProjection:
      // Projection slices the payload in place — no bytes are copied on the
      // native path; only the sink's broker append materializes anything.
      return lines.map<Payload>(
          [](const Payload& line) {
            return workload::projection_payload(line);
          },
          "Projection");
    case QueryId::kGrep:
      return lines.filter(
          [](const Payload& line) {
            return workload::grep_matches(line.view());
          },
          "Filter");
  }
  throw std::invalid_argument("unknown query");
}

flink::StreamExecutionEnvironment build_environment(
    workload::QueryId query, const QueryContext& ctx) {
  flink::StreamExecutionEnvironment env;
  env.set_parallelism(ctx.parallelism);
  auto lines = env.add_source<Payload>(
      flink::kafka_source(*ctx.broker,
                          flink::KafkaSourceConfig{.topic = ctx.input_topic}),
      "Custom Source");
  apply_query_operator(lines, query, ctx)
      .add_sink(
          flink::kafka_sink(*ctx.broker, flink::KafkaSinkConfig{
                                             .topic = ctx.output_topic}),
          "Unnamed");
  return env;
}

}  // namespace

Status run_native_flink(workload::QueryId query, const QueryContext& ctx) {
  auto env = build_environment(query, ctx);
  return env.execute(workload::query_info(query).name).status();
}

Result<std::string> native_flink_plan(workload::QueryId query,
                                      const QueryContext& ctx) {
  auto env = build_environment(query, ctx);
  return env.execution_plan();
}

}  // namespace dsps::queries
