// Native Spark-sim implementations: direct Kafka DStream -> query
// transformation -> Kafka output, processed in micro-batches.
#include "queries/query_factory.hpp"

#include "spark/kafka_io.hpp"
#include "spark/streaming_context.hpp"

namespace dsps::queries {

namespace {

using kafka::Payload;

spark::DStream<Payload> apply_query_transform(
    const spark::DStream<Payload>& lines, workload::QueryId query,
    const QueryContext& ctx) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      return lines;
    case QueryId::kSample:
      return lines.filter([seed = ctx.seed](const Payload& line) {
        return workload::sample_keep(line.view(), seed);
      });
    case QueryId::kProjection:
      // Slices the row in place — RDD rows share the broker's storage.
      return lines.map<Payload>([](const Payload& line) {
        return workload::projection_payload(line);
      });
    case QueryId::kGrep:
      return lines.filter([](const Payload& line) {
        return workload::grep_matches(line.view());
      });
  }
  throw std::invalid_argument("unknown query");
}

}  // namespace

Status run_native_spark(workload::QueryId query, const QueryContext& ctx) {
  spark::SparkConf conf;
  conf.app_name = workload::query_info(query).name;
  conf.default_parallelism = ctx.parallelism;
  spark::StreamingContext ssc(conf, /*batch_interval_ms=*/50);
  if (ctx.recovery.enabled) {
    // Spark's native mechanism: re-run the failed micro-batch against the
    // same claimed offset range (at-least-once).
    ssc.set_batch_retries(std::max(0, ctx.recovery.max_restarts),
                          recovery_backoff(ctx.recovery));
  }

  auto lines = ssc.kafka_direct_stream(*ctx.broker, ctx.input_topic);
  auto output = apply_query_transform(lines, query, ctx);
  // Scale-out: each write task targets its own output partition (split
  // index), instead of all executor cores funneling into partition 0.
  spark::write_to_kafka(
      output, *ctx.broker,
      spark::KafkaWriteConfig{.topic = ctx.output_topic,
                              .partition = ctx.parallelism > 1 ? -1 : 0,
                              .async = ctx.async_sinks});
  return ssc.run_bounded();
}

}  // namespace dsps::queries
