#include "queries/query_factory.hpp"

namespace dsps::queries {

// Implemented in the per-engine translation units.
Result<std::string> native_flink_plan(workload::QueryId query,
                                      const QueryContext& ctx);
Result<std::string> native_apex_plan(workload::QueryId query,
                                     const QueryContext& ctx);
Result<std::string> beam_plan(Engine engine, workload::QueryId query,
                              const QueryContext& ctx);

Status run_query(Engine engine, Sdk sdk, workload::QueryId query,
                 const QueryContext& ctx) {
  if (ctx.broker == nullptr) {
    return Status::invalid_argument("QueryContext.broker is null");
  }
  if (!ctx.broker->topic_exists(ctx.input_topic)) {
    return Status::not_found("input topic missing: " + ctx.input_topic);
  }
  if (!ctx.broker->topic_exists(ctx.output_topic)) {
    return Status::not_found("output topic missing: " + ctx.output_topic);
  }
  if (sdk == Sdk::kBeam) return run_beam(engine, query, ctx);
  switch (engine) {
    case Engine::kFlink: return run_native_flink(query, ctx);
    case Engine::kSpark: return run_native_spark(query, ctx);
    case Engine::kApex: return run_native_apex(query, ctx);
  }
  return Status::internal("unknown engine");
}

Result<std::string> execution_plan(Engine engine, Sdk sdk,
                                   workload::QueryId query,
                                   const QueryContext& ctx) {
  if (sdk == Sdk::kBeam) return beam_plan(engine, query, ctx);
  switch (engine) {
    case Engine::kFlink: return native_flink_plan(query, ctx);
    case Engine::kApex: return native_apex_plan(query, ctx);
    case Engine::kSpark:
      return Status::unsupported(
          "Spark-sim builds its physical plan per micro-batch; no static "
          "plan rendering");
  }
  return Status::internal("unknown engine");
}

}  // namespace dsps::queries
