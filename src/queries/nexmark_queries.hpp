// NEXMark-inspired Beam queries (extension; see workload/nexmark.hpp).
// One implementation per query, runnable on every runner.
#pragma once

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "common/status.hpp"
#include "queries/query_context.hpp"
#include "workload/nexmark.hpp"

namespace dsps::beam {
/// Bids serialize on Apex-runner container hops like any other element.
template <>
struct CoderTraits<workload::Bid> {
  static CoderPtr of();
};
}  // namespace dsps::beam

namespace dsps::queries {

enum class NexmarkQuery {
  kQ1CurrencyConversion,
  kQ2Selection,
  kQWWindowedMaxBid,
};

inline const char* nexmark_query_name(NexmarkQuery query) {
  switch (query) {
    case NexmarkQuery::kQ1CurrencyConversion: return "Q1-currency";
    case NexmarkQuery::kQ2Selection: return "Q2-selection";
    case NexmarkQuery::kQWWindowedMaxBid: return "QW-windowed-max";
  }
  return "?";
}

struct NexmarkOptions {
  /// Q2 keeps bids whose auction id is divisible by this.
  std::int64_t q2_auction_modulo = 13;
  /// QW fixed-window size in event-time microseconds.
  std::int64_t window_us = 1'000'000;
};

/// Parses bid lines from ctx.input_topic, applies the query, and writes
/// result lines to ctx.output_topic.
void build_nexmark_pipeline(beam::Pipeline& pipeline, NexmarkQuery query,
                            const QueryContext& ctx,
                            const NexmarkOptions& options = {});

/// Builds and runs on the engine's Beam runner.
Status run_nexmark(Engine engine, NexmarkQuery query, const QueryContext& ctx,
                   const NexmarkOptions& options = {});

}  // namespace dsps::queries
