// Native Apex-sim implementations: Kafka input operator -> (query compute
// operator) -> Kafka output operator on YARN-sim.
//
// Placement mirrors how a tuned native Apex application deploys a linear
// pipeline: THREAD_LOCAL at parallelism 1 (single container, direct calls)
// and CONTAINER_LOCAL around a partitioned compute operator at higher
// parallelism (queues, no serialization) — the VCOREs approach of §III-A2.
#include "queries/query_factory.hpp"

#include "apex/dag.hpp"
#include "apex/engine.hpp"
#include "apex/operators_library.hpp"
#include "yarn/resource_manager.hpp"

namespace dsps::queries {

namespace {

using runtime::Payload;

apex::OperatorFactory query_operator_factory(workload::QueryId query,
                                             const QueryContext& ctx) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      return {};  // no compute operator
    case QueryId::kSample:
      return apex::filter_payload_factory(
          [seed = ctx.seed](const Payload& line) {
            return workload::sample_keep(line.view(), seed);
          });
    case QueryId::kProjection:
      // Slices the tuple in place — the projected payload shares the
      // broker record's storage.
      return apex::map_payload_factory([](const Payload& line) {
        return workload::projection_payload(line);
      });
    case QueryId::kGrep:
      return apex::filter_payload_factory([](const Payload& line) {
        return workload::grep_matches(line.view());
      });
  }
  throw std::invalid_argument("unknown query");
}

apex::Dag build_dag(workload::QueryId query, const QueryContext& ctx) {
  apex::Dag dag;
  // With recovery on, the input gets a consumer group: offsets commit as
  // windows complete across the DAG, and a YARN reattempt resumes there.
  const int input = dag.add_input_operator(
      "kafkaInput",
      ctx.recovery.enabled
          ? apex::kafka_input_factory(
                *ctx.broker,
                apex::KafkaPayloadInput::Config{.topic = ctx.input_topic,
                                                .group_id = "apex-input"})
          : apex::kafka_input_factory(*ctx.broker, ctx.input_topic));
  const int output = dag.add_operator(
      "kafkaOutput",
      apex::kafka_output_factory(
          *ctx.broker, apex::KafkaPayloadOutput::Config{
                           .topic = ctx.output_topic,
                           .async = ctx.async_sinks}));

  apex::OperatorFactory compute = query_operator_factory(query, ctx);
  if (ctx.parallelism > 1) {
    // Scale-out plan (§III-A2 VCOREs): the input operator partitions too,
    // each physical instance draining its own slice of the topic's
    // partitions; compute instances pair up with them (equal counts =>
    // pairwise routing); a unifier merges the partitioned results back to
    // the single Kafka output, exactly where Apex inserts its unifier when
    // partition counts drop.
    dag.set_partitions(input, ctx.parallelism);
    const int unifier = dag.add_operator(
        "unifier", apex::map_payload_factory(
                       [](const Payload& line) { return line; }));
    int tail = input;
    if (compute) {
      const int op = dag.add_operator("compute", std::move(compute));
      dag.set_partitions(op, ctx.parallelism);
      dag.add_stream("lines", apex::PortRef{input, 0}, apex::PortRef{op, 0},
                     apex::Locality::kContainerLocal, {});
      tail = op;
    }
    dag.add_stream("merged", apex::PortRef{tail, 0},
                   apex::PortRef{unifier, 0},
                   apex::Locality::kContainerLocal, {});
    dag.add_stream("results", apex::PortRef{unifier, 0},
                   apex::PortRef{output, 0}, apex::Locality::kContainerLocal,
                   {});
    return dag;
  }

  if (!compute) {
    // Identity: input feeds the output operator directly.
    dag.add_stream("lines", apex::PortRef{input, 0}, apex::PortRef{output, 0},
                   apex::Locality::kThreadLocal, {});
    return dag;
  }

  const int op = dag.add_operator("compute", std::move(compute));
  dag.add_stream("lines", apex::PortRef{input, 0}, apex::PortRef{op, 0},
                 apex::Locality::kThreadLocal, {});
  dag.add_stream("results", apex::PortRef{op, 0}, apex::PortRef{output, 0},
                 apex::Locality::kThreadLocal, {});
  return dag;
}

}  // namespace

Status run_native_apex(workload::QueryId query, const QueryContext& ctx) {
  apex::Dag dag = build_dag(query, ctx);
  // The paper's cluster: two worker nodes.
  yarn::ResourceManager rm;
  rm.add_node("node-0", yarn::Resource{64, 65536});
  rm.add_node("node-1", yarn::Resource{64, 65536});
  apex::EngineConfig config;
  if (ctx.recovery.enabled) {
    config.max_attempts = 1 + std::max(0, ctx.recovery.max_restarts);
    config.restart_backoff = recovery_backoff(ctx.recovery);
  }
  return apex::launch_application(rm, dag, config).status();
}

Result<std::string> native_apex_plan(workload::QueryId query,
                                     const QueryContext& ctx) {
  apex::Dag dag = build_dag(query, ctx);
  return apex::render_physical_plan(dag);
}

}  // namespace dsps::queries
