#include "queries/nexmark_queries.hpp"

#include "beam/runners/apex_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"
#include "beam/windowing.hpp"

namespace dsps::beam {

namespace {

class BidCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    const auto& bid = value.get<workload::Bid>();
    out.write_i64(bid.auction);
    out.write_i64(bid.bidder);
    out.write_i64(bid.price);
    out.write_i64(bid.date_time);
  }
  Value decode(BinaryReader& in) const override {
    workload::Bid bid;
    bid.auction = in.read_i64();
    bid.bidder = in.read_i64();
    bid.price = in.read_i64();
    bid.date_time = in.read_i64();
    return bid;
  }
  std::string name() const override { return "BidCoder"; }
};

}  // namespace

CoderPtr CoderTraits<workload::Bid>::of() {
  return std::make_shared<BidCoder>();
}

}  // namespace dsps::beam

namespace dsps::queries {

namespace {

using workload::Bid;

/// Parses bid lines and re-stamps elements with the bid's event time, so
/// windowing downstream is event-time based. Parses straight off the
/// payload view — no line copy.
class ParseBidDoFn final : public beam::DoFn<runtime::Payload, Bid> {
 public:
  void process(ProcessContext& context) override {
    Bid bid = Bid::from_line(context.element().view());
    const Timestamp event_time = bid.date_time;
    context.output_with_timestamp(std::move(bid), event_time);
  }
};

beam::PCollection<Bid> read_bids(beam::Pipeline& pipeline,
                                 const QueryContext& ctx) {
  return pipeline
      .apply(beam::KafkaIO::read(
          *ctx.broker, beam::KafkaReadConfig{.topic = ctx.input_topic}))
      .apply(beam::KafkaIO::without_metadata())
      .apply(beam::Values<runtime::Payload>::create<runtime::Payload>())
      .apply(beam::ParDo::of<runtime::Payload, Bid>(
          std::make_shared<ParseBidDoFn>(), "ParseBid"));
}

void write_lines(const beam::PCollection<std::string>& lines,
                 const QueryContext& ctx) {
  lines.apply(beam::KafkaIO::write(
      *ctx.broker, beam::KafkaWriteConfig{.topic = ctx.output_topic}));
}

}  // namespace

void build_nexmark_pipeline(beam::Pipeline& pipeline, NexmarkQuery query,
                            const QueryContext& ctx,
                            const NexmarkOptions& options) {
  auto bids = read_bids(pipeline, ctx);
  switch (query) {
    case NexmarkQuery::kQ1CurrencyConversion: {
      write_lines(
          bids.apply(beam::MapElements<Bid, std::string>::via(
              [](const Bid& bid) {
                Bid converted = bid;
                converted.price = workload::convert_usd_to_eur(bid.price);
                return converted.to_line();
              },
              "Q1/ConvertToEur")),
          ctx);
      return;
    }
    case NexmarkQuery::kQ2Selection: {
      write_lines(
          bids.apply(beam::Filter<Bid>::by(
                  [modulo = options.q2_auction_modulo](const Bid& bid) {
                    return bid.auction % modulo == 0;
                  },
                  "Q2/AuctionFilter"))
              .apply(beam::MapElements<Bid, std::string>::via(
                  [](const Bid& bid) { return bid.to_line(); },
                  "Q2/Format")),
          ctx);
      return;
    }
    case NexmarkQuery::kQWWindowedMaxBid: {
      using Keyed = beam::KV<std::int64_t, std::int64_t>;
      auto keyed = bids.apply(beam::MapElements<Bid, Keyed>::via(
          [](const Bid& bid) {
            return Keyed{bid.auction, bid.price};
          },
          "QW/KeyByAuction"));
      auto windowed = keyed.apply(beam::WindowInto<Keyed>(
          beam::fixed_windows(options.window_us), "QW/FixedWindows"));
      auto maxima =
          windowed.apply(beam::CombinePerKey<std::int64_t, std::int64_t>(
              [](const std::int64_t& a, const std::int64_t& b) {
                return std::max(a, b);
              },
              "QW/MaxBid"));
      // Format with the window start recovered from the event timestamp
      // (the combine output is stamped at window end - 1).
      struct Format final : beam::DoFn<Keyed, std::string> {
        std::int64_t window_us;
        explicit Format(std::int64_t w) : window_us(w) {}
        void process(ProcessContext& context) override {
          const Timestamp window_start =
              context.timestamp() - (window_us - 1);
          context.output(std::to_string(context.element().key) + "," +
                         std::to_string(window_start) + "," +
                         std::to_string(context.element().value));
        }
      };
      write_lines(maxima.apply(beam::ParDo::of<Keyed, std::string>(
                      std::make_shared<Format>(options.window_us),
                      "QW/Format")),
                  ctx);
      return;
    }
  }
  throw std::invalid_argument("unknown NEXMark query");
}

Status run_nexmark(Engine engine, NexmarkQuery query, const QueryContext& ctx,
                   const NexmarkOptions& options) {
  beam::Pipeline pipeline;
  build_nexmark_pipeline(pipeline, query, ctx, options);
  switch (engine) {
    case Engine::kFlink: {
      beam::FlinkRunner runner(
          beam::FlinkRunnerOptions{.parallelism = ctx.parallelism});
      return pipeline.run(runner).status();
    }
    case Engine::kSpark: {
      beam::SparkRunner runner(
          beam::SparkRunnerOptions{.parallelism = ctx.parallelism});
      return pipeline.run(runner).status();
    }
    case Engine::kApex: {
      beam::ApexRunner runner(
          beam::ApexRunnerOptions{.parallelism = ctx.parallelism});
      return pipeline.run(runner).status();
    }
  }
  return Status::internal("unknown engine");
}

}  // namespace dsps::queries
