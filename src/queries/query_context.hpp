// Shared vocabulary for the 24 benchmark setups:
// {Flink, Spark, Apex} x {native API, Beam} x {Identity, Sample,
// Projection, Grep} x parallelism.
#pragma once

#include <cstdint>
#include <string>

#include "kafka/broker.hpp"
#include "runtime/fault.hpp"
#include "workload/streambench.hpp"

namespace dsps::queries {

enum class Engine { kFlink, kSpark, kApex };
enum class Sdk { kNative, kBeam };

inline const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kFlink: return "Flink";
    case Engine::kSpark: return "Spark";
    case Engine::kApex: return "Apex";
  }
  return "?";
}

inline const char* sdk_name(Sdk sdk) {
  return sdk == Sdk::kNative ? "native" : "Beam";
}

/// Per-run recovery knobs, mapped by each path onto the engine's native
/// mechanism (DESIGN.md §5c):
///   Flink native — job restart; with `exactly_once`, barrier checkpointing
///                  of source offsets + transactional sink epochs;
///   Spark native — per-batch retry against the same claimed offset range;
///   Apex native  — YARN application reattempt, inputs resuming from
///                  committed-window offsets;
///   Beam         — one RestartHint, translated per runner (full job rerun
///                  on Flink, batch retry on Spark, app reattempt on Apex).
struct RecoveryConfig {
  bool enabled = false;
  /// Extra attempts beyond the first (restarts / retries / reattempts).
  int max_restarts = 3;
  /// Flink native only: checkpointed source + transactional sink —
  /// exactly-once output. Every other path is at-least-once.
  bool exactly_once = false;
  /// Seeds the retry backoff jitter (deterministic chaos runs).
  std::uint64_t backoff_seed = 42;
};

/// Backoff used by every recovery path; tight so bounded chaos runs stay
/// fast, jittered + seeded so schedules are reproducible.
inline runtime::BackoffPolicy recovery_backoff(const RecoveryConfig& config) {
  return runtime::BackoffPolicy{.initial_us = 500,
                                .multiplier = 2.0,
                                .max_us = 20'000,
                                .jitter = 0.2,
                                .seed = config.backoff_seed};
}

struct QueryContext {
  kafka::Broker* broker = nullptr;
  std::string input_topic;
  std::string output_topic;
  int parallelism = 1;
  /// Seed for the Sample query's randomness.
  std::uint64_t seed = 42;
  RecoveryConfig recovery;
  /// Beam path only: run the fusion optimizer before translation
  /// (beam::PipelineOptions::fuse_stages). Off by default so every default
  /// run reproduces the paper's unfused plans and slowdown factors; the
  /// native paths ignore it.
  bool fuse_stages = false;
  /// Asynchronous pipelined sinks: the Beam path translates it to
  /// beam::PipelineOptions::async_sinks; the native paths switch their
  /// Kafka sink producers to the background-sender mode. Off by default so
  /// every default run keeps the paper's synchronous writers.
  bool async_sinks = false;
};

}  // namespace dsps::queries
