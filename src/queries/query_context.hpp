// Shared vocabulary for the 24 benchmark setups:
// {Flink, Spark, Apex} x {native API, Beam} x {Identity, Sample,
// Projection, Grep} x parallelism.
#pragma once

#include <cstdint>
#include <string>

#include "kafka/broker.hpp"
#include "workload/streambench.hpp"

namespace dsps::queries {

enum class Engine { kFlink, kSpark, kApex };
enum class Sdk { kNative, kBeam };

inline const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kFlink: return "Flink";
    case Engine::kSpark: return "Spark";
    case Engine::kApex: return "Apex";
  }
  return "?";
}

inline const char* sdk_name(Sdk sdk) {
  return sdk == Sdk::kNative ? "native" : "Beam";
}

struct QueryContext {
  kafka::Broker* broker = nullptr;
  std::string input_topic;
  std::string output_topic;
  int parallelism = 1;
  /// Seed for the Sample query's randomness.
  std::uint64_t seed = 42;
};

}  // namespace dsps::queries
