// Entry point for running any of the paper's query setups.
#pragma once

#include "common/status.hpp"
#include "queries/query_context.hpp"

namespace dsps::queries {

/// Runs one query implementation to completion (bounded input; the result
/// lands in ctx.output_topic). Each call builds a fresh engine instance —
/// the paper restarts systems between runs.
Status run_query(Engine engine, Sdk sdk, workload::QueryId query,
                 const QueryContext& ctx);

/// Renders the execution plan for a setup without running it (available
/// for Flink-sim native/Beam and the Apex runner; reproduces Fig. 12/13).
Result<std::string> execution_plan(Engine engine, Sdk sdk,
                                   workload::QueryId query,
                                   const QueryContext& ctx);

// Per-engine entry points (used by tests and the plan benches).
Status run_native_flink(workload::QueryId query, const QueryContext& ctx);
Status run_native_spark(workload::QueryId query, const QueryContext& ctx);
Status run_native_apex(workload::QueryId query, const QueryContext& ctx);
Status run_beam(Engine engine, workload::QueryId query,
                const QueryContext& ctx);

}  // namespace dsps::queries
