// The single Beam implementation of each query, runnable on any runner —
// which is precisely the abstraction benefit the paper weighs against the
// measured performance penalty. Pipeline shape mirrors §III-C3:
//   KafkaIO.read -> withoutMetadata -> Values.create -> <query logic>
//   -> KafkaIO.write
#include "queries/query_factory.hpp"

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/apex_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"
#include "runtime/payload.hpp"

namespace dsps::queries {

namespace {

using runtime::Payload;

beam::PCollection<Payload> apply_query_logic(
    const beam::PCollection<Payload>& values, workload::QueryId query,
    const QueryContext& ctx) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      // Forwarding the payload is a refcount bump; the translated-operator
      // envelope and coder hops stay — that is the overhead under test.
      return values.apply(beam::MapElements<Payload, Payload>::via(
          [](const Payload& line) { return line; }, "Identity"));
    case QueryId::kSample:
      return values.apply(beam::Filter<Payload>::by(
          [seed = ctx.seed](const Payload& line) {
            return workload::sample_keep(line.view(), seed);
          },
          "Sample"));
    case QueryId::kProjection:
      return values.apply(beam::MapElements<Payload, Payload>::via(
          [](const Payload& line) {
            return workload::projection_payload(line);
          },
          "Projection"));
    case QueryId::kGrep:
      return values.apply(beam::Filter<Payload>::by(
          [](const Payload& line) {
            return workload::grep_matches(line.view());
          },
          "Grep"));
  }
  throw std::invalid_argument("unknown query");
}

void build_pipeline(beam::Pipeline& pipeline, workload::QueryId query,
                    const QueryContext& ctx) {
  auto records = pipeline.apply(beam::KafkaIO::read(
      *ctx.broker, beam::KafkaReadConfig{.topic = ctx.input_topic}));
  auto kvs = records.apply(beam::KafkaIO::without_metadata());
  auto values = kvs.apply(beam::Values<Payload>::create<Payload>());
  auto output = apply_query_logic(values, query, ctx);
  // Scale-out: parallel writer instances spread keyless output round-robin
  // over the output topic's partitions instead of contending on one log.
  output.apply(beam::KafkaIO::write(
      *ctx.broker,
      beam::KafkaWriteConfig{.topic = ctx.output_topic,
                             .partition = ctx.parallelism > 1 ? -1 : 0}));
}

std::unique_ptr<beam::PipelineRunner> make_runner(Engine engine,
                                                  const QueryContext& ctx) {
  // The one portable knob: each runner translates the hint onto its
  // engine's native mechanism (job rerun / batch retry / app reattempt).
  beam::RestartHint restart;
  if (ctx.recovery.enabled) {
    restart.max_restarts = std::max(0, ctx.recovery.max_restarts);
    restart.backoff = recovery_backoff(ctx.recovery);
  }
  const beam::PipelineOptions pipeline{.fuse_stages = ctx.fuse_stages,
                                       .async_sinks = ctx.async_sinks};
  switch (engine) {
    case Engine::kFlink:
      return std::make_unique<beam::FlinkRunner>(
          beam::FlinkRunnerOptions{.parallelism = ctx.parallelism,
                                   .pipeline = pipeline,
                                   .restart = restart});
    case Engine::kSpark:
      return std::make_unique<beam::SparkRunner>(
          beam::SparkRunnerOptions{.parallelism = ctx.parallelism,
                                   .pipeline = pipeline,
                                   .restart = restart});
    case Engine::kApex:
      return std::make_unique<beam::ApexRunner>(
          beam::ApexRunnerOptions{.parallelism = ctx.parallelism,
                                  .restart = restart,
                                  .pipeline = pipeline});
  }
  throw std::invalid_argument("unknown engine");
}

}  // namespace

Status run_beam(Engine engine, workload::QueryId query,
                const QueryContext& ctx) {
  beam::Pipeline pipeline;
  build_pipeline(pipeline, query, ctx);
  auto runner = make_runner(engine, ctx);
  return pipeline.run(*runner).status();
}

Result<std::string> beam_plan(Engine engine, workload::QueryId query,
                              const QueryContext& ctx) {
  beam::Pipeline pipeline;
  build_pipeline(pipeline, query, ctx);
  switch (engine) {
    case Engine::kFlink:
      return beam::FlinkRunner(
                 beam::FlinkRunnerOptions{
                     .parallelism = ctx.parallelism,
                     .pipeline = {.fuse_stages = ctx.fuse_stages}})
          .translate_plan(pipeline);
    case Engine::kApex:
      return beam::ApexRunner(
                 beam::ApexRunnerOptions{
                     .parallelism = ctx.parallelism,
                     .pipeline = {.fuse_stages = ctx.fuse_stages}})
          .translate_plan(pipeline);
    case Engine::kSpark:
      return Status::unsupported(
          "the Spark runner has no static plan rendering");
  }
  return Status::internal("unknown engine");
}

}  // namespace dsps::queries
