// Unified metrics: one registry, one snapshot schema, for all three engines.
//
// Before this substrate existed each engine kept its own ad-hoc stats struct
// (Flink `VertexMetrics`, Apex `ApplicationStats`, Spark `BatchStats`) and
// every consumer — the harness report, the perf smoke bench, the Beam
// runners — had to speak three dialects. A MetricsRegistry owns named
// counters, gauges and time histograms; engines update them from their hot
// loops and publish a MetricsSnapshot when a job finishes.
//
// Hot-path design: a counter is a set of cache-line-padded shards indexed by
// a hash of the calling thread's id. add() is a single relaxed fetch_add on
// the caller's shard — no locks, no false sharing between worker threads.
// Registration (name -> instrument lookup) takes a mutex but happens once
// per operator at setup time, never per record.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsps::runtime {

namespace detail {

inline constexpr std::size_t kCounterShards = 16;  // power of two

// HDR-style histogram geometry: each power-of-two magnitude splits into
// 2^kHdrSubBucketBits linear sub-buckets, so any recorded value lands in a
// bucket whose width is at most value / 2^kHdrSubBucketBits — percentile
// queries are exact to ~6% relative error (and exact below 32us, where the
// buckets are 1us wide). 576 buckets cover values up to 2^39 us (~6.4
// days), far beyond any scope or batch this repo times.
inline constexpr std::size_t kHdrSubBucketBits = 4;
inline constexpr std::size_t kHdrSubBuckets = 1u << kHdrSubBucketBits;
inline constexpr std::size_t kHistogramBuckets =
    (39 - kHdrSubBucketBits - 1) * kHdrSubBuckets + 2 * kHdrSubBuckets;

struct alignas(64) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};

/// Shard index for the calling thread (stable per thread, cheap).
std::size_t shard_for_this_thread() noexcept;

struct CounterCell {
  PaddedAtomic shards[kCounterShards];

  void add(std::uint64_t delta) noexcept {
    shards[shard_for_this_thread()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards)
      sum += shard.value.load(std::memory_order_relaxed);
    return sum;
  }
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

/// HDR-style microsecond buckets (see the geometry constants above). Count
/// and sum are sharded like counters (they are touched on every record);
/// bucket counts are plain atomics — histogram samples are per-batch /
/// per-window or stride-sampled, not per-record, so bucket contention is
/// negligible and padding 576 buckets would cost 36KB per histogram.
struct HistogramCell {
  std::atomic<std::uint64_t> buckets[kHistogramBuckets];
  PaddedAtomic sum_shards[kCounterShards];
  PaddedAtomic count_shards[kCounterShards];

  void record(std::uint64_t value_us) noexcept;
};

}  // namespace detail

/// Monotonic event counter handle. Trivially copyable; valid as long as the
/// registry that produced it lives.
class Counter {
 public:
  Counter() noexcept = default;
  void add(std::uint64_t delta = 1) noexcept {
    if (cell_ != nullptr) cell_->add(delta);
  }
  std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->total();
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) noexcept : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins instantaneous value (e.g. duration, queue depth).
class Gauge {
 public:
  Gauge() noexcept = default;
  void set(double value) noexcept {
    if (cell_ != nullptr)
      cell_->value.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return cell_ == nullptr ? 0.0
                            : cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) noexcept : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Time histogram handle (microsecond samples).
class TimeHistogram {
 public:
  TimeHistogram() noexcept = default;
  void record_us(std::uint64_t value_us) noexcept {
    if (cell_ != nullptr) cell_->record(value_us);
  }

 private:
  friend class MetricsRegistry;
  explicit TimeHistogram(detail::HistogramCell* cell) noexcept : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Point-in-time histogram readout carried by MetricsSnapshot.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::vector<std::uint64_t> buckets;  // HDR-style microsecond buckets

  double mean_us() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_us) /
                            static_cast<double>(count);
  }
  /// Upper bound (us) of the HDR bucket containing the p-th percentile
  /// sample, p in [0, 1] — exact to the sub-bucket resolution (~6%
  /// relative, exact below 32us). 0 when empty.
  std::uint64_t percentile_us(double p) const noexcept;
  std::uint64_t p50_us() const noexcept { return percentile_us(0.50); }
  std::uint64_t p99_us() const noexcept { return percentile_us(0.99); }
  std::uint64_t p999_us() const noexcept { return percentile_us(0.999); }
};

/// Canonical metric naming: `engine.component.metric` (engine = flink /
/// spark / apex / kafka / runtime / yarn; further dots subdivide the metric,
/// e.g. per-partition or per-subtask instances). Names that predate the
/// convention are folded to their canonical spelling here — merge() applies
/// the mapping as snapshots fold into the process registry, and snapshot
/// lookups fall back through it, so committed baselines and older consumers
/// written against the legacy names keep intersecting.
///
///   kafka.lag.<g>.<t>.<p>      -> kafka.consumer.lag.<g>.<t>.<p>
///   channel.<l>.depth(.peak)   -> flink job registries only; merged as
///                                 flink.channel.<l>.* (already canonical)
std::string canonical_metric_name(std::string_view name);

/// Inverse shim for lookups: the legacy spelling of a canonical name, or
/// empty when the name never had one.
std::string legacy_metric_name(std::string_view name);

/// The one cross-engine schema: plain name -> value maps, consumed by the
/// harness report, the Beam runners, and the perf smoke bench alike.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  std::uint64_t counter(std::string_view name,
                        std::uint64_t fallback = 0) const;
  double gauge(std::string_view name, double fallback = 0.0) const;
  /// All counters whose name starts with `prefix`, in name order.
  std::vector<std::pair<std::string, std::uint64_t>> counters_with_prefix(
      std::string_view prefix) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {"name":{"count":..,"sum_us":..,"p50_us":..,"p99_us":..,"p999_us":..},
  /// ..}}. Existing fields are stable; p999_us rides along (additive, so
  /// older consumers of the schema keep working).
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Handles stay valid for the registry's lifetime.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  TimeHistogram histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Folds a finished job's snapshot into this registry, prefixing every
  /// name (e.g. "flink."). Counter values add; gauges overwrite; histogram
  /// buckets add. Lets the process-wide registry aggregate across engines.
  void merge(const MetricsSnapshot& snapshot, const std::string& prefix = "");

  /// Process-wide registry: engines publish per-job snapshots here so the
  /// bench/report layer can read every engine through one lens.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
};

}  // namespace dsps::runtime
