// Always-on-capable cost-attribution profiler (DESIGN.md §5g).
//
// The paper can say *that* a setup is slower; this profiler says *where the
// microseconds go*. Every engine loop routes operator execution through
// runtime::OperatorInvoker (invoker.hpp), which brackets each step with a
// ScopedStage timer over one fixed taxonomy:
//
//   queue_wait  — blocked on a channel/mailbox/pending-queue pop or push
//   decode      — wire bytes -> records (coders, codecs, projection parse)
//   user_fn     — the operator/DoFn body itself
//   encode      — records -> wire bytes (coders, codecs, sink serialization)
//   broker_rtt  — simulated broker network round-trips (produce/fetch)
//   checkpoint  — barrier handling, window commit, offset commit
//   other       — instrumented work that fits no bucket above
//
// Cost model, mirroring FaultInjector: the profiler is process-global and
// *disarmed* by default. A disarmed ScopedStage is a single relaxed atomic
// load — no clock reads, no TLS writes — so the paper-faithful benchmarks
// pay nothing. Armed (STREAMSHIM_PROFILE=1), per-record scopes are
// stride-sampled: one in every `sample_stride` top-level scopes takes real
// timestamps (its weight scales the recorded cost back up), everything
// nested under a sampled scope is timed exactly so self-times decompose
// without double counting. Per-batch scopes (Mode::kAlways) are always
// timed; they fire orders of magnitude less often. This keeps the armed
// overhead inside the hard <2% budget that scripts/check_perf_regression.py
// gates in CI.
//
// Costs accumulate in thread-local slabs (plain, uncontended writes) that
// flush into global sharded cells every kFlushPending samples and at task
// teardown (OperatorInvoker::close). A background sampler thread
// periodically publishes live totals as `runtime.profile.*` gauges in
// MetricsRegistry::global(), records sampled scope durations into
// HDR-style histograms, and feeds PolicyEngine (policy.hpp) its live
// snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "runtime/metrics.hpp"

namespace dsps::runtime {

/// The fixed stage taxonomy. Order is the render order of the breakdown
/// table; kOther stays last.
enum class Stage : std::uint8_t {
  kQueueWait = 0,
  kDecode,
  kUserFn,
  kEncode,
  kBrokerRtt,
  kCheckpoint,
  kOther,
};

inline constexpr std::size_t kStageCount = 7;

std::string_view stage_name(Stage stage) noexcept;

namespace detail {

/// Thread-local profiling state. Plain fields: only the owning thread
/// touches them; flushes move the totals into sharded atomics.
struct ProfilerTls {
  std::uint64_t stage_ns[kStageCount];
  std::uint64_t stage_calls[kStageCount];
  void* top;                // active ScopedStage (trace root/nesting)
  std::uint32_t countdown;  // top-level scopes until the next sample
  std::uint32_t pending;    // samples accumulated since the last flush
  std::uint64_t epoch;      // arm() generation the slab belongs to
};

ProfilerTls& profiler_tls() noexcept;

extern std::atomic<bool> g_profiler_armed;

}  // namespace detail

struct ProfilerConfig {
  /// Time one in every `sample_stride` top-level per-record scopes. 1 =
  /// exact attribution (tests); the default keeps armed overhead <2% even
  /// on the hottest path (Flink native Identity, ~200ns/record wall).
  std::uint32_t sample_stride = 128;
  /// Background sampler period (live gauges + PolicyEngine feed).
  std::int64_t sampler_interval_ms = 20;
  /// Tests can run without the background thread.
  bool start_sampler = true;
};

/// Accumulated cost of one stage (or one named operator's user_fn).
struct StageCost {
  std::uint64_t total_us = 0;  // weighted estimate of wall time spent
  std::uint64_t calls = 0;     // weighted estimate of scope entries
  std::uint64_t samples = 0;   // scopes actually timed

  StageCost& operator+=(const StageCost& other) noexcept {
    total_us += other.total_us;
    calls += other.calls;
    samples += other.samples;
    return *this;
  }
};

/// Point-in-time readout of every stage plus the per-operator user_fn
/// attribution (fused composite members appear as their own operators).
struct ProfileSnapshot {
  StageCost stages[kStageCount];
  std::map<std::string, StageCost> operators;

  std::uint64_t attributed_us() const noexcept;
  /// Fraction of attributed time spent in `stage` (0 when nothing is
  /// attributed yet).
  double share(Stage stage) const noexcept;
  /// Delta of two snapshots of the same profiler (this - earlier).
  ProfileSnapshot since(const ProfileSnapshot& earlier) const;
};

class Profiler {
 public:
  /// The process-global profiler every ScopedStage consults.
  static Profiler& instance();

  /// Arms the profiler and (by default) starts the background sampler.
  /// Re-arming resets all accumulated costs and invalidates stale
  /// thread-local slabs.
  void arm(ProfilerConfig config = {});

  /// Disarms, joins the sampler thread, and keeps totals readable until the
  /// next arm(). Scopes return to their single-relaxed-load path.
  void disarm();

  bool armed() const noexcept {
    return detail::g_profiler_armed.load(std::memory_order_relaxed);
  }

  const ProfilerConfig& config() const noexcept { return config_; }

  /// Registers an operator label for per-operator user_fn attribution and
  /// returns its dense id. Idempotent per name; call at operator open, never
  /// per record. Returns kNoOperator when the table is full.
  std::uint32_t operator_id(std::string_view name);
  static constexpr std::uint32_t kNoOperator = ~std::uint32_t{0};

  /// Totals accumulated since the last arm(). Thread slabs flush lazily
  /// (every kFlushPending samples and at OperatorInvoker::close), so live
  /// threads may hold a small unflushed residue.
  ProfileSnapshot snapshot() const;

  /// Zeroes all accumulated costs (between benchmark setups) without
  /// disturbing the armed state or registered operators.
  void reset();

  /// Publishes the calling thread's slab into the global cells.
  void flush_this_thread() noexcept;

  /// Observer invoked from the sampler thread with each live snapshot
  /// (PolicyEngine hook). Replaces the previous observer; pass {} to clear.
  void set_observer(std::function<void(const ProfileSnapshot&)> observer);

  // -- internal: ScopedStage/flush plumbing ---------------------------------
  void record_sample(Stage stage, std::uint32_t op, std::uint64_t self_ns,
                     std::uint32_t weight) noexcept;

 private:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void sampler_loop();
  void publish_live(const ProfileSnapshot& snap);

  struct Impl;
  Impl* impl_;
  ProfilerConfig config_;
};

/// RAII stage timer. Near-free when the profiler is disarmed (one relaxed
/// atomic load). When armed:
///   - Mode::kSampled (per-record sites): a top-level scope is timed once
///     every sample_stride entries, and its recorded cost carries
///     weight = sample_stride. Scopes nested under a timed scope are always
///     timed and inherit the root's weight, and a parent records only its
///     *self* time (elapsed minus children), so a trace decomposes exactly.
///   - Mode::kAlways (per-batch sites: queue waits, broker RTTs,
///     checkpoints): always timed at weight 1.
class ScopedStage {
 public:
  enum class Mode : std::uint8_t { kSampled, kAlways };

  explicit ScopedStage(Stage stage, Mode mode = Mode::kSampled,
                       std::uint32_t op = Profiler::kNoOperator) noexcept {
    // The disarmed fast path: one relaxed load, no clock, no TLS write.
    if (detail::g_profiler_armed.load(std::memory_order_relaxed)) {
      enter(stage, mode, op);
    }
  }
  ~ScopedStage() {
    if (active_) leave();
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  bool active() const noexcept { return active_; }

 private:
  void enter(Stage stage, Mode mode, std::uint32_t op) noexcept;
  void leave() noexcept;

  std::int64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedStage* parent_ = nullptr;
  std::uint32_t op_ = Profiler::kNoOperator;
  std::uint32_t weight_ = 1;
  Stage stage_ = Stage::kOther;
  bool active_ = false;
};

}  // namespace dsps::runtime
