#include "runtime/task_runtime.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "runtime/metrics.hpp"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace dsps::runtime {

namespace {

void name_current_thread(const std::string& name) {
#if defined(__linux__)
  // The kernel caps thread names at 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace

TaskRuntime::TaskRuntime(std::string name) : name_(std::move(name)) {}

TaskRuntime::~TaskRuntime() {
  request_stop();
  (void)join_all();
}

TaskRuntime::TaskId TaskRuntime::spawn(std::string task_name,
                                       std::function<void()> body) {
  auto task = std::make_unique<Task>();
  task->name = std::move(task_name);
  // The thread must be running before the task is published, so a
  // concurrent wait()/join_all() never observes a half-built entry.
  task->thread = std::thread([this, name = task->name,
                              body = std::move(body)] { run_body(name, body); });
  std::lock_guard lock(mutex_);
  const TaskId id = tasks_.size();
  tasks_.push_back(std::move(task));
  return id;
}

TaskRuntime::TaskId TaskRuntime::spawn_supervised(std::string task_name,
                                                  std::function<void()> body,
                                                  RestartPolicy policy) {
  return spawn(std::move(task_name),
               [this, body = std::move(body), policy]() {
                 const int max_attempts = std::max(1, policy.max_attempts);
                 Backoff backoff(policy.backoff);
                 for (int attempt = 0;; ++attempt) {
                   try {
                     body();
                     return;
                   } catch (...) {
                     // Retry only while the budget allows and the runtime is
                     // still live; otherwise the last error surfaces through
                     // the normal failure-capture path.
                     if (attempt + 1 >= max_attempts || stop_requested()) {
                       throw;
                     }
                   }
                   MetricsRegistry::global()
                       .counter("runtime.task_restarts")
                       .add(1);
                   backoff.sleep();
                 }
               });
}

void TaskRuntime::run_body(const std::string& task_name,
                           const std::function<void()>& body) noexcept {
  name_current_thread(task_name);
  try {
    // Container kills strike a worker at startup: rules match the task
    // name, so a schedule can target one engine's containers.
    FaultInjector::instance().maybe_throw(FaultPoint::kContainerKill,
                                          task_name);
    body();
  } catch (const std::exception& e) {
    record_failure(Status::internal("task '" + task_name +
                                    "' failed: " + e.what()));
  } catch (...) {
    record_failure(
        Status::internal("task '" + task_name + "' failed: unknown exception"));
  }
}

void TaskRuntime::record_failure(Status status) {
  std::function<void(const Status&)> handler;
  {
    std::lock_guard lock(mutex_);
    if (!failed_) {
      failed_ = true;
      first_failure_ = status;
      handler = failure_handler_;
    }
  }
  // Outside the lock: the handler usually calls request_stop(), which takes
  // the mutex to drain stop hooks.
  if (handler) handler(status);
}

void TaskRuntime::wait(TaskId id) {
  std::thread thread;
  {
    std::unique_lock lock(mutex_);
    if (id >= tasks_.size()) return;
    Task& task = *tasks_[id];
    if (task.joined) return;
    if (task.claimed) {
      // Another thread owns the join (or a detach abandoned the task).
      // Block until it publishes completion instead of returning early —
      // returning here before the body finished is exactly how a failure
      // thrown during an ordered drain used to vanish from join_all().
      task_joined_cv_.wait(lock, [&task] { return task.joined; });
      return;
    }
    task.claimed = true;
    thread = std::move(task.thread);
  }
  if (thread.joinable()) thread.join();
  {
    std::lock_guard lock(mutex_);
    tasks_[id]->joined = true;
  }
  task_joined_cv_.notify_all();
}

void TaskRuntime::detach(TaskId id) {
  std::thread thread;
  {
    std::lock_guard lock(mutex_);
    if (id >= tasks_.size()) return;
    Task& task = *tasks_[id];
    if (task.claimed || task.joined) return;
    // A detached task never reports back: mark it complete so waiters and
    // the destructor don't block on a thread nobody will join.
    task.claimed = true;
    task.joined = true;
    thread = std::move(task.thread);
  }
  task_joined_cv_.notify_all();
  if (thread.joinable()) thread.detach();
}

void TaskRuntime::request_stop() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(mutex_);
    if (stop_requested_.exchange(true, std::memory_order_acq_rel)) return;
    hooks.swap(stop_hooks_);
  }
  for (const auto& hook : hooks) hook();
}

void TaskRuntime::on_stop(std::function<void()> hook) {
  {
    std::lock_guard lock(mutex_);
    if (!stop_requested_.load(std::memory_order_acquire)) {
      stop_hooks_.push_back(std::move(hook));
      return;
    }
  }
  hook();
}

void TaskRuntime::set_failure_handler(
    std::function<void(const Status&)> handler) {
  Status pending = Status::ok();
  std::function<void(const Status&)> installed;
  {
    std::lock_guard lock(mutex_);
    failure_handler_ = std::move(handler);
    // A failure that raced ahead of handler installation must still fire.
    if (failed_) {
      pending = first_failure_;
      installed = failure_handler_;
    }
  }
  if (!pending.is_ok() && installed) installed(pending);
}

Status TaskRuntime::first_failure() const {
  std::lock_guard lock(mutex_);
  return first_failure_;
}

Status TaskRuntime::join_all() {
  for (TaskId id = 0;; ++id) {
    {
      std::lock_guard lock(mutex_);
      if (id >= tasks_.size()) break;
    }
    wait(id);
  }
  return first_failure();
}

std::size_t TaskRuntime::spawned_count() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

}  // namespace dsps::runtime
