#include "runtime/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/metrics.hpp"

namespace dsps::runtime {

namespace {

std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view fault_point_name(FaultPoint point) noexcept {
  switch (point) {
    case FaultPoint::kOperatorThrow: return "operator_throw";
    case FaultPoint::kQueueStall: return "queue_stall";
    case FaultPoint::kSlowConsumer: return "slow_consumer";
    case FaultPoint::kBrokerUnavailable: return "broker_unavailable";
    case FaultPoint::kContainerKill: return "container_kill";
  }
  return "unknown";
}

FaultInjectedError::FaultInjectedError(FaultPoint point, std::string_view site)
    : std::runtime_error("injected fault " +
                         std::string(fault_point_name(point)) + " at '" +
                         std::string(site) + "'"),
      point_(point) {}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::uint64_t seed, std::vector<FaultRule> schedule) {
  std::lock_guard lock(mutex_);
  rules_.clear();
  rules_.reserve(schedule.size());
  SplitMix64 positions(seed);
  for (auto& rule : schedule) {
    RuleState state;
    state.rule = std::move(rule);
    // A rule without an explicit trigger position gets one derived from the
    // seed: somewhere within the first 48 matching hits. Different seeds =>
    // faults strike at different points of the run.
    if (state.rule.after_hits == 0) {
      state.rule.after_hits = 1 + positions.next() % 48;
    } else {
      (void)positions.next();  // keep the stream aligned across schedules
    }
    rules_.push_back(std::move(state));
  }
  injected_.store(0, std::memory_order_relaxed);
  unavailable_until_us_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  unavailable_until_us_.store(0, std::memory_order_relaxed);
}

std::int64_t FaultInjector::check_fire(FaultPoint point,
                                       std::string_view site) {
  std::lock_guard lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return -1;
  for (auto& state : rules_) {
    if (state.rule.point != point) continue;
    if (!state.rule.site.empty() &&
        site.find(state.rule.site) == std::string_view::npos) {
      continue;
    }
    ++state.hits;
    if (state.hits > state.rule.after_hits && state.fired < state.rule.times) {
      ++state.fired;
      return static_cast<std::int64_t>(state.rule.param_us);
    }
  }
  return -1;
}

void FaultInjector::note_fired(FaultPoint point) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  auto& global = MetricsRegistry::global();
  global.counter("fault.injected").add(1);
  global.counter("fault." + std::string(fault_point_name(point))).add(1);
}

void FaultInjector::maybe_throw_slow(FaultPoint point, std::string_view site) {
  if (check_fire(point, site) < 0) return;
  note_fired(point);
  throw FaultInjectedError(point, site);
}

void FaultInjector::maybe_stall_slow(FaultPoint point, std::string_view site) {
  const std::int64_t stall_us = check_fire(point, site);
  if (stall_us < 0) return;
  note_fired(point);
  if (stall_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

bool FaultInjector::broker_unavailable_slow(std::string_view site) {
  const std::int64_t window_us =
      check_fire(FaultPoint::kBrokerUnavailable, site);
  if (window_us >= 0) {
    note_fired(FaultPoint::kBrokerUnavailable);
    const std::int64_t until = steady_now_us() + window_us;
    // Extend, never shrink, the open window.
    std::int64_t prev = unavailable_until_us_.load(std::memory_order_relaxed);
    while (prev < until && !unavailable_until_us_.compare_exchange_weak(
                               prev, until, std::memory_order_relaxed)) {
    }
  }
  return steady_now_us() <
         unavailable_until_us_.load(std::memory_order_relaxed);
}

Backoff::Backoff(const BackoffPolicy& policy)
    : policy_(policy),
      base_us_(static_cast<double>(policy.initial_us)),
      rng_(policy.seed) {}

std::uint64_t Backoff::next_delay_us() {
  const double capped =
      std::min(base_us_, static_cast<double>(policy_.max_us));
  // Jitter factor uniform in [1 - jitter, 1 + jitter], from the seeded
  // stream: the i-th delay of two Backoffs with equal policies is identical.
  const double factor =
      1.0 + policy_.jitter * (2.0 * rng_.next_double() - 1.0);
  base_us_ = std::min(base_us_ * policy_.multiplier,
                      static_cast<double>(policy_.max_us));
  const double jittered = std::max(0.0, capped * factor);
  return static_cast<std::uint64_t>(jittered);
}

void Backoff::sleep() {
  const std::uint64_t delay_us = next_delay_us();
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

void Backoff::reset() {
  base_us_ = static_cast<double>(policy_.initial_us);
  rng_ = Xoshiro256(policy_.seed);
}

Status run_supervised(
    const RestartPolicy& policy,
    const std::function<Status(int attempt)>& attempt_fn,
    const std::function<void(int attempt, const Status&)>& on_retry) {
  const int max_attempts = std::max(1, policy.max_attempts);
  Backoff backoff(policy.backoff);
  Status last = Status::internal("no attempt ran");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    try {
      last = attempt_fn(attempt);
    } catch (const std::exception& e) {
      last = Status::internal(std::string("attempt ") +
                              std::to_string(attempt) + " threw: " + e.what());
    } catch (...) {
      last = Status::internal(std::string("attempt ") +
                              std::to_string(attempt) +
                              " threw: unknown exception");
    }
    if (last.is_ok()) return last;
    if (attempt + 1 >= max_attempts) break;
    if (on_retry) on_retry(attempt, last);
    backoff.sleep();
  }
  return last;  // exhaustion surfaces the last attempt's error
}

}  // namespace dsps::runtime
