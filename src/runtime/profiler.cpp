#include "runtime/profiler.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace dsps::runtime {

namespace detail {

std::atomic<bool> g_profiler_armed{false};

namespace {
// Trivially-constructible so thread creation pays nothing; countdown = 1
// makes the first top-level scope of every thread a sample.
constinit thread_local ProfilerTls t_profiler_tls{{0}, {0}, nullptr, 1, 0, 0};
}  // namespace

ProfilerTls& profiler_tls() noexcept { return t_profiler_tls; }

}  // namespace detail

namespace {

constexpr const char* kStageNames[kStageCount] = {
    "queue_wait", "decode", "user_fn", "encode",
    "broker_rtt", "checkpoint", "other"};

/// Flush a thread slab after this many samples: bounds the residue a live
/// thread can hold while keeping flushes (sharded fetch_adds) rare.
constexpr std::uint32_t kFlushPending = 32;

constexpr std::size_t kMaxOperators = 512;

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Unsharded per-operator cell: writes happen only at sampled rate.
struct OpCell {
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> samples{0};
};

}  // namespace

std::string_view stage_name(Stage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::uint64_t ProfileSnapshot::attributed_us() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stage : stages) total += stage.total_us;
  return total;
}

double ProfileSnapshot::share(Stage stage) const noexcept {
  const std::uint64_t total = attributed_us();
  if (total == 0) return 0.0;
  return static_cast<double>(stages[static_cast<std::size_t>(stage)].total_us) /
         static_cast<double>(total);
}

ProfileSnapshot ProfileSnapshot::since(const ProfileSnapshot& earlier) const {
  const auto minus = [](const StageCost& a, const StageCost& b) {
    StageCost d;
    d.total_us = a.total_us >= b.total_us ? a.total_us - b.total_us : 0;
    d.calls = a.calls >= b.calls ? a.calls - b.calls : 0;
    d.samples = a.samples >= b.samples ? a.samples - b.samples : 0;
    return d;
  };
  ProfileSnapshot delta;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    delta.stages[i] = minus(stages[i], earlier.stages[i]);
  }
  for (const auto& [name, cost] : operators) {
    const auto it = earlier.operators.find(name);
    const StageCost d =
        it == earlier.operators.end() ? cost : minus(cost, it->second);
    if (d.total_us > 0 || d.calls > 0) delta.operators[name] = d;
  }
  return delta;
}

struct Profiler::Impl {
  // Global sharded accumulators the thread slabs flush into.
  detail::CounterCell stage_ns[kStageCount];
  detail::CounterCell stage_calls[kStageCount];
  detail::CounterCell stage_samples[kStageCount];

  // Per-operator user_fn attribution. Fixed capacity so reads by id are
  // lock-free; registration takes the mutex once per operator at open time.
  OpCell op_cells[kMaxOperators];
  std::mutex op_mutex;
  std::vector<std::string> op_names;             // index = id
  std::atomic<std::uint32_t> op_count{0};

  // arm() generation: a slab stamped with an older epoch is stale and is
  // zeroed instead of flushed (its costs belong to a previous arming).
  std::atomic<std::uint64_t> epoch{1};

  // Scope-duration histograms in the process-wide registry, one per stage.
  TimeHistogram stage_hist[kStageCount];
  Gauge live_total_us[kStageCount];
  Gauge live_share[kStageCount];

  std::mutex observer_mutex;
  std::function<void(const ProfileSnapshot&)> observer;

  // Sampler thread lifecycle.
  std::thread sampler;
  std::mutex sampler_mutex;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
};

Profiler::Profiler() : impl_(new Impl) {
  auto& registry = MetricsRegistry::global();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string base =
        std::string("runtime.profile.") + kStageNames[i];
    impl_->stage_hist[i] = registry.histogram(base + ".scope_us");
    impl_->live_total_us[i] = registry.gauge(base + ".total_us");
    impl_->live_share[i] = registry.gauge(base + ".share");
  }
}

Profiler::~Profiler() { disarm(); }

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler;  // leaked: outlives worker threads
  return *profiler;
}

void Profiler::arm(ProfilerConfig config) {
  disarm();
  config_ = config;
  if (config_.sample_stride == 0) config_.sample_stride = 1;
  reset();
  {
    std::lock_guard lock(impl_->sampler_mutex);
    impl_->sampler_stop = false;
  }
  detail::g_profiler_armed.store(true, std::memory_order_relaxed);
  if (config_.start_sampler) {
    impl_->sampler = std::thread([this] { sampler_loop(); });
  }
}

void Profiler::disarm() {
  detail::g_profiler_armed.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->sampler_mutex);
    impl_->sampler_stop = true;
  }
  impl_->sampler_cv.notify_all();
  if (impl_->sampler.joinable()) impl_->sampler.join();
  flush_this_thread();
}

std::uint32_t Profiler::operator_id(std::string_view name) {
  std::lock_guard lock(impl_->op_mutex);
  for (std::uint32_t i = 0; i < impl_->op_names.size(); ++i) {
    if (impl_->op_names[i] == name) return i;
  }
  if (impl_->op_names.size() >= kMaxOperators) return kNoOperator;
  impl_->op_names.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(impl_->op_names.size() - 1);
  impl_->op_count.store(id + 1, std::memory_order_release);
  return id;
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    snap.stages[i].total_us = impl_->stage_ns[i].total() / 1000;
    snap.stages[i].calls = impl_->stage_calls[i].total();
    snap.stages[i].samples = impl_->stage_samples[i].total();
  }
  const std::uint32_t ops = impl_->op_count.load(std::memory_order_acquire);
  std::lock_guard lock(impl_->op_mutex);
  for (std::uint32_t i = 0; i < ops; ++i) {
    StageCost cost;
    cost.total_us =
        impl_->op_cells[i].ns.load(std::memory_order_relaxed) / 1000;
    cost.calls = impl_->op_cells[i].calls.load(std::memory_order_relaxed);
    cost.samples = impl_->op_cells[i].samples.load(std::memory_order_relaxed);
    if (cost.calls > 0) snap.operators[impl_->op_names[i]] = cost;
  }
  return snap;
}

void Profiler::reset() {
  // Bump the epoch first: slabs stamped with the old epoch zero themselves
  // instead of flushing stale costs into the fresh cells.
  impl_->epoch.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    for (auto& shard : impl_->stage_ns[i].shards)
      shard.value.store(0, std::memory_order_relaxed);
    for (auto& shard : impl_->stage_calls[i].shards)
      shard.value.store(0, std::memory_order_relaxed);
    for (auto& shard : impl_->stage_samples[i].shards)
      shard.value.store(0, std::memory_order_relaxed);
  }
  const std::uint32_t ops = impl_->op_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < ops; ++i) {
    impl_->op_cells[i].ns.store(0, std::memory_order_relaxed);
    impl_->op_cells[i].calls.store(0, std::memory_order_relaxed);
    impl_->op_cells[i].samples.store(0, std::memory_order_relaxed);
  }
}

void Profiler::flush_this_thread() noexcept {
  auto& tls = detail::profiler_tls();
  const std::uint64_t epoch = impl_->epoch.load(std::memory_order_relaxed);
  if (tls.epoch == epoch) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      if (tls.stage_ns[i] > 0) impl_->stage_ns[i].add(tls.stage_ns[i]);
      if (tls.stage_calls[i] > 0)
        impl_->stage_calls[i].add(tls.stage_calls[i]);
    }
  } else {
    tls.epoch = epoch;
  }
  std::memset(tls.stage_ns, 0, sizeof(tls.stage_ns));
  std::memset(tls.stage_calls, 0, sizeof(tls.stage_calls));
  tls.pending = 0;
}

void Profiler::set_observer(
    std::function<void(const ProfileSnapshot&)> observer) {
  std::lock_guard lock(impl_->observer_mutex);
  impl_->observer = std::move(observer);
}

void Profiler::record_sample(Stage stage, std::uint32_t op,
                             std::uint64_t self_ns,
                             std::uint32_t weight) noexcept {
  const auto index = static_cast<std::size_t>(stage);
  const std::uint64_t weighted_ns = self_ns * weight;
  auto& tls = detail::profiler_tls();
  const std::uint64_t epoch = impl_->epoch.load(std::memory_order_relaxed);
  if (tls.epoch != epoch) {
    // First sample since (re-)arming: drop stale local costs.
    std::memset(tls.stage_ns, 0, sizeof(tls.stage_ns));
    std::memset(tls.stage_calls, 0, sizeof(tls.stage_calls));
    tls.pending = 0;
    tls.epoch = epoch;
  }
  tls.stage_ns[index] += weighted_ns;
  tls.stage_calls[index] += weight;
  impl_->stage_samples[index].add(1);
  impl_->stage_hist[index].record_us(self_ns / 1000);
  if (op != kNoOperator && op < kMaxOperators) {
    impl_->op_cells[op].ns.fetch_add(weighted_ns, std::memory_order_relaxed);
    impl_->op_cells[op].calls.fetch_add(weight, std::memory_order_relaxed);
    impl_->op_cells[op].samples.fetch_add(1, std::memory_order_relaxed);
  }
  if (++tls.pending >= kFlushPending) flush_this_thread();
}

void Profiler::sampler_loop() {
  for (;;) {
    {
      std::unique_lock lock(impl_->sampler_mutex);
      impl_->sampler_cv.wait_for(
          lock, std::chrono::milliseconds(config_.sampler_interval_ms),
          [this] { return impl_->sampler_stop; });
      if (impl_->sampler_stop) return;
    }
    const ProfileSnapshot snap = snapshot();
    publish_live(snap);
    std::function<void(const ProfileSnapshot&)> observer;
    {
      std::lock_guard lock(impl_->observer_mutex);
      observer = impl_->observer;
    }
    if (observer) observer(snap);
  }
}

void Profiler::publish_live(const ProfileSnapshot& snap) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    impl_->live_total_us[i].set(
        static_cast<double>(snap.stages[i].total_us));
    impl_->live_share[i].set(snap.share(static_cast<Stage>(i)));
  }
}

// --- ScopedStage -----------------------------------------------------------

void ScopedStage::enter(Stage stage, Mode mode, std::uint32_t op) noexcept {
  auto& tls = detail::profiler_tls();
  std::uint32_t weight = 1;
  if (tls.top != nullptr) {
    // Nested under a timed scope: always time, inherit the root's weight so
    // self-times decompose the sampled trace exactly.
    weight = static_cast<ScopedStage*>(tls.top)->weight_;
  } else if (mode == Mode::kSampled) {
    if (--tls.countdown != 0) return;  // not this trace's turn
    const std::uint32_t stride = Profiler::instance().config().sample_stride;
    tls.countdown = stride;
    weight = stride;
  }
  stage_ = stage;
  op_ = op;
  weight_ = weight;
  parent_ = static_cast<ScopedStage*>(tls.top);
  tls.top = this;
  active_ = true;
  start_ns_ = steady_ns();
}

void ScopedStage::leave() noexcept {
  const std::int64_t elapsed =
      steady_ns() - start_ns_;
  const std::uint64_t elapsed_ns =
      elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0;
  const std::uint64_t self_ns =
      elapsed_ns > child_ns_ ? elapsed_ns - child_ns_ : 0;
  auto& tls = detail::profiler_tls();
  tls.top = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed_ns;
  Profiler::instance().record_sample(stage_, op_, self_ns, weight_);
}

}  // namespace dsps::runtime
