#include "runtime/metrics.hpp"

#include <bit>
#include <cmath>
#include <sstream>
#include <thread>

namespace dsps::runtime {

namespace detail {

std::size_t shard_for_this_thread() noexcept {
  // One hash per thread, computed on first use. thread_local keeps the hot
  // path to a single TLS load.
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kCounterShards - 1);
  return shard;
}

namespace {

/// HDR indexing: values below 2*kHdrSubBuckets map one-to-one (exact
/// buckets); above that, the top kHdrSubBucketBits+1 significant bits pick
/// the bucket, so bucket width grows with magnitude at a fixed relative
/// resolution.
std::size_t bucket_for(std::uint64_t value_us) noexcept {
  std::size_t shift = 0;
  if (value_us >= kHdrSubBuckets) {
    shift = static_cast<std::size_t>(std::bit_width(value_us)) -
            kHdrSubBucketBits - 1;
  }
  const std::size_t index =
      shift * kHdrSubBuckets + static_cast<std::size_t>(value_us >> shift);
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

/// Upper bound (us) of bucket i (inclusive). Buckets below 2*kHdrSubBuckets
/// hold exactly one value each.
std::uint64_t bucket_upper_us(std::size_t bucket) noexcept {
  const std::size_t shift =
      bucket < 2 * kHdrSubBuckets ? 0 : bucket / kHdrSubBuckets - 1;
  const std::uint64_t base = bucket - shift * kHdrSubBuckets;
  return ((base + 1) << shift) - 1;
}

}  // namespace

void HistogramCell::record(std::uint64_t value_us) noexcept {
  const std::size_t shard = shard_for_this_thread();
  count_shards[shard].value.fetch_add(1, std::memory_order_relaxed);
  sum_shards[shard].value.fetch_add(value_us, std::memory_order_relaxed);
  buckets[bucket_for(value_us)].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::string canonical_metric_name(std::string_view name) {
  constexpr std::string_view kLegacyLag = "kafka.lag.";
  if (name.substr(0, kLegacyLag.size()) == kLegacyLag) {
    return "kafka.consumer.lag." +
           std::string(name.substr(kLegacyLag.size()));
  }
  return std::string(name);
}

std::string legacy_metric_name(std::string_view name) {
  constexpr std::string_view kCanonicalLag = "kafka.consumer.lag.";
  if (name.substr(0, kCanonicalLag.size()) == kCanonicalLag) {
    return "kafka.lag." + std::string(name.substr(kCanonicalLag.size()));
  }
  return {};
}

std::uint64_t HistogramSummary::percentile_us(double p) const noexcept {
  if (count == 0 || buckets.empty()) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return detail::bucket_upper_us(i);
  }
  return detail::bucket_upper_us(buckets.size() - 1);
}

namespace {

/// Lookup through the rename shim: exact name, then its canonical spelling,
/// then its legacy spelling — so consumers written against either side of a
/// rename find the instrument.
template <typename Map>
auto shimmed_find(const Map& map, std::string_view name) {
  auto it = map.find(std::string(name));
  if (it != map.end()) return it;
  const std::string canonical = canonical_metric_name(name);
  if (canonical != name) {
    it = map.find(canonical);
    if (it != map.end()) return it;
  }
  const std::string legacy = legacy_metric_name(name);
  if (!legacy.empty()) it = map.find(legacy);
  return it;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  const auto it = shimmed_find(counters, name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  const auto it = shimmed_find(gauges, name);
  return it == gauges.end() ? fallback : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsSnapshot::counters_with_prefix(std::string_view prefix) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (auto it = counters.lower_bound(std::string(prefix));
       it != counters.end() && std::string_view(it->first).substr(
                                   0, prefix.size()) == prefix;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  const auto quote = [](const std::string& s) { return "\"" + s + "\""; };
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, summary] : histograms) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":{\"count\":" << summary.count
        << ",\"sum_us\":" << summary.sum_us
        << ",\"mean_us\":" << summary.mean_us()
        << ",\"p50_us\":" << summary.p50_us()
        << ",\"p99_us\":" << summary.p99_us()
        << ",\"p999_us\":" << summary.p999_us() << "}";
  }
  out << "}}";
  return out.str();
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<detail::CounterCell>();
  return Counter(cell.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<detail::GaugeCell>();
  return Gauge(cell.get());
}

TimeHistogram MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& cell = histograms_[name];
  if (cell == nullptr) cell = std::make_unique<detail::HistogramCell>();
  return TimeHistogram(cell.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->total();
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSummary summary;
    summary.buckets.resize(detail::kHistogramBuckets);
    for (std::size_t i = 0; i < detail::kHistogramBuckets; ++i) {
      summary.buckets[i] = cell->buckets[i].load(std::memory_order_relaxed);
    }
    for (const auto& shard : cell->count_shards) {
      summary.count += shard.value.load(std::memory_order_relaxed);
    }
    for (const auto& shard : cell->sum_shards) {
      summary.sum_us += shard.value.load(std::memory_order_relaxed);
    }
    snap.histograms[name] = std::move(summary);
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& snapshot,
                            const std::string& prefix) {
  // Names canonicalize as they fold in, so a job registry still publishing
  // a legacy spelling lands under the documented convention.
  for (const auto& [name, value] : snapshot.counters) {
    counter(canonical_metric_name(prefix + name)).add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauge(canonical_metric_name(prefix + name)).set(value);
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    std::lock_guard lock(mutex_);
    auto& cell = histograms_[canonical_metric_name(prefix + name)];
    if (cell == nullptr) cell = std::make_unique<detail::HistogramCell>();
    for (std::size_t i = 0;
         i < summary.buckets.size() && i < detail::kHistogramBuckets; ++i) {
      cell->buckets[i].fetch_add(summary.buckets[i],
                                 std::memory_order_relaxed);
    }
    cell->count_shards[0].value.fetch_add(summary.count,
                                          std::memory_order_relaxed);
    cell->sum_shards[0].value.fetch_add(summary.sum_us,
                                        std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dsps::runtime
