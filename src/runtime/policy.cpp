#include "runtime/policy.hpp"

#include <algorithm>

#include "common/env.hpp"

namespace dsps::runtime {

namespace {

constexpr std::int64_t kMinMultM = 125;   // 1/8x
constexpr std::int64_t kMaxMultM = 4000;  // 4x

// Control thresholds on the queue_wait share of the observation window.
constexpr double kStarvedShare = 0.35;  // shrink knobs above this
constexpr double kBusyShare = 0.05;     // grow knobs below this
// Ignore windows with less than this much newly attributed time: idle
// sampler ticks must not walk the multipliers.
constexpr std::uint64_t kMinWindowUs = 500;

std::int64_t step(std::int64_t mult_m, double queue_share,
                  double compute_share) {
  if (queue_share > kStarvedShare) {
    mult_m = mult_m / 2;
  } else if (queue_share < kBusyShare && compute_share > 0.5) {
    mult_m = mult_m * 2;
  }
  return std::clamp(mult_m, kMinMultM, kMaxMultM);
}

std::int64_t apply(std::int64_t configured, std::int64_t mult_m) {
  const std::int64_t adapted = configured * mult_m / 1000;
  return std::max<std::int64_t>(adapted, 1);
}

}  // namespace

PolicyEngine& PolicyEngine::instance() {
  static PolicyEngine* engine = new PolicyEngine;
  return *engine;
}

bool PolicyEngine::adaptive_env() { return env_flag("STREAMSHIM_ADAPTIVE"); }

void PolicyEngine::enable() {
  if (enabled_.exchange(true, std::memory_order_relaxed)) return;
  auto& profiler = Profiler::instance();
  if (!profiler.armed()) profiler.arm();
  profiler.set_observer(
      [this](const ProfileSnapshot& snap) { observe(snap); });
}

void PolicyEngine::disable() {
  if (!enabled_.exchange(false, std::memory_order_relaxed)) return;
  Profiler::instance().set_observer({});
  flink_mult_m_.store(1000, std::memory_order_relaxed);
  spark_mult_m_.store(1000, std::memory_order_relaxed);
  std::lock_guard lock(observe_mutex_);
  has_last_ = false;
}

std::int64_t PolicyEngine::flink_buffer_timeout_us(
    std::int64_t configured) const noexcept {
  if (!enabled()) return configured;
  return apply(configured, flink_mult_m_.load(std::memory_order_relaxed));
}

std::int64_t PolicyEngine::spark_batch_interval_ms(
    std::int64_t configured) const noexcept {
  if (!enabled()) return configured;
  return apply(configured, spark_mult_m_.load(std::memory_order_relaxed));
}

void PolicyEngine::observe(const ProfileSnapshot& snapshot) {
  if (!enabled()) return;
  std::lock_guard lock(observe_mutex_);
  const ProfileSnapshot window =
      has_last_ ? snapshot.since(last_) : snapshot;
  last_ = snapshot;
  has_last_ = true;
  if (window.attributed_us() < kMinWindowUs) return;

  const double queue_share = window.share(Stage::kQueueWait);
  const double compute_share = window.share(Stage::kUserFn) +
                               window.share(Stage::kDecode) +
                               window.share(Stage::kEncode);
  flink_mult_m_.store(
      step(flink_mult_m_.load(std::memory_order_relaxed), queue_share,
           compute_share),
      std::memory_order_relaxed);
  spark_mult_m_.store(
      step(spark_mult_m_.load(std::memory_order_relaxed), queue_share,
           compute_share),
      std::memory_order_relaxed);
}

double PolicyEngine::flink_multiplier() const noexcept {
  return static_cast<double>(flink_mult_m_.load(std::memory_order_relaxed)) /
         1000.0;
}

double PolicyEngine::spark_multiplier() const noexcept {
  return static_cast<double>(spark_mult_m_.load(std::memory_order_relaxed)) /
         1000.0;
}

}  // namespace dsps::runtime
