// Shared worker-thread lifecycle for all engines.
//
// Every engine sim used to hand-roll its threads: Flink kept a raw
// std::vector<std::thread> in the job handle, Spark detached a generator
// loop, Apex spawned group threads inside YARN container bodies. None of
// them had a story for an operator that *throws* — the exception escaped
// the thread and aborted the process (or worse, a producer died silently
// and the consumers blocked forever).
//
// A TaskRuntime owns named worker threads with a supervised lifecycle:
//  * spawn()         — start a named task; the name lands on the OS thread
//                      (pthread_setname_np) so gdb/top show real names;
//  * request_stop()  — cooperative stop flag + registered stop hooks
//                      (close queues, cancel sources) so blocked tasks
//                      unwind instead of hanging;
//  * wait()/join_all() — ordered shutdown: join in spawn order, which is
//                      pipeline order for every engine here (sources first,
//                      sinks last), so upstream EOS propagates before a
//                      downstream join can block;
//  * failure capture — a throwing task body becomes a Status; the first
//                      failure fires the supervisor's failure handler
//                      (which typically calls request_stop), so a crashing
//                      operator fails the job instead of wedging it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "runtime/fault.hpp"

namespace dsps::runtime {

class TaskRuntime {
 public:
  using TaskId = std::size_t;

  explicit TaskRuntime(std::string name = "runtime");

  /// Stops and joins every remaining task. A task body that outlives its
  /// runtime is a bug this destructor turns into a clean join, not a leak.
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  /// Starts a named worker thread running `body`. Exceptions thrown by
  /// `body` are captured as an internal Status and reported to the failure
  /// handler; they never escape the thread.
  TaskId spawn(std::string task_name, std::function<void()> body);

  /// Like spawn(), but the worker restarts itself on failure: a throwing
  /// body is retried (with the policy's backoff) until it succeeds, the
  /// attempt budget is exhausted, or stop is requested — only then does the
  /// last error surface as the task's failure. This is the supervised
  /// restart path YARN container relaunches ride on.
  TaskId spawn_supervised(std::string task_name, std::function<void()> body,
                          RestartPolicy policy);

  /// Joins one task (idempotent; safe to call after join_all()). Blocks
  /// until the task body has finished and its failure, if any, has been
  /// recorded — even when another thread performs the actual join. This is
  /// what makes an ordered drain sound when a worker throws mid-stop: every
  /// waiter observes the completed task, and first_failure() is never read
  /// before the failing body has published its error.
  void wait(TaskId id);

  /// Abandons a task's thread without joining it (models a failed node
  /// whose containers never report back). The task keeps running until its
  /// body observes stop_requested(); its failure, if any, is still
  /// recorded.
  void detach(TaskId id);

  /// Sets the cooperative stop flag and runs registered stop hooks once.
  void request_stop();
  bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Registers a hook run by request_stop() (e.g. "close the input
  /// queues"). Runs immediately when stop was already requested.
  void on_stop(std::function<void()> hook);

  /// Called once, with the first failure, from the failing task's thread.
  /// Typical supervisor: log + request_stop(). Set before spawning.
  void set_failure_handler(std::function<void(const Status&)> handler);

  /// The first captured failure (ok() when every task succeeded so far).
  Status first_failure() const;

  /// Joins every task in spawn order and returns first_failure().
  Status join_all();

  std::size_t spawned_count() const;

 private:
  struct Task {
    std::string name;
    std::thread thread;
    bool joined = false;    // set once the thread is joined or detached
    bool claimed = false;   // a waiter owns the join (or detach happened)
  };

  void run_body(const std::string& task_name,
                const std::function<void()>& body) noexcept;
  void record_failure(Status status);

  const std::string name_;
  mutable std::mutex mutex_;
  std::condition_variable task_joined_cv_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::function<void()>> stop_hooks_;
  std::function<void(const Status&)> failure_handler_;
  Status first_failure_;
  bool failed_ = false;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace dsps::runtime
