#include "runtime/payload.hpp"

#include <algorithm>
#include <utility>

namespace dsps::runtime {

Payload::Payload(std::string_view text) {
  if (text.empty()) return;
  std::shared_ptr<char[]> storage(new char[text.size()]);
  std::memcpy(storage.get(), text.data(), text.size());
  data_ = storage.get();
  size_ = text.size();
  owner_ = std::move(storage);
}

Payload::Payload(std::string&& text) {
  if (text.empty()) return;
  auto storage = std::make_shared<std::string>(std::move(text));
  data_ = storage->data();
  size_ = storage->size();
  owner_ = std::move(storage);
}

Payload PayloadArena::intern(std::string_view text) {
  if (text.empty()) return {};
  if (text.size() > chunk_capacity_ - chunk_used_ || chunk_ == nullptr) {
    const std::size_t capacity = std::max(chunk_bytes_, text.size());
    chunk_ = std::shared_ptr<char[]>(new char[capacity]);
    chunk_capacity_ = capacity;
    chunk_used_ = 0;
    ++chunks_allocated_;
  }
  char* dest = chunk_.get() + chunk_used_;
  std::memcpy(dest, text.data(), text.size());
  chunk_used_ += text.size();
  bytes_interned_ += text.size();
  return Payload::wrap(chunk_, dest, text.size());
}

}  // namespace dsps::runtime
