// Adaptive runtime policies driven by live profiler snapshots (§5g).
//
// Closes the loop APEX-style: the Profiler's background sampler feeds each
// live ProfileSnapshot to the PolicyEngine, which adjusts two latency/
// throughput trade-off knobs by bounded multiplicative steps:
//
//   - Flink Router buffer-timeout — how long a partially-filled output
//     buffer may wait before flushing downstream;
//   - Spark micro-batch interval — how long the driver sleeps between
//     batch submissions.
//
// The control rule is deliberately simple and monotone: a high queue_wait
// share means downstream is starving (buffers sit half-full, the driver
// over-sleeps), so both knobs shrink to push data through sooner; a
// negligible queue_wait share with compute-dominated stages means batching
// is cheap, so the knobs grow to amortize per-flush/per-batch overhead.
// Multipliers are clamped to [1/8, 4] so a misreading can never run away.
//
// Off by default (STREAMSHIM_ADAPTIVE opt-in): every default run keeps the
// paper's fixed 500us buffer timeout and fixed batch interval, so Figs.
// 11-13 factors stay paper-faithful. When disabled, the knob queries are a
// single relaxed load returning the configured value unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "runtime/profiler.hpp"

namespace dsps::runtime {

class PolicyEngine {
 public:
  static PolicyEngine& instance();

  /// True when STREAMSHIM_ADAPTIVE is set in the environment.
  static bool adaptive_env();

  /// Enables the control loop: arms the Profiler if needed (snapshots are
  /// the sensor) and registers this engine as its observer. Disable
  /// unregisters and resets the multipliers to 1.
  void enable();
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Knob queries, called from engine hot paths: return `configured`
  /// untouched when disabled, otherwise the adapted value. One relaxed
  /// atomic load each.
  std::int64_t flink_buffer_timeout_us(std::int64_t configured) const noexcept;
  std::int64_t spark_batch_interval_ms(std::int64_t configured) const noexcept;

  /// One control step over the latest live snapshot (sampler-thread hook;
  /// tests call it directly with synthetic snapshots).
  void observe(const ProfileSnapshot& snapshot);

  /// Current multipliers (fixed-point /1000), for tests and the report.
  double flink_multiplier() const noexcept;
  double spark_multiplier() const noexcept;

 private:
  PolicyEngine() = default;

  std::atomic<bool> enabled_{false};
  // Multiplicative adjustments in fixed-point thousandths, clamped to
  // [kMinMultiplier, kMaxMultiplier].
  std::atomic<std::int64_t> flink_mult_m_{1000};
  std::atomic<std::int64_t> spark_mult_m_{1000};
  std::mutex observe_mutex_;
  ProfileSnapshot last_;
  bool has_last_ = false;
};

}  // namespace dsps::runtime
