// Deterministic fault injection + recovery primitives for every engine sim.
//
// The paper's engines earn their keep by surviving failures — Flink restarts
// from checkpoint barriers, Spark re-executes micro-batches, Apex relaunches
// YARN containers — but measuring recovery requires *reproducible* failure.
// A FaultInjector is a process-global, schedule-driven switchboard: tests arm
// it with a seed and a list of FaultRules, engines call the injection points
// from their data planes, and the same seed always kills the same operator at
// the same record count. When disarmed (the default, and the state for every
// perf benchmark) each injection point is a single relaxed atomic load.
//
// The same header carries the recovery side shared by all engines: capped
// exponential backoff with deterministic jitter (Backoff), and a bounded
// restart loop (RestartPolicy + run_supervised) that Flink job restarts,
// Apex application reattempts and YARN container relaunches all reuse.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace dsps::runtime {

/// Where in a data plane a fault can strike.
enum class FaultPoint {
  kOperatorThrow,      // a user-function / operator body throws
  kQueueStall,         // a channel/mailbox push stalls for param_us
  kSlowConsumer,       // a consumer poll stalls for param_us
  kBrokerUnavailable,  // the broker rejects appends/fetches for param_us
  kContainerKill,      // a worker/container dies at task startup
};

std::string_view fault_point_name(FaultPoint point) noexcept;

/// One entry of a fault schedule. A rule matches an injection call when the
/// points are equal and `site` is a substring of the call's site label
/// (empty matches every site). The rule passes its first `after_hits`
/// matching calls, then fires on the next `times` of them.
struct FaultRule {
  FaultPoint point = FaultPoint::kOperatorThrow;
  std::string site;              // substring match; empty = any site
  std::uint64_t after_hits = 0;  // 0 = derive deterministically from the seed
  int times = 1;                 // how many matching calls fire
  std::uint64_t param_us = 0;    // stall / unavailability duration
};

/// Thrown by maybe_throw when a rule fires. Recovery layers treat it like
/// any other operator failure; tests can assert on the site label.
class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(FaultPoint point, std::string_view site);
  FaultPoint point() const noexcept { return point_; }

 private:
  FaultPoint point_;
};

class FaultInjector {
 public:
  /// The process-global injector every injection point consults.
  static FaultInjector& instance();

  /// Installs a schedule and arms the injector. Rules with after_hits == 0
  /// get a deterministic trigger position derived from (seed, rule index),
  /// so distinct seeds kill pipelines at distinct records. Resets all hit
  /// counters and unavailability windows.
  void arm(std::uint64_t seed, std::vector<FaultRule> schedule);

  /// Disarms and clears the schedule. Injection points return to their
  /// zero-cost path. Fired-fault totals survive until the next arm().
  void disarm();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Throws FaultInjectedError if a matching kOperatorThrow/kContainerKill
  /// rule fires. No-op (one relaxed load) when disarmed.
  void maybe_throw(FaultPoint point, std::string_view site) {
    if (!armed()) return;
    maybe_throw_slow(point, site);
  }

  /// Sleeps for the firing rule's param_us (queue stalls, slow consumers).
  void maybe_stall(FaultPoint point, std::string_view site) {
    if (!armed()) return;
    maybe_stall_slow(point, site);
  }

  /// True while a broker-unavailability window is open at `site`. A firing
  /// kBrokerUnavailable rule opens a window of param_us wall-clock.
  bool broker_unavailable(std::string_view site) {
    if (!armed()) return false;
    return broker_unavailable_slow(site);
  }

  /// Total faults fired since the last arm().
  std::uint64_t injected_count() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t hits = 0;
    int fired = 0;
  };

  FaultInjector() = default;

  void maybe_throw_slow(FaultPoint point, std::string_view site);
  void maybe_stall_slow(FaultPoint point, std::string_view site);
  bool broker_unavailable_slow(std::string_view site);

  /// Returns the firing rule's param_us, or -1 if no rule fired.
  std::int64_t check_fire(FaultPoint point, std::string_view site);
  void note_fired(FaultPoint point);

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::int64_t> unavailable_until_us_{0};  // steady-clock stamp
  std::mutex mutex_;
  std::vector<RuleState> rules_;
};

/// Capped exponential backoff with deterministic jitter: delay i is
/// min(initial * multiplier^i, max) scaled by a jitter factor drawn from a
/// seeded generator, so retry timing is reproducible under test.
struct BackoffPolicy {
  std::uint64_t initial_us = 200;
  double multiplier = 2.0;
  std::uint64_t max_us = 20'000;
  double jitter = 0.2;      // uniform in [1 - jitter, 1 + jitter]
  std::uint64_t seed = 42;  // jitter stream seed
};

class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy);

  /// The next delay in the sequence (advances the exponential state and the
  /// jitter stream).
  std::uint64_t next_delay_us();

  /// Sleeps for next_delay_us().
  void sleep();

  void reset();

  const BackoffPolicy& policy() const noexcept { return policy_; }

 private:
  BackoffPolicy policy_;
  double base_us_;
  Xoshiro256 rng_;
};

/// Bounded-restart policy shared by Flink job restarts, Spark batch retries,
/// Apex application reattempts and supervised TaskRuntime workers.
struct RestartPolicy {
  int max_attempts = 1;  // total attempts; 1 = fail fast (no retry)
  BackoffPolicy backoff;
};

/// Runs `attempt_fn` up to policy.max_attempts times, backing off between
/// attempts. An attempt that throws is converted to an internal Status.
/// Returns ok() from the first successful attempt; on exhaustion returns the
/// *last* attempt's error. `on_retry`, if set, observes each failure that
/// will be retried (for restart metrics).
Status run_supervised(
    const RestartPolicy& policy,
    const std::function<Status(int attempt)>& attempt_fn,
    const std::function<void(int attempt, const Status&)>& on_retry = {});

}  // namespace dsps::runtime
