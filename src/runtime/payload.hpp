// Refcounted immutable byte slice — the shared record representation of the
// data plane.
//
// Every layer of the stack used to carry records as `std::string`, which
// means a record crossing broker -> engine -> sink is copied at every hop
// (producer buffer, partition log, fetch batch, engine channel, sink
// buffer). A Payload is an immutable view into refcounted storage: passing
// it across a hop bumps a reference count instead of copying bytes. The
// serialization boundaries the paper measures (Apex container hops, Beam
// coders) still do real encode/decode work — they produce *new* storage —
// but the pure forwarding hops inside one engine become copy-free.
//
// Ownership model: `owner_` keeps the backing storage alive (a whole arena
// chunk, an adopted std::string, or a private copy); `data_/size_` view a
// slice of it. Payload is cheap to copy (two pointers + one refcount bump)
// and safe to share across threads once constructed (the bytes are
// immutable; the control block is atomic).
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace dsps::runtime {

class Payload {
 public:
  /// Empty payload ("" — distinct from "no payload"; there is no null state).
  Payload() noexcept = default;

  /// Owning copy of a C string (implicit: literals read naturally at call
  /// sites that used to take std::string).
  Payload(const char* text)  // NOLINT(google-explicit-constructor)
      : Payload(std::string_view(text == nullptr ? "" : text)) {}

  /// Owning copy of `text` (one allocation; the copy is the last one).
  Payload(std::string_view text);  // NOLINT(google-explicit-constructor)

  /// Owning copy (lvalue strings are copied once, then shared forever).
  Payload(const std::string& text)  // NOLINT(google-explicit-constructor)
      : Payload(std::string_view(text)) {}

  /// Zero-copy adoption of an rvalue string: the string's buffer becomes
  /// the backing storage, no bytes are copied.
  Payload(std::string&& text);  // NOLINT(google-explicit-constructor)

  /// Aliasing view: `data[0..size)` must stay valid for as long as `owner`
  /// keeps its referent alive. Used by PayloadArena and slice().
  static Payload wrap(std::shared_ptr<const void> owner, const char* data,
                      std::size_t size) noexcept {
    Payload p;
    p.owner_ = std::move(owner);
    p.data_ = data;
    p.size_ = size;
    return p;
  }

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::string_view view() const noexcept { return {data_, size_}; }
  operator std::string_view() const noexcept {  // NOLINT
    return view();
  }

  /// Materializes a std::string copy (serialization boundaries only).
  std::string str() const { return std::string(data_, size_); }

  /// Sub-slice sharing this payload's storage (no copy).
  Payload slice(std::size_t pos, std::size_t count) const noexcept {
    if (pos > size_) pos = size_;
    if (count > size_ - pos) count = size_ - pos;
    return wrap(owner_, data_ + pos, count);
  }

  /// True when this payload shares backing storage with `other` (used by
  /// tests to prove a hop was copy-free).
  bool shares_storage_with(const Payload& other) const noexcept {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  friend bool operator==(const Payload& a, const Payload& b) noexcept {
    return a.view() == b.view();
  }
  friend bool operator!=(const Payload& a, const Payload& b) noexcept {
    return a.view() != b.view();
  }
  friend bool operator<(const Payload& a, const Payload& b) noexcept {
    return a.view() < b.view();
  }
  /// Heterogeneous comparison against anything string-like (std::string,
  /// string_view, literals). A constrained template instead of a
  /// string_view overload: the argument binds exactly, so `payload == str`
  /// never ambiguously matches both this and the Payload/Payload overload
  /// through rival implicit conversions.
  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Payload> &&
             std::is_convertible_v<const T&, std::string_view>)
  friend bool operator==(const Payload& a, const T& b) noexcept {
    return a.view() == std::string_view(b);
  }

  friend std::ostream& operator<<(std::ostream& os, const Payload& p) {
    return os.write(p.data_, static_cast<std::streamsize>(p.size_));
  }

 private:
  std::shared_ptr<const void> owner_;
  const char* data_ = "";
  std::size_t size_ = 0;
};

/// Bump allocator that packs many small payloads into shared chunks.
///
/// A chunk is one refcounted allocation; every payload interned into it
/// holds a reference to the whole chunk, so the chunk is freed when the
/// last payload referencing it dies. Not thread-safe — each producer-side
/// thread (source reader, data sender) owns its own arena, matching the
/// single-writer structure of the ingest paths.
class PayloadArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit PayloadArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  /// Copies `text` into the current chunk (opening a new chunk when full;
  /// oversized texts get a dedicated chunk) and returns a Payload viewing
  /// the interned bytes.
  Payload intern(std::string_view text);

  std::size_t chunks_allocated() const noexcept { return chunks_allocated_; }
  std::uint64_t bytes_interned() const noexcept { return bytes_interned_; }

 private:
  std::size_t chunk_bytes_;
  std::shared_ptr<char[]> chunk_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_capacity_ = 0;
  std::size_t chunks_allocated_ = 0;
  std::uint64_t bytes_interned_ = 0;
};

}  // namespace dsps::runtime

template <>
struct std::hash<dsps::runtime::Payload> {
  std::size_t operator()(const dsps::runtime::Payload& p) const noexcept {
    return std::hash<std::string_view>{}(p.view());
  }
};
