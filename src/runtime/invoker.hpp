// The one operator-invoke path shared by every engine (DESIGN.md §5g).
//
// Before this existed each engine drove user code through its own ad-hoc
// inner loop — Flink chained Collectors, Spark pulled partition iterators,
// Apex dispatched mailbox Mail, each Beam runner wrapped ParDos its own way
// — so per-record cost was unattributable below "throughput moved" and
// fault-injection points were sprinkled by hand. An OperatorInvoker is one
// operator's execution façade: it owns the operator's site label (the same
// string the FaultInjector matches on), its profiler attribution id, and
// the stage-bracketing helpers the loops wrap their steps in. Porting a
// loop means routing every user-function call through invoke() and every
// decode/encode/wait step through the matching helper; the engine keeps its
// scheduling structure, but execution and attribution become uniform.
//
// All helpers are near-free when the profiler is disarmed and the fault
// injector is disarmed (two relaxed atomic loads around the user code).
#pragma once

#include <string>
#include <utility>

#include "runtime/fault.hpp"
#include "runtime/profiler.hpp"

namespace dsps::runtime {

class OperatorInvoker {
 public:
  OperatorInvoker() = default;

  /// `site` doubles as the fault-injection site label and the per-operator
  /// attribution name in profile snapshots, so chaos schedules written
  /// against the old inline maybe_throw calls keep matching.
  explicit OperatorInvoker(std::string site,
                           FaultPoint fault_point = FaultPoint::kOperatorThrow)
      : site_(std::move(site)),
        fault_point_(fault_point),
        op_(Profiler::instance().operator_id(site_)) {}

  const std::string& site() const noexcept { return site_; }
  std::uint32_t operator_id() const noexcept { return op_; }

  /// The operator body: fault-injection point + user_fn attribution.
  template <typename Fn>
  decltype(auto) invoke(Fn&& fn) {
    FaultInjector::instance().maybe_throw(fault_point_, site_);
    ScopedStage stage(Stage::kUserFn, ScopedStage::Mode::kSampled, op_);
    return std::forward<Fn>(fn)();
  }

  /// The bare fault-injection point, for loops whose chaos schedules were
  /// written against a per-batch cadence (one probe per batch, not per
  /// record) — the timing helpers below stay per-record.
  void maybe_fault() {
    FaultInjector::instance().maybe_throw(fault_point_, site_);
  }

  /// The operator body without a fault point (sites the chaos matrix never
  /// targets, e.g. driver-side result folds).
  template <typename Fn>
  decltype(auto) invoke_unfaulted(Fn&& fn) {
    ScopedStage stage(Stage::kUserFn, ScopedStage::Mode::kSampled, op_);
    return std::forward<Fn>(fn)();
  }

  /// Wire bytes -> records (coders, codecs, input parsing). Per-record.
  template <typename Fn>
  decltype(auto) decode(Fn&& fn) {
    ScopedStage stage(Stage::kDecode, ScopedStage::Mode::kSampled, op_);
    return std::forward<Fn>(fn)();
  }

  /// Records -> wire bytes (coders, codecs, sink serialization). Per-record.
  template <typename Fn>
  decltype(auto) encode(Fn&& fn) {
    ScopedStage stage(Stage::kEncode, ScopedStage::Mode::kSampled, op_);
    return std::forward<Fn>(fn)();
  }

  /// Blocked on a channel/mailbox/pending-queue. Per-batch: always timed.
  template <typename Fn>
  decltype(auto) queue_wait(Fn&& fn) {
    ScopedStage stage(Stage::kQueueWait, ScopedStage::Mode::kAlways, op_);
    return std::forward<Fn>(fn)();
  }

  /// Simulated broker round-trip (produce flush / fetch). Per-batch.
  template <typename Fn>
  decltype(auto) broker_rtt(Fn&& fn) {
    ScopedStage stage(Stage::kBrokerRtt, ScopedStage::Mode::kAlways, op_);
    return std::forward<Fn>(fn)();
  }

  /// Barrier handling, window/offset commit. Per-batch.
  template <typename Fn>
  decltype(auto) checkpoint(Fn&& fn) {
    ScopedStage stage(Stage::kCheckpoint, ScopedStage::Mode::kAlways, op_);
    return std::forward<Fn>(fn)();
  }

  /// Task teardown: publish the calling thread's profiler slab so snapshot
  /// deltas taken after a job joins see every worker's costs.
  void close() noexcept { Profiler::instance().flush_this_thread(); }

 private:
  std::string site_;
  FaultPoint fault_point_ = FaultPoint::kOperatorThrow;
  std::uint32_t op_ = Profiler::kNoOperator;
};

}  // namespace dsps::runtime
