// StreamExecutionEnvironment: the entry point of the Flink-sim native API.
//
//   flink::StreamExecutionEnvironment env;
//   env.set_parallelism(1);
//   auto lines = env.add_source<std::string>(
//       [] { return std::make_unique<KafkaSource>(...); }, "Custom Source");
//   lines.filter([](const std::string& s) { return s.find("test") != ...; },
//                "Filter")
//        .add_sink([] { return std::make_unique<KafkaSink>(...); },
//                  "Unnamed");
//   env.execute("grep");
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "flink/graph.hpp"
#include "flink/runtime.hpp"

namespace dsps::flink {

template <typename T>
class DataStream;

class StreamExecutionEnvironment {
 public:
  StreamExecutionEnvironment() = default;

  /// Default parallelism for operators added afterwards (the `-p` CLI flag).
  void set_parallelism(int parallelism) {
    require(parallelism >= 1, "parallelism must be >= 1");
    default_parallelism_ = parallelism;
  }
  int parallelism() const noexcept { return default_parallelism_; }

  /// Disables operator chaining job-wide (what the Beam runner effectively
  /// gets: one task per translated transform).
  void disable_operator_chaining() { chaining_enabled_ = false; }
  bool chaining_enabled() const noexcept { return chaining_enabled_; }

  /// Configures the standalone cluster (default: one TaskManager with
  /// enough slots for the job).
  void set_task_managers(std::vector<TaskManagerConfig> task_managers) {
    task_managers_ = std::move(task_managers);
  }

  void set_channel_capacity(std::size_t capacity) {
    require(capacity > 0, "channel capacity must be positive");
    channel_capacity_ = capacity;
  }

  /// Adds a source. The factory is invoked once per source subtask.
  template <typename T>
  DataStream<T> add_source(SourceFactory factory,
                           const std::string& name = "Custom Source");

  /// Runs the job to completion (bounded sources) and returns metrics.
  Result<JobResult> execute(const std::string& job_name = "job");

  /// Starts the job and returns a handle (for unbounded sources).
  Result<std::unique_ptr<JobHandle>> execute_async(
      const std::string& job_name = "job");

  /// The post-chaining execution plan, rendered like the Flink plan
  /// visualizer output in Fig. 12/13.
  std::string execution_plan() const;

  // --- erased graph-building API used by DataStream ---
  int add_node(StreamNode node);
  void add_edge(StreamEdge edge);
  const StreamGraph& graph() const noexcept { return graph_; }

 private:
  JobConfig job_config() const {
    return JobConfig{.task_managers = task_managers_,
                     .chaining_enabled = chaining_enabled_,
                     .channel_capacity = channel_capacity_};
  }

  StreamGraph graph_;
  int default_parallelism_ = 1;
  bool chaining_enabled_ = true;
  std::size_t channel_capacity_ = 1024;
  std::vector<TaskManagerConfig> task_managers_;
};

}  // namespace dsps::flink

#include "flink/datastream.hpp"  // IWYU pragma: keep (template definitions)
