// Flink-sim runtime: JobManager scheduling into TaskManager slots, network
// channels between unchained vertices, and per-subtask task threads.
//
// Mirrors §II-B: the client submits a JobGraph; the JobManager assigns each
// subtask to a task slot; a TaskManager is a process with >= 1 slots whose
// subtasks run as threads; chained operator subtasks share a thread and call
// each other directly, unchained vertices exchange records over channels.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/status.hpp"
#include "flink/graph.hpp"
#include "runtime/metrics.hpp"

namespace dsps::flink {

/// A record or end-of-stream marker travelling over a channel.
struct Envelope {
  Elem payload;
  bool eos = false;
};

/// Network channel between unchained subtasks. Channels with exactly one
/// writing subtask (e.g. FORWARD edges with matching parallelism) ride the
/// lock-free SPSC ring; fan-in channels fall back to the locked MPMC queue.
/// Both paths move whole envelope batches per hand-off.
class Channel {
 public:
  Channel(std::size_t capacity, bool single_producer) {
    if (single_producer) {
      spsc_ = std::make_unique<SpscRingQueue<Envelope>>(capacity);
    } else {
      mpmc_ = std::make_unique<BoundedQueue<Envelope>>(capacity);
    }
  }

  bool push(Envelope envelope) {
    const bool pushed = spsc_ ? spsc_->push(std::move(envelope))
                              : mpmc_->push(std::move(envelope));
    if (pushed) note_pushed(1);
    return pushed;
  }

  std::size_t push_batch(std::vector<Envelope>&& envelopes) {
    const std::size_t pushed =
        spsc_ ? spsc_->push_batch(std::move(envelopes))
              : mpmc_->push_batch(std::move(envelopes));
    note_pushed(pushed);
    return pushed;
  }

  std::optional<Envelope> pop() {
    auto envelope = spsc_ ? spsc_->pop() : mpmc_->pop();
    if (envelope.has_value()) {
      depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    return envelope;
  }

  std::size_t pop_batch(std::vector<Envelope>& out, std::size_t max_items) {
    const std::size_t popped = spsc_ ? spsc_->pop_batch(out, max_items)
                                     : mpmc_->pop_batch(out, max_items);
    depth_.fetch_sub(popped, std::memory_order_relaxed);
    return popped;
  }

  void close() {
    if (spsc_) {
      spsc_->close();
    } else {
      mpmc_->close();
    }
  }

  bool single_producer() const noexcept { return spsc_ != nullptr; }

  /// Metrics identity (e.g. "v2.s0"), set once at wiring time.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const noexcept { return label_; }

  /// Approximate depth accounting (relaxed atomics — monitoring only, the
  /// exact handoff ordering is the queues' business).
  std::size_t depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }
  std::size_t peak_depth() const noexcept {
    return peak_depth_.load(std::memory_order_relaxed);
  }

 private:
  void note_pushed(std::size_t count) noexcept {
    if (count == 0) return;
    const std::size_t depth =
        depth_.fetch_add(count, std::memory_order_relaxed) + count;
    std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
    while (depth > peak && !peak_depth_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }

  std::unique_ptr<SpscRingQueue<Envelope>> spsc_;
  std::unique_ptr<BoundedQueue<Envelope>> mpmc_;
  std::string label_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> peak_depth_{0};
};

/// One TaskManager: a bundle of task slots. Slot accounting is real —
/// scheduling fails when the cluster has fewer slots than subtasks — and
/// each scheduled subtask runs on its own thread within the slot, like
/// subtask threads inside a TaskManager JVM.
struct TaskManagerConfig {
  std::string name = "taskmanager-0";
  int task_slots = 1;
};

struct JobConfig {
  std::vector<TaskManagerConfig> task_managers;
  bool chaining_enabled = true;
  std::size_t channel_capacity = 1024;
};

/// Outcome of a finished job. Per-vertex record counters live in the
/// unified metrics snapshot as `vertex.<id>.records_in` / `.records_out`
/// (vertex ids index `vertex_names`); the convenience accessors below wrap
/// the lookup.
struct JobResult {
  double duration_ms = 0.0;
  /// Not ok when a task crashed mid-job (the runtime cancels the rest of
  /// the job instead of hanging it).
  Status job_status = Status::ok();
  std::vector<std::string> vertex_names;  // indexed by job vertex id
  runtime::MetricsSnapshot metrics;

  std::uint64_t records_in(int vertex) const {
    return metrics.counter("vertex." + std::to_string(vertex) + ".records_in");
  }
  std::uint64_t records_out(int vertex) const {
    return metrics.counter("vertex." + std::to_string(vertex) +
                           ".records_out");
  }
};

/// Executes a bounded job to completion. Returns metrics or a scheduling /
/// validation error.
Result<JobResult> execute_job(const StreamGraph& graph,
                              const JobGraph& job_graph,
                              const JobConfig& config);

/// Running job handle for unbounded sources.
class JobHandle {
 public:
  JobHandle() = default;
  ~JobHandle();

  JobHandle(const JobHandle&) = delete;
  JobHandle& operator=(const JobHandle&) = delete;

  /// Requests source cancellation; sources observe SourceContext::cancelled.
  void cancel();

  /// Blocks until all tasks finished; returns metrics.
  JobResult wait();

  /// Opaque runtime state; public so the launcher in runtime.cpp can attach
  /// it, but not part of the supported API surface.
  struct State;

 private:
  friend Result<std::unique_ptr<JobHandle>> execute_job_async(
      const StreamGraph&, const JobGraph&, const JobConfig&);

  std::shared_ptr<State> state_;
};

Result<std::unique_ptr<JobHandle>> execute_job_async(
    const StreamGraph& graph, const JobGraph& job_graph,
    const JobConfig& config);

}  // namespace dsps::flink
