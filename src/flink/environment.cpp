#include "flink/environment.hpp"

namespace dsps::flink {

int StreamExecutionEnvironment::add_node(StreamNode node) {
  node.id = static_cast<int>(graph_.nodes.size());
  graph_.nodes.push_back(std::move(node));
  return graph_.nodes.back().id;
}

void StreamExecutionEnvironment::add_edge(StreamEdge edge) {
  require(edge.from >= 0 &&
              edge.from < static_cast<int>(graph_.nodes.size()) &&
              edge.to >= 0 && edge.to < static_cast<int>(graph_.nodes.size()),
          "edge references unknown node");
  graph_.edges.push_back(std::move(edge));
}

Result<JobResult> StreamExecutionEnvironment::execute(
    const std::string& /*job_name*/) {
  if (graph_.nodes.empty()) {
    return Status::failed_precondition("empty job graph");
  }
  const JobGraph job_graph = build_job_graph(graph_, chaining_enabled_);
  return execute_job(graph_, job_graph, job_config());
}

Result<std::unique_ptr<JobHandle>> StreamExecutionEnvironment::execute_async(
    const std::string& /*job_name*/) {
  if (graph_.nodes.empty()) {
    return Status::failed_precondition("empty job graph");
  }
  const JobGraph job_graph = build_job_graph(graph_, chaining_enabled_);
  return execute_job_async(graph_, job_graph, job_config());
}

std::string StreamExecutionEnvironment::execution_plan() const {
  const JobGraph job_graph = build_job_graph(graph_, chaining_enabled_);
  return render_execution_plan(graph_, job_graph);
}

}  // namespace dsps::flink
