#include "flink/kafka_connectors.hpp"

#include <utility>

#include "runtime/fault.hpp"
#include "runtime/invoker.hpp"
#include "runtime/metrics.hpp"

namespace dsps::flink {

void KafkaStringSource::open(const RuntimeContext& context) {
  subtask_index_ = context.subtask_index;
  fault_site_ = "flink.source." + config_.topic;
  consumer_ = std::make_unique<kafka::Consumer>(
      broker_, kafka::ConsumerConfig{.group_id = config_.group_id,
                                     .max_poll_records =
                                         config_.max_poll_records});
  const auto partition_count = broker_.partition_count(config_.topic);
  partition_count.status().expect_ok();
  for (int p = 0; p < partition_count.value(); ++p) {
    if (p % context.parallelism != context.subtask_index) continue;
    const kafka::TopicPartition tp{config_.topic, p};
    std::int64_t start = 0;
    if (config_.resume_from_group && !config_.group_id.empty()) {
      const std::int64_t committed =
          broker_.committed_offset(config_.group_id, tp);
      if (committed >= 0) start = committed;
    }
    consumer_->assign(tp, start).expect_ok();
    assigned_.push_back(tp);
    const auto end = broker_.end_offset(tp);
    end.status().expect_ok();
    bounded_end_.push_back(config_.bounded ? end.value() : -1);
  }
}

void KafkaStringSource::run(SourceContext& context) {
  if (assigned_.empty()) return;  // surplus subtask: nothing to read
  std::size_t uncommitted = 0;
  try {
    run_loop(context, uncommitted);
  } catch (...) {
    // Everything emitted past the last commit re-reads on the restart.
    if (config_.resume_from_group || config_.checkpoint != nullptr) {
      runtime::MetricsRegistry::global()
          .counter("flink.recovery.replayed_records")
          .add(uncommitted);
    }
    throw;
  }
}

void KafkaStringSource::run_loop(SourceContext& context,
                                 std::size_t& uncommitted) {
  runtime::OperatorInvoker invoker(fault_site_);
  int polls_since_commit = 0;
  int polls_since_barrier = 0;
  kafka::FetchBatch batch;
  bool broker_closed = false;
  while (!context.cancelled()) {
    // A fault here models an operator throw anywhere in this chain: the
    // records of the open epoch have not been checkpointed yet, so the
    // restart replays them from the last committed offset.
    invoker.maybe_fault();
    const kafka::FetchState state = invoker.broker_rtt(
        [&] { return consumer_->poll_batch(config_.poll_timeout_ms, batch); });
    broker_closed = state == kafka::FetchState::kClosed;
    for (auto& record : batch.records) {
      // Zero-copy hand-off: the Payload shares the broker's storage all the
      // way down the operator chain.
      context.collect(make_elem<kafka::Payload>(std::move(record.value)));
    }
    uncommitted += batch.records.size();
    const bool barrier_due =
        config_.checkpoint != nullptr &&
        ++polls_since_barrier >= config_.checkpoint_interval_polls;
    if (barrier_due) {
      // Epoch boundary: flush this chain's sinks, then commit offsets.
      // Order matters — output must be durable before the input positions
      // that produced it are, or a crash in between loses records.
      invoker.checkpoint([&] {
        config_.checkpoint->barrier(subtask_index_);
        consumer_->commit();
      });
      uncommitted = 0;
      polls_since_barrier = 0;
    } else if (config_.resume_from_group &&
               ++polls_since_commit >= config_.commit_every_polls) {
      if (config_.checkpoint == nullptr) {
        invoker.checkpoint([&] { consumer_->commit(); });
        uncommitted = 0;
      }
      polls_since_commit = 0;
    }
    bool done = broker_closed;
    if (config_.bounded && !done) {
      done = true;
      const auto positions = consumer_->positions();
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (positions[i].second < bounded_end_[i]) {
          done = false;
          break;
        }
      }
    }
    if (done) {
      if (config_.checkpoint != nullptr) {
        invoker.checkpoint([&] {
          config_.checkpoint->barrier(subtask_index_);
          consumer_->commit();
        });
      } else if (config_.resume_from_group) {
        invoker.checkpoint([&] { consumer_->commit(); });
      }
      uncommitted = 0;
      return;
    }
  }
  // Cancelled mid-stream: leave the last committed offset as the recovery
  // point (records after it replay on restart — at-least-once).
}

void KafkaStringSink::open(const RuntimeContext& context) {
  producer_ = std::make_unique<kafka::Producer>(
      broker_, kafka::ProducerConfig{.acks = config_.acks,
                                     .batch_size = config_.batch_size,
                                     .async = config_.async});
  partition_ = config_.partition;
  if (partition_ < 0) {
    const auto count = broker_.partition_count(config_.topic);
    count.status().expect_ok();
    partition_ = context.subtask_index % count.value();
  }
  if (config_.checkpoint != nullptr) {
    config_.checkpoint->register_sink(context.subtask_index,
                                      [this] { commit_epoch(); });
  }
}

void KafkaStringSink::invoke(const Elem& element) {
  if (config_.checkpoint != nullptr && config_.transactional) {
    // Transactional mode: hold the epoch back until the barrier commits it.
    pending_.push_back(elem_cast<kafka::Payload>(element));
    return;
  }
  producer_
      ->send(config_.topic, partition_,
             kafka::ProducerRecord{.key = {},
                                   .value = elem_cast<kafka::Payload>(element)})
      .expect_ok();
}

void KafkaStringSink::commit_epoch() {
  for (auto& value : pending_) {
    producer_
        ->send(config_.topic, partition_,
               kafka::ProducerRecord{.key = {}, .value = std::move(value)})
        .expect_ok();
  }
  pending_.clear();
  // The async producer drains its queue and in-flight window here before
  // returning: the barrier completes only once this epoch's output is
  // durable, whatever mode the producer runs in.
  producer_->flush().expect_ok();
}

void KafkaStringSink::close() {
  // In transactional mode any still-open epoch belongs to the final barrier,
  // which ran before the chain closed; a crash never reaches close() (the
  // exception unwinds past close_chain), so flushing the remainder here is
  // the clean-completion path only.
  if (producer_ != nullptr && config_.checkpoint != nullptr &&
      !pending_.empty()) {
    commit_epoch();
  }
  if (producer_ == nullptr) return;
  // Surface a close failure as a recoverable job failure, not a crash: the
  // producer already retried retryable errors internally; what is left is a
  // genuine broker outage the restart machinery should handle.
  producer_->close().expect_ok();
}

SourceFactory kafka_source(kafka::Broker& broker, KafkaSourceConfig config) {
  return [&broker, config] {
    return std::make_unique<KafkaStringSource>(broker, config);
  };
}

SinkFactory kafka_sink(kafka::Broker& broker, KafkaSinkConfig config) {
  return [&broker, config] {
    return std::make_unique<KafkaStringSink>(broker, config);
  };
}

}  // namespace dsps::flink
