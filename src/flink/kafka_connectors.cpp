#include "flink/kafka_connectors.hpp"

#include <utility>

namespace dsps::flink {

void KafkaStringSource::open(const RuntimeContext& context) {
  consumer_ = std::make_unique<kafka::Consumer>(
      broker_, kafka::ConsumerConfig{.group_id = config_.group_id,
                                     .max_poll_records =
                                         config_.max_poll_records});
  const auto partition_count = broker_.partition_count(config_.topic);
  partition_count.status().expect_ok();
  for (int p = 0; p < partition_count.value(); ++p) {
    if (p % context.parallelism != context.subtask_index) continue;
    const kafka::TopicPartition tp{config_.topic, p};
    std::int64_t start = 0;
    if (config_.resume_from_group && !config_.group_id.empty()) {
      const std::int64_t committed =
          broker_.committed_offset(config_.group_id, tp);
      if (committed >= 0) start = committed;
    }
    consumer_->assign(tp, start).expect_ok();
    assigned_.push_back(tp);
    const auto end = broker_.end_offset(tp);
    end.status().expect_ok();
    bounded_end_.push_back(config_.bounded ? end.value() : -1);
  }
}

void KafkaStringSource::run(SourceContext& context) {
  if (assigned_.empty()) return;  // surplus subtask: nothing to read
  int polls_since_commit = 0;
  while (!context.cancelled()) {
    auto batch = consumer_->poll_batch(config_.poll_timeout_ms);
    for (auto& record : batch.records) {
      // Zero-copy hand-off: the Payload shares the broker's storage all the
      // way down the operator chain.
      context.collect(make_elem<kafka::Payload>(std::move(record.value)));
    }
    if (config_.resume_from_group &&
        ++polls_since_commit >= config_.commit_every_polls) {
      consumer_->commit();
      polls_since_commit = 0;
    }
    if (config_.bounded) {
      bool done = true;
      const auto positions = consumer_->positions();
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (positions[i].second < bounded_end_[i]) {
          done = false;
          break;
        }
      }
      if (done) {
        if (config_.resume_from_group) consumer_->commit();
        return;
      }
    }
  }
  // Cancelled mid-stream: leave the last committed offset as the recovery
  // point (records after it replay on restart — at-least-once).
}

void KafkaStringSink::open(const RuntimeContext& /*context*/) {
  producer_ = std::make_unique<kafka::Producer>(
      broker_, kafka::ProducerConfig{.acks = config_.acks,
                                     .batch_size = config_.batch_size});
}

void KafkaStringSink::invoke(const Elem& element) {
  producer_
      ->send(config_.topic, config_.partition,
             kafka::ProducerRecord{.key = {},
                                   .value = elem_cast<kafka::Payload>(element)})
      .expect_ok();
}

void KafkaStringSink::close() {
  if (producer_) producer_->close().expect_ok();
}

SourceFactory kafka_source(kafka::Broker& broker, KafkaSourceConfig config) {
  return [&broker, config] {
    return std::make_unique<KafkaStringSource>(broker, config);
  };
}

SinkFactory kafka_sink(kafka::Broker& broker, KafkaSinkConfig config) {
  return [&broker, config] {
    return std::make_unique<KafkaStringSink>(broker, config);
  };
}

}  // namespace dsps::flink
