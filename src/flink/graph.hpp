// StreamGraph (what the API builds) and JobGraph (what the client submits).
//
// The client-side translation StreamGraph -> JobGraph performs *operator
// chaining*: consecutive one-to-one operators with the same parallelism and
// a forward edge are fused into a single task and exchange records by direct
// virtual calls instead of a channel hop (§II-B). The Beam Flink runner
// disables chaining, which is one of the structural reasons Fig. 13's plan
// has seven nodes where Fig. 12 has three.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flink/operators.hpp"

namespace dsps::flink {

enum class NodeKind { kSource, kOperator, kSink };

/// How records are routed across a non-chained edge.
enum class PartitionMode {
  kForward,    // subtask i -> subtask i (requires equal parallelism)
  kRebalance,  // round-robin over consumer subtasks
  kHash,       // by key hash (requires a key function on the edge)
};

using KeyFn = std::function<std::uint64_t(const Elem&)>;

struct StreamNode {
  int id = 0;
  std::string name;
  NodeKind kind = NodeKind::kOperator;
  int parallelism = 1;
  OperatorFactory make_operator;  // kOperator / kSink
  SourceFactory make_source;      // kSource
  bool chainable = true;
};

struct StreamEdge {
  int from = 0;
  int to = 0;
  PartitionMode mode = PartitionMode::kForward;
  KeyFn key_fn;  // only for kHash
};

struct StreamGraph {
  std::vector<StreamNode> nodes;
  std::vector<StreamEdge> edges;

  const StreamNode& node(int id) const { return nodes.at(static_cast<std::size_t>(id)); }
};

/// One schedulable vertex: a chain of operators headed by a source or an
/// input channel.
struct JobVertex {
  int id = 0;
  std::vector<int> chained_nodes;  // StreamNode ids, head first
  int parallelism = 1;
  std::string display_name;        // "Source: X -> Filter -> Sink: Y"
};

struct JobEdge {
  int from_vertex = 0;
  int to_vertex = 0;
  PartitionMode mode = PartitionMode::kForward;
  KeyFn key_fn;
};

struct JobGraph {
  std::vector<JobVertex> vertices;
  std::vector<JobEdge> edges;
};

/// Client-side translation with the chaining optimization.
/// When `chaining_enabled` is false every node becomes its own vertex.
JobGraph build_job_graph(const StreamGraph& graph, bool chaining_enabled);

/// Renders the execution plan in the style of the Flink plan visualizer
/// (Fig. 12 / Fig. 13): one block per job vertex with kind, name, and
/// parallelism, plus the edges between them.
std::string render_execution_plan(const StreamGraph& graph,
                                  const JobGraph& job_graph);

}  // namespace dsps::flink
