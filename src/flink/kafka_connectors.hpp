// MiniKafka connectors for Flink-sim (the FlinkKafkaConsumer/Producer
// analogues). The bounded source captures the end offsets at open() and
// finishes when it reaches them — the benchmark pre-loads the input topic,
// so bounded semantics match the paper's measurement window.
#pragma once

#include <memory>
#include <string>

#include "flink/checkpoint.hpp"
#include "flink/operators.hpp"
#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"

namespace dsps::flink {

struct KafkaSourceConfig {
  std::string topic;
  std::string group_id = "flink-source";
  bool bounded = true;
  std::size_t max_poll_records = 1000;
  std::int64_t poll_timeout_ms = 50;
  /// At-least-once recovery: when true, resume from the consumer group's
  /// committed offsets and commit after every `commit_every_polls` polls.
  /// A job restarted after a crash re-reads at most the uncommitted tail
  /// (some records may be emitted twice — at-least-once, like a Kafka
  /// consumer without transactional sinks).
  bool resume_from_group = false;
  int commit_every_polls = 1;
  /// Barrier-style checkpointing: when set, every `checkpoint_interval_polls`
  /// polls the source runs a barrier (committing its chain's sink epochs via
  /// the coordinator) and then commits its own offsets. Requires the sink of
  /// the same chain to share the coordinator — see KafkaSinkConfig.
  std::shared_ptr<CheckpointCoordinator> checkpoint;
  int checkpoint_interval_polls = 4;
};

/// Emits record values as kafka::Payload elements (refcounted slices of the
/// broker's storage — no copy per record). With parallelism > number of
/// partitions, surplus subtasks emit nothing (Kafka semantics).
class KafkaStringSource final : public SourceFunction {
 public:
  KafkaStringSource(kafka::Broker& broker, KafkaSourceConfig config)
      : broker_(broker), config_(std::move(config)) {}

  void open(const RuntimeContext& context) override;
  void run(SourceContext& context) override;

 private:
  /// The poll loop; `uncommitted` tracks records emitted past the last
  /// offset commit so run() can account the replay a crash here causes.
  void run_loop(SourceContext& context, std::size_t& uncommitted);

  kafka::Broker& broker_;
  KafkaSourceConfig config_;
  std::unique_ptr<kafka::Consumer> consumer_;
  std::vector<std::int64_t> bounded_end_;  // per assigned partition
  std::vector<kafka::TopicPartition> assigned_;
  int subtask_index_ = 0;
  std::string fault_site_;  // precomputed: no per-poll allocation
};

struct KafkaSinkConfig {
  std::string topic;
  /// Output partition; -1 = auto (subtask_index modulo the topic's
  /// partition count), so parallel sink subtasks write to disjoint
  /// partition logs instead of serializing on one log mutex.
  int partition = 0;
  kafka::Acks acks = kafka::Acks::kLeader;
  std::size_t batch_size = 500;
  /// Barrier participation: when set, the sink registers with the
  /// coordinator so the source's barrier makes its output durable before
  /// offsets are committed (output-before-offsets, the invariant both
  /// recovery modes need).
  std::shared_ptr<CheckpointCoordinator> checkpoint;
  /// With `checkpoint` set: true buffers each epoch and releases it only at
  /// the barrier — a crash discards the open epoch, so replayed input
  /// produces each output exactly once. false writes through and merely
  /// flushes at the barrier — duplicates on replay, at-least-once.
  bool transactional = true;
  /// Asynchronous pipelined producer: invoke()/commit_epoch() hand batches
  /// to a background sender instead of paying the ack RTT inline. The
  /// barrier (and close()) still blocks on a full drain, so the
  /// output-durable-before-offsets invariant — and with `transactional`,
  /// exactly-once — is unchanged.
  bool async = false;
};

/// Writes kafka::Payload elements as record values.
class KafkaStringSink final : public SinkFunction {
 public:
  KafkaStringSink(kafka::Broker& broker, KafkaSinkConfig config)
      : broker_(broker), config_(std::move(config)) {}

  void open(const RuntimeContext& context) override;
  void invoke(const Elem& element) override;
  void close() override;

 private:
  void commit_epoch();

  kafka::Broker& broker_;
  KafkaSinkConfig config_;
  std::unique_ptr<kafka::Producer> producer_;
  int partition_ = 0;  // resolved at open() (config or auto by subtask)
  std::vector<kafka::Payload> pending_;  // open epoch (transactional mode)
};

/// Factory helpers for the DataStream API.
SourceFactory kafka_source(kafka::Broker& broker, KafkaSourceConfig config);
SinkFactory kafka_sink(kafka::Broker& broker, KafkaSinkConfig config);

}  // namespace dsps::flink
