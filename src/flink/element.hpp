// Type-erased element passed along Flink-sim operator chains and channels.
//
// The typed DataStream<T> API guarantees at compile time that an edge only
// carries one type, so the erased core can use unchecked
// static_pointer_cast — the same trade real engines make when they erase
// user types behind serializers.
#pragma once

#include <memory>
#include <utility>

namespace dsps::flink {

using Elem = std::shared_ptr<void>;

template <typename T, typename... Args>
Elem make_elem(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

template <typename T>
const T& elem_cast(const Elem& elem) {
  return *static_cast<const T*>(elem.get());
}

template <typename T>
std::shared_ptr<T> elem_ptr(const Elem& elem) {
  return std::static_pointer_cast<T>(elem);
}

}  // namespace dsps::flink
