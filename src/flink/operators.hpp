// Erased operator layer: StreamOperator, sources, sinks, and the built-in
// operator implementations the typed DataStream API instantiates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flink/element.hpp"

namespace dsps::flink {

/// Downstream hand-off point for an operator.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void collect(Elem element) = 0;
};

/// Per-subtask runtime information handed to operators at open().
struct RuntimeContext {
  int subtask_index = 0;
  int parallelism = 1;
  std::string task_name;
};

/// One operator instance inside one subtask.
class StreamOperator {
 public:
  virtual ~StreamOperator() = default;
  virtual void open(const RuntimeContext& /*context*/) {}
  virtual void process(Elem element, Collector& out) = 0;
  /// Called once after the last element (flush windows / aggregates).
  virtual void close(Collector& /*out*/) {}
};

using OperatorFactory = std::function<std::unique_ptr<StreamOperator>()>;

/// Emits elements into the pipeline; run() must return on end-of-input in
/// bounded mode or when cancelled.
class SourceContext {
 public:
  virtual ~SourceContext() = default;
  virtual void collect(Elem element) = 0;
  virtual bool cancelled() const = 0;
};

class SourceFunction {
 public:
  virtual ~SourceFunction() = default;
  virtual void open(const RuntimeContext& /*context*/) {}
  virtual void run(SourceContext& context) = 0;
};

using SourceFactory = std::function<std::unique_ptr<SourceFunction>()>;

class SinkFunction {
 public:
  virtual ~SinkFunction() = default;
  virtual void open(const RuntimeContext& /*context*/) {}
  virtual void invoke(const Elem& element) = 0;
  virtual void close() {}
};

using SinkFactory = std::function<std::unique_ptr<SinkFunction>()>;

// ---------------------------------------------------------------------------
// Built-in operators.

class MapOperator final : public StreamOperator {
 public:
  explicit MapOperator(std::function<Elem(const Elem&)> fn)
      : fn_(std::move(fn)) {}
  void process(Elem element, Collector& out) override {
    out.collect(fn_(element));
  }

 private:
  std::function<Elem(const Elem&)> fn_;
};

class FilterOperator final : public StreamOperator {
 public:
  explicit FilterOperator(std::function<bool(const Elem&)> predicate)
      : predicate_(std::move(predicate)) {}
  void process(Elem element, Collector& out) override {
    if (predicate_(element)) out.collect(std::move(element));
  }

 private:
  std::function<bool(const Elem&)> predicate_;
};

class FlatMapOperator final : public StreamOperator {
 public:
  explicit FlatMapOperator(std::function<void(const Elem&, Collector&)> fn)
      : fn_(std::move(fn)) {}
  void process(Elem element, Collector& out) override { fn_(element, out); }

 private:
  std::function<void(const Elem&, Collector&)> fn_;
};

/// Continuous per-key reduce: every input emits the updated aggregate for
/// its key (Flink's KeyedStream::reduce semantics).
class KeyedReduceOperator final : public StreamOperator {
 public:
  KeyedReduceOperator(std::function<std::uint64_t(const Elem&)> key_of,
                      std::function<Elem(const Elem&, const Elem&)> reduce)
      : key_of_(std::move(key_of)), reduce_(std::move(reduce)) {}

  void process(Elem element, Collector& out) override {
    const std::uint64_t key = key_of_(element);
    auto [it, inserted] = state_.try_emplace(key, element);
    if (!inserted) it->second = reduce_(it->second, element);
    out.collect(it->second);
  }

 private:
  std::function<std::uint64_t(const Elem&)> key_of_;
  std::function<Elem(const Elem&, const Elem&)> reduce_;
  std::unordered_map<std::uint64_t, Elem> state_;
};

/// Per-key tumbling count window with a reduce function: emits one result
/// per full window; partial windows flush at end of input.
class CountWindowReduceOperator final : public StreamOperator {
 public:
  CountWindowReduceOperator(
      std::function<std::uint64_t(const Elem&)> key_of,
      std::function<Elem(const Elem&, const Elem&)> reduce,
      std::size_t window_size)
      : key_of_(std::move(key_of)),
        reduce_(std::move(reduce)),
        window_size_(window_size) {}

  void process(Elem element, Collector& out) override {
    const std::uint64_t key = key_of_(element);
    auto& window = state_[key];
    window.accumulator = window.count == 0
                             ? element
                             : reduce_(window.accumulator, element);
    if (++window.count >= window_size_) {
      out.collect(std::move(window.accumulator));
      window = {};
    }
  }

  void close(Collector& out) override {
    for (auto& [key, window] : state_) {
      if (window.count > 0) out.collect(std::move(window.accumulator));
    }
    state_.clear();
  }

 private:
  struct Window {
    Elem accumulator;
    std::size_t count = 0;
  };

  std::function<std::uint64_t(const Elem&)> key_of_;
  std::function<Elem(const Elem&, const Elem&)> reduce_;
  std::size_t window_size_;
  std::unordered_map<std::uint64_t, Window> state_;
};

/// Adapts a SinkFunction to the operator interface so sinks can be chained.
class SinkOperator final : public StreamOperator {
 public:
  explicit SinkOperator(SinkFactory factory) : factory_(std::move(factory)) {}

  void open(const RuntimeContext& context) override {
    sink_ = factory_();
    sink_->open(context);
  }
  void process(Elem element, Collector& /*out*/) override {
    sink_->invoke(element);
  }
  void close(Collector& /*out*/) override {
    if (sink_) sink_->close();
  }

 private:
  SinkFactory factory_;
  std::unique_ptr<SinkFunction> sink_;
};

}  // namespace dsps::flink
