// Typed DataStream API on top of the erased stream graph.
//
// The templates erase user functions into Elem-level closures at graph
// construction time; element types on every edge are checked by the C++
// type system, so the erased runtime can use unchecked casts.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "flink/environment.hpp"

namespace dsps::flink {

template <typename T, typename K>
class KeyedStream;

template <typename T>
class DataStream {
 public:
  DataStream(StreamExecutionEnvironment* env, int node_id)
      : env_(env), node_id_(node_id) {}

  /// Element-wise transformation.
  template <typename R>
  DataStream<R> map(std::function<R(const T&)> fn,
                    const std::string& name = "Map") const {
    OperatorFactory factory = [fn = std::move(fn)] {
      return std::make_unique<MapOperator>([fn](const Elem& elem) {
        return make_elem<R>(fn(elem_cast<T>(elem)));
      });
    };
    return attach<R>(std::move(factory), name);
  }

  /// Keeps elements satisfying the predicate.
  DataStream<T> filter(std::function<bool(const T&)> predicate,
                       const std::string& name = "Filter") const {
    OperatorFactory factory = [predicate = std::move(predicate)] {
      return std::make_unique<FilterOperator>([predicate](const Elem& elem) {
        return predicate(elem_cast<T>(elem));
      });
    };
    return attach<T>(std::move(factory), name);
  }

  /// Zero-or-more outputs per input via the `out` callback.
  template <typename R>
  DataStream<R> flat_map(
      std::function<void(const T&, const std::function<void(R)>&)> fn,
      const std::string& name = "Flat Map") const {
    OperatorFactory factory = [fn = std::move(fn)] {
      return std::make_unique<FlatMapOperator>(
          [fn](const Elem& elem, Collector& out) {
            fn(elem_cast<T>(elem),
               [&out](R value) { out.collect(make_elem<R>(std::move(value))); });
          });
    };
    return attach<R>(std::move(factory), name);
  }

  /// Partitions the stream by key; downstream keyed operators see all
  /// elements of one key in one subtask.
  template <typename K>
  KeyedStream<T, K> key_by(std::function<K(const T&)> key_of) const;

  /// Merges this stream with others of the same type (Flink's union()).
  DataStream<T> union_with(const std::vector<DataStream<T>>& others,
                           const std::string& name = "Union") const {
    StreamNode node;
    node.name = name;
    node.kind = NodeKind::kOperator;
    node.parallelism = env_->parallelism();
    node.make_operator = [] {
      return std::make_unique<MapOperator>(
          [](const Elem& elem) { return elem; });
    };
    node.chainable = false;  // multiple producers feed one consumer
    const int id = env_->add_node(std::move(node));
    env_->add_edge(StreamEdge{.from = node_id_,
                              .to = id,
                              .mode = PartitionMode::kRebalance,
                              .key_fn = {}});
    for (const auto& other : others) {
      require(other.environment() == env_,
              "union_with requires streams from one environment");
      env_->add_edge(StreamEdge{.from = other.node_id(),
                                .to = id,
                                .mode = PartitionMode::kRebalance,
                                .key_fn = {}});
    }
    return DataStream<T>(env_, id);
  }

  /// Redistributes round-robin (breaks chaining; used to force a shuffle).
  DataStream<T> rebalance() const {
    StreamNode node;
    node.name = "Rebalance";
    node.kind = NodeKind::kOperator;
    node.parallelism = env_->parallelism();
    node.make_operator = [] {
      return std::make_unique<MapOperator>([](const Elem& elem) {
        return elem;
      });
    };
    node.chainable = false;
    const int id = env_->add_node(std::move(node));
    env_->add_edge(StreamEdge{.from = node_id_,
                              .to = id,
                              .mode = PartitionMode::kRebalance,
                              .key_fn = {}});
    return DataStream<T>(env_, id);
  }

  /// Terminates the stream into a sink. The factory runs once per subtask.
  void add_sink(SinkFactory factory,
                const std::string& name = "Unnamed") const {
    StreamNode node;
    node.name = name;
    node.kind = NodeKind::kSink;
    node.parallelism = env_->parallelism();
    node.make_operator = [factory = std::move(factory)] {
      return std::make_unique<SinkOperator>(factory);
    };
    const int id = env_->add_node(std::move(node));
    env_->add_edge(StreamEdge{.from = node_id_,
                              .to = id,
                              .mode = PartitionMode::kForward,
                              .key_fn = {}});
  }

  /// Convenience sink invoking `fn` per element (single-subtask tests).
  void for_each(std::function<void(const T&)> fn,
                const std::string& name = "ForEach") const {
    class FnSink final : public SinkFunction {
     public:
      explicit FnSink(std::function<void(const T&)> fn) : fn_(std::move(fn)) {}
      void invoke(const Elem& elem) override { fn_(elem_cast<T>(elem)); }

     private:
      std::function<void(const T&)> fn_;
    };
    add_sink([fn = std::move(fn)] { return std::make_unique<FnSink>(fn); },
             name);
  }

  int node_id() const noexcept { return node_id_; }
  StreamExecutionEnvironment* environment() const noexcept { return env_; }

 private:
  template <typename R>
  DataStream<R> attach(OperatorFactory factory, const std::string& name,
                       PartitionMode mode = PartitionMode::kForward,
                       KeyFn key_fn = {}) const {
    StreamNode node;
    node.name = name;
    node.kind = NodeKind::kOperator;
    node.parallelism = env_->parallelism();
    node.make_operator = std::move(factory);
    const int id = env_->add_node(std::move(node));
    env_->add_edge(StreamEdge{
        .from = node_id_, .to = id, .mode = mode, .key_fn = std::move(key_fn)});
    return DataStream<R>(env_, id);
  }

  template <typename, typename>
  friend class KeyedStream;

  StreamExecutionEnvironment* env_;
  int node_id_;
};

/// Hash helper turning a typed key into the partitioning hash.
template <typename K>
std::uint64_t hash_key(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  } else {
    return fnv1a(std::string_view{key});
  }
}

template <typename T, typename K>
class KeyedStream {
 public:
  KeyedStream(StreamExecutionEnvironment* env, int node_id,
              std::function<K(const T&)> key_of)
      : env_(env), node_id_(node_id), key_of_(std::move(key_of)) {}

  /// Continuous reduce: emits the running aggregate per key on every input.
  DataStream<T> reduce(std::function<T(const T&, const T&)> fn,
                       const std::string& name = "Keyed Reduce") const {
    auto key_fn = erased_key_fn();
    OperatorFactory factory = [key_fn, fn = std::move(fn)] {
      return std::make_unique<KeyedReduceOperator>(
          key_fn, [fn](const Elem& a, const Elem& b) {
            return make_elem<T>(fn(elem_cast<T>(a), elem_cast<T>(b)));
          });
    };
    return attach(std::move(factory), name);
  }

  /// Tumbling count window per key with a reduce function; partial windows
  /// flush at end of input.
  DataStream<T> count_window_reduce(
      std::size_t window_size, std::function<T(const T&, const T&)> fn,
      const std::string& name = "Count Window Reduce") const {
    require(window_size > 0, "window size must be positive");
    auto key_fn = erased_key_fn();
    OperatorFactory factory = [key_fn, fn = std::move(fn), window_size] {
      return std::make_unique<CountWindowReduceOperator>(
          key_fn,
          [fn](const Elem& a, const Elem& b) {
            return make_elem<T>(fn(elem_cast<T>(a), elem_cast<T>(b)));
          },
          window_size);
    };
    return attach(std::move(factory), name);
  }

 private:
  KeyFn erased_key_fn() const {
    return [key_of = key_of_](const Elem& elem) {
      return hash_key<K>(key_of(elem_cast<T>(elem)));
    };
  }

  DataStream<T> attach(OperatorFactory factory,
                       const std::string& name) const {
    StreamNode node;
    node.name = name;
    node.kind = NodeKind::kOperator;
    node.parallelism = env_->parallelism();
    node.make_operator = std::move(factory);
    node.chainable = false;  // keyed exchange always crosses a channel
    const int id = env_->add_node(std::move(node));
    env_->add_edge(StreamEdge{.from = node_id_,
                              .to = id,
                              .mode = PartitionMode::kHash,
                              .key_fn = erased_key_fn()});
    return DataStream<T>(env_, id);
  }

  StreamExecutionEnvironment* env_;
  int node_id_;
  std::function<K(const T&)> key_of_;
};

template <typename T>
template <typename K>
KeyedStream<T, K> DataStream<T>::key_by(
    std::function<K(const T&)> key_of) const {
  return KeyedStream<T, K>(env_, node_id_, std::move(key_of));
}

template <typename T>
DataStream<T> StreamExecutionEnvironment::add_source(SourceFactory factory,
                                                     const std::string& name) {
  StreamNode node;
  node.name = name;
  node.kind = NodeKind::kSource;
  node.parallelism = default_parallelism_;
  node.make_source = std::move(factory);
  const int id = add_node(std::move(node));
  return DataStream<T>(this, id);
}

}  // namespace dsps::flink
