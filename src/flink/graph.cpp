#include "flink/graph.hpp"

#include <algorithm>
#include <map>

#include "common/status.hpp"

namespace dsps::flink {

namespace {

/// Out-edges per node, in insertion order.
std::map<int, std::vector<const StreamEdge*>> out_edges(
    const StreamGraph& graph) {
  std::map<int, std::vector<const StreamEdge*>> out;
  for (const auto& edge : graph.edges) out[edge.from].push_back(&edge);
  return out;
}

std::map<int, int> in_degree(const StreamGraph& graph) {
  std::map<int, int> degree;
  for (const auto& node : graph.nodes) degree[node.id] = 0;
  for (const auto& edge : graph.edges) ++degree[edge.to];
  return degree;
}

bool can_chain(const StreamGraph& graph, const StreamEdge& edge,
               const std::map<int, int>& degree,
               const std::map<int, std::vector<const StreamEdge*>>& outs) {
  const StreamNode& from = graph.node(edge.from);
  const StreamNode& to = graph.node(edge.to);
  if (edge.mode != PartitionMode::kForward) return false;
  if (from.parallelism != to.parallelism) return false;
  if (!from.chainable || !to.chainable) return false;
  // Only pure linear segments chain: one consumer downstream of `from`,
  // one producer upstream of `to`.
  const auto out_it = outs.find(edge.from);
  if (out_it == outs.end() || out_it->second.size() != 1) return false;
  if (degree.at(edge.to) != 1) return false;
  return true;
}

std::string display_name_for(const StreamGraph& graph,
                             const std::vector<int>& chain) {
  std::string name;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const StreamNode& node = graph.node(chain[i]);
    if (i > 0) name += " -> ";
    switch (node.kind) {
      case NodeKind::kSource: name += "Source: " + node.name; break;
      case NodeKind::kSink: name += "Sink: " + node.name; break;
      case NodeKind::kOperator: name += node.name; break;
    }
  }
  return name;
}

}  // namespace

JobGraph build_job_graph(const StreamGraph& graph, bool chaining_enabled) {
  const auto outs = out_edges(graph);
  const auto degree = in_degree(graph);

  JobGraph job;
  std::map<int, int> node_to_vertex;

  // Greedy chain building in topological-ish order (node ids are assigned
  // in API order, which is already topological for the builder API).
  std::vector<int> order;
  order.reserve(graph.nodes.size());
  for (const auto& node : graph.nodes) order.push_back(node.id);

  for (const int node_id : order) {
    if (node_to_vertex.contains(node_id)) continue;
    std::vector<int> chain{node_id};
    if (chaining_enabled) {
      int tail = node_id;
      while (true) {
        const auto out_it = outs.find(tail);
        if (out_it == outs.end() || out_it->second.size() != 1) break;
        const StreamEdge& edge = *out_it->second.front();
        if (!can_chain(graph, edge, degree, outs)) break;
        if (node_to_vertex.contains(edge.to)) break;
        chain.push_back(edge.to);
        tail = edge.to;
      }
    }
    JobVertex vertex;
    vertex.id = static_cast<int>(job.vertices.size());
    vertex.chained_nodes = chain;
    vertex.parallelism = graph.node(node_id).parallelism;
    vertex.display_name = display_name_for(graph, chain);
    for (const int chained : chain) node_to_vertex[chained] = vertex.id;
    job.vertices.push_back(std::move(vertex));
  }

  for (const auto& edge : graph.edges) {
    const int from_vertex = node_to_vertex.at(edge.from);
    const int to_vertex = node_to_vertex.at(edge.to);
    if (from_vertex == to_vertex) continue;  // chained away
    job.edges.push_back(JobEdge{.from_vertex = from_vertex,
                                .to_vertex = to_vertex,
                                .mode = edge.mode,
                                .key_fn = edge.key_fn});
  }
  return job;
}

std::string render_execution_plan(const StreamGraph& graph,
                                  const JobGraph& job_graph) {
  std::string out;
  for (const auto& vertex : job_graph.vertices) {
    const StreamNode& head = graph.node(vertex.chained_nodes.front());
    const char* kind = nullptr;
    switch (head.kind) {
      case NodeKind::kSource: kind = "Data Source"; break;
      case NodeKind::kSink: kind = "Data Sink"; break;
      case NodeKind::kOperator: kind = "Operator"; break;
    }
    out += "[" + std::to_string(vertex.id) + "] " + kind + "\n";
    out += "    " + vertex.display_name + "\n";
    out += "    Parallelism: " + std::to_string(vertex.parallelism) + "\n";
  }
  if (!job_graph.edges.empty()) {
    out += "Edges:\n";
    for (const auto& edge : job_graph.edges) {
      const char* mode = edge.mode == PartitionMode::kForward ? "FORWARD"
                         : edge.mode == PartitionMode::kRebalance
                             ? "REBALANCE"
                             : "HASH";
      out += "    " + std::to_string(edge.from_vertex) + " -> " +
             std::to_string(edge.to_vertex) + " [" + mode + "]\n";
    }
  }
  return out;
}

}  // namespace dsps::flink
