#include "flink/checkpoint.hpp"

#include <utility>

#include "runtime/profiler.hpp"

namespace dsps::flink {

void CheckpointCoordinator::register_sink(int subtask,
                                          std::function<void()> commit_epoch) {
  std::lock_guard lock(mutex_);
  sinks_[subtask].push_back(std::move(commit_epoch));
}

void CheckpointCoordinator::barrier(int subtask) {
  // Barrier handling is the checkpoint stage: sink flushes and the offset
  // commit that follows dominate an epoch boundary's cost.
  runtime::ScopedStage stage(runtime::Stage::kCheckpoint,
                             runtime::ScopedStage::Mode::kAlways);
  // Copy the callbacks out so a sink flush (which may take a while under an
  // injected broker outage) doesn't hold the registration lock.
  std::vector<std::function<void()>> commits;
  {
    std::lock_guard lock(mutex_);
    const auto it = sinks_.find(subtask);
    if (it != sinks_.end()) commits = it->second;
  }
  for (const auto& commit : commits) commit();
  completed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dsps::flink
