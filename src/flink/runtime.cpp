#include "flink/runtime.hpp"

#include <algorithm>
#include <utility>

#include "common/clock.hpp"
#include "runtime/invoker.hpp"
#include "runtime/policy.hpp"
#include "runtime/task_runtime.hpp"

namespace dsps::flink {

namespace {

/// Routes records of one out-edge to the consumer subtask channels.
///
/// Records are staged in per-channel buffers and shipped with one
/// `push_batch` per `kBatchSize` records, so a channel hand-off costs one
/// lock acquisition (or one atomic publish on the SPSC path) per batch
/// instead of per record. A stage also flushes once its oldest record has
/// been buffered for `kFlushTimeoutUs` (Flink's execution.buffer-timeout):
/// without it, a low-volume edge — e.g. Grep's ~0.3% matches — would hold
/// every record until end-of-stream and collapse the output's append-time
/// span, which is the measured execution time. `send_eos` flushes the stage
/// first, so ordering within a channel is preserved.
class Router {
 public:
  static constexpr std::size_t kBatchSize = 128;
  static constexpr std::int64_t kFlushTimeoutUs = 500;

  Router(PartitionMode mode, KeyFn key_fn,
         std::vector<std::shared_ptr<Channel>> channels, int producer_subtask)
      : mode_(mode),
        key_fn_(std::move(key_fn)),
        channels_(std::move(channels)),
        pending_(this->channels_.size()),
        staged_at_us_(this->channels_.size(), 0),
        producer_subtask_(producer_subtask) {}

  void emit(const Elem& element) {
    std::size_t index = 0;
    switch (mode_) {
      case PartitionMode::kForward:
        index = static_cast<std::size_t>(producer_subtask_) % channels_.size();
        break;
      case PartitionMode::kRebalance:
        index = next_++ % channels_.size();
        break;
      case PartitionMode::kHash:
        index = key_fn_(element) % channels_.size();
        break;
    }
    auto& stage = pending_[index];
    const std::int64_t now_us = steady_clock_us();
    if (stage.empty()) staged_at_us_[index] = now_us;
    stage.push_back(Envelope{element, false});
    // The buffer timeout is the PolicyEngine's Flink knob: adaptive runs
    // shrink it when downstream starves on queue_wait and grow it when the
    // pipeline is compute-bound. Disabled (the default), this returns the
    // paper-faithful constant untouched.
    if (stage.size() >= kBatchSize ||
        now_us - staged_at_us_[index] >=
            runtime::PolicyEngine::instance().flink_buffer_timeout_us(
                kFlushTimeoutUs)) {
      flush_channel(index);
    }
  }

  void send_eos() {
    // Flush *every* staging buffer before any EOS goes out: a partial batch
    // stranded at shutdown would truncate the output's append-time span,
    // which is the measured execution time. Forward routers only ever stage
    // to their own index, but flush_all() keeps the invariant structural
    // rather than per-mode.
    flush_all();
    if (mode_ == PartitionMode::kForward) {
      const std::size_t index =
          static_cast<std::size_t>(producer_subtask_) % channels_.size();
      (void)channels_[index]->push(Envelope{{}, true});
      return;
    }
    for (auto& channel : channels_) {
      // A closed channel (failed job) rejects the EOS; nothing to do.
      (void)channel->push(Envelope{{}, true});
    }
  }

  /// Ships every staged batch now (stop/drain path and pre-EOS barrier).
  void flush_all() {
    for (std::size_t i = 0; i < channels_.size(); ++i) flush_channel(i);
  }

 private:
  void flush_channel(std::size_t index) {
    auto& stage = pending_[index];
    if (stage.empty()) return;
    runtime::FaultInjector::instance().maybe_stall(
        runtime::FaultPoint::kQueueStall, "flink.channel");
    // A full channel blocks here: backpressure wait, not operator work.
    runtime::ScopedStage wait(runtime::Stage::kQueueWait,
                              runtime::ScopedStage::Mode::kAlways);
    channels_[index]->push_batch(std::move(stage));
    stage.clear();
    stage.reserve(kBatchSize);
  }

  PartitionMode mode_;
  KeyFn key_fn_;
  std::vector<std::shared_ptr<Channel>> channels_;
  std::vector<std::vector<Envelope>> pending_;  // staged per channel
  std::vector<std::int64_t> staged_at_us_;      // oldest staged, per channel
  int producer_subtask_;
  std::size_t next_ = 0;
};

/// Tail of a chain: counts records out and forwards to all out-routers.
class ChainTail final : public Collector {
 public:
  ChainTail(std::vector<std::unique_ptr<Router>>* routers,
            runtime::Counter records_out)
      : routers_(routers), records_out_(records_out) {}

  void collect(Elem element) override {
    records_out_.add(1);
    for (auto& router : *routers_) router->emit(element);
  }

 private:
  std::vector<std::unique_ptr<Router>>* routers_;
  runtime::Counter records_out_;
};

/// Middle link: hands elements to the next operator in the chain, through
/// the unified invoker so every chained operator reports its own user_fn
/// share (nested links record self-time, so a chain decomposes exactly).
class ChainLink final : public Collector {
 public:
  ChainLink(StreamOperator* op, Collector* next, std::string site)
      : op_(op), next_(next), invoker_(std::move(site)) {}
  void collect(Elem element) override {
    invoker_.invoke_unfaulted(
        [&] { op_->process(std::move(element), *next_); });
  }

 private:
  StreamOperator* op_;
  Collector* next_;
  runtime::OperatorInvoker invoker_;
};

/// One subtask: instantiated chain + IO wiring.
struct Task {
  int vertex_id = 0;
  int subtask = 0;
  std::string name;
  // Chain bodies (head first). Empty for a pure source vertex whose chain
  // is only the source function.
  std::vector<std::unique_ptr<StreamOperator>> operators;
  std::vector<std::string> operator_names;  // attribution labels, head first
  std::unique_ptr<SourceFunction> source;  // head of a source vertex
  std::shared_ptr<Channel> input;          // null for source vertices
  int eos_expected = 0;                    // producers feeding `input`
  std::vector<std::unique_ptr<Router>> routers;

  // Wired collectors, tail first; entry() is the chain entry point.
  std::vector<std::unique_ptr<Collector>> collectors;
  Collector* entry = nullptr;
};

class BoundedSourceContext final : public SourceContext {
 public:
  BoundedSourceContext(Collector& entry, std::atomic<bool>& cancelled,
                       runtime::Counter records_in)
      : entry_(entry), cancelled_(cancelled), records_in_(records_in) {}

  void collect(Elem element) override {
    records_in_.add(1);
    entry_.collect(std::move(element));
  }
  bool cancelled() const override {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  Collector& entry_;
  std::atomic<bool>& cancelled_;
  runtime::Counter records_in_;
};

std::string vertex_counter_name(int vertex, const char* suffix) {
  return "vertex." + std::to_string(vertex) + suffix;
}

}  // namespace

struct JobHandle::State {
  runtime::TaskRuntime tasks{"flink-job"};
  std::atomic<bool> cancelled{false};
  runtime::MetricsRegistry registry;
  std::vector<runtime::Counter> records_in;   // per vertex id
  std::vector<runtime::Counter> records_out;  // per vertex id
  std::vector<std::string> names;
  // Kept so the failure supervisor can close every channel: blocked
  // producers/consumers unwind instead of wedging the job.
  std::vector<std::shared_ptr<Channel>> channels;
  Stopwatch stopwatch;
  std::atomic<bool> joined{false};
  std::mutex join_mutex;
  JobResult result;

  void fail(const Status& status) {
    (void)status;
    cancelled.store(true);
    for (auto& channel : channels) channel->close();
  }

  JobResult join() {
    std::lock_guard lock(join_mutex);
    if (!joined.load()) {
      result.job_status = tasks.join_all();
      result.duration_ms = stopwatch.elapsed_ms();
      result.vertex_names = names;
      // Per-channel backpressure evidence: peak (and final) queue depth of
      // every input channel, labelled by consumer vertex and subtask.
      for (const auto& channel : channels) {
        registry.gauge("channel." + channel->label() + ".peak_depth")
            .set(static_cast<double>(channel->peak_depth()));
        registry.gauge("channel." + channel->label() + ".depth")
            .set(static_cast<double>(channel->depth()));
      }
      result.metrics = registry.snapshot();
      runtime::MetricsRegistry::global().merge(result.metrics, "flink.");
      joined.store(true);
    }
    return result;
  }
};

JobHandle::~JobHandle() {
  if (state_) {
    cancel();
    state_->join();
  }
}

void JobHandle::cancel() {
  if (state_) {
    state_->cancelled.store(true);
    state_->tasks.request_stop();
  }
}

JobResult JobHandle::wait() {
  require(state_ != nullptr, "JobHandle not attached to a job");
  return state_->join();
}

namespace {

/// Validates slot demand against the configured TaskManagers and spawns all
/// task threads. Shared by the sync and async entry points.
Result<std::shared_ptr<JobHandle::State>> launch(const StreamGraph& graph,
                                                 const JobGraph& job_graph,
                                                 const JobConfig& config) {
  // --- slot scheduling -----------------------------------------------------
  int slots_needed = 0;
  for (const auto& vertex : job_graph.vertices) {
    slots_needed += vertex.parallelism;
  }
  std::vector<TaskManagerConfig> task_managers = config.task_managers;
  if (task_managers.empty()) {
    // Default standalone deployment: one TaskManager with enough slots.
    task_managers.push_back(
        TaskManagerConfig{"taskmanager-0", std::max(1, slots_needed)});
  }
  int slots_available = 0;
  for (const auto& tm : task_managers) slots_available += tm.task_slots;
  // Flink shares one slot across subtasks of *different* vertices of the
  // same job (slot sharing groups); the default group needs max(parallelism)
  // slots, not the sum.
  int slots_required = 0;
  for (const auto& vertex : job_graph.vertices) {
    slots_required = std::max(slots_required, vertex.parallelism);
  }
  if (slots_required > slots_available) {
    return Status::resource_exhausted(
        "job needs " + std::to_string(slots_required) + " slots, cluster has " +
        std::to_string(slots_available));
  }

  // --- channel construction ------------------------------------------------
  // The per-channel producer count (== the EOS count) decides the queue
  // flavor, so it is computed before the channels are built: a channel with
  // exactly one writer takes the lock-free SPSC ring.
  std::map<int, int> eos_expected;  // per consumer vertex, per subtask count
  for (const auto& edge : job_graph.edges) {
    const auto& producer =
        job_graph.vertices[static_cast<std::size_t>(edge.from_vertex)];
    const auto& consumer =
        job_graph.vertices[static_cast<std::size_t>(edge.to_vertex)];
    // Each producer subtask sends exactly one EOS to every channel it feeds.
    // Forward: feeds exactly one channel. Other modes: feeds all channels.
    if (edge.mode == PartitionMode::kForward) {
      require(producer.parallelism == consumer.parallelism ||
                  consumer.parallelism == 1,
              "FORWARD edge requires matching parallelism");
      // With equal parallelism each channel is fed by exactly one producer
      // subtask; with a single consumer every producer subtask feeds it.
      eos_expected[edge.to_vertex] +=
          consumer.parallelism == producer.parallelism ? 1
                                                       : producer.parallelism;
    } else {
      eos_expected[edge.to_vertex] += producer.parallelism;
    }
  }
  // input_channels[vertex][subtask]
  std::map<int, std::vector<std::shared_ptr<Channel>>> input_channels;
  for (const auto& edge : job_graph.edges) {
    const auto& consumer =
        job_graph.vertices[static_cast<std::size_t>(edge.to_vertex)];
    auto& channels = input_channels[edge.to_vertex];
    if (channels.empty()) {
      const bool single_producer = eos_expected.at(edge.to_vertex) == 1;
      for (int s = 0; s < consumer.parallelism; ++s) {
        channels.push_back(std::make_shared<Channel>(config.channel_capacity,
                                                     single_producer));
        channels.back()->set_label("v" + std::to_string(edge.to_vertex) +
                                   ".s" + std::to_string(s));
      }
    }
  }

  auto state = std::make_shared<JobHandle::State>();
  for (const auto& vertex : job_graph.vertices) {
    state->records_in.push_back(
        state->registry.counter(vertex_counter_name(vertex.id, ".records_in")));
    state->records_out.push_back(state->registry.counter(
        vertex_counter_name(vertex.id, ".records_out")));
    state->names.push_back(vertex.display_name);
  }
  for (const auto& [vertex, channels] : input_channels) {
    (void)vertex;
    state->channels.insert(state->channels.end(), channels.begin(),
                           channels.end());
  }
  // A crashing task cancels the job: sources stop, channels close, every
  // other task unwinds, and join_all() surfaces the failure Status.
  state->tasks.set_failure_handler(
      [state_weak = std::weak_ptr<JobHandle::State>(state)](const Status& s) {
        if (auto state = state_weak.lock()) state->fail(s);
      });

  // --- task construction ---------------------------------------------------
  std::vector<std::unique_ptr<Task>> tasks;
  for (const auto& vertex : job_graph.vertices) {
    for (int subtask = 0; subtask < vertex.parallelism; ++subtask) {
      auto task = std::make_unique<Task>();
      task->vertex_id = vertex.id;
      task->subtask = subtask;
      task->name = vertex.display_name;

      const StreamNode& head = graph.node(vertex.chained_nodes.front());
      std::size_t first_operator = 0;
      if (head.kind == NodeKind::kSource) {
        task->source = head.make_source();
        first_operator = 1;
      }
      for (std::size_t i = first_operator; i < vertex.chained_nodes.size();
           ++i) {
        const StreamNode& node = graph.node(vertex.chained_nodes[i]);
        task->operators.push_back(node.make_operator());
        task->operator_names.push_back("flink." + node.name);
      }

      // Output routers for every out-edge of this vertex.
      for (const auto& edge : job_graph.edges) {
        if (edge.from_vertex != vertex.id) continue;
        task->routers.push_back(std::make_unique<Router>(
            edge.mode, edge.key_fn, input_channels.at(edge.to_vertex),
            subtask));
      }

      // Wire collectors tail -> head.
      auto tail = std::make_unique<ChainTail>(
          &task->routers,
          state->records_out[static_cast<std::size_t>(vertex.id)]);
      Collector* next = tail.get();
      task->collectors.push_back(std::move(tail));
      for (std::size_t i = task->operators.size(); i-- > 0;) {
        auto link = std::make_unique<ChainLink>(task->operators[i].get(), next,
                                                task->operator_names[i]);
        next = link.get();
        task->collectors.push_back(std::move(link));
      }
      task->entry = next;

      if (const auto it = input_channels.find(vertex.id);
          it != input_channels.end()) {
        task->input = it->second[static_cast<std::size_t>(subtask)];
        task->eos_expected = eos_expected.at(vertex.id);
      }
      tasks.push_back(std::move(task));
    }
  }

  // --- thread launch -------------------------------------------------------
  std::map<int, int> vertex_parallelism;
  for (const auto& vertex : job_graph.vertices) {
    vertex_parallelism[vertex.id] = vertex.parallelism;
  }
  state->stopwatch.reset();
  for (auto& task_ptr : tasks) {
    const int parallelism = vertex_parallelism.at(task_ptr->vertex_id);
    const std::string thread_name =
        "fl-" + task_ptr->name.substr(0, 8) + "-" +
        std::to_string(task_ptr->subtask);
    state->tasks.spawn(thread_name, [task = std::shared_ptr<Task>(
                                         std::move(task_ptr)),
                                     state, parallelism]() mutable {
      const auto vertex = static_cast<std::size_t>(task->vertex_id);
      runtime::Counter records_in = state->records_in[vertex];
      RuntimeContext context{.subtask_index = task->subtask,
                             .parallelism = parallelism,
                             .task_name = task->name};
      for (auto& op : task->operators) op->open(context);

      auto close_chain = [&] {
        // Close operators head -> tail so flushed elements traverse the
        // remainder of the chain.
        for (std::size_t i = 0; i < task->operators.size(); ++i) {
          Collector* next = task->collectors.size() >= 2 + i
                                ? task->collectors[task->collectors.size() -
                                                   2 - i]
                                      .get()
                                : task->collectors.front().get();
          task->operators[i]->close(*next);
        }
        for (auto& router : task->routers) router->send_eos();
      };

      // The unified task-loop path: one invoker per subtask carries the
      // vertex's fault site (unchanged cadence: one probe per batch) and
      // brackets the input wait; chained operator bodies attribute through
      // their ChainLink invokers.
      runtime::OperatorInvoker invoker(task->name);
      if (task->source != nullptr) {
        task->source->open(context);
        BoundedSourceContext source_context(*task->entry, state->cancelled,
                                            records_in);
        task->source->run(source_context);
        close_chain();
        invoker.close();
        return;
      }

      int eos_seen = 0;
      std::vector<Envelope> batch;
      batch.reserve(Router::kBatchSize);
      while (eos_seen < task->eos_expected) {
        batch.clear();
        invoker.maybe_fault();
        const std::size_t n = invoker.queue_wait(
            [&] { return task->input->pop_batch(batch, batch.capacity()); });
        if (n == 0) break;  // channel closed defensively
        std::uint64_t data_records = 0;
        for (auto& envelope : batch) {
          if (envelope.eos) {
            ++eos_seen;
            continue;
          }
          ++data_records;
          task->entry->collect(std::move(envelope.payload));
        }
        if (data_records > 0) records_in.add(data_records);
      }
      close_chain();
      invoker.close();
    });
  }
  return state;
}

}  // namespace

Result<JobResult> execute_job(const StreamGraph& graph,
                              const JobGraph& job_graph,
                              const JobConfig& config) {
  auto state = launch(graph, job_graph, config);
  if (!state.is_ok()) return state.status();
  JobResult result = state.value()->join();
  if (!result.job_status.is_ok()) return result.job_status;
  return result;
}

Result<std::unique_ptr<JobHandle>> execute_job_async(
    const StreamGraph& graph, const JobGraph& job_graph,
    const JobConfig& config) {
  auto state = launch(graph, job_graph, config);
  if (!state.is_ok()) return state.status();
  auto handle = std::unique_ptr<JobHandle>(new JobHandle());
  handle->state_ = std::move(state).value();
  return handle;
}

}  // namespace dsps::flink
