// Barrier-style checkpointing for chained Flink-sim pipelines.
//
// Real Flink injects checkpoint barriers at the sources; when a barrier has
// flowed through every operator, the checkpoint (source offsets + sink
// transaction) commits atomically. Our native pipelines are *chained* — the
// source, the query operator and the sink run in one task thread — so a
// barrier degenerates to a synchronous epoch boundary at a poll boundary:
// everything the source emitted has already reached the sink. The
// CheckpointCoordinator exploits that: at each barrier the source asks the
// coordinator to commit its subtask's sink epoch (flush buffered output to
// the broker), then commits its own consumer offsets. A crash between
// barriers discards the open epoch on both sides — the uncommitted output
// was never flushed, the uncommitted offsets replay — which is what makes
// the recovered output exactly-once rather than merely at-least-once.
//
// The miniature treats "flush sink, then commit offsets" as atomic (no
// fault point fires between the two); real Flink closes that window with
// Kafka transactions (two-phase commit). DESIGN.md §5c spells out the gap.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dsps::flink {

class CheckpointCoordinator {
 public:
  /// Registers a sink's epoch-commit callback for `subtask`. Called from
  /// the sink's open(); the callback flushes the sink's buffered epoch.
  void register_sink(int subtask, std::function<void()> commit_epoch);

  /// Epoch boundary for one subtask's chain: commits every registered sink
  /// of that subtask. The caller (the source) commits its offsets after.
  void barrier(int subtask);

  /// Completed barriers across all subtasks (for tests and metrics).
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, std::vector<std::function<void()>>> sinks_;
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace dsps::flink
