#include "yarn/node_manager.hpp"

#include <utility>
#include <vector>

#include <algorithm>

#include "common/clock.hpp"
#include "runtime/metrics.hpp"

namespace dsps::yarn {

NodeManager::NodeManager(NodeId id, Resource capacity)
    : id_(std::move(id)), capacity_(capacity) {
  beat();
}

NodeManager::~NodeManager() { await_all(); }

Resource NodeManager::used() const {
  std::lock_guard lock(mutex_);
  return used_;
}

Resource NodeManager::available() const {
  std::lock_guard lock(mutex_);
  return capacity_ - used_;
}

Status NodeManager::reserve(const Container& container) {
  std::lock_guard lock(mutex_);
  if (failed_.load()) {
    return Status::failed_precondition("node " + id_ + " has failed");
  }
  if (!fits(container.resource, capacity_ - used_)) {
    return Status::resource_exhausted("node " + id_ +
                                      " cannot fit container");
  }
  used_ = used_ + container.resource;
  Slot slot;
  slot.container = container;
  slots_.emplace(container.id, std::move(slot));
  return Status::ok();
}

void NodeManager::release(ContainerId id) {
  std::lock_guard lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) return;
  if (it->second.state == ContainerState::kAllocated ||
      it->second.state == ContainerState::kRunning) {
    used_ = used_ - it->second.container.resource;
    it->second.state = ContainerState::kCompleted;
  }
}

void NodeManager::set_container_retry_policy(runtime::RestartPolicy policy) {
  std::lock_guard lock(mutex_);
  container_retry_ = policy;
}

Status NodeManager::launch(ContainerId id, std::function<void()> work) {
  std::lock_guard lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Status::not_found("container not reserved on node " + id_);
  }
  if (it->second.state != ContainerState::kAllocated) {
    return Status::failed_precondition("container already launched");
  }
  it->second.state = ContainerState::kRunning;
  it->second.launched = true;
  it->second.task = runtime_.spawn(
      id_ + "-c" + std::to_string(id),
      [this, id, work = std::move(work), policy = container_retry_] {
        const int max_attempts = std::max(1, policy.max_attempts);
        runtime::Backoff backoff(policy.backoff);
        for (int attempt = 0;; ++attempt) {
          try {
            work();
            break;
          } catch (...) {
            // Relaunch in place while the retry-context allows it and the
            // node itself is still healthy.
            if (attempt + 1 < max_attempts && !failed_.load()) {
              relaunches_.fetch_add(1);
              runtime::MetricsRegistry::global()
                  .counter("yarn.container_relaunches")
                  .add(1);
              backoff.sleep();
              continue;
            }
            {
              std::lock_guard inner(mutex_);
              const auto slot = slots_.find(id);
              if (slot != slots_.end() &&
                  slot->second.state == ContainerState::kRunning) {
                slot->second.state = ContainerState::kFailed;
                used_ = used_ - slot->second.container.resource;
              }
            }
            throw;  // TaskRuntime retains it as first_container_failure()
          }
        }
        std::lock_guard inner(mutex_);
        const auto slot = slots_.find(id);
        if (slot != slots_.end() &&
            slot->second.state == ContainerState::kRunning) {
          slot->second.state = ContainerState::kCompleted;
          used_ = used_ - slot->second.container.resource;
        }
      });
  return Status::ok();
}

void NodeManager::await(ContainerId id) {
  runtime::TaskRuntime::TaskId task = 0;
  {
    std::lock_guard lock(mutex_);
    const auto it = slots_.find(id);
    if (it == slots_.end() || !it->second.launched) return;
    task = it->second.task;
  }
  runtime_.wait(task);
}

void NodeManager::await_all() {
  std::vector<runtime::TaskRuntime::TaskId> launched;
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, slot] : slots_) {
      if (slot.launched) launched.push_back(slot.task);
    }
  }
  for (const auto task : launched) runtime_.wait(task);
}

ContainerState NodeManager::state(ContainerId id) const {
  std::lock_guard lock(mutex_);
  const auto it = slots_.find(id);
  if (it == slots_.end()) return ContainerState::kFailed;
  return it->second.state;
}

void NodeManager::beat() noexcept { last_heartbeat_ms_.store(wall_clock_now()); }

void NodeManager::fail_node() {
  std::vector<runtime::TaskRuntime::TaskId> to_detach;
  {
    std::lock_guard lock(mutex_);
    failed_.store(true);
    for (auto& [id, slot] : slots_) {
      if (slot.state == ContainerState::kRunning ||
          slot.state == ContainerState::kAllocated) {
        slot.state = ContainerState::kFailed;
        // The worker thread keeps running (we cannot safely kill a thread);
        // tests use cooperative work functions that observe failed().
        if (slot.launched) to_detach.push_back(slot.task);
      }
    }
    used_ = Resource{0, 0};
  }
  for (const auto task : to_detach) runtime_.detach(task);
}

}  // namespace dsps::yarn
