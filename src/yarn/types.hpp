// Core YARN-sim types: resources, containers, application ids.
//
// YARN-sim reproduces the Hadoop YARN concepts Apex-sim depends on
// (§II-D, Fig. 4): a ResourceManager distributing cluster resources as
// containers (logical bundles of vcores + memory tied to a node), per-node
// NodeManager daemons with a heartbeat channel to the RM, and a special
// per-application AppMaster container (Apex's STRAM).
#pragma once

#include <cstdint>
#include <string>

namespace dsps::yarn {

/// A logical bundle of resources, e.g. {1 vcore, 1024 MB}.
struct Resource {
  int vcores = 1;
  int memory_mb = 1024;

  friend bool operator==(const Resource&, const Resource&) = default;
};

inline Resource operator+(Resource a, const Resource& b) {
  a.vcores += b.vcores;
  a.memory_mb += b.memory_mb;
  return a;
}

inline Resource operator-(Resource a, const Resource& b) {
  a.vcores -= b.vcores;
  a.memory_mb -= b.memory_mb;
  return a;
}

/// True when `a` fits inside `b`.
inline bool fits(const Resource& a, const Resource& b) {
  return a.vcores <= b.vcores && a.memory_mb <= b.memory_mb;
}

using ApplicationId = std::uint64_t;
using ContainerId = std::uint64_t;
using NodeId = std::string;

enum class ContainerState { kAllocated, kRunning, kCompleted, kFailed };

/// A granted container: resources on a specific node.
struct Container {
  ContainerId id = 0;
  ApplicationId app = 0;
  NodeId node;
  Resource resource;
  bool is_app_master = false;
};

enum class ApplicationState { kSubmitted, kRunning, kFinished, kFailed };

}  // namespace dsps::yarn
