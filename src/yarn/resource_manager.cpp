#include "yarn/resource_manager.hpp"

#include <chrono>
#include <utility>

#include "common/clock.hpp"

namespace dsps::yarn {

Result<Container> AppMasterContext::allocate(const Resource& resource) {
  return rm_.allocate_container(app_, resource, /*is_app_master=*/false);
}

Status AppMasterContext::launch(const Container& container,
                                std::function<void()> work) {
  return rm_.launch_container(container, std::move(work));
}

void AppMasterContext::await(const Container& container) {
  rm_.await_container(container);
}

void AppMasterContext::release(const Container& container) {
  rm_.release_container(container);
}

ResourceManager::ResourceManager(std::int64_t heartbeat_interval_ms)
    : heartbeat_interval_ms_(heartbeat_interval_ms),
      monitor_([this] { monitor_loop(); }) {}

ResourceManager::~ResourceManager() {
  stopping_.store(true);
  if (monitor_.joinable()) monitor_.join();
  std::vector<NodeManager*> nodes;
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, node] : nodes_) nodes.push_back(node.get());
  }
  for (auto* node : nodes) node->await_all();
}

void ResourceManager::monitor_loop() {
  while (!stopping_.load()) {
    {
      std::lock_guard lock(mutex_);
      for (auto& [id, node] : nodes_) {
        if (!node->failed()) node->beat();
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(heartbeat_interval_ms_));
  }
}

NodeManager& ResourceManager::add_node(const NodeId& id,
                                       const Resource& capacity) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] =
      nodes_.emplace(id, std::make_unique<NodeManager>(id, capacity));
  require(inserted, "duplicate node id");
  return *it->second;
}

NodeManager* ResourceManager::node(const NodeId& id) {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Result<Container> ResourceManager::allocate_container(ApplicationId app,
                                                      const Resource& resource,
                                                      bool is_app_master) {
  std::lock_guard lock(mutex_);
  // Pick the live node with the most free vcores (simple balancing).
  NodeManager* best = nullptr;
  for (auto& [id, candidate] : nodes_) {
    if (candidate->failed()) continue;
    if (!fits(resource, candidate->available())) continue;
    if (best == nullptr ||
        candidate->available().vcores > best->available().vcores) {
      best = candidate.get();
    }
  }
  if (best == nullptr) {
    return Status::resource_exhausted(
        "no node can satisfy the container request");
  }
  Container container{
      .id = next_container_id_.fetch_add(1),
      .app = app,
      .node = best->id(),
      .resource = resource,
      .is_app_master = is_app_master,
  };
  if (Status s = best->reserve(container); !s.is_ok()) return s;
  const auto it = apps_.find(app);
  if (it != apps_.end()) ++it->second.report.containers_granted;
  return container;
}

Status ResourceManager::launch_container(const Container& container,
                                         std::function<void()> work) {
  NodeManager* nm = node(container.node);
  if (nm == nullptr) return Status::not_found("unknown node");
  return nm->launch(container.id, std::move(work));
}

void ResourceManager::await_container(const Container& container) {
  NodeManager* nm = node(container.node);
  if (nm != nullptr) nm->await(container.id);
}

void ResourceManager::release_container(const Container& container) {
  NodeManager* nm = node(container.node);
  if (nm != nullptr) nm->release(container.id);
}

Result<ApplicationId> ResourceManager::submit_application(
    const std::string& name, const Resource& am_resource,
    AppMasterFn app_master) {
  const ApplicationId id = next_app_id_.fetch_add(1);
  {
    std::lock_guard lock(mutex_);
    AppEntry entry;
    entry.report = ApplicationReport{.id = id,
                                     .name = name,
                                     .state = ApplicationState::kSubmitted,
                                     .containers_granted = 0};
    apps_.emplace(id, std::move(entry));
  }
  auto am_container = allocate_container(id, am_resource,
                                         /*is_app_master=*/true);
  if (!am_container.is_ok()) {
    std::lock_guard lock(mutex_);
    apps_[id].report.state = ApplicationState::kFailed;
    return am_container.status();
  }
  {
    std::lock_guard lock(mutex_);
    apps_[id].am_container = am_container.value();
    apps_[id].report.state = ApplicationState::kRunning;
  }
  Status launched = launch_container(
      am_container.value(),
      [this, id, am = std::move(app_master)] {
        AppMasterContext context(*this, id);
        am(context);
        std::lock_guard lock(mutex_);
        apps_[id].report.state = ApplicationState::kFinished;
      });
  if (!launched.is_ok()) {
    std::lock_guard lock(mutex_);
    apps_[id].report.state = ApplicationState::kFailed;
    return launched;
  }
  return id;
}

void ResourceManager::await_application(ApplicationId id) {
  Container am;
  {
    std::lock_guard lock(mutex_);
    const auto it = apps_.find(id);
    if (it == apps_.end()) return;
    am = it->second.am_container;
  }
  await_container(am);
}

Result<ApplicationReport> ResourceManager::application_report(
    ApplicationId id) const {
  std::lock_guard lock(mutex_);
  const auto it = apps_.find(id);
  if (it == apps_.end()) return Status::not_found("unknown application");
  return it->second.report;
}

std::vector<NodeReport> ResourceManager::node_reports() const {
  std::lock_guard lock(mutex_);
  std::vector<NodeReport> reports;
  reports.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    reports.push_back(NodeReport{.id = id,
                                 .capacity = node->capacity(),
                                 .used = node->used(),
                                 .alive = !node->failed()});
  }
  return reports;
}

Resource ResourceManager::cluster_available() const {
  std::lock_guard lock(mutex_);
  Resource total{0, 0};
  for (const auto& [id, node] : nodes_) {
    if (!node->failed()) total = total + node->available();
  }
  return total;
}

}  // namespace dsps::yarn
