// ResourceManager: allocates containers across NodeManagers, runs the
// per-application AppMaster, and monitors node heartbeats.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "yarn/node_manager.hpp"
#include "yarn/types.hpp"

namespace dsps::yarn {

class ResourceManager;

/// Handed to an AppMaster so it can request/launch/release containers —
/// the YARN AM-RM + AM-NM protocols collapsed into one in-process interface.
class AppMasterContext {
 public:
  AppMasterContext(ResourceManager& rm, ApplicationId app)
      : rm_(rm), app_(app) {}

  ApplicationId application_id() const noexcept { return app_; }

  /// Requests one container anywhere in the cluster.
  Result<Container> allocate(const Resource& resource);

  /// Launches work in an allocated container.
  Status launch(const Container& container, std::function<void()> work);

  /// Waits for a launched container to finish.
  void await(const Container& container);

  /// Releases a finished container's resources.
  void release(const Container& container);

 private:
  ResourceManager& rm_;
  ApplicationId app_;
};

/// The AppMaster body: runs inside the AM container.
using AppMasterFn = std::function<void(AppMasterContext&)>;

struct ApplicationReport {
  ApplicationId id = 0;
  std::string name;
  ApplicationState state = ApplicationState::kSubmitted;
  int containers_granted = 0;
};

struct NodeReport {
  NodeId id;
  Resource capacity;
  Resource used;
  bool alive = true;
};

class ResourceManager {
 public:
  /// `heartbeat_interval_ms` drives the node-liveness monitor.
  explicit ResourceManager(std::int64_t heartbeat_interval_ms = 50);
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Adds a node to the cluster.
  NodeManager& add_node(const NodeId& id, const Resource& capacity);

  /// Submits an application: allocates + launches the AM container running
  /// `app_master`. Returns the application id.
  Result<ApplicationId> submit_application(const std::string& name,
                                           const Resource& am_resource,
                                           AppMasterFn app_master);

  /// Blocks until the application's AppMaster returns.
  void await_application(ApplicationId id);

  Result<ApplicationReport> application_report(ApplicationId id) const;
  std::vector<NodeReport> node_reports() const;

  /// Total resources currently free across live nodes.
  Resource cluster_available() const;

  // --- used by AppMasterContext ---
  Result<Container> allocate_container(ApplicationId app,
                                       const Resource& resource,
                                       bool is_app_master);
  Status launch_container(const Container& container,
                          std::function<void()> work);
  void await_container(const Container& container);
  void release_container(const Container& container);

 private:
  void monitor_loop();
  NodeManager* node(const NodeId& id);

  struct AppEntry {
    ApplicationReport report;
    Container am_container;
  };

  const std::int64_t heartbeat_interval_ms_;
  mutable std::mutex mutex_;
  std::map<NodeId, std::unique_ptr<NodeManager>> nodes_;
  std::map<ApplicationId, AppEntry> apps_;
  std::atomic<ContainerId> next_container_id_{1};
  std::atomic<ApplicationId> next_app_id_{1};
  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

}  // namespace dsps::yarn
