// NodeManager: per-node daemon that launches container work in threads and
// heartbeats its liveness and resource usage to the ResourceManager.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "yarn/types.hpp"

namespace dsps::yarn {

class ResourceManager;

class NodeManager {
 public:
  NodeManager(NodeId id, Resource capacity);
  ~NodeManager();

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  const NodeId& id() const noexcept { return id_; }
  Resource capacity() const noexcept { return capacity_; }
  Resource used() const;
  Resource available() const;

  /// Reserves resources for a container. Fails when it does not fit.
  Status reserve(const Container& container);

  /// Releases a container's resources (after completion/failure).
  void release(ContainerId id);

  /// Runs `work` on a dedicated thread for the given (reserved) container.
  Status launch(ContainerId id, std::function<void()> work);

  /// Blocks until the container's work function returns.
  void await(ContainerId id);

  /// Blocks until every launched container finished.
  void await_all();

  ContainerState state(ContainerId id) const;

  /// Heartbeat bookkeeping, driven by the ResourceManager's monitor.
  std::int64_t last_heartbeat_ms() const noexcept {
    return last_heartbeat_ms_.load();
  }
  void beat() noexcept;

  /// Simulates a node crash: running container threads are detached from
  /// tracking and marked failed. Used by failure-injection tests.
  void fail_node();
  bool failed() const noexcept { return failed_.load(); }

 private:
  struct Slot {
    Container container;
    ContainerState state = ContainerState::kAllocated;
    std::thread worker;
  };

  const NodeId id_;
  const Resource capacity_;
  mutable std::mutex mutex_;
  std::map<ContainerId, Slot> slots_;
  Resource used_{0, 0};
  std::atomic<std::int64_t> last_heartbeat_ms_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace dsps::yarn
