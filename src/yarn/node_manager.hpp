// NodeManager: per-node daemon that launches container work in supervised
// TaskRuntime threads and heartbeats its liveness and resource usage to the
// ResourceManager.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "runtime/fault.hpp"
#include "runtime/task_runtime.hpp"
#include "yarn/types.hpp"

namespace dsps::yarn {

class ResourceManager;

class NodeManager {
 public:
  NodeManager(NodeId id, Resource capacity);
  ~NodeManager();

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  const NodeId& id() const noexcept { return id_; }
  Resource capacity() const noexcept { return capacity_; }
  Resource used() const;
  Resource available() const;

  /// Reserves resources for a container. Fails when it does not fit.
  Status reserve(const Container& container);

  /// Releases a container's resources (after completion/failure).
  void release(ContainerId id);

  /// NodeManager-driven container relaunch: a work function that throws is
  /// re-run in place (same container, same resources) up to
  /// `policy.max_attempts` total attempts with backoff between relaunches —
  /// YARN's container retry-context. Applies to containers launched after
  /// the call; the default (1 attempt) fails fast.
  void set_container_retry_policy(runtime::RestartPolicy policy);
  std::uint64_t container_relaunches() const noexcept {
    return relaunches_.load();
  }

  /// Runs `work` on a supervised worker thread for the given (reserved)
  /// container. A work function that exhausts its relaunch attempts marks
  /// the container kFailed and the failure is retained (see
  /// first_container_failure()).
  Status launch(ContainerId id, std::function<void()> work);

  /// Blocks until the container's work function returns.
  void await(ContainerId id);

  /// Blocks until every launched container finished.
  void await_all();

  ContainerState state(ContainerId id) const;

  /// First Status captured from a container work function that threw;
  /// ok() when every container completed cleanly so far.
  Status first_container_failure() const { return runtime_.first_failure(); }

  /// Heartbeat bookkeeping, driven by the ResourceManager's monitor.
  std::int64_t last_heartbeat_ms() const noexcept {
    return last_heartbeat_ms_.load();
  }
  void beat() noexcept;

  /// Simulates a node crash: running container threads are detached from
  /// tracking and marked failed. Used by failure-injection tests.
  void fail_node();
  bool failed() const noexcept { return failed_.load(); }

 private:
  struct Slot {
    Container container;
    ContainerState state = ContainerState::kAllocated;
    runtime::TaskRuntime::TaskId task = 0;
    bool launched = false;
  };

  const NodeId id_;
  const Resource capacity_;
  mutable std::mutex mutex_;
  std::map<ContainerId, Slot> slots_;
  Resource used_{0, 0};
  runtime::RestartPolicy container_retry_{};
  std::atomic<std::uint64_t> relaunches_{0};
  std::atomic<std::int64_t> last_heartbeat_ms_{0};
  std::atomic<bool> failed_{false};
  // Declared last so its destructor joins workers before the slot map and
  // resource bookkeeping they touch are torn down.
  runtime::TaskRuntime runtime_{"yarn-nm"};
};

}  // namespace dsps::yarn
