// One partition's append-only log.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "kafka/record.hpp"

namespace dsps::kafka {

/// Summary of a partition used by admin tooling and the result calculator.
struct PartitionInfo {
  std::int64_t record_count = 0;
  std::int64_t log_start_offset = 0;
  std::int64_t log_end_offset = 0;  // offset the next record will get
  Timestamp first_timestamp = 0;  // 0 when empty
  Timestamp last_timestamp = 0;   // 0 when empty
};

/// Thread-safe append-only record log with blocking fetch.
class PartitionLog {
 public:
  explicit PartitionLog(TimestampType timestamp_type)
      : timestamp_type_(timestamp_type) {}

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends one record, stamping it per the timestamp type.
  /// Returns the assigned offset.
  std::int64_t append(const ProducerRecord& record);

  /// Appends a batch under one lock acquisition (producer batching makes a
  /// real throughput difference, which the ablation bench measures).
  std::int64_t append_batch(const std::vector<ProducerRecord>& records);

  /// Copies up to `max_records` records starting at `offset` into `out`.
  /// Returns the number of records copied (0 when `offset` is at the end).
  std::size_t fetch(std::int64_t offset, std::size_t max_records,
                    std::vector<StoredRecord>& out) const;

  /// Like fetch(), but blocks up to `timeout_ms` for data to arrive. A
  /// close() cuts the wait short and returns whatever is available.
  std::size_t fetch_blocking(std::int64_t offset, std::size_t max_records,
                             std::int64_t timeout_ms,
                             std::vector<StoredRecord>& out) const;

  /// Marks the log closed and wakes every blocked fetcher, so a consumer
  /// polling a broker that is mid-shutdown gets its partial batch now
  /// instead of sleeping out the full fetch timeout. Appends and fetches
  /// of already-stored records still work (drain semantics).
  void close();
  bool closed() const;

  std::int64_t end_offset() const;

  /// Earliest offset whose timestamp is >= `timestamp`; end offset if none.
  /// Timestamps are monotone under LogAppendTime, so this is a
  /// binary search (as in a real broker's time index).
  std::int64_t offset_for_time(Timestamp timestamp) const;

  PartitionInfo info() const;

 private:
  const TimestampType timestamp_type_;
  mutable std::mutex mutex_;
  mutable std::condition_variable data_arrived_;
  mutable int fetch_waiters_ = 0;  // appenders notify only when someone waits
  bool closed_ = false;
  std::vector<StoredRecord> records_;
};

}  // namespace dsps::kafka
