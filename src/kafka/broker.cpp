#include "kafka/broker.hpp"

#include <shared_mutex>
#include <utility>

#include "runtime/fault.hpp"

namespace dsps::kafka {

void Broker::begin_shutdown() {
  shutting_down_.store(true, std::memory_order_release);
  std::shared_lock lock(mutex_);
  for (auto& [name, topic] : topics_) {
    for (auto& replica : topic.replicas) {
      for (auto& log : replica) log->close();
    }
  }
}

Status Broker::create_topic(const std::string& name,
                            const TopicConfig& config) {
  if (config.partitions < 1) {
    return Status::invalid_argument("topic needs at least one partition");
  }
  if (config.replication_factor < 1) {
    return Status::invalid_argument("replication factor must be >= 1");
  }
  std::lock_guard lock(mutex_);
  if (topics_.contains(name)) {
    return Status::already_exists("topic exists: " + name);
  }
  Topic topic;
  topic.config = config;
  topic.replicas.resize(static_cast<std::size_t>(config.replication_factor));
  for (auto& replica : topic.replicas) {
    replica.reserve(static_cast<std::size_t>(config.partitions));
    for (int p = 0; p < config.partitions; ++p) {
      replica.push_back(
          std::make_unique<PartitionLog>(config.timestamp_type));
    }
  }
  topics_.emplace(name, std::move(topic));
  return Status::ok();
}

Status Broker::delete_topic(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (topics_.erase(name) == 0) {
    return Status::not_found("topic not found: " + name);
  }
  return Status::ok();
}

bool Broker::topic_exists(const std::string& name) const {
  std::shared_lock lock(mutex_);
  return topics_.contains(name);
}

Result<TopicMetadata> Broker::describe_topic(const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Status::not_found("topic not found: " + name);
  }
  return TopicMetadata{.name = name, .config = it->second.config};
}

std::vector<std::string> Broker::list_topics() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) names.push_back(name);
  return names;
}

const Broker::Topic* Broker::find_topic(const std::string& name) const {
  std::shared_lock lock(mutex_);
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : &it->second;
}

Result<const Broker::Topic*> Broker::topic_for(const TopicPartition& tp) const {
  const Topic* topic = find_topic(tp.topic);
  if (topic == nullptr) {
    return Status::not_found("topic not found: " + tp.topic);
  }
  if (tp.partition < 0 ||
      tp.partition >= topic->config.partitions) {
    return Status::invalid_argument("partition out of range for " + tp.topic);
  }
  return topic;
}

Result<std::int64_t> Broker::append(const TopicPartition& tp,
                                    const ProducerRecord& record,
                                    bool wait_for_replication) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::closed("broker is shutting down");
  }
  if (runtime::FaultInjector::instance().broker_unavailable(tp.topic)) {
    return Status::unavailable("injected broker outage: " + tp.topic);
  }
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  const std::int64_t offset = topic.value()->replicas[0][p]->append(record);
  if (wait_for_replication) {
    for (std::size_t r = 1; r < topic.value()->replicas.size(); ++r) {
      topic.value()->replicas[r][p]->append(record);
    }
  }
  return offset;
}

Result<std::int64_t> Broker::append_batch(
    const TopicPartition& tp, const std::vector<ProducerRecord>& records,
    bool wait_for_replication) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::closed("broker is shutting down");
  }
  if (runtime::FaultInjector::instance().broker_unavailable(tp.topic)) {
    return Status::unavailable("injected broker outage: " + tp.topic);
  }
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  const std::int64_t last =
      topic.value()->replicas[0][p]->append_batch(records);
  if (wait_for_replication) {
    for (std::size_t r = 1; r < topic.value()->replicas.size(); ++r) {
      topic.value()->replicas[r][p]->append_batch(records);
    }
  }
  return last;
}

Result<std::size_t> Broker::append_many(
    const std::vector<TopicBatch>& batches, bool wait_for_replication) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::closed("broker is shutting down");
  }
  auto& injector = runtime::FaultInjector::instance();
  std::shared_lock lock(mutex_);
  // Validate the whole request first: nothing is appended unless every batch
  // passes, which is what makes a failed request safely retryable.
  std::vector<const Topic*> resolved;
  resolved.reserve(batches.size());
  for (const auto& batch : batches) {
    if (injector.broker_unavailable(batch.tp.topic)) {
      return Status::unavailable("injected broker outage: " + batch.tp.topic);
    }
    const auto it = topics_.find(batch.tp.topic);
    if (it == topics_.end()) {
      return Status::not_found("topic not found: " + batch.tp.topic);
    }
    if (batch.tp.partition < 0 ||
        batch.tp.partition >= it->second.config.partitions) {
      return Status::invalid_argument("partition out of range for " +
                                      batch.tp.topic);
    }
    resolved.push_back(&it->second);
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const Topic* topic = resolved[i];
    const auto p = static_cast<std::size_t>(batches[i].tp.partition);
    topic->replicas[0][p]->append_batch(batches[i].records);
    if (wait_for_replication) {
      for (std::size_t r = 1; r < topic->replicas.size(); ++r) {
        topic->replicas[r][p]->append_batch(batches[i].records);
      }
    }
    total += batches[i].records.size();
  }
  return total;
}

Result<std::size_t> Broker::fetch(const TopicPartition& tp,
                                  std::int64_t offset,
                                  std::size_t max_records,
                                  std::vector<StoredRecord>& out) const {
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  return topic.value()->replicas[0][p]->fetch(offset, max_records, out);
}

Result<std::size_t> Broker::fetch_blocking(const TopicPartition& tp,
                                           std::int64_t offset,
                                           std::size_t max_records,
                                           std::int64_t timeout_ms,
                                           std::vector<StoredRecord>& out)
    const {
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  return topic.value()->replicas[0][p]->fetch_blocking(offset, max_records,
                                                       timeout_ms, out);
}

Result<std::int64_t> Broker::end_offset(const TopicPartition& tp) const {
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  return topic.value()->replicas[0][p]->end_offset();
}

Result<PartitionInfo> Broker::partition_info(const TopicPartition& tp) const {
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  return topic.value()->replicas[0][p]->info();
}

Result<std::int64_t> Broker::offset_for_time(const TopicPartition& tp,
                                             Timestamp timestamp) const {
  auto topic = topic_for(tp);
  if (!topic.is_ok()) return topic.status();
  const auto p = static_cast<std::size_t>(tp.partition);
  return topic.value()->replicas[0][p]->offset_for_time(timestamp);
}

Result<int> Broker::partition_count(const std::string& topic) const {
  std::shared_lock lock(mutex_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status::not_found("topic not found: " + topic);
  }
  return it->second.config.partitions;
}

void Broker::commit_offset(const std::string& group, const TopicPartition& tp,
                           std::int64_t offset) {
  std::lock_guard lock(offsets_mutex_);
  group_offsets_[group][tp.topic][tp.partition] = offset;
}

std::int64_t Broker::committed_offset(const std::string& group,
                                      const TopicPartition& tp) const {
  std::lock_guard lock(offsets_mutex_);
  const auto group_it = group_offsets_.find(group);
  if (group_it == group_offsets_.end()) return -1;
  const auto topic_it = group_it->second.find(tp.topic);
  if (topic_it == group_it->second.end()) return -1;
  const auto part_it = topic_it->second.find(tp.partition);
  if (part_it == topic_it->second.end()) return -1;
  return part_it->second;
}

}  // namespace dsps::kafka
