#include "kafka/partition_log.hpp"

#include <algorithm>
#include <chrono>

namespace dsps::kafka {

std::int64_t PartitionLog::append(const ProducerRecord& record) {
  std::int64_t offset;
  bool wake;
  {
    std::lock_guard lock(mutex_);
    offset = static_cast<std::int64_t>(records_.size());
    records_.push_back(StoredRecord{
        .offset = offset,
        .key = record.key,
        .value = record.value,
        .timestamp = timestamp_type_ == TimestampType::kLogAppendTime
                         ? wall_clock_now()
                         : record.create_time,
    });
    wake = fetch_waiters_ > 0;
  }
  if (wake) data_arrived_.notify_all();
  return offset;
}

std::int64_t PartitionLog::append_batch(
    const std::vector<ProducerRecord>& records) {
  if (records.empty()) return end_offset() - 1;
  std::int64_t last_offset;
  bool wake;
  {
    std::lock_guard lock(mutex_);
    // One timestamp per batch arrival, as a broker stamps at append time.
    const Timestamp now = wall_clock_now();
    if (records_.size() + records.size() > records_.capacity()) {
      // Grow geometrically. An exact-size reserve here defeats push_back's
      // amortization: once the log fills its capacity, every producer flush
      // reallocates (and moves) the entire log — quadratic in log length.
      records_.reserve(
          std::max(records_.capacity() * 2, records_.size() + records.size()));
    }
    for (const auto& record : records) {
      const auto offset = static_cast<std::int64_t>(records_.size());
      records_.push_back(StoredRecord{
          .offset = offset,
          .key = record.key,
          .value = record.value,
          .timestamp = timestamp_type_ == TimestampType::kLogAppendTime
                           ? now
                           : record.create_time,
      });
    }
    last_offset = static_cast<std::int64_t>(records_.size()) - 1;
    wake = fetch_waiters_ > 0;
  }
  if (wake) data_arrived_.notify_all();
  return last_offset;
}

std::size_t PartitionLog::fetch(std::int64_t offset, std::size_t max_records,
                                std::vector<StoredRecord>& out) const {
  std::lock_guard lock(mutex_);
  if (offset < 0) offset = 0;
  const auto start = static_cast<std::size_t>(offset);
  if (start >= records_.size()) return 0;
  const std::size_t n = std::min(max_records, records_.size() - start);
  out.insert(out.end(), records_.begin() + static_cast<std::ptrdiff_t>(start),
             records_.begin() + static_cast<std::ptrdiff_t>(start + n));
  return n;
}

std::size_t PartitionLog::fetch_blocking(std::int64_t offset,
                                         std::size_t max_records,
                                         std::int64_t timeout_ms,
                                         std::vector<StoredRecord>& out) const {
  std::unique_lock lock(mutex_);
  if (offset < 0) offset = 0;
  const auto start = static_cast<std::size_t>(offset);
  if (start >= records_.size() && !closed_) {
    ++fetch_waiters_;
    data_arrived_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return start < records_.size() || closed_; });
    --fetch_waiters_;
  }
  if (start >= records_.size()) return 0;
  const std::size_t n = std::min(max_records, records_.size() - start);
  out.insert(out.end(), records_.begin() + static_cast<std::ptrdiff_t>(start),
             records_.begin() + static_cast<std::ptrdiff_t>(start + n));
  return n;
}

void PartitionLog::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  data_arrived_.notify_all();
}

bool PartitionLog::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::int64_t PartitionLog::end_offset() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::int64_t>(records_.size());
}

std::int64_t PartitionLog::offset_for_time(Timestamp timestamp) const {
  std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), timestamp,
      [](const StoredRecord& record, Timestamp t) {
        return record.timestamp < t;
      });
  return it - records_.begin();
}

PartitionInfo PartitionLog::info() const {
  std::lock_guard lock(mutex_);
  PartitionInfo info;
  info.record_count = static_cast<std::int64_t>(records_.size());
  info.log_end_offset = info.record_count;
  if (!records_.empty()) {
    info.first_timestamp = records_.front().timestamp;
    info.last_timestamp = records_.back().timestamp;
  }
  return info;
}

}  // namespace dsps::kafka
