#include "kafka/consumer_group.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace dsps::kafka {

std::string GroupCoordinator::join(const std::string& group,
                                   const std::string& topic, int partitions) {
  require(partitions >= 1, "topic needs at least one partition");
  std::lock_guard lock(mutex_);
  GroupState& state = groups_[{group, topic}];
  if (state.slots.empty()) {
    state.slots.assign(static_cast<std::size_t>(partitions), {});
  }
  require(state.slots.size() == static_cast<std::size_t>(partitions),
          "partition count changed under an existing group");
  const std::string member =
      group + "-member-" + std::to_string(state.member_seq++);
  state.members.push_back(member);
  rebalance(state);
  ++state.generation;
  return member;
}

void GroupCoordinator::leave(const std::string& group,
                             const std::string& topic,
                             const std::string& member) {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find({group, topic});
  if (it == groups_.end()) return;
  GroupState& state = it->second;
  const auto pos =
      std::find(state.members.begin(), state.members.end(), member);
  if (pos == state.members.end()) return;
  state.members.erase(pos);
  for (PartitionSlot& slot : state.slots) {
    // A departed owner can no longer fetch: transfer immediately (to the
    // destined owner of an in-flight handoff, else back to the pool).
    if (slot.owner == member) {
      slot.owner = slot.pending;
      slot.pending.clear();
    }
    // A departed destined owner cancels the handoff.
    if (slot.pending == member) slot.pending.clear();
  }
  rebalance(state);
  ++state.generation;
}

GroupCoordinator::SyncResult GroupCoordinator::sync(
    const std::string& group, const std::string& topic,
    const std::string& member) const {
  std::lock_guard lock(mutex_);
  SyncResult result;
  const auto it = groups_.find({group, topic});
  if (it == groups_.end()) return result;
  const GroupState& state = it->second;
  result.generation = state.generation;
  for (std::size_t p = 0; p < state.slots.size(); ++p) {
    const PartitionSlot& slot = state.slots[p];
    if (slot.owner != member) continue;
    if (slot.pending.empty()) {
      result.owned.push_back(static_cast<int>(p));
    } else {
      result.revoked.push_back(static_cast<int>(p));
    }
  }
  return result;
}

void GroupCoordinator::release(const std::string& group,
                               const std::string& topic,
                               const std::string& member, int partition) {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find({group, topic});
  if (it == groups_.end()) return;
  GroupState& state = it->second;
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= state.slots.size()) {
    return;
  }
  PartitionSlot& slot = state.slots[static_cast<std::size_t>(partition)];
  if (slot.owner != member || slot.pending.empty()) return;
  slot.owner = slot.pending;
  slot.pending.clear();
  ++state.generation;
}

std::int64_t GroupCoordinator::generation(const std::string& group,
                                          const std::string& topic) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find({group, topic});
  return it == groups_.end() ? 0 : it->second.generation;
}

std::vector<std::string> GroupCoordinator::members(
    const std::string& group, const std::string& topic) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find({group, topic});
  return it == groups_.end() ? std::vector<std::string>{}
                             : it->second.members;
}

void GroupCoordinator::rebalance(GroupState& state) {
  if (state.members.empty()) {
    // Last member gone: in-flight handoffs are moot; keep committed offsets
    // (they live in the broker), drop ownership.
    for (PartitionSlot& slot : state.slots) {
      slot.owner.clear();
      slot.pending.clear();
    }
    return;
  }

  // The destined owner of every slot as of now: a handoff in flight counts
  // for its target, not the member still draining it.
  const std::size_t n = state.slots.size();
  const std::size_t m = state.members.size();
  std::vector<std::string> destined(n);
  for (std::size_t p = 0; p < n; ++p) {
    const PartitionSlot& slot = state.slots[p];
    destined[p] = slot.pending.empty() ? slot.owner : slot.pending;
  }

  // Balanced target share in join order: first (n % m) members take the
  // extra partition.
  std::map<std::string, std::size_t> target;
  for (std::size_t i = 0; i < m; ++i) {
    target[state.members[i]] = n / m + (i < n % m ? 1 : 0);
  }

  // Sticky phase: each member keeps its destined partitions up to target,
  // preferring ones it actually owns (no handoff needed to keep those).
  std::map<std::string, std::size_t> kept;
  std::vector<bool> keep(n, false);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t p = 0; p < n; ++p) {
      if (keep[p] || destined[p].empty()) continue;
      const bool owned_by_destined = state.slots[p].owner == destined[p];
      if ((pass == 0) != owned_by_destined) continue;
      if (target.count(destined[p]) == 0) continue;  // member departed
      if (kept[destined[p]] < target[destined[p]]) {
        keep[p] = true;
        ++kept[destined[p]];
      }
    }
  }

  // Fill phase: surplus and unowned partitions go to under-target members,
  // join order (deterministic).
  auto next_under_target = [&](std::size_t& cursor) -> const std::string* {
    for (std::size_t step = 0; step < m; ++step) {
      const std::string& candidate = state.members[cursor % m];
      ++cursor;
      if (kept[candidate] < target[candidate]) return &candidate;
    }
    return nullptr;
  };
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (keep[p]) continue;
    const std::string* member = next_under_target(cursor);
    if (member == nullptr) break;  // all targets met (n < m)
    destined[p] = *member;
    ++kept[*member];
  }

  // Apply: same owner => stable; different live owner => cooperative
  // handoff (owner keeps fetching until release); no live owner => direct
  // grant.
  for (std::size_t p = 0; p < n; ++p) {
    PartitionSlot& slot = state.slots[p];
    const std::string& d = destined[p];
    if (d.empty() || slot.owner == d) {
      slot.pending.clear();
      continue;
    }
    const bool owner_live =
        !slot.owner.empty() &&
        std::find(state.members.begin(), state.members.end(), slot.owner) !=
            state.members.end();
    if (owner_live) {
      slot.pending = d;
    } else {
      slot.owner = d;
      slot.pending.clear();
    }
  }
}

}  // namespace dsps::kafka
