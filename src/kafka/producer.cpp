#include "kafka/producer.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "runtime/profiler.hpp"

namespace dsps::kafka {

namespace {

/// Attribution id for produce-side stages (registered once, process-wide).
std::uint32_t produce_op() {
  static const std::uint32_t op =
      runtime::Profiler::instance().operator_id("kafka.produce");
  return op;
}

/// Waits until `until_us` on the steady clock. Short waits spin: sleep
/// granularity on a loaded box is tens of microseconds, which would distort
/// the network model at that time scale. Long waits sleep and yield the core
/// — an in-flight network wait occupies no CPU, and modelling it as a spin
/// would (on small machines) serialize the very latency overlap that
/// pipelining and scale-out exist to exploit.
constexpr std::int64_t kSleepableWaitUs = 200;

void wait_until_us(std::int64_t until_us) {
  const std::int64_t now = steady_clock_us();
  if (until_us <= now) return;
  if (until_us - now >= kSleepableWaitUs) {
    std::this_thread::sleep_for(std::chrono::microseconds(until_us - now));
    return;
  }
  while (steady_clock_us() < until_us) {
    // busy wait
  }
}

}  // namespace

Status SendAck::wait() const {
  if (!state_) return Status::ok();
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->status;
}

bool SendAck::done() const {
  if (!state_) return true;
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

Producer::Producer(Broker& broker, ProducerConfig config)
    : broker_(broker), config_(config) {
  require(config_.batch_size >= 1, "producer batch_size must be >= 1");
  if (config_.async) {
    require(config_.max_in_flight >= 1, "max_in_flight must be >= 1");
    require(config_.max_pending_batches >= 1,
            "max_pending_batches must be >= 1");
    auto& registry = runtime::MetricsRegistry::global();
    inflight_gauge_ = registry.gauge("kafka.producer.inflight");
    queue_wait_hist_ = registry.histogram("kafka.producer.queue_wait_us");
    sender_ = std::thread([this] { sender_loop(); });
  }
}

Producer::~Producer() {
  // Best effort: drop errors on destruction; call close() to observe them.
  (void)close();
}

Producer::Buffer& Producer::buffer_for(const std::string& topic,
                                       int partition) {
  if (last_buffer_ != kNoBuffer) {
    Buffer& last = buffers_[last_buffer_];
    if (last.tp.partition == partition && last.tp.topic == topic) return last;
  }
  if (partition < 0) {
    // Invalid partitions surface as broker errors at flush time; keep the
    // old scan-or-create path for them rather than indexing by partition.
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].tp.partition == partition &&
          buffers_[i].tp.topic == topic) {
        last_buffer_ = i;
        return buffers_[i];
      }
    }
    last_buffer_ = buffers_.size();
    buffers_.push_back(Buffer{.tp = {topic, partition}, .records = {}});
    buffers_.back().records.reserve(config_.batch_size);
    return buffers_.back();
  }
  auto& slots = buffer_index_[topic];
  const auto p = static_cast<std::size_t>(partition);
  if (p >= slots.size()) slots.resize(p + 1, kNoBuffer);
  if (slots[p] == kNoBuffer) {
    slots[p] = buffers_.size();
    buffers_.push_back(Buffer{.tp = {topic, partition}, .records = {}});
    buffers_.back().records.reserve(config_.batch_size);
  }
  last_buffer_ = slots[p];
  return buffers_[slots[p]];
}

Status Producer::send(const std::string& topic, int partition,
                      ProducerRecord record) {
  if (closed_) return Status::closed("producer is closed");
  Buffer& buffer = buffer_for(topic, partition);
  if (buffer.records.empty()) buffer.oldest_buffered_us = steady_clock_us();
  buffer.records.push_back(std::move(record));
  records_sent_.fetch_add(1, std::memory_order_relaxed);
  if (buffer.records.size() >= config_.batch_size ||
      (config_.linger_us > 0 &&
       steady_clock_us() - buffer.oldest_buffered_us >= config_.linger_us)) {
    return ship_buffer(buffer);
  }
  return Status::ok();
}

Status Producer::send(const std::string& topic, Payload key, Payload value) {
  auto partitions = broker_.partition_count(topic);
  if (!partitions.is_ok()) return partitions.status();
  const int partition =
      key.empty() ? 0
                  : static_cast<int>(fnv1a(key.view()) %
                                     static_cast<std::uint64_t>(
                                         partitions.value()));
  return send(topic, partition,
              ProducerRecord{.key = std::move(key), .value = std::move(value)});
}

Status Producer::send(const std::string& topic, ProducerRecord record) {
  auto count_it = partition_counts_.find(topic);
  if (count_it == partition_counts_.end()) {
    auto partitions = broker_.partition_count(topic);
    if (!partitions.is_ok()) return partitions.status();
    count_it = partition_counts_.emplace(topic, partitions.value()).first;
  }
  const auto n = static_cast<std::uint64_t>(count_it->second);
  int partition = 0;
  if (config_.partitioner == Partitioner::kKeyHash && !record.key.empty()) {
    partition = static_cast<int>(fnv1a(record.key.view()) % n);
  } else {
    partition = static_cast<int>(round_robin_++ % n);
  }
  return send(topic, partition, std::move(record));
}

SendAck Producer::send_with_ack(const std::string& topic, int partition,
                                ProducerRecord record) {
  if (closed_) {
    auto state = std::make_shared<SendAck::State>();
    state->done = true;
    state->status = Status::closed("producer is closed");
    return SendAck(std::move(state));
  }
  // The ack is shared by every record in the open batch: it completes when
  // the batch the record joined is durable (or terminally failed).
  Buffer& buffer = buffer_for(topic, partition);
  if (!buffer.ack) buffer.ack = std::make_shared<SendAck::State>();
  SendAck ack(buffer.ack);
  // send() may ship the buffer (batch full / linger expired); sync-mode ship
  // completes the ack inline, async-mode ship transfers it to the sender.
  (void)send(topic, partition, std::move(record));
  return ack;
}

Status Producer::ship_buffer(Buffer& buffer) {
  return config_.async ? enqueue_batch(buffer) : flush_buffer(buffer);
}

Status Producer::flush_buffer(Buffer& buffer) {
  if (buffer.records.empty()) return Status::ok();
  // Sync produce path: append (with retries) plus the modelled ack
  // round-trip are one broker RTT from the caller's point of view.
  runtime::ScopedStage rtt(runtime::Stage::kBrokerRtt,
                           runtime::ScopedStage::Mode::kAlways, produce_op());
  const bool wait_replication = config_.acks == Acks::kAll;
  // The buffer is cleared only after an attempt the broker accepted (or a
  // terminal error): a retryable failure must keep the records, or every
  // unavailability window would silently drop a batch.
  runtime::Backoff backoff(config_.retry_backoff);
  Result<std::int64_t> result = Status::internal("no append attempted");
  for (int attempt = 0;; ++attempt) {
    result = buffer.records.size() == 1
                 ? broker_.append(buffer.tp, buffer.records.front(),
                                  wait_replication)
                 : broker_.append_batch(buffer.tp, buffer.records,
                                        wait_replication);
    const bool retryable =
        result.status().code() == StatusCode::kUnavailable;
    if (result.is_ok() || !retryable || attempt >= config_.max_retries) break;
    send_retries_.fetch_add(1, std::memory_order_relaxed);
    backoff.sleep();
  }
  buffer.records.clear();
  // One network round trip per flush when the broker simulates a network
  // (acks=0 producers fire and forget: no ack to wait for).
  if (config_.acks != Acks::kNone) {
    const std::int64_t rtt_us = broker_.rtt_us();
    if (rtt_us > 0) wait_until_us(steady_clock_us() + rtt_us);
  }
  if (buffer.ack) {
    complete_ack(buffer.ack, result.status());
    buffer.ack.reset();
  }
  return result.status();
}

Status Producer::enqueue_batch(Buffer& buffer) {
  if (buffer.records.empty()) return Status::ok();
  AsyncBatch batch{.tp = buffer.tp,
                   .records = std::move(buffer.records),
                   .ack = std::move(buffer.ack),
                   .enqueued_us = steady_clock_us()};
  buffer.records.clear();
  buffer.records.reserve(config_.batch_size);
  buffer.ack.reset();
  {
    std::unique_lock lock(async_mutex_);
    if (pending_.size() >= config_.max_pending_batches) {
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      // Producer backpressure: the caller stalls on the bounded pending
      // queue until the sender drains it.
      runtime::ScopedStage wait(runtime::Stage::kQueueWait,
                                runtime::ScopedStage::Mode::kAlways,
                                produce_op());
      wake_callers_.wait(lock, [this] {
        return pending_.size() < config_.max_pending_batches || stop_sender_;
      });
    }
    if (stop_sender_) {
      const Status closed = Status::closed("producer sender is stopped");
      if (batch.ack) complete_ack(batch.ack, closed);
      return closed;
    }
    pending_.push_back(std::move(batch));
  }
  wake_sender_.notify_one();
  return Status::ok();
}

void Producer::sender_loop() {
  std::vector<AsyncBatch> run;
  for (;;) {
    run.clear();
    {
      std::unique_lock lock(async_mutex_);
      for (;;) {
        if (complete_due_acks_locked(steady_clock_us())) {
          wake_callers_.notify_all();
        }
        if (!pending_.empty() || stop_sender_) break;
        if (in_flight_.empty()) {
          wake_sender_.wait(lock);
        } else {
          // Wake when the oldest outstanding ack is due so SendAck::wait()
          // completes promptly even when no further sends arrive.
          const std::int64_t due = in_flight_.front().due_us;
          wake_sender_.wait_for(
              lock, std::chrono::microseconds(
                        std::max<std::int64_t>(
                            1, due - steady_clock_us())));
        }
      }
      if (pending_.empty() && stop_sender_) break;
      // Write-combining at the request level: everything queued right now
      // ships as one bulk broker request.
      while (!pending_.empty()) {
        run.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      sender_busy_ = true;
    }
    wake_callers_.notify_all();  // the queue has room again
    dispatch_run(run);
    {
      std::lock_guard lock(async_mutex_);
      sender_busy_ = false;
    }
    wake_callers_.notify_all();  // flush() waiters re-check the drain predicate
  }
  drain_in_flight();
}

void Producer::dispatch_run(std::vector<AsyncBatch>& run) {
  const bool wait_replication = config_.acks == Acks::kAll;
  const std::int64_t dispatched_us = steady_clock_us();
  for (const auto& batch : run) {
    queue_wait_hist_.record_us(
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, dispatched_us - batch.enqueued_us)));
  }
  // Respect the pipelining window BEFORE issuing the next request: with
  // max_in_flight requests outstanding, the producer stalls on the oldest
  // unacked request, exactly like max.in.flight.requests.per.connection.
  wait_for_in_flight_slot();

  std::vector<TopicBatch> request;
  request.reserve(run.size());
  for (auto& batch : run) {
    request.push_back(TopicBatch{batch.tp, std::move(batch.records)});
  }
  // append_many is all-or-nothing, so the whole request can be retried
  // after an unavailability window without duplicating any batch — and a
  // retry-in-place (rather than skip-and-continue) is what preserves
  // per-partition ordering across failures.
  runtime::Backoff backoff(config_.retry_backoff);
  Result<std::size_t> result = Status::internal("no append attempted");
  {
    runtime::ScopedStage rtt(runtime::Stage::kBrokerRtt,
                             runtime::ScopedStage::Mode::kAlways,
                             produce_op());
    for (int attempt = 0;; ++attempt) {
      result = broker_.append_many(request, wait_replication);
      const bool retryable =
          result.status().code() == StatusCode::kUnavailable;
      if (result.is_ok() || !retryable || attempt >= config_.max_retries) {
        break;
      }
      send_retries_.fetch_add(1, std::memory_order_relaxed);
      backoff.sleep();
    }
  }
  async_batches_.fetch_add(run.size(), std::memory_order_relaxed);

  std::vector<std::shared_ptr<SendAck::State>> acks;
  for (auto& batch : run) {
    if (batch.ack) acks.push_back(std::move(batch.ack));
  }
  if (!result.is_ok()) {
    for (const auto& ack : acks) complete_ack(ack, result.status());
    std::lock_guard lock(async_mutex_);
    if (async_error_.is_ok()) async_error_ = result.status();
    return;
  }
  if (config_.acks == Acks::kNone) {
    // Fire and forget: no ack comes back, nothing occupies the window.
    for (const auto& ack : acks) complete_ack(ack, Status::ok());
    return;
  }
  const std::int64_t due = steady_clock_us() + broker_.rtt_us();
  std::lock_guard lock(async_mutex_);
  in_flight_.push_back(InFlightRequest{due, std::move(acks)});
  inflight_gauge_.set(static_cast<double>(in_flight_.size()));
}

void Producer::wait_for_in_flight_slot() {
  for (;;) {
    std::int64_t due = 0;
    {
      std::lock_guard lock(async_mutex_);
      complete_due_acks_locked(steady_clock_us());
      if (in_flight_.size() < config_.max_in_flight) return;
      due = in_flight_.front().due_us;
    }
    wake_callers_.notify_all();
    wait_until_us(due);
  }
}

bool Producer::complete_due_acks_locked(std::int64_t now_us) {
  bool completed = false;
  while (!in_flight_.empty() && in_flight_.front().due_us <= now_us) {
    for (const auto& ack : in_flight_.front().acks) {
      complete_ack(ack, Status::ok());
    }
    in_flight_.pop_front();
    completed = true;
  }
  if (completed) {
    inflight_gauge_.set(static_cast<double>(in_flight_.size()));
  }
  return completed;
}

void Producer::drain_in_flight() {
  std::unique_lock lock(async_mutex_);
  while (!in_flight_.empty()) {
    const std::int64_t due = in_flight_.back().due_us;
    lock.unlock();
    wait_until_us(due);
    lock.lock();
    complete_due_acks_locked(steady_clock_us());
  }
  lock.unlock();
  wake_callers_.notify_all();
}

void Producer::complete_ack(const std::shared_ptr<SendAck::State>& ack,
                            const Status& status) {
  {
    std::lock_guard lock(ack->mutex);
    if (ack->done) return;
    ack->done = true;
    ack->status = status;
  }
  ack->cv.notify_all();
}

Status Producer::flush() {
  if (!config_.async) {
    for (auto& buffer : buffers_) {
      if (Status s = flush_buffer(buffer); !s.is_ok()) return s;
    }
    return Status::ok();
  }
  for (auto& buffer : buffers_) {
    if (Status s = enqueue_batch(buffer); !s.is_ok()) return s;
  }
  std::unique_lock lock(async_mutex_);
  wake_sender_.notify_one();  // the sender may be sleeping on an ack timer
  wake_callers_.wait(lock, [this] {
    return pending_.empty() && !sender_busy_ && in_flight_.empty();
  });
  return std::exchange(async_error_, Status::ok());
}

Status Producer::flush_async() {
  if (!config_.async) return flush();
  for (auto& buffer : buffers_) {
    if (Status s = enqueue_batch(buffer); !s.is_ok()) return s;
  }
  std::lock_guard lock(async_mutex_);
  return async_error_;  // peek only: flush()/close() own clearing it
}

Status Producer::close() {
  if (closed_) return Status::ok();
  Status s = flush();
  closed_ = true;
  if (config_.async) {
    {
      std::lock_guard lock(async_mutex_);
      stop_sender_ = true;
    }
    wake_sender_.notify_all();
    wake_callers_.notify_all();
    if (sender_.joinable()) sender_.join();
    if (s.is_ok()) {
      std::lock_guard lock(async_mutex_);
      s = std::exchange(async_error_, Status::ok());
    }
  }
  return s;
}

}  // namespace dsps::kafka
