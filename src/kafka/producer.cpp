#include "kafka/producer.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace dsps::kafka {

Producer::Producer(Broker& broker, ProducerConfig config)
    : broker_(broker), config_(config) {
  require(config_.batch_size >= 1, "producer batch_size must be >= 1");
}

Producer::~Producer() {
  // Best effort: drop errors on destruction; call close() to observe them.
  (void)close();
}

Producer::Buffer& Producer::buffer_for(const std::string& topic,
                                       int partition) {
  if (last_buffer_ != kNoBuffer) {
    Buffer& last = buffers_[last_buffer_];
    if (last.tp.partition == partition && last.tp.topic == topic) return last;
  }
  if (partition < 0) {
    // Invalid partitions surface as broker errors at flush time; keep the
    // old scan-or-create path for them rather than indexing by partition.
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].tp.partition == partition &&
          buffers_[i].tp.topic == topic) {
        last_buffer_ = i;
        return buffers_[i];
      }
    }
    last_buffer_ = buffers_.size();
    buffers_.push_back(Buffer{.tp = {topic, partition}, .records = {}});
    buffers_.back().records.reserve(config_.batch_size);
    return buffers_.back();
  }
  auto& slots = buffer_index_[topic];
  const auto p = static_cast<std::size_t>(partition);
  if (p >= slots.size()) slots.resize(p + 1, kNoBuffer);
  if (slots[p] == kNoBuffer) {
    slots[p] = buffers_.size();
    buffers_.push_back(Buffer{.tp = {topic, partition}, .records = {}});
    buffers_.back().records.reserve(config_.batch_size);
  }
  last_buffer_ = slots[p];
  return buffers_[slots[p]];
}

Status Producer::send(const std::string& topic, int partition,
                      ProducerRecord record) {
  if (closed_) return Status::closed("producer is closed");
  Buffer& buffer = buffer_for(topic, partition);
  if (buffer.records.empty()) buffer.oldest_buffered_us = steady_clock_us();
  buffer.records.push_back(std::move(record));
  ++records_sent_;
  if (buffer.records.size() >= config_.batch_size ||
      (config_.linger_us > 0 &&
       steady_clock_us() - buffer.oldest_buffered_us >= config_.linger_us)) {
    return flush_buffer(buffer);
  }
  return Status::ok();
}

Status Producer::send(const std::string& topic, Payload key, Payload value) {
  auto partitions = broker_.partition_count(topic);
  if (!partitions.is_ok()) return partitions.status();
  const int partition =
      key.empty() ? 0
                  : static_cast<int>(fnv1a(key.view()) %
                                     static_cast<std::uint64_t>(
                                         partitions.value()));
  return send(topic, partition,
              ProducerRecord{.key = std::move(key), .value = std::move(value)});
}

Status Producer::send(const std::string& topic, ProducerRecord record) {
  auto count_it = partition_counts_.find(topic);
  if (count_it == partition_counts_.end()) {
    auto partitions = broker_.partition_count(topic);
    if (!partitions.is_ok()) return partitions.status();
    count_it = partition_counts_.emplace(topic, partitions.value()).first;
  }
  const auto n = static_cast<std::uint64_t>(count_it->second);
  int partition = 0;
  if (config_.partitioner == Partitioner::kKeyHash && !record.key.empty()) {
    partition = static_cast<int>(fnv1a(record.key.view()) % n);
  } else {
    partition = static_cast<int>(round_robin_++ % n);
  }
  return send(topic, partition, std::move(record));
}

Status Producer::flush_buffer(Buffer& buffer) {
  if (buffer.records.empty()) return Status::ok();
  const bool wait_replication = config_.acks == Acks::kAll;
  // The buffer is cleared only after an attempt the broker accepted (or a
  // terminal error): a retryable failure must keep the records, or every
  // unavailability window would silently drop a batch.
  runtime::Backoff backoff(config_.retry_backoff);
  Result<std::int64_t> result = Status::internal("no append attempted");
  for (int attempt = 0;; ++attempt) {
    result = buffer.records.size() == 1
                 ? broker_.append(buffer.tp, buffer.records.front(),
                                  wait_replication)
                 : broker_.append_batch(buffer.tp, buffer.records,
                                        wait_replication);
    const bool retryable =
        result.status().code() == StatusCode::kUnavailable;
    if (result.is_ok() || !retryable || attempt >= config_.max_retries) break;
    ++send_retries_;
    backoff.sleep();
  }
  buffer.records.clear();
  // One network round trip per flush when the broker simulates a network
  // (acks=0 producers fire and forget: no ack to wait for). Short RTTs
  // spin-wait: sleep granularity on a loaded box is tens of microseconds,
  // which would distort the model at that time scale. Long RTTs sleep and
  // yield the core instead — an in-flight network wait occupies no CPU, and
  // modelling it as a spin would (on small machines) serialize the very
  // latency overlap that scale-out exists to exploit.
  if (config_.acks != Acks::kNone) {
    const std::int64_t rtt_us = broker_.rtt_us();
    constexpr std::int64_t kSleepableRttUs = 200;
    if (rtt_us >= kSleepableRttUs) {
      std::this_thread::sleep_for(std::chrono::microseconds(rtt_us));
    } else if (rtt_us > 0) {
      const std::int64_t until = steady_clock_us() + rtt_us;
      while (steady_clock_us() < until) {
        // busy wait
      }
    }
  }
  return result.status();
}

Status Producer::flush() {
  for (auto& buffer : buffers_) {
    if (Status s = flush_buffer(buffer); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status Producer::close() {
  if (closed_) return Status::ok();
  Status s = flush();
  closed_ = true;
  return s;
}

}  // namespace dsps::kafka
