// MiniKafka broker: topic management and the append/fetch data plane.
//
// Replication is bookkept (a topic has a replication factor and per-replica
// high-water marks) but replicas live in the same process; `acks=all`
// therefore waits for the simulated follower appends, which is the
// behavioural difference the data sender's ack setting controls.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kafka/consumer_group.hpp"
#include "kafka/partition_log.hpp"
#include "kafka/record.hpp"

namespace dsps::kafka {

struct TopicConfig {
  int partitions = 1;
  int replication_factor = 1;
  TimestampType timestamp_type = TimestampType::kLogAppendTime;
};

struct TopicMetadata {
  std::string name;
  TopicConfig config;
};

/// One partition's slice of a bulk produce request (append_many).
struct TopicBatch {
  TopicPartition tp;
  std::vector<ProducerRecord> records;
};

class Broker {
 public:
  Broker() = default;
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Simulated client<->broker network round-trip time, paid by producers
  /// once per *flush* (not per buffered record). The paper's brokers sat on
  /// separate VMs; a sink that produces record-by-record pays one RTT per
  /// record while a batching sink amortizes it — the mechanism behind the
  /// output-volume-proportional Beam penalty on Apex (§III-C3). Default 0.
  void set_rtt_us(std::int64_t rtt_us) noexcept { rtt_us_.store(rtt_us); }
  std::int64_t rtt_us() const noexcept { return rtt_us_.load(); }

  /// Marks the broker as shutting down and wakes every blocked fetcher.
  /// Stored records stay fetchable (drain semantics); new appends are
  /// rejected with Unavailable. Consumers observe FetchState::kClosed from
  /// poll_batch instead of sleeping out their fetch timeout.
  void begin_shutdown();
  bool shutting_down() const noexcept {
    return shutting_down_.load(std::memory_order_acquire);
  }

  Status create_topic(const std::string& name, const TopicConfig& config);
  Status delete_topic(const std::string& name);
  bool topic_exists(const std::string& name) const;
  Result<TopicMetadata> describe_topic(const std::string& name) const;
  std::vector<std::string> list_topics() const;

  /// Appends to the leader replica; when `wait_for_replication` (acks=all),
  /// also appends to every follower replica before returning.
  Result<std::int64_t> append(const TopicPartition& tp,
                              const ProducerRecord& record,
                              bool wait_for_replication);

  Result<std::int64_t> append_batch(const TopicPartition& tp,
                                    const std::vector<ProducerRecord>& records,
                                    bool wait_for_replication);

  /// Bulk produce: appends a multi-partition batch under ONE topic-map lock
  /// acquisition — the request-level analogue of a broker handling a single
  /// multi-partition ProduceRequest. Validation (shutdown, injected outage,
  /// topic/partition existence) is all-or-nothing and happens before any
  /// append, so a producer may retry the whole request after kUnavailable
  /// without duplicating records. Returns the total records appended.
  Result<std::size_t> append_many(const std::vector<TopicBatch>& batches,
                                  bool wait_for_replication);

  /// Non-blocking fetch from the leader replica.
  Result<std::size_t> fetch(const TopicPartition& tp, std::int64_t offset,
                            std::size_t max_records,
                            std::vector<StoredRecord>& out) const;

  /// Blocking fetch (up to `timeout_ms`) from the leader replica.
  Result<std::size_t> fetch_blocking(const TopicPartition& tp,
                                     std::int64_t offset,
                                     std::size_t max_records,
                                     std::int64_t timeout_ms,
                                     std::vector<StoredRecord>& out) const;

  Result<std::int64_t> end_offset(const TopicPartition& tp) const;
  Result<PartitionInfo> partition_info(const TopicPartition& tp) const;
  Result<int> partition_count(const std::string& topic) const;

  /// Kafka's offsetsForTimes: the earliest offset whose record timestamp is
  /// >= `timestamp`, or the end offset when every record is older.
  Result<std::int64_t> offset_for_time(const TopicPartition& tp,
                                       Timestamp timestamp) const;

  /// Consumer-group offset commit store (the __consumer_offsets analogue).
  void commit_offset(const std::string& group, const TopicPartition& tp,
                     std::int64_t offset);
  /// Returns -1 when the group has no committed offset for the partition.
  std::int64_t committed_offset(const std::string& group,
                                const TopicPartition& tp) const;

  /// Consumer-group coordinator: sticky assignment + cooperative rebalance
  /// (see consumer_group.hpp). Consumers reach it through
  /// Consumer::subscribe_group.
  GroupCoordinator& coordinator() noexcept { return coordinator_; }

 private:
  struct Topic {
    TopicConfig config;
    // replicas[r][p] — replica r of partition p; replica 0 is the leader.
    std::vector<std::vector<std::unique_ptr<PartitionLog>>> replicas;
  };

  const Topic* find_topic(const std::string& name) const;
  Result<const Topic*> topic_for(const TopicPartition& tp) const;

  std::atomic<std::int64_t> rtt_us_{0};
  std::atomic<bool> shutting_down_{false};
  // Guards the topic map, not the logs. Topic creation is rare and lookups
  // dominate (every append/fetch resolves its topic), so readers share.
  mutable std::shared_mutex mutex_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, std::map<std::string, std::map<int, std::int64_t>>>
      group_offsets_;  // group -> topic -> partition -> offset
  mutable std::mutex offsets_mutex_;
  GroupCoordinator coordinator_;
};

}  // namespace dsps::kafka
