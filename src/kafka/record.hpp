// Record types for MiniKafka, the in-process message broker.
//
// MiniKafka reproduces the Kafka semantics the paper's benchmark methodology
// rests on: per-partition append-only logs with monotonically increasing
// offsets, order guaranteed only within a partition, and LogAppendTime
// stamping (the timestamp the broker assigns when a record is appended is
// stored with the record — §III-A3 uses exactly these timestamps to compute
// execution times system-independently).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "runtime/payload.hpp"

namespace dsps::kafka {

/// Record keys/values are refcounted immutable slices: appending to the log,
/// replicating, and fetching a batch all share storage instead of copying.
using Payload = runtime::Payload;

/// How a partition stamps record timestamps.
enum class TimestampType {
  kCreateTime,     // producer-supplied timestamp is kept
  kLogAppendTime,  // broker overwrites with append wall-clock time
};

/// What a producer sends.
struct ProducerRecord {
  Payload key;
  Payload value;
  /// Only meaningful under CreateTime; ignored under LogAppendTime.
  Timestamp create_time = 0;
};

/// What the log stores and consumers receive.
struct StoredRecord {
  std::int64_t offset = 0;
  Payload key;
  Payload value;
  Timestamp timestamp = 0;  // LogAppendTime or CreateTime per topic config
};

/// Identifies one partition of one topic.
struct TopicPartition {
  std::string topic;
  int partition = 0;

  friend bool operator==(const TopicPartition&,
                         const TopicPartition&) = default;
};

}  // namespace dsps::kafka
