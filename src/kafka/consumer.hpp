// MiniKafka consumer: manual-assignment polling with optional consumer-group
// offset commits (used by the engines' replay-on-restart recovery hooks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/record.hpp"

namespace dsps::kafka {

/// A record as returned by Consumer::poll (adds its origin partition).
struct ConsumedRecord {
  TopicPartition tp;
  std::int64_t offset = 0;
  Payload key;
  Payload value;
  Timestamp timestamp = 0;
};

/// One contiguous fetch from a single partition, as returned by
/// Consumer::poll_batch. Records keep the broker's StoredRecord layout, so
/// a batch costs one bulk copy out of the partition log and no per-record
/// re-wrapping; `records[i].offset == base_offset + i`.
struct FetchBatch {
  TopicPartition tp;
  std::int64_t base_offset = 0;
  std::vector<StoredRecord> records;

  bool empty() const noexcept { return records.empty(); }
  std::size_t size() const noexcept { return records.size(); }
};

struct ConsumerConfig {
  /// Optional consumer group for offset commits; empty = no group.
  std::string group_id;
  std::size_t max_poll_records = 1000;
};

/// Outcome of a poll_batch call. kClosed means the broker is mid-shutdown:
/// the batch in `out` (possibly partial, possibly empty) is the final one
/// and must still be processed — no further data will arrive. Marked
/// [[nodiscard]] so every call site decides what shutdown means for it.
enum class [[nodiscard]] FetchState {
  kOk,
  kClosed,
};

class Consumer {
 public:
  Consumer(Broker& broker, ConsumerConfig config = {});

  /// Group-subscribed consumers leave the group (without committing — the
  /// crash-like departure; call leave_group() first for a graceful exit).
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Assigns all partitions of `topic`, starting from the committed offset
  /// of the consumer group (or 0 without a group / commit).
  Status subscribe(const std::string& topic);

  /// Coordinator-managed group subscription (requires a group_id): joins
  /// the consumer group for `topic`; partitions arrive via the sticky
  /// assignor and move cooperatively as members join and leave. Assignment
  /// changes are applied at the top of each poll, so everything a poll
  /// returned has been processed (in the synchronous poll-process-poll
  /// pattern) before its partition can be revoked: the revoke commits the
  /// position and only then releases the partition to its new owner —
  /// no record is lost or delivered twice across a rebalance.
  Status subscribe_group(const std::string& topic);

  /// Graceful departure: commits all positions, then leaves the group so
  /// the remaining members pick up exactly where this one stopped.
  Status leave_group();

  /// True while subscribe_group() membership is active.
  bool in_group() const noexcept { return group_mode_; }

  /// Assigns exactly one partition.
  Status assign(const TopicPartition& tp, std::int64_t offset);

  /// Polls all assigned partitions; blocks up to `timeout_ms` when no data
  /// is immediately available. Returns the records (possibly empty).
  std::vector<ConsumedRecord> poll(std::int64_t timeout_ms);

  /// Batch-native poll: round-robins over the assignments and returns the
  /// first non-empty contiguous fetch (up to `max_poll_records`) from a
  /// single partition, advancing that partition's position past the batch.
  /// Unlike poll(), records are not re-wrapped one by one — callers that
  /// want the values can move them straight out of the batch. Blocks up to
  /// `timeout_ms` when nothing is immediately available — unless the broker
  /// is mid-shutdown, in which case the call returns immediately with
  /// whatever is fetchable and reports FetchState::kClosed.
  FetchState poll_batch(std::int64_t timeout_ms, FetchBatch& out);

  /// Moves the position of `tp` to `offset`.
  Status seek(const TopicPartition& tp, std::int64_t offset);

  /// Commits current positions to the consumer group (no-op without group).
  void commit();

  /// Current fetch position per assigned partition.
  std::vector<std::pair<TopicPartition, std::int64_t>> positions() const;

  /// True once every assigned partition is fully consumed *right now*.
  bool at_end() const;

 private:
  struct Assignment {
    TopicPartition tp;
    std::int64_t position = 0;
  };

  /// Applies the coordinator's current view: commits + releases revoked
  /// partitions, adopts newly granted ones at their committed offsets.
  void sync_group();

  Broker& broker_;
  ConsumerConfig config_;
  std::vector<Assignment> assignments_;
  std::size_t next_partition_ = 0;  // round-robin over assignments
  // Group-subscription state (subscribe_group).
  bool group_mode_ = false;
  std::string group_topic_;
  std::string member_id_;
  std::int64_t seen_generation_ = -1;
};

}  // namespace dsps::kafka
