// MiniKafka producer.
//
// The two producer behaviours that matter to the reproduction:
//  * acks        — 0 (fire and forget, buffered), 1 (leader sync),
//                  all (leader + follower replicas sync);
//  * batching    — records accumulate until `batch_size` or flush(); a
//                  sink that sends record-by-record with batch_size=1 pays
//                  one broker round-trip per record, which is exactly how
//                  the Beam-on-Apex writer loses (§III-C3, Fig. 11).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/record.hpp"
#include "runtime/fault.hpp"

namespace dsps::kafka {

enum class Acks { kNone = 0, kLeader = 1, kAll = -1 };

/// How send(topic, record) picks a partition (Kafka's DefaultPartitioner /
/// RoundRobinPartitioner):
///   kKeyHash    — hash of the record key modulo partition count; keyless
///                 records fall back to round-robin (so a keyless workload
///                 still spreads over a multi-partition topic);
///   kRoundRobin — strict rotation regardless of keys.
enum class Partitioner { kKeyHash, kRoundRobin };

struct ProducerConfig {
  Acks acks = Acks::kLeader;
  Partitioner partitioner = Partitioner::kKeyHash;
  /// Records buffered per partition before an automatic flush.
  std::size_t batch_size = 500;
  /// Maximum microseconds a buffered record may wait before send() forces a
  /// flush (Kafka's linger.ms, scaled to our microsecond timestamps).
  /// Keeps low-volume outputs (e.g. the Grep query's ~0.3%) flowing out
  /// during execution instead of all at close().
  std::int64_t linger_us = 500;
  /// Send retries per flush (Kafka's `retries`): a flush that fails with a
  /// retryable error (broker unavailability window) is re-attempted up to
  /// this many extra times with capped exponential backoff + jitter.
  int max_retries = 5;
  runtime::BackoffPolicy retry_backoff{
      .initial_us = 200, .multiplier = 2.0, .max_us = 10'000};
};

class Producer {
 public:
  Producer(Broker& broker, ProducerConfig config);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Buffers (or immediately appends, for batch_size==1) one record.
  Status send(const std::string& topic, int partition, ProducerRecord record);

  /// Convenience: key/value to partition chosen by key hash (or 0 if no key).
  Status send(const std::string& topic, Payload key, Payload value);

  /// Partitioner-driven send: resolves the partition from the configured
  /// Partitioner and the topic's partition count (cached per topic).
  Status send(const std::string& topic, ProducerRecord record);

  /// Flushes all partition buffers.
  Status flush();

  /// Flush + stop accepting records.
  Status close();

  std::uint64_t records_sent() const noexcept { return records_sent_; }
  /// Flush attempts that failed retryably and were re-sent.
  std::uint64_t send_retries() const noexcept { return send_retries_; }

 private:
  struct Buffer {
    TopicPartition tp;
    std::vector<ProducerRecord> records;
    std::int64_t oldest_buffered_us = 0;  // steady clock; 0 = empty
  };

  static constexpr std::size_t kNoBuffer = static_cast<std::size_t>(-1);

  Buffer& buffer_for(const std::string& topic, int partition);
  Status flush_buffer(Buffer& buffer);

  Broker& broker_;
  const ProducerConfig config_;
  std::vector<Buffer> buffers_;
  // topic -> partition -> index into buffers_; replaces a linear scan over
  // every buffer per send(). last_buffer_ short-circuits the common case of
  // consecutive sends to the same partition without hashing the topic.
  std::unordered_map<std::string, std::vector<std::size_t>> buffer_index_;
  // Partitioner state: per-topic partition count (topics never shrink) and
  // the round-robin cursor.
  std::unordered_map<std::string, int> partition_counts_;
  std::uint64_t round_robin_ = 0;
  std::size_t last_buffer_ = kNoBuffer;
  std::uint64_t records_sent_ = 0;
  std::uint64_t send_retries_ = 0;
  bool closed_ = false;
};

}  // namespace dsps::kafka
