// MiniKafka producer.
//
// The two producer behaviours that matter to the reproduction:
//  * acks        — 0 (fire and forget, buffered), 1 (leader sync),
//                  all (leader + follower replicas sync);
//  * batching    — records accumulate until `batch_size` or flush(); a
//                  sink that sends record-by-record with batch_size=1 pays
//                  one broker round-trip per record, which is exactly how
//                  the Beam-on-Apex writer loses (§III-C3, Fig. 11).
//
// Asynchronous pipelined mode (opt-in, `ProducerConfig::async`): send()
// only write-combines into per-partition buffers; a background sender
// thread ships full buffers to the broker as bulk requests and models the
// ack round-trip off the caller's thread, with at most `max_in_flight`
// requests outstanding (Kafka's max.in.flight.requests.per.connection).
// Per-partition ordering is preserved: a single sender dispatches batches
// in handoff order and retries a failed request in place before moving on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/record.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"

namespace dsps::kafka {

enum class Acks { kNone = 0, kLeader = 1, kAll = -1 };

/// How send(topic, record) picks a partition (Kafka's DefaultPartitioner /
/// RoundRobinPartitioner):
///   kKeyHash    — hash of the record key modulo partition count; keyless
///                 records fall back to round-robin (so a keyless workload
///                 still spreads over a multi-partition topic);
///   kRoundRobin — strict rotation regardless of keys.
enum class Partitioner { kKeyHash, kRoundRobin };

struct ProducerConfig {
  Acks acks = Acks::kLeader;
  Partitioner partitioner = Partitioner::kKeyHash;
  /// Records buffered per partition before an automatic flush.
  std::size_t batch_size = 500;
  /// Maximum microseconds a buffered record may wait before send() forces a
  /// flush (Kafka's linger.ms, scaled to our microsecond timestamps).
  /// Keeps low-volume outputs (e.g. the Grep query's ~0.3%) flowing out
  /// during execution instead of all at close().
  std::int64_t linger_us = 500;
  /// Send retries per flush (Kafka's `retries`): a flush that fails with a
  /// retryable error (broker unavailability window) is re-attempted up to
  /// this many extra times with capped exponential backoff + jitter.
  int max_retries = 5;
  runtime::BackoffPolicy retry_backoff{
      .initial_us = 200, .multiplier = 2.0, .max_us = 10'000};
  /// Asynchronous pipelined sends: full buffers are handed to a background
  /// sender thread instead of being appended (and paying the ack RTT) on
  /// the calling thread. Errors become sticky and surface at the next
  /// flush()/close(); per-partition ordering still holds.
  bool async = false;
  /// Async mode: maximum broker requests dispatched but not yet acked
  /// (Kafka's max.in.flight.requests.per.connection). The sender stalls on
  /// the oldest outstanding ack once the window is full.
  std::size_t max_in_flight = 5;
  /// Async mode: bound on batches queued to the sender. send() blocks once
  /// the queue is full — backpressure instead of unbounded memory.
  std::size_t max_pending_batches = 64;
};

/// Completion handle for one asynchronously produced batch — the delivery
/// report / Future<RecordMetadata> analogue. Copyable; wait() blocks until
/// the broker acked (or terminally failed) the batch containing the record.
/// A default-constructed SendAck is already complete with Status::ok().
class SendAck {
 public:
  SendAck() = default;

  /// Blocks until the batch completes; returns its final status.
  Status wait() const;
  bool done() const;

 private:
  friend class Producer;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::ok();
  };
  explicit SendAck(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Producer {
 public:
  Producer(Broker& broker, ProducerConfig config);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Buffers (or immediately appends, for batch_size==1) one record.
  Status send(const std::string& topic, int partition, ProducerRecord record);

  /// Convenience: key/value to partition chosen by key hash (or 0 if no key).
  Status send(const std::string& topic, Payload key, Payload value);

  /// Partitioner-driven send: resolves the partition from the configured
  /// Partitioner and the topic's partition count (cached per topic).
  Status send(const std::string& topic, ProducerRecord record);

  /// send() plus a completion handle for the batch the record joined. In
  /// sync mode the ack completes at the flush that ships the batch; in
  /// async mode it completes when the simulated broker ack arrives.
  SendAck send_with_ack(const std::string& topic, int partition,
                        ProducerRecord record);

  /// Flushes all partition buffers. Async mode: hands every open buffer to
  /// the sender, then blocks until the queue and the in-flight window are
  /// drained; returns (and clears) the first sticky async error.
  Status flush();

  /// Async mode: hands open buffers to the sender WITHOUT waiting for acks
  /// — the end-of-window handoff used by sinks that must not stall the
  /// operator thread. Reports (but does not clear) any sticky error.
  /// Sync mode: identical to flush().
  Status flush_async();

  /// Flush + stop accepting records. Async mode also drains and joins the
  /// sender thread; a retryable broker outage that outlived the producer's
  /// retries surfaces here as a Status (kUnavailable), never a crash.
  Status close();

  std::uint64_t records_sent() const noexcept {
    return records_sent_.load(std::memory_order_relaxed);
  }
  /// Flush attempts that failed retryably and were re-sent.
  std::uint64_t send_retries() const noexcept {
    return send_retries_.load(std::memory_order_relaxed);
  }
  /// Async mode: batches shipped by the sender thread so far.
  std::uint64_t async_batches_sent() const noexcept {
    return async_batches_.load(std::memory_order_relaxed);
  }
  /// Async mode: times send() blocked because the pending queue was full.
  std::uint64_t backpressure_waits() const noexcept {
    return backpressure_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    TopicPartition tp;
    std::vector<ProducerRecord> records;
    std::int64_t oldest_buffered_us = 0;  // steady clock; 0 = empty
    std::shared_ptr<SendAck::State> ack;  // completion for the open batch
  };

  /// One write-combined batch queued to the sender thread.
  struct AsyncBatch {
    TopicPartition tp;
    std::vector<ProducerRecord> records;
    std::shared_ptr<SendAck::State> ack;
    std::int64_t enqueued_us = 0;
  };

  /// One dispatched broker request whose (simulated) ack is still on the
  /// wire. The sender completes it once `due_us` passes.
  struct InFlightRequest {
    std::int64_t due_us = 0;
    std::vector<std::shared_ptr<SendAck::State>> acks;
  };

  static constexpr std::size_t kNoBuffer = static_cast<std::size_t>(-1);

  Buffer& buffer_for(const std::string& topic, int partition);
  Status flush_buffer(Buffer& buffer);
  /// Routes a full buffer: sync mode appends in place, async mode enqueues.
  Status ship_buffer(Buffer& buffer);
  Status enqueue_batch(Buffer& buffer);

  void sender_loop();
  void dispatch_run(std::vector<AsyncBatch>& run);
  void wait_for_in_flight_slot();
  /// Pops and completes every in-flight request whose ack is due. Caller
  /// holds async_mutex_. Returns true when at least one request completed.
  bool complete_due_acks_locked(std::int64_t now_us);
  void drain_in_flight();

  static void complete_ack(const std::shared_ptr<SendAck::State>& ack,
                           const Status& status);

  Broker& broker_;
  const ProducerConfig config_;
  std::vector<Buffer> buffers_;
  // topic -> partition -> index into buffers_; replaces a linear scan over
  // every buffer per send(). last_buffer_ short-circuits the common case of
  // consecutive sends to the same partition without hashing the topic.
  std::unordered_map<std::string, std::vector<std::size_t>> buffer_index_;
  // Partitioner state: per-topic partition count (topics never shrink) and
  // the round-robin cursor.
  std::unordered_map<std::string, int> partition_counts_;
  std::uint64_t round_robin_ = 0;
  std::size_t last_buffer_ = kNoBuffer;
  std::atomic<std::uint64_t> records_sent_{0};
  std::atomic<std::uint64_t> send_retries_{0};
  bool closed_ = false;

  // --- async mode ----------------------------------------------------------
  // buffers_ stay caller-thread-only; ownership of a batch transfers to the
  // sender under async_mutex_. SendAck states have their own locks (acquired
  // after async_mutex_, never the other way around).
  mutable std::mutex async_mutex_;
  std::condition_variable wake_sender_;
  std::condition_variable wake_callers_;
  std::deque<AsyncBatch> pending_;
  std::deque<InFlightRequest> in_flight_;
  bool stop_sender_ = false;
  bool sender_busy_ = false;
  Status async_error_ = Status::ok();
  std::atomic<std::uint64_t> async_batches_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};
  runtime::Gauge inflight_gauge_;
  runtime::TimeHistogram queue_wait_hist_;
  std::thread sender_;  // last member: joined before the rest dies
};

}  // namespace dsps::kafka
