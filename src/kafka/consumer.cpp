#include "kafka/consumer.hpp"

#include <utility>

#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/profiler.hpp"

namespace dsps::kafka {

namespace {

/// Attribution id for fetch-side stages (registered once, process-wide).
std::uint32_t fetch_op() {
  static const std::uint32_t op =
      runtime::Profiler::instance().operator_id("kafka.fetch");
  return op;
}

}  // namespace

Consumer::Consumer(Broker& broker, ConsumerConfig config)
    : broker_(broker), config_(std::move(config)) {}

Consumer::~Consumer() {
  if (group_mode_) {
    broker_.coordinator().leave(config_.group_id, group_topic_, member_id_);
  }
}

Status Consumer::subscribe_group(const std::string& topic) {
  if (config_.group_id.empty()) {
    return Status::invalid_argument("subscribe_group requires a group_id");
  }
  if (group_mode_) {
    return Status::failed_precondition("already subscribed to a group");
  }
  auto partitions = broker_.partition_count(topic);
  if (!partitions.is_ok()) return partitions.status();
  member_id_ = broker_.coordinator().join(config_.group_id, topic,
                                          partitions.value());
  group_topic_ = topic;
  group_mode_ = true;
  // First assignment lands at the next poll via sync_group().
  return Status::ok();
}

Status Consumer::leave_group() {
  if (!group_mode_) return Status::ok();
  commit();
  broker_.coordinator().leave(config_.group_id, group_topic_, member_id_);
  group_mode_ = false;
  assignments_.clear();
  next_partition_ = 0;
  seen_generation_ = -1;
  return Status::ok();
}

void Consumer::sync_group() {
  auto& coordinator = broker_.coordinator();
  const auto view =
      coordinator.sync(config_.group_id, group_topic_, member_id_);
  if (view.generation == seen_generation_) return;
  seen_generation_ = view.generation;

  // Cooperative revoke: everything poll returned so far has been processed
  // (the caller is between polls), so the position is safe to make durable.
  // Commit first, release second — the new owner starts exactly there.
  for (const int p : view.revoked) {
    const TopicPartition tp{group_topic_, p};
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      if (!(assignments_[i].tp == tp)) continue;
      broker_.commit_offset(config_.group_id, tp, assignments_[i].position);
      assignments_.erase(assignments_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      break;
    }
    coordinator.release(config_.group_id, group_topic_, member_id_, p);
  }

  // Adopt newly granted partitions at their committed offsets.
  for (const int p : view.owned) {
    const TopicPartition tp{group_topic_, p};
    bool already = false;
    for (const auto& assignment : assignments_) {
      if (assignment.tp == tp) {
        already = true;
        break;
      }
    }
    if (already) continue;
    const std::int64_t committed =
        broker_.committed_offset(config_.group_id, tp);
    assignments_.push_back(
        Assignment{.tp = tp, .position = committed >= 0 ? committed : 0});
  }
  next_partition_ = 0;
}

Status Consumer::subscribe(const std::string& topic) {
  auto partitions = broker_.partition_count(topic);
  if (!partitions.is_ok()) return partitions.status();
  for (int p = 0; p < partitions.value(); ++p) {
    const TopicPartition tp{topic, p};
    std::int64_t offset = 0;
    if (!config_.group_id.empty()) {
      const std::int64_t committed =
          broker_.committed_offset(config_.group_id, tp);
      if (committed >= 0) offset = committed;
    }
    assignments_.push_back(Assignment{.tp = tp, .position = offset});
  }
  return Status::ok();
}

Status Consumer::assign(const TopicPartition& tp, std::int64_t offset) {
  if (!broker_.topic_exists(tp.topic)) {
    return Status::not_found("topic not found: " + tp.topic);
  }
  assignments_.push_back(Assignment{.tp = tp, .position = offset});
  return Status::ok();
}

std::vector<ConsumedRecord> Consumer::poll(std::int64_t timeout_ms) {
  std::vector<ConsumedRecord> out;
  if (group_mode_) sync_group();
  if (assignments_.empty()) return out;

  std::vector<StoredRecord> fetched;
  // First pass: non-blocking round-robin over assignments.
  for (std::size_t i = 0; i < assignments_.size(); ++i) {
    auto& assignment = assignments_[next_partition_];
    next_partition_ = (next_partition_ + 1) % assignments_.size();
    fetched.clear();
    const auto fetched_count =
        broker_.fetch(assignment.tp, assignment.position,
                      config_.max_poll_records - out.size(), fetched);
    if (fetched_count.is_ok() && fetched_count.value() > 0) {
      for (auto& record : fetched) {
        out.push_back(ConsumedRecord{.tp = assignment.tp,
                                     .offset = record.offset,
                                     .key = std::move(record.key),
                                     .value = std::move(record.value),
                                     .timestamp = record.timestamp});
      }
      assignment.position += static_cast<std::int64_t>(fetched_count.value());
      if (out.size() >= config_.max_poll_records) return out;
    }
  }
  if (!out.empty() || timeout_ms <= 0) return out;

  // Nothing available: block on the first assignment for the timeout.
  auto& assignment = assignments_.front();
  fetched.clear();
  const auto fetched_count = broker_.fetch_blocking(
      assignment.tp, assignment.position, config_.max_poll_records,
      timeout_ms, fetched);
  if (fetched_count.is_ok()) {
    for (auto& record : fetched) {
      out.push_back(ConsumedRecord{.tp = assignment.tp,
                                   .offset = record.offset,
                                   .key = std::move(record.key),
                                   .value = std::move(record.value),
                                   .timestamp = record.timestamp});
    }
    assignment.position += static_cast<std::int64_t>(fetched_count.value());
  }
  return out;
}

FetchState Consumer::poll_batch(std::int64_t timeout_ms, FetchBatch& out) {
  out.records.clear();
  out.base_offset = 0;
  if (group_mode_) sync_group();
  if (assignments_.empty()) {
    return broker_.shutting_down() ? FetchState::kClosed : FetchState::kOk;
  }
  runtime::FaultInjector::instance().maybe_stall(
      runtime::FaultPoint::kSlowConsumer, assignments_.front().tp.topic);

  // Non-blocking round-robin: first assignment with data wins the batch.
  // Fetches that return data are broker round-trips.
  {
    runtime::ScopedStage rtt(runtime::Stage::kBrokerRtt,
                             runtime::ScopedStage::Mode::kAlways, fetch_op());
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      auto& assignment = assignments_[next_partition_];
      next_partition_ = (next_partition_ + 1) % assignments_.size();
      const auto fetched_count =
          broker_.fetch(assignment.tp, assignment.position,
                        config_.max_poll_records, out.records);
      if (fetched_count.is_ok() && fetched_count.value() > 0) {
        out.tp = assignment.tp;
        out.base_offset = assignment.position;
        assignment.position +=
            static_cast<std::int64_t>(fetched_count.value());
        return broker_.shutting_down() ? FetchState::kClosed : FetchState::kOk;
      }
    }
  }
  // Mid-shutdown a consumer never waits: nothing was immediately fetchable,
  // so this is the (empty) final batch.
  if (broker_.shutting_down()) return FetchState::kClosed;
  if (timeout_ms <= 0) return FetchState::kOk;

  // Nothing available: block on the first assignment for the timeout —
  // idle-input time, attributed as queue_wait, not broker cost.
  // Broker shutdown interrupts the wait via PartitionLog::close().
  auto& assignment = assignments_.front();
  runtime::ScopedStage wait(runtime::Stage::kQueueWait,
                            runtime::ScopedStage::Mode::kAlways, fetch_op());
  const auto fetched_count = broker_.fetch_blocking(
      assignment.tp, assignment.position, config_.max_poll_records, timeout_ms,
      out.records);
  if (fetched_count.is_ok() && fetched_count.value() > 0) {
    out.tp = assignment.tp;
    out.base_offset = assignment.position;
    assignment.position += static_cast<std::int64_t>(fetched_count.value());
  }
  return broker_.shutting_down() ? FetchState::kClosed : FetchState::kOk;
}

Status Consumer::seek(const TopicPartition& tp, std::int64_t offset) {
  for (auto& assignment : assignments_) {
    if (assignment.tp == tp) {
      assignment.position = offset;
      return Status::ok();
    }
  }
  return Status::not_found("partition not assigned: " + tp.topic);
}

void Consumer::commit() {
  if (config_.group_id.empty()) return;
  auto& registry = runtime::MetricsRegistry::global();
  for (const auto& assignment : assignments_) {
    broker_.commit_offset(config_.group_id, assignment.tp,
                          assignment.position);
    // Per-partition consumer-lag gauge: records appended beyond the offset
    // just committed. The scaling/elasticity work keys off these. Published
    // under the canonical engine.component.metric name; snapshot lookups of
    // the legacy "kafka.lag." spelling resolve through the rename shim.
    const auto end = broker_.end_offset(assignment.tp);
    if (end.is_ok()) {
      registry
          .gauge("kafka.consumer.lag." + config_.group_id + "." +
                 assignment.tp.topic + ".p" +
                 std::to_string(assignment.tp.partition))
          .set(static_cast<double>(end.value() - assignment.position));
    }
  }
}

std::vector<std::pair<TopicPartition, std::int64_t>> Consumer::positions()
    const {
  std::vector<std::pair<TopicPartition, std::int64_t>> out;
  out.reserve(assignments_.size());
  for (const auto& assignment : assignments_) {
    out.emplace_back(assignment.tp, assignment.position);
  }
  return out;
}

bool Consumer::at_end() const {
  for (const auto& assignment : assignments_) {
    const auto end = broker_.end_offset(assignment.tp);
    if (!end.is_ok() || assignment.position < end.value()) return false;
  }
  return true;
}

}  // namespace dsps::kafka
