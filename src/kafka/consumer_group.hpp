// Consumer-group coordinator: sticky partition assignment with cooperative
// (two-phase) rebalance, the GroupCoordinator/JoinGroup/SyncGroup analogue.
//
// Protocol (sync-on-poll; no background heartbeat threads):
//   * join(group, topic)   — registers a member and triggers a rebalance.
//   * sync(member)         — returns the member's current view: the
//                            partitions it owns and the partitions it must
//                            revoke (cooperative handoff in progress).
//   * release(partition)   — the old owner, having committed its offset,
//                            hands the partition over; only now does the
//                            destined owner start seeing it in sync().owned.
//   * leave(member)        — departs; its partitions redistribute. Owned
//                            partitions transfer immediately (the departed
//                            member can no longer fetch), so the new owner
//                            resumes from the last committed offset —
//                            at-least-once, exactly like a Kafka member
//                            falling out of the group.
//
// Sticky assignment: on every membership change the coordinator recomputes
// a balanced target (sizes differ by at most one) while moving as few
// partitions as possible — a member keeps its current partitions up to its
// target share. A moving partition is never owned by two members at once:
// it stays with the old owner (marked pending) until released, which is the
// cooperative-rebalance invariant that makes a mid-stream join/leave safe
// (no concurrent fetch => no loss, no duplication past the committed
// offset).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dsps::kafka {

class GroupCoordinator {
 public:
  struct SyncResult {
    std::int64_t generation = 0;
    /// Partitions the member currently owns and may fetch from.
    std::vector<int> owned;
    /// Partitions the member must commit and release() (handoff pending).
    std::vector<int> revoked;
  };

  GroupCoordinator() = default;
  GroupCoordinator(const GroupCoordinator&) = delete;
  GroupCoordinator& operator=(const GroupCoordinator&) = delete;

  /// Registers a new member for (group, topic) over `partitions` partitions
  /// and rebalances. Returns the generated member id.
  std::string join(const std::string& group, const std::string& topic,
                   int partitions);

  /// Removes the member and rebalances. Partitions it owned (or was due to
  /// receive) redistribute; owned ones transfer immediately.
  void leave(const std::string& group, const std::string& topic,
             const std::string& member);

  /// The member's current assignment view. Cheap (one mutex acquisition) —
  /// consumers call this once per poll.
  SyncResult sync(const std::string& group, const std::string& topic,
                  const std::string& member) const;

  /// Cooperative handoff, phase two: the old owner has committed the
  /// partition's offset and relinquishes it to the destined owner.
  void release(const std::string& group, const std::string& topic,
               const std::string& member, int partition);

  /// Current rebalance generation (bumps on join/leave/release).
  std::int64_t generation(const std::string& group,
                          const std::string& topic) const;

  /// Members currently registered, in join order (test/debug surface).
  std::vector<std::string> members(const std::string& group,
                                   const std::string& topic) const;

 private:
  struct PartitionSlot {
    std::string owner;    // fetching member ("" = unowned)
    std::string pending;  // destined owner during a cooperative handoff
  };

  struct GroupState {
    std::int64_t generation = 0;
    int member_seq = 0;
    std::vector<std::string> members;  // join order
    std::vector<PartitionSlot> slots;  // index == partition
  };

  /// Sticky rebalance over `state` (callers hold mutex_).
  static void rebalance(GroupState& state);

  using Key = std::pair<std::string, std::string>;  // (group, topic)

  mutable std::mutex mutex_;
  std::map<Key, GroupState> groups_;
};

}  // namespace dsps::kafka
