#include "apex/dag.hpp"

namespace dsps::apex {

int Dag::add_operator(const std::string& name, OperatorFactory factory,
                      bool is_input) {
  DagNode node;
  node.id = static_cast<int>(nodes_.size());
  node.name = name;
  node.factory = std::move(factory);
  node.is_input = is_input;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void Dag::set_partitions(int node, int partitions) {
  require(node >= 0 && node < static_cast<int>(nodes_.size()),
          "unknown DAG node");
  require(partitions >= 1, "partitions must be >= 1");
  // Input operators partition too (Apex's partitionable InputOperator):
  // each instance learns its slice from OperatorContext at setup.
  nodes_[static_cast<std::size_t>(node)].partitions = partitions;
}

void Dag::add_stream(const std::string& name, PortRef from, PortRef to,
                     Locality locality, CodecFactory codec) {
  streams_.push_back(DagStream{.name = name,
                               .from = from,
                               .to = to,
                               .locality = locality,
                               .codec = std::move(codec)});
}

Status Dag::validate() const {
  const auto node_count = static_cast<int>(nodes_.size());
  for (const auto& stream : streams_) {
    if (stream.from.node < 0 || stream.from.node >= node_count ||
        stream.to.node < 0 || stream.to.node >= node_count) {
      return Status::invalid_argument("stream " + stream.name +
                                      " references unknown node");
    }
    if (stream.from.node == stream.to.node) {
      return Status::invalid_argument("stream " + stream.name +
                                      " is a self-loop");
    }
    const auto& to = nodes_[static_cast<std::size_t>(stream.to.node)];
    if (to.is_input) {
      return Status::invalid_argument("stream " + stream.name +
                                      " feeds an input operator");
    }
    if (stream.locality == Locality::kThreadLocal) {
      const auto& from = nodes_[static_cast<std::size_t>(stream.from.node)];
      if (from.partitions != to.partitions) {
        return Status::invalid_argument(
            "THREAD_LOCAL stream " + stream.name +
            " requires equal partition counts");
      }
    }
    if (stream.locality == Locality::kNodeLocal && !stream.codec) {
      return Status::invalid_argument("stream " + stream.name +
                                      " crosses containers without a codec");
    }
  }
  // A runnable DAG needs at least one input operator to drive it.
  bool has_input = false;
  for (const auto& node : nodes_) has_input |= node.is_input;
  if (!has_input) {
    return Status::invalid_argument("DAG has no input operator");
  }
  return Status::ok();
}

}  // namespace dsps::apex
