// Apex-sim operator model (§II-D): operators with input/output ports and a
// streaming-window lifecycle (setup / begin_window / process / end_window /
// teardown). Ports are registered by index in the constructor; the engine
// binds output ports to stream transports at deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace dsps::apex {

/// Type-erased tuple (typed wiring is validated by the operator authors;
/// streams carry exactly one type by construction).
using Tuple = std::shared_ptr<void>;

template <typename T, typename... Args>
Tuple make_tuple_of(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

template <typename T>
const T& tuple_cast(const Tuple& tuple) {
  return *static_cast<const T*>(tuple.get());
}

using WindowId = std::int64_t;

struct OperatorContext {
  std::string name;
  int partition_index = 0;
  int partition_count = 1;
};

class Operator {
 public:
  virtual ~Operator() = default;

  virtual void setup(const OperatorContext& /*context*/) {}
  virtual void begin_window(WindowId /*window*/) {}
  virtual void end_window() {}
  /// Called once when the bounded stream ends, *before* end-of-stream
  /// propagates downstream — last chance to emit buffered results.
  virtual void end_stream() {}
  virtual void teardown() {}

  /// Post-teardown resource disposition. teardown() must not throw (it also
  /// runs on shutdown/unwind paths); an operator whose close failed reports
  /// it here instead, and the engine surfaces the Status as a retryable app
  /// failure after every operator in the group has torn down.
  virtual Status close_status() const { return Status::ok(); }
  /// STRAM's committed-window notification (Apex's CheckpointListener):
  /// every operator in the DAG has fully processed window `window`, so
  /// state bound to it — e.g. the Kafka input's read offsets — may be made
  /// durable. Fires at window boundaries with the min completed window
  /// across all deployed groups.
  virtual void committed(WindowId /*window*/) {}

  // --- engine-facing surface ---
  int input_port_count() const {
    return static_cast<int>(input_handlers_.size());
  }
  int output_port_count() const { return static_cast<int>(sinks_.size()); }

  void deliver(int port, const Tuple& tuple) {
    input_handlers_[static_cast<std::size_t>(port)](tuple);
  }
  void bind_output(int port, std::function<void(Tuple)> sink) {
    sinks_[static_cast<std::size_t>(port)] = std::move(sink);
  }

 protected:
  /// Registers an input port; returns its index.
  int register_input(std::function<void(const Tuple&)> handler) {
    input_handlers_.push_back(std::move(handler));
    return static_cast<int>(input_handlers_.size()) - 1;
  }

  /// Registers an output port; returns its index.
  int register_output() {
    sinks_.emplace_back([](Tuple) {});
    return static_cast<int>(sinks_.size()) - 1;
  }

  /// Emits a tuple on an output port.
  void emit(int port, Tuple tuple) {
    sinks_[static_cast<std::size_t>(port)](std::move(tuple));
  }

 private:
  std::vector<std::function<void(const Tuple&)>> input_handlers_;
  std::vector<std::function<void(Tuple)>> sinks_;
};

/// Source operators drive the pipeline: the engine calls emit_tuples
/// repeatedly inside streaming windows until it returns false (exhausted).
class InputOperator : public Operator {
 public:
  /// Emits up to `budget` tuples. Returns false when the source is done.
  virtual bool emit_tuples(std::size_t budget) = 0;
};

using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

}  // namespace dsps::apex
