// Logical DAG: operators (as factories, so they can be partitioned) and
// streams with locality hints.
//
// Localities (matching Apex):
//   THREAD_LOCAL    — producer and consumer share a thread; emit is a
//                     direct call (how the fast native pipelines deploy).
//   CONTAINER_LOCAL — same container, different threads; in-memory queue,
//                     no serialization.
//   NODE_LOCAL      — different containers: every tuple is serialized by
//                     the stream codec, crosses a queue, and is
//                     deserialized (the default, and what the Beam runner
//                     produces for every translated transform).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "apex/codec.hpp"
#include "apex/operator.hpp"

namespace dsps::apex {

enum class Locality { kThreadLocal, kContainerLocal, kNodeLocal };

struct PortRef {
  int node = 0;
  int port = 0;
};

struct DagNode {
  int id = 0;
  std::string name;
  OperatorFactory factory;
  bool is_input = false;
  int partitions = 1;  // VCORE-style parallelism (DAG attribute, §III-A2)
};

struct DagStream {
  std::string name;
  PortRef from;
  PortRef to;
  Locality locality = Locality::kNodeLocal;
  CodecFactory codec;
};

class Dag {
 public:
  /// Adds an operator described by a factory (invoked once per partition).
  int add_operator(const std::string& name, OperatorFactory factory,
                   bool is_input = false);

  int add_input_operator(const std::string& name, OperatorFactory factory) {
    return add_operator(name, std::move(factory), /*is_input=*/true);
  }

  /// Sets the operator's partition count (input operators must stay 1).
  void set_partitions(int node, int partitions);

  /// Connects output port `from` to input port `to`.
  void add_stream(const std::string& name, PortRef from, PortRef to,
                  Locality locality, CodecFactory codec);

  const std::vector<DagNode>& nodes() const noexcept { return nodes_; }
  const std::vector<DagStream>& streams() const noexcept { return streams_; }

  /// Structural validation: port references in range, inputs have no
  /// inbound streams, THREAD_LOCAL ends have equal partition counts.
  Status validate() const;

 private:
  std::vector<DagNode> nodes_;
  std::vector<DagStream> streams_;
};

}  // namespace dsps::apex
