#include "apex/operators_library.hpp"

#include <utility>

namespace dsps::apex {

using runtime::Payload;

KafkaPayloadInput::KafkaPayloadInput(kafka::Broker& broker, std::string topic)
    : KafkaPayloadInput(broker, Config{.topic = std::move(topic)}) {}

KafkaPayloadInput::KafkaPayloadInput(kafka::Broker& broker, Config config)
    : broker_(broker), config_(std::move(config)), out_(register_output()) {}

void KafkaPayloadInput::setup(const OperatorContext& context) {
  consumer_ = std::make_unique<kafka::Consumer>(
      broker_,
      kafka::ConsumerConfig{.group_id = config_.group_id,
                            .max_poll_records = config_.max_poll_records});
  const auto partitions = broker_.partition_count(config_.topic);
  partitions.status().expect_ok();
  for (int p = 0; p < partitions.value(); ++p) {
    // Partitioned input: each physical instance reads its own slice of the
    // topic (instance i of n takes partitions p where p % n == i).
    if (context.partition_count > 1 &&
        p % context.partition_count != context.partition_index) {
      continue;
    }
    const kafka::TopicPartition tp{config_.topic, p};
    std::int64_t start = 0;
    if (!config_.group_id.empty()) {
      const std::int64_t committed =
          broker_.committed_offset(config_.group_id, tp);
      if (committed >= 0) start = committed;
    }
    consumer_->assign(tp, start).expect_ok();
    const auto end = broker_.end_offset(tp);
    end.status().expect_ok();
    bounded_end_.push_back(end.value());
  }
}

bool KafkaPayloadInput::emit_tuples(std::size_t budget) {
  std::size_t emitted = 0;
  bool broker_closed = false;
  kafka::FetchBatch batch;
  while (emitted < budget) {
    const kafka::FetchState state = consumer_->poll_batch(0, batch);
    broker_closed = state == kafka::FetchState::kClosed;
    if (batch.empty()) break;
    for (auto& record : batch.records) {
      // The record's value is already a refcounted slice of the broker's
      // storage; moving it into the tuple copies no bytes.
      emit(out_, make_tuple_of<Payload>(std::move(record.value)));
      ++emitted;
    }
    if (broker_closed) break;
  }
  if (broker_closed) return false;  // mid-shutdown: that was the final batch
  const auto positions = consumer_->positions();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i].second < bounded_end_[i]) return true;
  }
  return false;
}

void KafkaPayloadInput::begin_window(WindowId window) {
  current_window_ = window;
}

void KafkaPayloadInput::end_window() {
  if (config_.group_id.empty()) return;
  // Snapshot the read positions at this window boundary; they become
  // durable only when STRAM reports the window committed across the DAG.
  uncommitted_.push_back(
      WindowOffsets{current_window_, consumer_->positions()});
}

void KafkaPayloadInput::committed(WindowId window) {
  if (config_.group_id.empty()) return;
  // Commit the newest snapshot at or below the committed window, drop all
  // snapshots it supersedes.
  const WindowOffsets* newest = nullptr;
  for (const auto& snapshot : uncommitted_) {
    if (snapshot.window <= window &&
        (newest == nullptr || snapshot.window > newest->window)) {
      newest = &snapshot;
    }
  }
  if (newest == nullptr) return;
  commit_positions(newest->positions);
  std::erase_if(uncommitted_, [window](const WindowOffsets& snapshot) {
    return snapshot.window <= window;
  });
}

void KafkaPayloadInput::commit_positions(
    const std::vector<std::pair<kafka::TopicPartition, std::int64_t>>&
        positions) {
  for (const auto& [tp, offset] : positions) {
    broker_.commit_offset(config_.group_id, tp, offset);
  }
}

KafkaPayloadOutput::KafkaPayloadOutput(kafka::Broker& broker, Config config)
    : broker_(broker),
      config_(std::move(config)),
      in_(register_input([this](const Tuple& tuple) { on_tuple(tuple); })) {}

void KafkaPayloadOutput::setup(const OperatorContext& context) {
  producer_ = std::make_unique<kafka::Producer>(
      broker_, kafka::ProducerConfig{.acks = config_.acks,
                                     .batch_size = config_.batch_size,
                                     .async = config_.async});
  partition_ = config_.partition;
  if (partition_ < 0) {
    const auto count = broker_.partition_count(config_.topic);
    count.status().expect_ok();
    partition_ = context.partition_index % count.value();
  }
}

void KafkaPayloadOutput::on_tuple(const Tuple& tuple) {
  producer_
      ->send(config_.topic, partition_,
             kafka::ProducerRecord{.key = {},
                                   .value = tuple_cast<Payload>(tuple)})
      .expect_ok();
}

void KafkaPayloadOutput::end_window() {
  // Apex output operators typically flush at window boundaries; with
  // batch_size == 1 every tuple has already gone out synchronously. The
  // async producer instead hands the window's batches to its sender without
  // stalling the operator thread on the ack round-trip; the drain happens
  // at teardown. A flush failure that outlived the producer's internal
  // retries fails this window: the supervisor converts the throw into the
  // Status the recovery machinery retries on.
  if (!producer_) return;
  (config_.async ? producer_->flush_async() : producer_->flush()).expect_ok();
}

void KafkaPayloadOutput::teardown() {
  // teardown() must not throw — it also runs while the engine is unwinding
  // from another failure, where a second exception would terminate the
  // process. A close that still fails after the producer's retries (e.g. a
  // broker-unavailability window covering shutdown) is reported through
  // close_status() and surfaced by the engine as a retryable app failure.
  if (producer_) close_status_ = producer_->close();
}

FunctionOperator::FunctionOperator(Fn fn)
    : fn_(std::move(fn)),
      in_(register_input([this](const Tuple& tuple) {
        fn_(tuple, [this](Tuple out) { emit(out_, std::move(out)); });
      })),
      out_(register_output()) {}

OperatorFactory kafka_input_factory(kafka::Broker& broker, std::string topic) {
  return [&broker, topic] {
    return std::make_unique<KafkaPayloadInput>(broker, topic);
  };
}

OperatorFactory kafka_input_factory(kafka::Broker& broker,
                                    KafkaPayloadInput::Config config) {
  return [&broker, config] {
    return std::make_unique<KafkaPayloadInput>(broker, config);
  };
}

OperatorFactory kafka_output_factory(kafka::Broker& broker,
                                     KafkaPayloadOutput::Config config) {
  return [&broker, config] {
    return std::make_unique<KafkaPayloadOutput>(broker, config);
  };
}

OperatorFactory map_payload_factory(
    std::function<Payload(const Payload&)> fn) {
  return [fn = std::move(fn)] {
    return std::make_unique<FunctionOperator>(
        [fn](const Tuple& tuple, const std::function<void(Tuple)>& emit) {
          emit(make_tuple_of<Payload>(fn(tuple_cast<Payload>(tuple))));
        });
  };
}

OperatorFactory filter_payload_factory(
    std::function<bool(const Payload&)> predicate) {
  return [predicate = std::move(predicate)] {
    return std::make_unique<FunctionOperator>(
        [predicate](const Tuple& tuple,
                    const std::function<void(Tuple)>& emit) {
          if (predicate(tuple_cast<Payload>(tuple))) emit(tuple);
        });
  };
}

OperatorFactory flat_map_payload_factory(
    std::function<std::vector<Payload>(const Payload&)> fn) {
  return [fn = std::move(fn)] {
    return std::make_unique<FunctionOperator>(
        [fn](const Tuple& tuple, const std::function<void(Tuple)>& emit) {
          for (auto& value : fn(tuple_cast<Payload>(tuple))) {
            emit(make_tuple_of<Payload>(std::move(value)));
          }
        });
  };
}

}  // namespace dsps::apex
