// Malhar-like operator library: Kafka connectors and functional compute
// operators (§II-D: "Apex Malhar ... contains different input/output
// operators and compute operators", including Kafka connectors).
//
// Tuples are runtime::Payload slices: the Kafka input operator adopts the
// broker record's storage without copying, and every THREAD_LOCAL /
// CONTAINER_LOCAL hop moves only the refcounted handle. Bytes are copied
// exactly where Apex copies them — at serialized NODE_LOCAL boundaries
// (see PayloadCodec) and when a compute operator materializes a new value.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apex/operator.hpp"
#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"
#include "runtime/payload.hpp"

namespace dsps::apex {

/// Bounded Kafka input: reads the whole topic as it stood at setup and
/// finishes. Output port 0 emits runtime::Payload tuples sharing the
/// broker's storage.
class KafkaPayloadInput final : public InputOperator {
 public:
  struct Config {
    std::string topic;
    /// Consumer group for offset recovery. When set, the input resumes
    /// from the group's committed offsets at setup and commits offsets as
    /// STRAM's committed-window notifications arrive (committed()), i.e.
    /// only once every deployed group has fully processed the window whose
    /// outputs those offsets produced — at-least-once on relaunch.
    std::string group_id;
    std::size_t max_poll_records = 2048;
  };

  KafkaPayloadInput(kafka::Broker& broker, std::string topic);
  KafkaPayloadInput(kafka::Broker& broker, Config config);

  void setup(const OperatorContext& context) override;
  bool emit_tuples(std::size_t budget) override;
  void begin_window(WindowId window) override;
  void end_window() override;
  /// Offsets become durable ONLY here (never at teardown): committing on
  /// teardown would race a downstream group failing after this input group
  /// completed, making offsets durable for output that never flushed. The
  /// engine fires a final committed() after every group completes cleanly.
  void committed(WindowId window) override;

  int output_port() const noexcept { return out_; }

 private:
  struct WindowOffsets {
    WindowId window = 0;
    std::vector<std::pair<kafka::TopicPartition, std::int64_t>> positions;
  };

  void commit_positions(
      const std::vector<std::pair<kafka::TopicPartition, std::int64_t>>&
          positions);

  kafka::Broker& broker_;
  Config config_;
  int out_;
  std::unique_ptr<kafka::Consumer> consumer_;
  std::vector<std::int64_t> bounded_end_;
  WindowId current_window_ = 0;
  std::vector<WindowOffsets> uncommitted_;  // per closed, not-yet-committed window
};

/// Kafka output with configurable producer batching. Input port 0 accepts
/// runtime::Payload tuples.
class KafkaPayloadOutput final : public Operator {
 public:
  struct Config {
    std::string topic;
    /// Output partition; -1 = auto (the instance's partition_index modulo
    /// the topic's partition count) so partitioned outputs write to
    /// disjoint logs.
    int partition = 0;
    kafka::Acks acks = kafka::Acks::kLeader;
    /// 1 = synchronous per-tuple produce (how the generic Beam writer
    /// behaves on this runner); the native operator batches.
    std::size_t batch_size = 500;
    /// Asynchronous pipelined producer: end_window() becomes a non-blocking
    /// batch handoff to the background sender instead of a full drain; the
    /// pipeline drains (with zero loss) at teardown.
    bool async = false;
  };

  KafkaPayloadOutput(kafka::Broker& broker, Config config);

  void setup(const OperatorContext& context) override;
  void end_window() override;
  void teardown() override;
  Status close_status() const override { return close_status_; }

  int input_port() const noexcept { return in_; }

 private:
  void on_tuple(const Tuple& tuple);

  kafka::Broker& broker_;
  Config config_;
  int in_;
  int partition_ = 0;  // resolved at setup() (config or auto by instance)
  std::unique_ptr<kafka::Producer> producer_;
  Status close_status_ = Status::ok();
};

/// Element-wise transform; input port 0, output port 0.
class FunctionOperator final : public Operator {
 public:
  /// fn(tuple, emit): call emit zero or more times.
  using Fn = std::function<void(const Tuple&, const std::function<void(Tuple)>&)>;

  explicit FunctionOperator(Fn fn);

  int input_port() const noexcept { return in_; }
  int output_port() const noexcept { return out_; }

 private:
  Fn fn_;
  int in_;
  int out_;
};

/// Convenience factories.
OperatorFactory kafka_input_factory(kafka::Broker& broker, std::string topic);
OperatorFactory kafka_input_factory(kafka::Broker& broker,
                                    KafkaPayloadInput::Config config);
OperatorFactory kafka_output_factory(kafka::Broker& broker,
                                     KafkaPayloadOutput::Config config);
OperatorFactory map_payload_factory(
    std::function<runtime::Payload(const runtime::Payload&)> fn);
OperatorFactory filter_payload_factory(
    std::function<bool(const runtime::Payload&)> predicate);
OperatorFactory flat_map_payload_factory(
    std::function<std::vector<runtime::Payload>(const runtime::Payload&)> fn);

}  // namespace dsps::apex
