// Apex-sim execution engine.
//
// The logical DAG is expanded into a physical plan: each operator becomes
// `partitions` instances; THREAD_LOCAL streams fuse instances into thread
// groups; CONTAINER_LOCAL groups share a container; everything else gets its
// own container. The STRAM (Streaming Application Manager, §II-D) runs as
// the YARN AppMaster: it requests one container per container group,
// launches the group threads inside them, and waits for completion.
//
// Data crossing a thread boundary travels through a mailbox queue;
// data crossing a *container* boundary is additionally serialized and
// deserialized by the stream codec — the cost model behind the paper's
// Apex observations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "apex/dag.hpp"
#include "yarn/resource_manager.hpp"

namespace dsps::apex {

struct EngineConfig {
  /// Tuples an input operator may emit per streaming window.
  std::size_t window_tuple_budget = 4096;
  std::size_t mailbox_capacity = 4096;
  /// Resources requested per operator instance.
  int vcores_per_instance = 1;
  int memory_mb_per_instance = 256;
};

struct ApplicationStats {
  double duration_ms = 0.0;
  int containers_used = 0;
  int thread_groups = 0;
  std::int64_t windows_emitted = 0;
  /// Tuples delivered into each logical operator (by node name).
  std::map<std::string, std::uint64_t> tuples_in;
};

/// Validates, deploys via the ResourceManager, runs to completion
/// (bounded input operators), and reports stats.
Result<ApplicationStats> launch_application(yarn::ResourceManager& rm,
                                            const Dag& dag,
                                            const EngineConfig& config);

/// Renders the physical plan (instances, thread groups, containers) for
/// inspection — the Apex analogue of the Fig. 12/13 plan dumps.
Result<std::string> render_physical_plan(const Dag& dag);

}  // namespace dsps::apex
