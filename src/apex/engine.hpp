// Apex-sim execution engine.
//
// The logical DAG is expanded into a physical plan: each operator becomes
// `partitions` instances; THREAD_LOCAL streams fuse instances into thread
// groups; CONTAINER_LOCAL groups share a container; everything else gets its
// own container. The STRAM (Streaming Application Manager, §II-D) runs as
// the YARN AppMaster: it requests one container per container group,
// launches the group threads inside them, and waits for completion.
//
// Data crossing a thread boundary travels through a mailbox queue;
// data crossing a *container* boundary is additionally serialized and
// deserialized by the stream codec — the cost model behind the paper's
// Apex observations.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.hpp"
#include "apex/dag.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "yarn/resource_manager.hpp"

namespace dsps::apex {

struct EngineConfig {
  /// Tuples an input operator may emit per streaming window.
  std::size_t window_tuple_budget = 4096;
  std::size_t mailbox_capacity = 4096;
  /// Resources requested per operator instance.
  int vcores_per_instance = 1;
  int memory_mb_per_instance = 256;
  /// YARN application attempts (STRAM relaunch on failure): a failed
  /// attempt tears every container down and redeploys fresh operator
  /// instances. Kafka inputs configured with a consumer group resume from
  /// their committed offsets, so a reattempt replays only windows past the
  /// last committed one — at-least-once end to end.
  int max_attempts = 1;
  runtime::BackoffPolicy restart_backoff{};
};

/// Validates, deploys via the ResourceManager, runs to completion (bounded
/// input operators), and reports through the unified metrics schema:
///   counters   operator.<name>.tuples_in  tuples delivered into each
///                                         logical operator
///              windows.emitted            streaming windows completed
///   gauges     app.duration_ms            wall-clock run time
///              app.containers             containers in the physical plan
///              app.thread_groups          thread groups in the physical plan
/// The snapshot is also merged into MetricsRegistry::global() under the
/// "apex." prefix. A group thread that throws fails the application: the
/// engine aborts the remaining groups and returns the captured Status.
Result<runtime::MetricsSnapshot> launch_application(yarn::ResourceManager& rm,
                                                    const Dag& dag,
                                                    const EngineConfig& config);

/// Renders the physical plan (instances, thread groups, containers) for
/// inspection — the Apex analogue of the Fig. 12/13 plan dumps.
Result<std::string> render_physical_plan(const Dag& dag);

}  // namespace dsps::apex
