// Stream codecs: tuples crossing a container boundary are serialized to
// bytes and deserialized on the consumer side — real work that makes
// operator placement a first-order performance decision, exactly the
// mechanism behind the Beam-on-Apex slowdown pattern (§III-C3).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "apex/operator.hpp"
#include "runtime/payload.hpp"

namespace dsps::apex {

class StreamCodec {
 public:
  virtual ~StreamCodec() = default;
  virtual Bytes serialize(const Tuple& tuple) const = 0;
  virtual Tuple deserialize(const Bytes& bytes) const = 0;
};

using CodecFactory = std::function<std::unique_ptr<StreamCodec>()>;

/// Codec for runtime::Payload tuples (the native queries' record type).
/// Crossing a container boundary forfeits zero-copy on purpose: the
/// payload's bytes are copied into the wire buffer and the consumer side
/// materializes a fresh owning payload, so NODE_LOCAL placement costs real
/// encode/decode work exactly as in Apex proper.
class PayloadCodec final : public StreamCodec {
 public:
  Bytes serialize(const Tuple& tuple) const override {
    const auto& value = tuple_cast<runtime::Payload>(tuple);
    Bytes out;
    out.reserve(value.size() + 4);
    BinaryWriter writer(out);
    writer.write_string(value.view());
    return out;
  }

  Tuple deserialize(const Bytes& bytes) const override {
    BinaryReader reader(bytes);
    return make_tuple_of<runtime::Payload>(reader.read_string());
  }
};

inline CodecFactory payload_codec() {
  return [] { return std::make_unique<PayloadCodec>(); };
}

}  // namespace dsps::apex
