#include "apex/engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "common/clock.hpp"
#include "common/queue.hpp"
#include "runtime/fault.hpp"
#include "runtime/invoker.hpp"
#include "runtime/task_runtime.hpp"

namespace dsps::apex {

namespace {

// --- physical plan ---------------------------------------------------------

struct Instance {
  int id = 0;
  int node = 0;
  int partition = 0;
  int group = -1;
};

struct PhysicalPlan {
  std::vector<Instance> instances;
  std::vector<std::vector<int>> groups;      // group -> instance ids (topo)
  std::vector<int> group_container;          // group -> container group id
  int container_count = 0;
  std::vector<bool> group_is_input;          // group hosts an input operator
  // instance lookup: (node, partition) -> instance id
  std::map<std::pair<int, int>, int> by_node_partition;
};

/// Union-find.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      x = parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

PhysicalPlan build_physical_plan(const Dag& dag) {
  PhysicalPlan plan;
  for (const auto& node : dag.nodes()) {
    for (int p = 0; p < node.partitions; ++p) {
      const int id = static_cast<int>(plan.instances.size());
      plan.instances.push_back(
          Instance{.id = id, .node = node.id, .partition = p});
      plan.by_node_partition[{node.id, p}] = id;
    }
  }

  // Thread groups: THREAD_LOCAL streams fuse instance i <-> instance i.
  DisjointSet thread_sets(plan.instances.size());
  for (const auto& stream : dag.streams()) {
    if (stream.locality != Locality::kThreadLocal) continue;
    const auto& from = dag.nodes()[static_cast<std::size_t>(stream.from.node)];
    for (int p = 0; p < from.partitions; ++p) {
      thread_sets.unite(plan.by_node_partition.at({stream.from.node, p}),
                        plan.by_node_partition.at({stream.to.node, p}));
    }
  }
  std::map<int, int> root_to_group;
  for (auto& instance : plan.instances) {
    const int root = thread_sets.find(instance.id);
    auto [it, inserted] =
        root_to_group.emplace(root, static_cast<int>(plan.groups.size()));
    if (inserted) plan.groups.emplace_back();
    instance.group = it->second;
    plan.groups[static_cast<std::size_t>(it->second)].push_back(instance.id);
  }
  // Instances were created in node order, which is topological for the
  // builder API, so each group's instance list is already topo-ordered.

  plan.group_is_input.assign(plan.groups.size(), false);
  for (const auto& instance : plan.instances) {
    if (dag.nodes()[static_cast<std::size_t>(instance.node)].is_input) {
      plan.group_is_input[static_cast<std::size_t>(instance.group)] = true;
    }
  }

  // Container groups: CONTAINER_LOCAL streams co-locate thread groups.
  DisjointSet container_sets(plan.groups.size());
  for (const auto& stream : dag.streams()) {
    if (stream.locality != Locality::kContainerLocal) continue;
    const auto& from = dag.nodes()[static_cast<std::size_t>(stream.from.node)];
    const auto& to = dag.nodes()[static_cast<std::size_t>(stream.to.node)];
    for (int pf = 0; pf < from.partitions; ++pf) {
      const int gi =
          plan.instances[static_cast<std::size_t>(
                             plan.by_node_partition.at({stream.from.node, pf}))]
              .group;
      for (int pt = 0; pt < to.partitions; ++pt) {
        const int gj = plan.instances[static_cast<std::size_t>(
                                          plan.by_node_partition.at(
                                              {stream.to.node, pt}))]
                           .group;
        container_sets.unite(gi, gj);
      }
    }
  }
  std::map<int, int> container_ids;
  plan.group_container.assign(plan.groups.size(), 0);
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const int root = container_sets.find(static_cast<int>(g));
    auto [it, inserted] =
        container_ids.emplace(root, plan.container_count);
    if (inserted) ++plan.container_count;
    plan.group_container[g] = it->second;
  }
  return plan;
}

// --- runtime ---------------------------------------------------------------

struct Mail {
  enum class Kind : std::uint8_t {
    kData,
    kBeginWindow,
    kEndWindow,
    kEndStream
  };
  Kind kind = Kind::kData;
  int target_instance = -1;  // data only
  int target_port = 0;       // data only
  WindowId window = 0;
  Tuple tuple;               // same-container data
  Bytes bytes;               // cross-container data (serialized)
  bool serialized = false;
  int codec_index = -1;      // which stream codec deserializes `bytes`
};

using Mailbox = BoundedQueue<Mail>;

/// Marker fan-out: one entry per (outbound stream, consumer group).
struct MarkerTarget {
  Mailbox* mailbox = nullptr;
};

/// Producer-side staging for one (stream, producer partition) binding:
/// tuples accumulate per target mailbox and ship as one `push_batch` per
/// `kMailBatch` mails. Owned and flushed by the producer's group thread, so
/// no synchronization is needed on the pending vectors. Markers are only
/// sent after a flush, preserving the data-before-end-window ordering the
/// marker protocol depends on.
struct OutputBatcher {
  static constexpr std::size_t kMailBatch = 64;

  struct Target {
    Mailbox* mailbox = nullptr;
    std::vector<Mail> pending;
  };
  std::vector<Target> targets;

  void stage(std::size_t pick, Mail mail) {
    Target& target = targets[pick];
    target.pending.push_back(std::move(mail));
    if (target.pending.size() >= kMailBatch) flush_target(target);
  }

  void flush() {
    for (Target& target : targets) flush_target(target);
  }

  static void flush_target(Target& target) {
    if (target.pending.empty()) return;
    // A short push_batch means the abort path closed the mailbox; dropping
    // the remainder is fine — the job is already failing.
    target.mailbox->push_batch(std::move(target.pending));
    target.pending.clear();
    target.pending.reserve(kMailBatch);
  }
};

struct GroupRuntime {
  int id = 0;
  bool is_input = false;
  std::vector<Operator*> operators;        // topo order
  std::vector<OperatorContext> contexts;   // parallel to operators
  InputOperator* input = nullptr;          // when is_input
  std::shared_ptr<Mailbox> mailbox;        // inbound (null for pure input)
  std::vector<MarkerTarget> marker_targets;
  std::vector<OutputBatcher*> batchers;  // outbound staging, flushed pre-marker
  int expected_marker_producers = 0;  // (inbound stream, producer group) pairs
};

}  // namespace

Result<std::string> render_physical_plan(const Dag& dag) {
  if (Status s = dag.validate(); !s.is_ok()) return s;
  const PhysicalPlan plan = build_physical_plan(dag);
  std::string out;
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    out += "Container " + std::to_string(plan.group_container[g]) +
           " / Thread Group " + std::to_string(g) + ":\n";
    for (const int instance_id : plan.groups[g]) {
      const auto& instance =
          plan.instances[static_cast<std::size_t>(instance_id)];
      const auto& node = dag.nodes()[static_cast<std::size_t>(instance.node)];
      out += "    " + node.name + "[" + std::to_string(instance.partition) +
             "]" + (node.is_input ? " (input)" : "") + "\n";
    }
  }
  for (const auto& stream : dag.streams()) {
    const char* locality =
        stream.locality == Locality::kThreadLocal      ? "THREAD_LOCAL"
        : stream.locality == Locality::kContainerLocal ? "CONTAINER_LOCAL"
                                                        : "NODE_LOCAL";
    out += "Stream " + stream.name + ": " +
           dag.nodes()[static_cast<std::size_t>(stream.from.node)].name +
           " -> " +
           dag.nodes()[static_cast<std::size_t>(stream.to.node)].name + " [" +
           locality + "]\n";
  }
  return out;
}

namespace {

/// One YARN application attempt: fresh operator instances, mailboxes and
/// per-attempt metrics — exactly what a STRAM relaunch redeploys.
Result<runtime::MetricsSnapshot> run_application_attempt(
    yarn::ResourceManager& rm, const Dag& dag, const EngineConfig& config,
    const PhysicalPlan& plan) {
  // Instantiate operators.
  std::vector<std::unique_ptr<Operator>> operators;
  operators.reserve(plan.instances.size());
  for (const auto& instance : plan.instances) {
    const auto& node = dag.nodes()[static_cast<std::size_t>(instance.node)];
    operators.push_back(node.factory());
  }

  // Per-node delivery counters in the unified registry. Counter handles are
  // sharded internally, so every group thread adds without contention.
  runtime::MetricsRegistry registry;
  std::vector<runtime::Counter> tuples_in;
  for (const auto& node : dag.nodes()) {
    tuples_in.push_back(
        registry.counter("operator." + node.name + ".tuples_in"));
  }
  runtime::Counter windows_emitted = registry.counter("windows.emitted");

  // Group runtimes.
  std::vector<GroupRuntime> groups(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    groups[g].id = static_cast<int>(g);
    groups[g].is_input = plan.group_is_input[g];
    for (const int instance_id : plan.groups[g]) {
      const auto& instance =
          plan.instances[static_cast<std::size_t>(instance_id)];
      const auto& node = dag.nodes()[static_cast<std::size_t>(instance.node)];
      Operator* op = operators[static_cast<std::size_t>(instance_id)].get();
      groups[g].operators.push_back(op);
      groups[g].contexts.push_back(
          OperatorContext{.name = node.name,
                          .partition_index = instance.partition,
                          .partition_count = node.partitions});
      if (node.is_input) {
        groups[g].input = dynamic_cast<InputOperator*>(op);
        if (groups[g].input == nullptr) {
          return Status::invalid_argument(
              "node " + node.name +
              " is marked input but is not an InputOperator");
        }
      }
    }
  }

  // Mailboxes for groups with inbound cross-thread streams. The expected
  // marker count per consumer group is the number of distinct
  // (inbound stream, producer group) pairs feeding it.
  std::map<int, std::set<std::pair<int, int>>> consumer_marker_sources;
  for (std::size_t s = 0; s < dag.streams().size(); ++s) {
    const auto& stream = dag.streams()[s];
    if (stream.locality == Locality::kThreadLocal) continue;
    const auto& from = dag.nodes()[static_cast<std::size_t>(stream.from.node)];
    const auto& to = dag.nodes()[static_cast<std::size_t>(stream.to.node)];
    for (int pt = 0; pt < to.partitions; ++pt) {
      const int consumer_group =
          plan.instances[static_cast<std::size_t>(
                             plan.by_node_partition.at({stream.to.node, pt}))]
              .group;
      auto& group = groups[static_cast<std::size_t>(consumer_group)];
      if (!group.mailbox) {
        group.mailbox = std::make_shared<Mailbox>(config.mailbox_capacity);
      }
      for (int pf = 0; pf < from.partitions; ++pf) {
        const int producer_group =
            plan.instances[static_cast<std::size_t>(plan.by_node_partition.at(
                               {stream.from.node, pf}))]
                .group;
        consumer_marker_sources[consumer_group].insert(
            {static_cast<int>(s), producer_group});
      }
    }
  }
  for (auto& [consumer_group, sources] : consumer_marker_sources) {
    groups[static_cast<std::size_t>(consumer_group)]
        .expected_marker_producers = static_cast<int>(sources.size());
  }

  // Codecs, one per NODE_LOCAL stream (shared by producer & consumer side).
  std::vector<std::unique_ptr<StreamCodec>> codecs(dag.streams().size());
  for (std::size_t s = 0; s < dag.streams().size(); ++s) {
    if (dag.streams()[s].locality == Locality::kNodeLocal) {
      codecs[s] = dag.streams()[s].codec();
    }
  }

  // Bind output ports.
  struct RouterState {
    std::size_t round_robin = 0;
  };
  std::vector<std::unique_ptr<RouterState>> routers;
  std::vector<std::unique_ptr<OutputBatcher>> batchers;
  for (std::size_t s = 0; s < dag.streams().size(); ++s) {
    const auto& stream = dag.streams()[s];
    const auto& from = dag.nodes()[static_cast<std::size_t>(stream.from.node)];
    const auto& to = dag.nodes()[static_cast<std::size_t>(stream.to.node)];
    for (int pf = 0; pf < from.partitions; ++pf) {
      const int producer_instance =
          plan.by_node_partition.at({stream.from.node, pf});
      Operator* producer =
          operators[static_cast<std::size_t>(producer_instance)].get();
      runtime::Counter counter = tuples_in[static_cast<std::size_t>(to.id)];

      if (stream.locality == Locality::kThreadLocal) {
        const int consumer_instance =
            plan.by_node_partition.at({stream.to.node, pf});
        Operator* consumer =
            operators[static_cast<std::size_t>(consumer_instance)].get();
        const int port = stream.to.port;
        producer->bind_output(stream.from.port,
                              [consumer, port, counter](Tuple tuple) mutable {
                                counter.add();
                                consumer->deliver(port, std::move(tuple));
                              });
        continue;
      }

      // Cross-thread: route to a consumer instance's group mailbox. Data
      // mails are staged per target and shipped in batches; the producer's
      // group flushes every batcher before it sends any marker.
      routers.push_back(std::make_unique<RouterState>());
      RouterState* router = routers.back().get();
      batchers.push_back(std::make_unique<OutputBatcher>());
      OutputBatcher* batcher = batchers.back().get();
      std::vector<int> target_instances;
      for (int pt = 0; pt < to.partitions; ++pt) {
        const int consumer_instance =
            plan.by_node_partition.at({stream.to.node, pt});
        const int consumer_group =
            plan.instances[static_cast<std::size_t>(consumer_instance)].group;
        target_instances.push_back(consumer_instance);
        batcher->targets.push_back(OutputBatcher::Target{
            groups[static_cast<std::size_t>(consumer_group)].mailbox.get(),
            {}});
      }
      const int producer_group =
          plan.instances[static_cast<std::size_t>(producer_instance)].group;
      groups[static_cast<std::size_t>(producer_group)].batchers.push_back(
          batcher);
      const bool pairwise = from.partitions == to.partitions;
      const bool serialize = stream.locality == Locality::kNodeLocal;
      StreamCodec* codec = codecs[s].get();
      const int port = stream.to.port;
      const int codec_index = static_cast<int>(s);
      producer->bind_output(
          stream.from.port,
          [target_instances, router, batcher, pairwise, serialize, codec,
           port, pf, counter, codec_index](Tuple tuple) mutable {
            const std::size_t pick =
                pairwise ? static_cast<std::size_t>(pf)
                         : router->round_robin++ % target_instances.size();
            counter.add();
            Mail mail;
            mail.kind = Mail::Kind::kData;
            mail.target_instance = target_instances[pick];
            mail.target_port = port;
            if (serialize) {
              runtime::ScopedStage stage(runtime::Stage::kEncode,
                                         runtime::ScopedStage::Mode::kSampled);
              mail.bytes = codec->serialize(tuple);
              mail.serialized = true;
              mail.codec_index = codec_index;
            } else {
              mail.tuple = std::move(tuple);
            }
            batcher->stage(pick, std::move(mail));
          });
    }
  }

  // Marker fan-out per group: one target per (outbound stream, consumer grp).
  for (std::size_t s = 0; s < dag.streams().size(); ++s) {
    const auto& stream = dag.streams()[s];
    if (stream.locality == Locality::kThreadLocal) continue;
    const auto& from = dag.nodes()[static_cast<std::size_t>(stream.from.node)];
    const auto& to = dag.nodes()[static_cast<std::size_t>(stream.to.node)];
    for (int pf = 0; pf < from.partitions; ++pf) {
      const int producer_group =
          plan.instances[static_cast<std::size_t>(
                             plan.by_node_partition.at({stream.from.node, pf}))]
              .group;
      std::set<Mailbox*> seen;
      for (int pt = 0; pt < to.partitions; ++pt) {
        const int consumer_group =
            plan.instances[static_cast<std::size_t>(plan.by_node_partition.at(
                               {stream.to.node, pt}))]
                .group;
        Mailbox* mailbox =
            groups[static_cast<std::size_t>(consumer_group)].mailbox.get();
        if (seen.insert(mailbox).second) {
          groups[static_cast<std::size_t>(producer_group)]
              .marker_targets.push_back(MarkerTarget{mailbox});
        }
      }
    }
  }

  // Instance lookup for mail dispatch.
  std::map<int, std::pair<Operator*, int>> instance_ops;  // id -> (op, group)
  for (const auto& instance : plan.instances) {
    instance_ops[instance.id] = {
        operators[static_cast<std::size_t>(instance.id)].get(),
        instance.group};
  }

  // --- group thread bodies --------------------------------------------------
  // Supervised lifecycle: every group thread runs under the application's
  // TaskRuntime. A throwing operator fails the app — the handler trips the
  // abort flag (stops input loops) and closes every mailbox (unwedges
  // blocked producers and consumers) — and join_all() surfaces the Status.
  // Committed-window tracking (STRAM's CheckpointListener protocol): every
  // group publishes the newest window it has fully closed; the input group
  // fires committed(min over all groups), so offsets become durable only
  // once every deployed group has processed the window that produced them.
  std::vector<std::atomic<WindowId>> completed_windows(groups.size());
  for (auto& window : completed_windows) {
    window.store(-1, std::memory_order_relaxed);
  }
  auto min_completed_window = [&completed_windows]() -> WindowId {
    WindowId min_window = std::numeric_limits<WindowId>::max();
    for (const auto& window : completed_windows) {
      min_window = std::min(min_window, window.load(std::memory_order_acquire));
    }
    return min_window;
  };

  runtime::TaskRuntime tasks("apex-app");
  std::atomic<bool> aborted{false};
  tasks.set_failure_handler([&groups, &aborted](const Status& /*failure*/) {
    aborted.store(true, std::memory_order_release);
    for (auto& group : groups) {
      if (group.mailbox) group.mailbox->close();
    }
  });

  auto send_markers = [](GroupRuntime& group, Mail::Kind kind,
                         WindowId window) {
    // Marker fan-out can block on full consumer mailboxes: backpressure
    // time, attributed to the queue_wait stage.
    runtime::ScopedStage stage(runtime::Stage::kQueueWait,
                               runtime::ScopedStage::Mode::kAlways);
    // Ship staged data first so every consumer sees a window's tuples
    // before that window's end marker.
    for (OutputBatcher* batcher : group.batchers) batcher->flush();
    for (const auto& target : group.marker_targets) {
      Mail mail;
      mail.kind = kind;
      mail.window = window;
      // push() fails only when the abort path closed the mailboxes; the
      // consumers are already unwinding and no marker can matter.
      if (!target.mailbox->push(std::move(mail))) return;
    }
  };

  auto group_body = [&](GroupRuntime& group) {
    for (std::size_t i = 0; i < group.operators.size(); ++i) {
      group.operators[i]->setup(group.contexts[i]);
    }
    if (group.is_input) {
      // The input group's unified path: per-window fault cadence on the
      // "apex.window" site, window bodies attributed as user_fn, and the
      // committed() fan-out (offset durability) as checkpoint time.
      runtime::OperatorInvoker invoker("apex.window");
      WindowId window = 0;
      bool more = true;
      while (more && !aborted.load(std::memory_order_acquire)) {
        invoker.maybe_fault();
        for (auto* op : group.operators) op->begin_window(window);
        send_markers(group, Mail::Kind::kBeginWindow, window);
        more = invoker.invoke_unfaulted([&] {
          return group.input->emit_tuples(config.window_tuple_budget);
        });
        invoker.invoke_unfaulted([&] {
          for (auto* op : group.operators) op->end_window();
        });
        send_markers(group, Mail::Kind::kEndWindow, window);
        completed_windows[static_cast<std::size_t>(group.id)].store(
            window, std::memory_order_release);
        if (const WindowId done = min_completed_window(); done >= 0) {
          invoker.checkpoint([&] {
            for (auto* op : group.operators) op->committed(done);
          });
        }
        windows_emitted.add();
        ++window;
      }
      for (auto* op : group.operators) op->end_stream();
      send_markers(group, Mail::Kind::kEndStream, window);
      for (auto* op : group.operators) op->teardown();
      // teardown() never throws; a failed resource close (e.g. a broker
      // outage that outlived the sink producer's retries) surfaces here as
      // a supervised app failure the caller can retry.
      for (auto* op : group.operators) op->close_status().expect_ok();
      invoker.close();
      return;
    }

    // Processing group: drive lifecycle from received markers. Mails are
    // drained in batches; each batch is processed strictly in arrival order
    // so the marker protocol is unchanged.
    // Processing groups run the same unified path under the "apex.mailbox"
    // site: the mailbox wait is queue_wait, codec deserialization is
    // decode, and operator deliver calls are user_fn.
    runtime::OperatorInvoker invoker("apex.mailbox");
    int end_streams_seen = 0;
    int ends_seen = 0;
    bool in_window = false;
    WindowId current_window = 0;
    std::vector<Mail> inbox;
    inbox.reserve(OutputBatcher::kMailBatch * 2);
    while (end_streams_seen < group.expected_marker_producers) {
      inbox.clear();
      const std::size_t drained = invoker.queue_wait(
          [&] { return group.mailbox->pop_batch(inbox, inbox.capacity()); });
      if (drained == 0) break;
      invoker.maybe_fault();
      for (auto& mail : inbox) {
        switch (mail.kind) {
          case Mail::Kind::kData: {
            Operator* op = instance_ops.at(mail.target_instance).first;
            if (mail.serialized) {
              Tuple tuple = invoker.decode([&] {
                return codecs[static_cast<std::size_t>(mail.codec_index)]
                    ->deserialize(mail.bytes);
              });
              invoker.invoke_unfaulted([&] {
                op->deliver(mail.target_port, std::move(tuple));
              });
            } else {
              invoker.invoke_unfaulted([&] {
                op->deliver(mail.target_port, std::move(mail.tuple));
              });
            }
            break;
          }
          case Mail::Kind::kBeginWindow:
            if (!in_window) {
              current_window = mail.window;
              for (auto* op : group.operators) {
                op->begin_window(current_window);
              }
              send_markers(group, Mail::Kind::kBeginWindow, current_window);
              in_window = true;
            }
            break;
          case Mail::Kind::kEndWindow:
            if (++ends_seen >= group.expected_marker_producers) {
              ends_seen = 0;
              if (in_window) {
                for (auto* op : group.operators) op->end_window();
                send_markers(group, Mail::Kind::kEndWindow, current_window);
                in_window = false;
                completed_windows[static_cast<std::size_t>(group.id)].store(
                    current_window, std::memory_order_release);
              }
            }
            break;
          case Mail::Kind::kEndStream:
            ++end_streams_seen;
            break;
        }
      }
    }
    if (in_window) {
      for (auto* op : group.operators) op->end_window();
      send_markers(group, Mail::Kind::kEndWindow, current_window);
      completed_windows[static_cast<std::size_t>(group.id)].store(
          current_window, std::memory_order_release);
    }
    for (auto* op : group.operators) op->end_stream();
    send_markers(group, Mail::Kind::kEndStream, current_window);
    for (auto* op : group.operators) op->teardown();
    // Same contract as the input path: closes report their Status after the
    // whole group tore down, instead of throwing mid-teardown.
    for (auto* op : group.operators) op->close_status().expect_ok();
    invoker.close();
  };

  // --- deployment through YARN ----------------------------------------------
  // Group indices per container.
  std::vector<std::vector<int>> container_groups(
      static_cast<std::size_t>(plan.container_count));
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    container_groups[static_cast<std::size_t>(plan.group_container[g])]
        .push_back(static_cast<int>(g));
  }

  Stopwatch watch;
  Status failure = Status::ok();
  auto app_id = rm.submit_application(
      "apex-app", yarn::Resource{1, 256},
      [&](yarn::AppMasterContext& am) {
        // STRAM: allocate one container per container group, launch group
        // threads inside, await, release.
        std::vector<yarn::Container> yarn_containers;
        for (const auto& group_list : container_groups) {
          int instances = 0;
          for (const int g : group_list) {
            instances += static_cast<int>(
                plan.groups[static_cast<std::size_t>(g)].size());
          }
          auto container = am.allocate(yarn::Resource{
              config.vcores_per_instance * std::max(1, instances),
              config.memory_mb_per_instance * std::max(1, instances)});
          if (!container.is_ok()) {
            failure = container.status();
            break;
          }
          yarn_containers.push_back(container.value());
        }
        if (!failure.is_ok()) {
          for (const auto& container : yarn_containers) am.release(container);
          return;
        }
        for (std::size_t c = 0; c < yarn_containers.size(); ++c) {
          const auto& group_list = container_groups[c];
          // The container body spawns its thread groups under the app's
          // TaskRuntime (named, failure-supervised) and waits for them, so
          // am.await() below retains its "container work done" meaning.
          Status launched = am.launch(yarn_containers[c], [&, group_list] {
            std::vector<runtime::TaskRuntime::TaskId> ids;
            ids.reserve(group_list.size());
            for (const int g : group_list) {
              ids.push_back(tasks.spawn(
                  "apx-g" + std::to_string(g),
                  [&, g] { group_body(groups[static_cast<std::size_t>(g)]); }));
            }
            for (const auto id : ids) tasks.wait(id);
          });
          if (!launched.is_ok()) failure = launched;
        }
        for (const auto& container : yarn_containers) {
          am.await(container);
          am.release(container);
        }
      });
  // Tuples the failed attempt had already delivered downstream; the next
  // attempt re-reads everything past the last committed offsets, so this
  // upper-bounds the replay.
  auto note_replayed = [&registry] {
    std::uint64_t replayed = 0;
    for (const auto& [name, value] :
         registry.snapshot().counters_with_prefix("operator.")) {
      (void)name;
      replayed += value;
    }
    runtime::MetricsRegistry::global()
        .counter("apex.recovery.replayed_records")
        .add(replayed);
  };

  if (!app_id.is_ok()) return app_id.status();
  rm.await_application(app_id.value());
  if (Status joined = tasks.join_all(); !joined.is_ok()) {
    note_replayed();
    return joined;
  }
  if (!failure.is_ok()) {
    note_replayed();
    return failure;
  }

  // Clean completion: every group closed the final window, so its offsets
  // are safe to make durable. (Mid-run committed() calls stop at the min
  // completed window; this closes the tail.)
  if (const WindowId done = min_completed_window(); done >= 0) {
    for (auto& group : groups) {
      if (!group.is_input) continue;
      for (auto* op : group.operators) op->committed(done);
    }
  }

  registry.gauge("app.duration_ms").set(watch.elapsed_ms());
  registry.gauge("app.containers").set(plan.container_count);
  registry.gauge("app.thread_groups")
      .set(static_cast<double>(plan.groups.size()));
  runtime::MetricsSnapshot snapshot = registry.snapshot();
  runtime::MetricsRegistry::global().merge(snapshot, "apex.");
  return snapshot;
}

}  // namespace

Result<runtime::MetricsSnapshot> launch_application(yarn::ResourceManager& rm,
                                                    const Dag& dag,
                                                    const EngineConfig& config) {
  if (Status s = dag.validate(); !s.is_ok()) return s;
  const PhysicalPlan plan = build_physical_plan(dag);

  const runtime::RestartPolicy policy{
      .max_attempts = std::max(1, config.max_attempts),
      .backoff = config.restart_backoff};
  Result<runtime::MetricsSnapshot> outcome =
      Status::internal("application never ran");
  Stopwatch recovery_watch;
  bool restarted = false;
  const Status final_status = runtime::run_supervised(
      policy,
      [&](int /*attempt*/) -> Status {
        auto result = run_application_attempt(rm, dag, config, plan);
        if (!result.is_ok()) return result.status();
        outcome = std::move(result);
        return Status::ok();
      },
      [&](int /*attempt*/, const Status& /*error*/) {
        restarted = true;
        runtime::MetricsRegistry::global()
            .counter("apex.recovery.restarts")
            .add(1);
      });
  if (!final_status.is_ok()) return final_status;
  if (restarted) {
    runtime::MetricsRegistry::global()
        .gauge("apex.recovery.time_ms")
        .set(recovery_watch.elapsed_ms());
  }
  return outcome;
}

}  // namespace dsps::apex
