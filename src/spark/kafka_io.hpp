// Kafka output helper for DStreams: one producer per partition task, with
// configurable batching (the native sink batches; the Beam runner's generic
// writer is configured per-record by the Apex runner — see beam/runners).
#pragma once

#include <memory>
#include <string>

#include "kafka/broker.hpp"
#include "kafka/producer.hpp"
#include "spark/streaming_context.hpp"

namespace dsps::spark {

struct KafkaWriteConfig {
  std::string topic;
  /// Output partition; -1 = auto (the task's split index modulo the topic's
  /// partition count), so parallel write tasks land on disjoint logs.
  int partition = 0;
  kafka::Acks acks = kafka::Acks::kLeader;
  std::size_t batch_size = 500;
  /// Asynchronous pipelined producer: sends hand batches to a background
  /// sender; the close() at the end of the task drains everything, so the
  /// batch is durable by the time it commits (Spark's output-op contract).
  bool async = false;
};

/// Registers an output op writing every batch element to Kafka.
inline void write_to_kafka(const DStream<kafka::Payload>& stream,
                           kafka::Broker& broker,
                           const KafkaWriteConfig& config) {
  stream.foreach_rdd([&broker, config](SparkContext& sc,
                                       const RDDPtr<kafka::Payload>& rdd) {
    sc.run_job<kafka::Payload>(
        rdd,
        [&broker, config](int split, IterPtr<kafka::Payload> iter) {
          int partition = config.partition;
          if (partition < 0) {
            const auto count = broker.partition_count(config.topic);
            count.status().expect_ok();
            partition = split % count.value();
          }
          // Pulling the iterator drives the whole pipelined stage, so
          // records reach the broker while upstream work is happening.
          kafka::Producer producer(
              broker, kafka::ProducerConfig{.acks = config.acks,
                                            .batch_size = config.batch_size,
                                            .async = config.async});
          while (auto value = iter->next()) {
            producer
                .send(config.topic, partition,
                      kafka::ProducerRecord{.key = {},
                                            .value = std::move(*value)})
                .expect_ok();
          }
          // Drains the async pipeline before the batch commits. A close
          // failure (broker outage beyond the producer's retries) throws
          // here, which Spark's per-batch retry treats as a failed batch —
          // a retryable Status at the job level, not a crash.
          producer.close().expect_ok();
        });
  });
}

}  // namespace dsps::spark
