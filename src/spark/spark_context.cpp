#include "spark/spark_context.hpp"

#include <algorithm>

namespace dsps::spark {

SparkContext::SparkContext(SparkConf conf)
    : conf_(std::move(conf)),
      pool_(static_cast<std::size_t>(
          std::max(1, conf_.executor_cores > 0 ? conf_.executor_cores
                                               : conf_.default_parallelism))) {
  require(conf_.default_parallelism >= 1,
          "spark.default.parallelism must be >= 1");
}

void SparkContext::prepare_shuffles(const std::shared_ptr<BaseRDD>& rdd) {
  std::set<const BaseRDD*> visited;
  prepare_recursive(rdd, visited);
}

void SparkContext::prepare_recursive(const std::shared_ptr<BaseRDD>& rdd,
                                     std::set<const BaseRDD*>& visited) {
  if (!visited.insert(rdd.get()).second) return;
  for (const auto& dep : rdd->dependencies()) {
    prepare_recursive(dep, visited);
  }
  if (rdd->has_shuffle_dependency()) {
    rdd->run_shuffle(*this);
  }
}

void SparkContext::run_stage(int tasks, const std::function<void(int)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    // Shuffle map tasks go through the same invoker path as result tasks,
    // under their own attribution site.
    futures.push_back(pool_.submit([&body, t] {
      runtime::OperatorInvoker invoker("spark.shuffle");
      invoker.invoke_unfaulted([&] { body(t); });
      invoker.close();
    }));
  }
  for (auto& future : futures) future.get();
  tasks_launched_.fetch_add(static_cast<std::uint64_t>(tasks));
}

}  // namespace dsps::spark
