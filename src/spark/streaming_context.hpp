// StreamingContext: owns the batch generator that turns time into batches.
//
// Micro-batch execution (§II-C): every `batch_interval_ms` the generator
// assembles one RDD per input from newly arrived data and runs every
// registered output operation on it, one batch at a time. The benchmark
// runs bounded: run_bounded() keeps generating batches until every input is
// drained and the final batch carried no records.
//
// Batch bookkeeping reports through the unified runtime::MetricsRegistry
// (counters `batch.count` / `input.records`, histogram `batch.duration_us`)
// instead of a Spark-private stats struct; worker threads (the generator
// and any Kafka receivers) run under runtime::TaskRuntime supervision.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "runtime/metrics.hpp"
#include "runtime/task_runtime.hpp"
#include "spark/dstream.hpp"

namespace dsps::spark {

class StreamingContext {
 public:
  StreamingContext(SparkConf conf, std::int64_t batch_interval_ms);
  ~StreamingContext();

  StreamingContext(const StreamingContext&) = delete;
  StreamingContext& operator=(const StreamingContext&) = delete;

  SparkContext& spark_context() noexcept { return sc_; }
  std::int64_t batch_interval_ms() const noexcept {
    return batch_interval_ms_;
  }

  /// Direct Kafka stream (the receiver-less kafka010 style): each batch
  /// reads the offset range that arrived since the previous batch and slices
  /// it into `spark.default.parallelism` partitions. Rows are refcounted
  /// payload slices of the broker's storage — claiming a batch copies no
  /// record bytes.
  DStream<kafka::Payload> kafka_direct_stream(kafka::Broker& broker,
                                              const std::string& topic);

  /// Receiver-based Kafka stream (the classic receiver style): a dedicated
  /// receiver thread pulls record blocks from the broker into a lock-free
  /// SPSC block queue; each batch drains the blocks that arrived since the
  /// previous batch. The paper's queries use the direct stream; this input
  /// exists for receiver-style workloads and exercises the ring-buffer
  /// block queue end to end.
  DStream<kafka::Payload> kafka_receiver_stream(kafka::Broker& broker,
                                                const std::string& topic);

  /// Registers an output operation (used by DStream::foreach_rdd).
  void register_output(std::function<void(BatchId, SparkContext&)> op);
  void register_input(std::shared_ptr<InputDStreamBase> input);

  /// Spark's task/stage re-execution, collapsed to the micro-batch level:
  /// a batch whose output operations throw is re-run up to `max_retries`
  /// times against the *same* RDD (the per-BatchId cache pins the claimed
  /// offset range, so a retry reprocesses identical input). Output written
  /// before the failure is written again on retry — at-least-once, exactly
  /// like speculative re-execution against a non-transactional sink.
  void set_batch_retries(int max_retries,
                         runtime::BackoffPolicy backoff = {});
  std::uint64_t batch_retries() const { return batch_retry_count_.value(); }

  /// Starts the timer-driven batch generator.
  Status start();

  /// Graceful stop: halts the generator, stops inputs from accepting new
  /// records, then runs one final drain batch so every record an input had
  /// already accepted is delivered exactly once (a receiver block that
  /// arrived between the last batch and the stop is not lost).
  void stop();

  /// Bounded run: generates batches on the interval until all inputs are
  /// drained and the last batch was empty; then returns. Must not be mixed
  /// with start().
  Status run_bounded();

  /// First failure of a supervised worker (generator/receiver) or of a
  /// batch whose retries were exhausted, if any.
  Status worker_failure() const {
    if (!batch_failure_.is_ok()) return batch_failure_;
    return runtime_.first_failure();
  }

  /// Unified metrics: `batch.count`, `input.records`, `batch.duration_us`,
  /// `batch.last_input_records`.
  runtime::MetricsSnapshot metrics() const { return registry_.snapshot(); }

  std::uint64_t batches_run() const { return batch_count_.value(); }

 private:
  void run_one_batch();
  bool all_inputs_drained() const;
  void publish_metrics();

  SparkConf conf_;
  SparkContext sc_;
  const std::int64_t batch_interval_ms_;
  std::vector<std::function<void(BatchId, SparkContext&)>> outputs_;
  std::vector<std::shared_ptr<InputDStreamBase>> inputs_;
  runtime::MetricsRegistry registry_;
  runtime::Counter batch_count_;
  runtime::Counter input_records_;
  runtime::Counter batch_retry_count_;
  runtime::Counter replayed_records_;
  runtime::Gauge last_batch_gauge_;
  runtime::TimeHistogram batch_duration_;
  int max_batch_retries_ = 0;
  runtime::BackoffPolicy retry_backoff_{};
  Status batch_failure_;
  std::size_t last_batch_input_records_ = 0;
  BatchId next_batch_ = 0;
  std::atomic<bool> stop_requested_{false};
  runtime::TaskRuntime runtime_{"spark-streaming"};
  runtime::TaskRuntime::TaskId generator_task_ = 0;
  bool generator_spawned_ = false;
  bool started_ = false;
  bool metrics_published_ = false;
};

template <typename T>
void DStream<T>::foreach_rdd(
    std::function<void(SparkContext&, const RDDPtr<T>&)> action) const {
  context_->register_output(
      [node = node_, action = std::move(action)](BatchId batch,
                                                 SparkContext& sc) {
        action(sc, node->rdd_for(batch, sc));
      });
}

}  // namespace dsps::spark
