// StreamingContext: owns the batch generator that turns time into batches.
//
// Micro-batch execution (§II-C): every `batch_interval_ms` the generator
// assembles one RDD per input from newly arrived data and runs every
// registered output operation on it, one batch at a time. The benchmark
// runs bounded: run_bounded() keeps generating batches until every input is
// drained and the final batch carried no records.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "spark/dstream.hpp"

namespace dsps::spark {

struct BatchStats {
  BatchId id = 0;
  std::size_t input_records = 0;
  double processing_ms = 0.0;
};

class StreamingContext {
 public:
  StreamingContext(SparkConf conf, std::int64_t batch_interval_ms);
  ~StreamingContext();

  StreamingContext(const StreamingContext&) = delete;
  StreamingContext& operator=(const StreamingContext&) = delete;

  SparkContext& spark_context() noexcept { return sc_; }
  std::int64_t batch_interval_ms() const noexcept {
    return batch_interval_ms_;
  }

  /// Direct Kafka stream (the receiver-less kafka010 style): each batch
  /// reads the offset range that arrived since the previous batch and slices
  /// it into `spark.default.parallelism` partitions.
  DStream<std::string> kafka_direct_stream(kafka::Broker& broker,
                                           const std::string& topic);

  /// Receiver-based Kafka stream (the classic receiver style): a dedicated
  /// receiver thread pulls record blocks from the broker into a lock-free
  /// SPSC block queue; each batch drains the blocks that arrived since the
  /// previous batch. The paper's queries use the direct stream; this input
  /// exists for receiver-style workloads and exercises the ring-buffer
  /// block queue end to end.
  DStream<std::string> kafka_receiver_stream(kafka::Broker& broker,
                                             const std::string& topic);

  /// Registers an output operation (used by DStream::foreach_rdd).
  void register_output(std::function<void(BatchId, SparkContext&)> op);
  void register_input(std::shared_ptr<InputDStreamBase> input);

  /// Starts the timer-driven batch generator.
  Status start();

  /// Stops the generator after the in-flight batch.
  void stop();

  /// Bounded run: generates batches on the interval until all inputs are
  /// drained and the last batch was empty; then returns. Must not be mixed
  /// with start().
  Status run_bounded();

  const std::vector<BatchStats>& batch_history() const noexcept {
    return history_;
  }

 private:
  void run_one_batch();
  bool all_inputs_drained() const;

  SparkConf conf_;
  SparkContext sc_;
  const std::int64_t batch_interval_ms_;
  std::vector<std::function<void(BatchId, SparkContext&)>> outputs_;
  std::vector<std::shared_ptr<InputDStreamBase>> inputs_;
  std::vector<BatchStats> history_;
  BatchId next_batch_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread generator_;
  bool started_ = false;
};

template <typename T>
void DStream<T>::foreach_rdd(
    std::function<void(SparkContext&, const RDDPtr<T>&)> action) const {
  context_->register_output(
      [node = node_, action = std::move(action)](BatchId batch,
                                                 SparkContext& sc) {
        action(sc, node->rdd_for(batch, sc));
      });
}

}  // namespace dsps::spark
