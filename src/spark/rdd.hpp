// RDDs: immutable, partitioned, lazily evaluated collections with lineage.
//
// compute(split) returns a pull-based iterator: narrow dependencies
// (map/filter/flatMap/mapPartitions) pipeline through the whole chain one
// record at a time, exactly like a Spark stage. Wide dependencies
// (repartition, partition-by, reduce_by_key) materialize a shuffle: the
// parent side runs as its own stage and writes hash buckets the child side
// iterates (see SparkContext::prepare_shuffles).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "spark/iterator.hpp"

namespace dsps::spark {

class SparkContext;

/// Untyped base so the scheduler can walk lineage without knowing T.
class BaseRDD {
 public:
  virtual ~BaseRDD() = default;
  virtual int partitions() const = 0;

  /// Direct lineage parents (narrow or wide).
  virtual std::vector<std::shared_ptr<BaseRDD>> dependencies() const = 0;

  /// True when this RDD reads a shuffle written by its parent.
  virtual bool has_shuffle_dependency() const { return false; }

  /// Materializes this RDD's shuffle input (wide deps only). The scheduler
  /// calls this parent-first, once per RDD instance.
  virtual void run_shuffle(SparkContext& /*context*/) {}
};

template <typename T>
class RDD : public BaseRDD, public std::enable_shared_from_this<RDD<T>> {
 public:
  /// Computes one partition as a lazy iterator.
  virtual IterPtr<T> compute(int split) const = 0;
};

template <typename T>
using RDDPtr = std::shared_ptr<RDD<T>>;

// ---------------------------------------------------------------------------

/// Leaf RDD over in-memory data (one vector per partition).
template <typename T>
class ParallelCollectionRDD final : public RDD<T> {
 public:
  explicit ParallelCollectionRDD(std::vector<std::vector<T>> parts)
      : parts_(std::move(parts)) {}

  int partitions() const override { return static_cast<int>(parts_.size()); }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {};
  }
  IterPtr<T> compute(int split) const override {
    // Copy the slice: an RDD is immutable and recomputable.
    return iter_from_vector(parts_.at(static_cast<std::size_t>(split)));
  }

 private:
  std::vector<std::vector<T>> parts_;
};

template <typename T, typename R>
class MapRDD final : public RDD<R> {
 public:
  MapRDD(RDDPtr<T> parent, std::function<R(const T&)> fn)
      : parent_(std::move(parent)), fn_(std::move(fn)) {}

  int partitions() const override { return parent_->partitions(); }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  IterPtr<R> compute(int split) const override {
    class MapIter final : public Iterator<R> {
     public:
      MapIter(IterPtr<T> in, const std::function<R(const T&)>& fn)
          : in_(std::move(in)), fn_(fn) {}
      std::optional<R> next() override {
        auto value = in_->next();
        if (!value) return std::nullopt;
        return fn_(*value);
      }

     private:
      IterPtr<T> in_;
      const std::function<R(const T&)>& fn_;
    };
    return std::make_unique<MapIter>(parent_->compute(split), fn_);
  }

 private:
  RDDPtr<T> parent_;
  std::function<R(const T&)> fn_;
};

template <typename T>
class FilterRDD final : public RDD<T> {
 public:
  FilterRDD(RDDPtr<T> parent, std::function<bool(const T&)> predicate)
      : parent_(std::move(parent)), predicate_(std::move(predicate)) {}

  int partitions() const override { return parent_->partitions(); }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  IterPtr<T> compute(int split) const override {
    class FilterIter final : public Iterator<T> {
     public:
      FilterIter(IterPtr<T> in, const std::function<bool(const T&)>& pred)
          : in_(std::move(in)), pred_(pred) {}
      std::optional<T> next() override {
        while (auto value = in_->next()) {
          if (pred_(*value)) return value;
        }
        return std::nullopt;
      }

     private:
      IterPtr<T> in_;
      const std::function<bool(const T&)>& pred_;
    };
    return std::make_unique<FilterIter>(parent_->compute(split), predicate_);
  }

 private:
  RDDPtr<T> parent_;
  std::function<bool(const T&)> predicate_;
};

template <typename T, typename R>
class FlatMapRDD final : public RDD<R> {
 public:
  FlatMapRDD(RDDPtr<T> parent, std::function<std::vector<R>(const T&)> fn)
      : parent_(std::move(parent)), fn_(std::move(fn)) {}

  int partitions() const override { return parent_->partitions(); }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  IterPtr<R> compute(int split) const override {
    class FlatMapIter final : public Iterator<R> {
     public:
      FlatMapIter(IterPtr<T> in,
                  const std::function<std::vector<R>(const T&)>& fn)
          : in_(std::move(in)), fn_(fn) {}
      std::optional<R> next() override {
        while (buffer_index_ >= buffer_.size()) {
          auto value = in_->next();
          if (!value) return std::nullopt;
          buffer_ = fn_(*value);
          buffer_index_ = 0;
        }
        return std::move(buffer_[buffer_index_++]);
      }

     private:
      IterPtr<T> in_;
      const std::function<std::vector<R>(const T&)>& fn_;
      std::vector<R> buffer_;
      std::size_t buffer_index_ = 0;
    };
    return std::make_unique<FlatMapIter>(parent_->compute(split), fn_);
  }

 private:
  RDDPtr<T> parent_;
  std::function<std::vector<R>(const T&)> fn_;
};

/// Iterator-to-iterator transformation of a whole partition (Spark's
/// mapPartitions) — what the Beam Spark runner uses per translated
/// transform. Lazy: the returned iterator pulls from the input iterator.
template <typename T, typename R>
class MapPartitionsRDD final : public RDD<R> {
 public:
  using PartitionFn = std::function<IterPtr<R>(IterPtr<T>)>;

  MapPartitionsRDD(RDDPtr<T> parent, PartitionFn fn)
      : parent_(std::move(parent)), fn_(std::move(fn)) {}

  int partitions() const override { return parent_->partitions(); }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  IterPtr<R> compute(int split) const override {
    return fn_(parent_->compute(split));
  }

 private:
  RDDPtr<T> parent_;
  PartitionFn fn_;
};

/// Wide dependency: redistributes elements round-robin into
/// `target_partitions` buckets via a materialized shuffle.
template <typename T>
class RepartitionRDD final : public RDD<T> {
 public:
  RepartitionRDD(RDDPtr<T> parent, int target_partitions)
      : parent_(std::move(parent)), target_(target_partitions) {
    require(target_partitions >= 1, "repartition target must be >= 1");
  }

  int partitions() const override { return target_; }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  bool has_shuffle_dependency() const override { return true; }
  void run_shuffle(SparkContext& context) override;

  IterPtr<T> compute(int split) const override {
    std::lock_guard lock(mutex_);
    require(materialized_, "RepartitionRDD computed before its shuffle ran");
    return iter_from_vector(buckets_.at(static_cast<std::size_t>(split)));
  }

 private:
  RDDPtr<T> parent_;
  int target_;
  mutable std::mutex mutex_;
  bool materialized_ = false;
  std::vector<std::vector<T>> buckets_;
};

/// Wide dependency: redistributes elements into `target_partitions` buckets
/// chosen by a caller-supplied hash (keyed routing for grouping operators).
template <typename T>
class KeyPartitionRDD final : public RDD<T> {
 public:
  KeyPartitionRDD(RDDPtr<T> parent,
                  std::function<std::uint64_t(const T&)> hash_of,
                  int target_partitions)
      : parent_(std::move(parent)),
        hash_of_(std::move(hash_of)),
        target_(target_partitions) {
    require(target_partitions >= 1, "partition_by target must be >= 1");
  }

  int partitions() const override { return target_; }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  bool has_shuffle_dependency() const override { return true; }
  void run_shuffle(SparkContext& context) override;

  IterPtr<T> compute(int split) const override {
    std::lock_guard lock(mutex_);
    require(materialized_, "KeyPartitionRDD computed before its shuffle ran");
    return iter_from_vector(buckets_.at(static_cast<std::size_t>(split)));
  }

 private:
  RDDPtr<T> parent_;
  std::function<std::uint64_t(const T&)> hash_of_;
  int target_;
  mutable std::mutex mutex_;
  bool materialized_ = false;
  std::vector<std::vector<T>> buckets_;
};

/// Wide dependency: groups (key, value) pairs by key hash and reduces the
/// values per key.
template <typename K, typename V>
class ReduceByKeyRDD final : public RDD<std::pair<K, V>> {
 public:
  ReduceByKeyRDD(RDDPtr<std::pair<K, V>> parent,
                 std::function<V(const V&, const V&)> reduce,
                 int target_partitions)
      : parent_(std::move(parent)),
        reduce_(std::move(reduce)),
        target_(target_partitions) {
    require(target_partitions >= 1, "reduce_by_key target must be >= 1");
  }

  int partitions() const override { return target_; }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parent_};
  }
  bool has_shuffle_dependency() const override { return true; }
  void run_shuffle(SparkContext& context) override;

  IterPtr<std::pair<K, V>> compute(int split) const override {
    std::lock_guard lock(mutex_);
    require(materialized_, "ReduceByKeyRDD computed before its shuffle ran");
    return iter_from_vector(buckets_.at(static_cast<std::size_t>(split)));
  }

 private:
  static std::uint64_t hash_of(const K& key) {
    if constexpr (std::is_integral_v<K>) {
      return static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    } else {
      return fnv1a(std::string_view{key});
    }
  }

  RDDPtr<std::pair<K, V>> parent_;
  std::function<V(const V&, const V&)> reduce_;
  int target_;
  mutable std::mutex mutex_;
  bool materialized_ = false;
  std::vector<std::vector<std::pair<K, V>>> buckets_;
};

template <typename T>
class UnionRDD final : public RDD<T> {
 public:
  explicit UnionRDD(std::vector<RDDPtr<T>> parents)
      : parents_(std::move(parents)) {}

  int partitions() const override {
    int total = 0;
    for (const auto& parent : parents_) total += parent->partitions();
    return total;
  }
  std::vector<std::shared_ptr<BaseRDD>> dependencies() const override {
    return {parents_.begin(), parents_.end()};
  }
  IterPtr<T> compute(int split) const override {
    for (const auto& parent : parents_) {
      if (split < parent->partitions()) return parent->compute(split);
      split -= parent->partitions();
    }
    require(false, "UnionRDD split out of range");
    return nullptr;
  }

 private:
  std::vector<RDDPtr<T>> parents_;
};

}  // namespace dsps::spark
