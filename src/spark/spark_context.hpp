// SparkContext: the driver-side coordinator (§II-C). It owns the executor
// thread pool, splits a job into shuffle map stages + a result stage by
// walking RDD lineage, and schedules one task per partition.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "runtime/invoker.hpp"
#include "spark/rdd.hpp"

namespace dsps::spark {

struct SparkConf {
  std::string app_name = "spark-app";
  /// spark.default.parallelism: partitions per batch / shuffle.
  int default_parallelism = 1;
  /// Executor threads (cores). Defaults to default_parallelism when 0.
  int executor_cores = 0;
};

class SparkContext {
 public:
  explicit SparkContext(SparkConf conf);

  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  const SparkConf& conf() const noexcept { return conf_; }

  /// Creates a leaf RDD by splitting `data` into `num_partitions` slices.
  template <typename T>
  RDDPtr<T> parallelize(std::vector<T> data, int num_partitions) {
    require(num_partitions >= 1, "need at least one partition");
    std::vector<std::vector<T>> parts(
        static_cast<std::size_t>(num_partitions));
    const std::size_t per_part =
        (data.size() + static_cast<std::size_t>(num_partitions) - 1) /
        static_cast<std::size_t>(num_partitions);
    std::size_t index = 0;
    for (auto& value : data) {
      parts[per_part == 0 ? 0 : index / per_part].push_back(std::move(value));
      ++index;
    }
    return std::make_shared<ParallelCollectionRDD<T>>(std::move(parts));
  }

  /// Runs `fn` over every partition of `rdd` (a result stage), running any
  /// shuffle map stages in lineage first. `fn` receives the partition's
  /// lazy iterator: pulling it drives the pipelined narrow chain.
  /// Blocks until completion.
  template <typename T>
  void run_job(const RDDPtr<T>& rdd,
               const std::function<void(int, IterPtr<T>)>& fn) {
    prepare_shuffles(rdd);
    const int parts = rdd->partitions();
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(parts));
    for (int p = 0; p < parts; ++p) {
      // Each result-stage task runs through the unified invoker path:
      // pulling the partition iterator drives the whole narrow chain, so
      // the user_fn stage covers the pipelined operator work of this task.
      futures.push_back(pool_.submit([&rdd, &fn, p] {
        runtime::OperatorInvoker invoker("spark.task");
        invoker.invoke_unfaulted([&] { fn(p, rdd->compute(p)); });
        invoker.close();
      }));
    }
    for (auto& future : futures) future.get();
    tasks_launched_.fetch_add(static_cast<std::uint64_t>(parts));
    jobs_run_.fetch_add(1);
  }

  /// Gathers all elements to the driver.
  template <typename T>
  std::vector<T> collect(const RDDPtr<T>& rdd) {
    const int parts = rdd->partitions();
    std::vector<std::vector<T>> per_part(static_cast<std::size_t>(parts));
    std::mutex mutex;
    run_job<T>(rdd, [&](int p, IterPtr<T> iter) {
      std::vector<T> data = drain(*iter);
      std::lock_guard lock(mutex);
      per_part[static_cast<std::size_t>(p)] = std::move(data);
    });
    std::vector<T> out;
    for (auto& part : per_part) {
      for (auto& value : part) out.push_back(std::move(value));
    }
    return out;
  }

  template <typename T>
  std::size_t count(const RDDPtr<T>& rdd) {
    std::atomic<std::size_t> total{0};
    run_job<T>(rdd, [&](int, IterPtr<T> iter) {
      std::size_t n = 0;
      while (iter->next()) ++n;
      total.fetch_add(n);
    });
    return total.load();
  }

  /// Walks lineage and materializes every un-run shuffle, parents first.
  void prepare_shuffles(const std::shared_ptr<BaseRDD>& rdd);

  /// Executes stage tasks for shuffle materialization (used by RDDs).
  void run_stage(int tasks, const std::function<void(int)>& body);

  // Scheduler metrics (ablation benches assert on these).
  std::uint64_t jobs_run() const noexcept { return jobs_run_.load(); }
  std::uint64_t tasks_launched() const noexcept {
    return tasks_launched_.load();
  }
  std::uint64_t shuffles_run() const noexcept { return shuffles_run_.load(); }
  void note_shuffle() noexcept { shuffles_run_.fetch_add(1); }

 private:
  void prepare_recursive(const std::shared_ptr<BaseRDD>& rdd,
                         std::set<const BaseRDD*>& visited);

  SparkConf conf_;
  ThreadPool pool_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> tasks_launched_{0};
  std::atomic<std::uint64_t> shuffles_run_{0};
};

// --- wide-dependency shuffle implementations (need SparkContext) -----------

template <typename T>
void RepartitionRDD<T>::run_shuffle(SparkContext& context) {
  std::lock_guard lock(mutex_);
  if (materialized_) return;
  buckets_.assign(static_cast<std::size_t>(target_), {});
  std::mutex bucket_mutex;
  const int parent_parts = parent_->partitions();
  std::atomic<std::size_t> next{0};
  context.run_stage(parent_parts, [&](int p) {
    std::vector<T> data = drain(*parent_->compute(p));
    std::lock_guard inner(bucket_mutex);
    for (T& value : data) {
      buckets_[next.fetch_add(1) % buckets_.size()].push_back(
          std::move(value));
    }
  });
  context.note_shuffle();
  materialized_ = true;
}

template <typename T>
void KeyPartitionRDD<T>::run_shuffle(SparkContext& context) {
  std::lock_guard lock(mutex_);
  if (materialized_) return;
  buckets_.assign(static_cast<std::size_t>(target_), {});
  std::mutex bucket_mutex;
  context.run_stage(parent_->partitions(), [&](int p) {
    std::vector<T> data = drain(*parent_->compute(p));
    std::lock_guard inner(bucket_mutex);
    for (T& value : data) {
      buckets_[hash_of_(value) % buckets_.size()].push_back(std::move(value));
    }
  });
  context.note_shuffle();
  materialized_ = true;
}

template <typename K, typename V>
void ReduceByKeyRDD<K, V>::run_shuffle(SparkContext& context) {
  std::lock_guard lock(mutex_);
  if (materialized_) return;
  const auto buckets = static_cast<std::size_t>(target_);
  std::vector<std::unordered_map<K, V>> maps(buckets);
  std::vector<std::mutex> map_mutexes(buckets);
  const int parent_parts = parent_->partitions();
  context.run_stage(parent_parts, [&](int p) {
    auto iter = parent_->compute(p);
    while (auto pair = iter->next()) {
      const std::size_t bucket = hash_of(pair->first) % buckets;
      std::lock_guard inner(map_mutexes[bucket]);
      auto [it, inserted] = maps[bucket].try_emplace(pair->first,
                                                     pair->second);
      if (!inserted) it->second = reduce_(it->second, pair->second);
    }
  });
  buckets_.assign(buckets, {});
  for (std::size_t b = 0; b < buckets; ++b) {
    buckets_[b].assign(maps[b].begin(), maps[b].end());
  }
  context.note_shuffle();
  materialized_ = true;
}

}  // namespace dsps::spark
