#include "spark/streaming_context.hpp"

#include <chrono>
#include <thread>

#include "common/clock.hpp"
#include "common/queue.hpp"

namespace dsps::spark {

namespace {

/// Receiver-less Kafka input: per batch, claims [position, end) of every
/// partition of the topic and slices the claimed records into
/// `parallelism` RDD partitions.
class KafkaDirectInputDStream final : public DStreamNode<std::string>,
                                      public InputDStreamBase {
 public:
  KafkaDirectInputDStream(kafka::Broker& broker, std::string topic,
                          int parallelism)
      : broker_(broker), topic_(std::move(topic)), parallelism_(parallelism) {}

  RDDPtr<std::string> rdd_for(BatchId batch, SparkContext& sc) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;

    std::vector<std::string> claimed;
    const auto partitions = broker_.partition_count(topic_);
    if (partitions.is_ok()) {
      positions_.resize(static_cast<std::size_t>(partitions.value()), 0);
      // Size the claim buffer up front; each partition contributes one
      // contiguous fetched range.
      std::size_t expected = 0;
      for (int p = 0; p < partitions.value(); ++p) {
        const auto end = broker_.end_offset({topic_, p});
        if (!end.is_ok()) continue;
        const auto position = positions_[static_cast<std::size_t>(p)];
        if (end.value() > position) {
          expected += static_cast<std::size_t>(end.value() - position);
        }
      }
      claimed.reserve(expected);
      for (int p = 0; p < partitions.value(); ++p) {
        const kafka::TopicPartition tp{topic_, p};
        const auto end = broker_.end_offset(tp);
        if (!end.is_ok()) continue;
        auto& position = positions_[static_cast<std::size_t>(p)];
        while (position < end.value()) {
          std::vector<kafka::StoredRecord> fetched;
          const auto n = broker_.fetch(
              tp, position,
              static_cast<std::size_t>(end.value() - position), fetched);
          if (!n.is_ok() || n.value() == 0) break;
          for (auto& record : fetched) {
            claimed.push_back(std::move(record.value));
          }
          position += static_cast<std::int64_t>(n.value());
        }
      }
    }
    last_batch_records_ = claimed.size();
    cached_ = sc.parallelize(std::move(claimed), parallelism_);
    cached_batch_ = batch;
    return cached_;
  }

  bool drained() const override {
    std::lock_guard lock(mutex_);
    const auto partitions = broker_.partition_count(topic_);
    if (!partitions.is_ok()) return true;
    for (int p = 0; p < partitions.value(); ++p) {
      const auto end = broker_.end_offset({topic_, p});
      if (!end.is_ok()) continue;
      const std::int64_t position =
          static_cast<std::size_t>(p) < positions_.size()
              ? positions_[static_cast<std::size_t>(p)]
              : 0;
      if (position < end.value()) return false;
    }
    return true;
  }

  std::size_t last_batch_records() const override {
    std::lock_guard lock(mutex_);
    return last_batch_records_;
  }

 private:
  kafka::Broker& broker_;
  const std::string topic_;
  const int parallelism_;
  mutable std::mutex mutex_;
  std::vector<std::int64_t> positions_;
  std::size_t last_batch_records_ = 0;
  BatchId cached_batch_ = -1;
  RDDPtr<std::string> cached_;
};

/// Receiver-based Kafka input: a dedicated receiver thread pulls blocks of
/// records from the broker into an SPSC ring-buffer block queue (receiver
/// thread = producer, batch generator = consumer); rdd_for drains whatever
/// blocks have arrived since the previous batch.
class KafkaReceiverInputDStream final : public DStreamNode<std::string>,
                                        public InputDStreamBase {
 public:
  static constexpr std::size_t kBlockRecords = 512;
  static constexpr std::size_t kBlockQueueCapacity = 64;

  KafkaReceiverInputDStream(kafka::Broker& broker, std::string topic,
                            int parallelism)
      : broker_(broker),
        topic_(std::move(topic)),
        parallelism_(parallelism),
        blocks_(kBlockQueueCapacity) {
    receiver_ = std::thread([this] { receive(); });
  }

  ~KafkaReceiverInputDStream() override {
    stop_requested_.store(true);
    blocks_.close();
    if (receiver_.joinable()) receiver_.join();
  }

  RDDPtr<std::string> rdd_for(BatchId batch, SparkContext& sc) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;

    std::vector<std::string> claimed;
    std::vector<std::string> block;
    while (blocks_.try_pop(block) == QueuePopResult::kOk) {
      claimed.insert(claimed.end(), std::make_move_iterator(block.begin()),
                     std::make_move_iterator(block.end()));
      block.clear();
    }
    last_batch_records_ = claimed.size();
    cached_ = sc.parallelize(std::move(claimed), parallelism_);
    cached_batch_ = batch;
    return cached_;
  }

  bool drained() const override {
    if (blocks_.size() > 0) return false;
    const auto partitions = broker_.partition_count(topic_);
    if (!partitions.is_ok()) return true;
    std::lock_guard lock(positions_mutex_);
    for (int p = 0; p < partitions.value(); ++p) {
      const auto end = broker_.end_offset({topic_, p});
      if (!end.is_ok()) continue;
      const std::int64_t position =
          static_cast<std::size_t>(p) < positions_.size()
              ? positions_[static_cast<std::size_t>(p)]
              : 0;
      if (position < end.value()) return false;
    }
    return true;
  }

  std::size_t last_batch_records() const override {
    std::lock_guard lock(mutex_);
    return last_batch_records_;
  }

 private:
  void receive() {
    std::vector<kafka::StoredRecord> fetched;
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      const auto partitions = broker_.partition_count(topic_);
      bool got_data = false;
      if (partitions.is_ok()) {
        {
          std::lock_guard lock(positions_mutex_);
          positions_.resize(static_cast<std::size_t>(partitions.value()), 0);
        }
        for (int p = 0; p < partitions.value(); ++p) {
          std::int64_t position;
          {
            std::lock_guard lock(positions_mutex_);
            position = positions_[static_cast<std::size_t>(p)];
          }
          fetched.clear();
          const auto n =
              broker_.fetch({topic_, p}, position, kBlockRecords, fetched);
          if (!n.is_ok() || n.value() == 0) continue;
          std::vector<std::string> block;
          block.reserve(fetched.size());
          for (auto& record : fetched) block.push_back(std::move(record.value));
          if (!blocks_.push(std::move(block))) return;  // queue closed
          {
            std::lock_guard lock(positions_mutex_);
            positions_[static_cast<std::size_t>(p)] +=
                static_cast<std::int64_t>(n.value());
          }
          got_data = true;
        }
      }
      if (!got_data) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  kafka::Broker& broker_;
  const std::string topic_;
  const int parallelism_;
  mutable SpscRingQueue<std::vector<std::string>> blocks_;
  std::thread receiver_;
  std::atomic<bool> stop_requested_{false};
  mutable std::mutex mutex_;            // guards the batch cache
  mutable std::mutex positions_mutex_;  // guards receiver positions
  std::vector<std::int64_t> positions_;
  std::size_t last_batch_records_ = 0;
  BatchId cached_batch_ = -1;
  RDDPtr<std::string> cached_;
};

}  // namespace

StreamingContext::StreamingContext(SparkConf conf,
                                   std::int64_t batch_interval_ms)
    : conf_(conf), sc_(conf), batch_interval_ms_(batch_interval_ms) {
  require(batch_interval_ms >= 1, "batch interval must be >= 1 ms");
}

StreamingContext::~StreamingContext() { stop(); }

DStream<std::string> StreamingContext::kafka_direct_stream(
    kafka::Broker& broker, const std::string& topic) {
  auto node = std::make_shared<KafkaDirectInputDStream>(
      broker, topic, conf_.default_parallelism);
  register_input(node);
  return DStream<std::string>(this, node);
}

DStream<std::string> StreamingContext::kafka_receiver_stream(
    kafka::Broker& broker, const std::string& topic) {
  auto node = std::make_shared<KafkaReceiverInputDStream>(
      broker, topic, conf_.default_parallelism);
  register_input(node);
  return DStream<std::string>(this, node);
}

void StreamingContext::register_output(
    std::function<void(BatchId, SparkContext&)> op) {
  require(!started_, "cannot add outputs after start()");
  outputs_.push_back(std::move(op));
}

void StreamingContext::register_input(
    std::shared_ptr<InputDStreamBase> input) {
  require(!started_, "cannot add inputs after start()");
  inputs_.push_back(std::move(input));
}

void StreamingContext::run_one_batch() {
  const BatchId batch = next_batch_++;
  Stopwatch watch;
  std::size_t input_records = 0;
  for (const auto& output : outputs_) output(batch, sc_);
  for (const auto& input : inputs_) input_records += input->last_batch_records();
  history_.push_back(BatchStats{.id = batch,
                                .input_records = input_records,
                                .processing_ms = watch.elapsed_ms()});
}

bool StreamingContext::all_inputs_drained() const {
  for (const auto& input : inputs_) {
    if (!input->drained()) return false;
  }
  return true;
}

Status StreamingContext::start() {
  if (started_) return Status::failed_precondition("already started");
  if (outputs_.empty()) {
    return Status::failed_precondition("no output operations registered");
  }
  started_ = true;
  running_.store(true);
  generator_ = std::thread([this] {
    while (!stop_requested_.load()) {
      const Stopwatch watch;
      run_one_batch();
      const auto spent_ms = static_cast<std::int64_t>(watch.elapsed_ms());
      const std::int64_t wait_ms = batch_interval_ms_ - spent_ms;
      if (wait_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      }
    }
    running_.store(false);
  });
  return Status::ok();
}

void StreamingContext::stop() {
  stop_requested_.store(true);
  if (generator_.joinable()) generator_.join();
}

Status StreamingContext::run_bounded() {
  if (started_) {
    return Status::failed_precondition("run_bounded after start()");
  }
  if (outputs_.empty()) {
    return Status::failed_precondition("no output operations registered");
  }
  started_ = true;
  while (true) {
    const Stopwatch watch;
    run_one_batch();
    const bool empty_batch = history_.back().input_records == 0;
    if (empty_batch && all_inputs_drained()) break;
    const auto spent_ms = static_cast<std::int64_t>(watch.elapsed_ms());
    const std::int64_t wait_ms = batch_interval_ms_ - spent_ms;
    if (wait_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
  }
  started_ = false;
  return Status::ok();
}

}  // namespace dsps::spark
