#include "spark/streaming_context.hpp"

#include <chrono>
#include <thread>

#include "common/clock.hpp"
#include "common/queue.hpp"
#include "runtime/fault.hpp"
#include "runtime/invoker.hpp"
#include "runtime/policy.hpp"

namespace dsps::spark {

namespace {

using kafka::Payload;

/// Receiver-less Kafka input: per batch, claims [position, end) of every
/// partition of the topic and slices the claimed records into
/// `parallelism` RDD partitions.
class KafkaDirectInputDStream final : public DStreamNode<Payload>,
                                      public InputDStreamBase {
 public:
  KafkaDirectInputDStream(kafka::Broker& broker, std::string topic,
                          int parallelism)
      : broker_(broker), topic_(std::move(topic)), parallelism_(parallelism) {}

  RDDPtr<Payload> rdd_for(BatchId batch, SparkContext& sc) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;

    std::vector<Payload> claimed;
    // The whole claim loop is broker time: offset range lookups plus the
    // fetches that pull the batch's records out of the log.
    runtime::ScopedStage fetch_stage(runtime::Stage::kBrokerRtt,
                                     runtime::ScopedStage::Mode::kAlways);
    const auto partitions = broker_.partition_count(topic_);
    if (partitions.is_ok()) {
      positions_.resize(static_cast<std::size_t>(partitions.value()), 0);
      // Size the claim buffer up front; each partition contributes one
      // contiguous fetched range.
      std::size_t expected = 0;
      for (int p = 0; p < partitions.value(); ++p) {
        const auto end = broker_.end_offset({topic_, p});
        if (!end.is_ok()) continue;
        const auto position = positions_[static_cast<std::size_t>(p)];
        if (end.value() > position) {
          expected += static_cast<std::size_t>(end.value() - position);
        }
      }
      claimed.reserve(expected);
      for (int p = 0; p < partitions.value(); ++p) {
        const kafka::TopicPartition tp{topic_, p};
        const auto end = broker_.end_offset(tp);
        if (!end.is_ok()) continue;
        auto& position = positions_[static_cast<std::size_t>(p)];
        while (position < end.value()) {
          std::vector<kafka::StoredRecord> fetched;
          const auto n = broker_.fetch(
              tp, position,
              static_cast<std::size_t>(end.value() - position), fetched);
          if (!n.is_ok() || n.value() == 0) break;
          for (auto& record : fetched) {
            // The row shares the broker's storage — no copy per record.
            claimed.push_back(std::move(record.value));
          }
          position += static_cast<std::int64_t>(n.value());
        }
      }
    }
    last_batch_records_ = claimed.size();
    cached_ = sc.parallelize(std::move(claimed), parallelism_);
    cached_batch_ = batch;
    return cached_;
  }

  bool drained() const override {
    std::lock_guard lock(mutex_);
    const auto partitions = broker_.partition_count(topic_);
    if (!partitions.is_ok()) return true;
    for (int p = 0; p < partitions.value(); ++p) {
      const auto end = broker_.end_offset({topic_, p});
      if (!end.is_ok()) continue;
      const std::int64_t position =
          static_cast<std::size_t>(p) < positions_.size()
              ? positions_[static_cast<std::size_t>(p)]
              : 0;
      if (position < end.value()) return false;
    }
    return true;
  }

  std::size_t last_batch_records() const override {
    std::lock_guard lock(mutex_);
    return last_batch_records_;
  }

 private:
  kafka::Broker& broker_;
  const std::string topic_;
  const int parallelism_;
  mutable std::mutex mutex_;
  std::vector<std::int64_t> positions_;
  std::size_t last_batch_records_ = 0;
  BatchId cached_batch_ = -1;
  RDDPtr<Payload> cached_;
};

/// Receiver-based Kafka input: a dedicated receiver thread pulls blocks of
/// records from the broker into an SPSC ring-buffer block queue (receiver
/// thread = producer, batch generator = consumer); rdd_for drains whatever
/// blocks have arrived since the previous batch. The receiver thread is a
/// supervised TaskRuntime worker; stop_input() halts it *before* the final
/// drain batch pops the queue, so every accepted block is delivered exactly
/// once on a graceful stop.
class KafkaReceiverInputDStream final : public DStreamNode<Payload>,
                                        public InputDStreamBase {
 public:
  static constexpr std::size_t kBlockRecords = 512;
  static constexpr std::size_t kBlockQueueCapacity = 64;

  KafkaReceiverInputDStream(kafka::Broker& broker, std::string topic,
                            int parallelism)
      : broker_(broker),
        topic_(std::move(topic)),
        parallelism_(parallelism),
        blocks_(kBlockQueueCapacity) {
    receiver_task_ = runtime_.spawn("spark-receiver", [this] { receive(); });
  }

  ~KafkaReceiverInputDStream() override {
    stop_requested_.store(true);
    blocks_.close();
    runtime_.wait(receiver_task_);
  }

  RDDPtr<Payload> rdd_for(BatchId batch, SparkContext& sc) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;

    std::vector<Payload> claimed;
    std::vector<Payload> block;
    while (blocks_.try_pop(block) == QueuePopResult::kOk) {
      claimed.insert(claimed.end(), std::make_move_iterator(block.begin()),
                     std::make_move_iterator(block.end()));
      block.clear();
    }
    last_batch_records_ = claimed.size();
    cached_ = sc.parallelize(std::move(claimed), parallelism_);
    cached_batch_ = batch;
    return cached_;
  }

  bool drained() const override {
    if (blocks_.size() > 0) return false;
    const auto partitions = broker_.partition_count(topic_);
    if (!partitions.is_ok()) return true;
    std::lock_guard lock(positions_mutex_);
    for (int p = 0; p < partitions.value(); ++p) {
      const auto end = broker_.end_offset({topic_, p});
      if (!end.is_ok()) continue;
      const std::int64_t position =
          static_cast<std::size_t>(p) < positions_.size()
              ? positions_[static_cast<std::size_t>(p)]
              : 0;
      if (position < end.value()) return false;
    }
    return true;
  }

  std::size_t last_batch_records() const override {
    std::lock_guard lock(mutex_);
    return last_batch_records_;
  }

  void stop_input() override {
    // Stop fetching but do NOT close the block queue: blocks the receiver
    // already accepted stay poppable for the final drain batch. Joining the
    // receiver here makes "accepted" a fixed set before the drain runs.
    stop_requested_.store(true);
    runtime_.wait(receiver_task_);
  }

 private:
  void receive() {
    std::vector<kafka::StoredRecord> fetched;
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      const auto partitions = broker_.partition_count(topic_);
      bool got_data = false;
      if (partitions.is_ok()) {
        {
          std::lock_guard lock(positions_mutex_);
          positions_.resize(static_cast<std::size_t>(partitions.value()), 0);
        }
        for (int p = 0; p < partitions.value(); ++p) {
          std::int64_t position;
          {
            std::lock_guard lock(positions_mutex_);
            position = positions_[static_cast<std::size_t>(p)];
          }
          fetched.clear();
          const auto n = [&] {
            runtime::ScopedStage fetch_stage(
                runtime::Stage::kBrokerRtt,
                runtime::ScopedStage::Mode::kAlways);
            return broker_.fetch({topic_, p}, position, kBlockRecords, fetched);
          }();
          if (!n.is_ok() || n.value() == 0) continue;
          std::vector<Payload> block;
          block.reserve(fetched.size());
          for (auto& record : fetched) block.push_back(std::move(record.value));
          if (!blocks_.push(std::move(block))) return;  // queue closed
          {
            std::lock_guard lock(positions_mutex_);
            positions_[static_cast<std::size_t>(p)] +=
                static_cast<std::int64_t>(n.value());
          }
          got_data = true;
        }
      }
      if (!got_data) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  kafka::Broker& broker_;
  const std::string topic_;
  const int parallelism_;
  mutable SpscRingQueue<std::vector<Payload>> blocks_;
  runtime::TaskRuntime runtime_{"spark-receiver"};
  runtime::TaskRuntime::TaskId receiver_task_ = 0;
  std::atomic<bool> stop_requested_{false};
  mutable std::mutex mutex_;            // guards the batch cache
  mutable std::mutex positions_mutex_;  // guards receiver positions
  std::vector<std::int64_t> positions_;
  std::size_t last_batch_records_ = 0;
  BatchId cached_batch_ = -1;
  RDDPtr<Payload> cached_;
};

}  // namespace

StreamingContext::StreamingContext(SparkConf conf,
                                   std::int64_t batch_interval_ms)
    : conf_(conf), sc_(conf), batch_interval_ms_(batch_interval_ms) {
  require(batch_interval_ms >= 1, "batch interval must be >= 1 ms");
  batch_count_ = registry_.counter("batch.count");
  input_records_ = registry_.counter("input.records");
  batch_retry_count_ = registry_.counter("recovery.batch_retries");
  replayed_records_ = registry_.counter("recovery.replayed_records");
  last_batch_gauge_ = registry_.gauge("batch.last_input_records");
  batch_duration_ = registry_.histogram("batch.duration_us");
}

void StreamingContext::set_batch_retries(int max_retries,
                                         runtime::BackoffPolicy backoff) {
  require(!started_, "cannot change retry policy after start()");
  max_batch_retries_ = max_retries;
  retry_backoff_ = backoff;
}

StreamingContext::~StreamingContext() { stop(); }

DStream<Payload> StreamingContext::kafka_direct_stream(
    kafka::Broker& broker, const std::string& topic) {
  auto node = std::make_shared<KafkaDirectInputDStream>(
      broker, topic, conf_.default_parallelism);
  register_input(node);
  return DStream<Payload>(this, node);
}

DStream<Payload> StreamingContext::kafka_receiver_stream(
    kafka::Broker& broker, const std::string& topic) {
  auto node = std::make_shared<KafkaReceiverInputDStream>(
      broker, topic, conf_.default_parallelism);
  register_input(node);
  return DStream<Payload>(this, node);
}

void StreamingContext::register_output(
    std::function<void(BatchId, SparkContext&)> op) {
  require(!started_, "cannot add outputs after start()");
  outputs_.push_back(std::move(op));
}

void StreamingContext::register_input(
    std::shared_ptr<InputDStreamBase> input) {
  require(!started_, "cannot add inputs after start()");
  inputs_.push_back(std::move(input));
}

void StreamingContext::run_one_batch() {
  const BatchId batch = next_batch_++;
  Stopwatch watch;
  std::size_t input_records = 0;
  // Failed output operations re-run against the same BatchId: the input's
  // per-batch RDD cache pins the claimed offset range, so each retry
  // reprocesses exactly the records of the failed attempt (at-least-once —
  // output already produced before the failure is produced again).
  runtime::OperatorInvoker invoker("spark.batch");
  runtime::Backoff backoff(retry_backoff_);
  for (int attempt = 0;; ++attempt) {
    try {
      for (const auto& output : outputs_) output(batch, sc_);
      // Strikes after the outputs ran but before the batch is committed —
      // the worst case for at-least-once: the retry replays the cached
      // RDD and re-emits records the failed attempt already produced.
      invoker.maybe_fault();
      break;
    } catch (...) {
      if (attempt >= max_batch_retries_) throw;
      batch_retry_count_.add(1);
      std::size_t replayed = 0;
      for (const auto& input : inputs_) {
        replayed += input->last_batch_records();
      }
      replayed_records_.add(replayed);
      backoff.sleep();
    }
  }
  for (const auto& input : inputs_) input_records += input->last_batch_records();
  last_batch_input_records_ = input_records;
  batch_count_.add(1);
  input_records_.add(input_records);
  last_batch_gauge_.set(static_cast<double>(input_records));
  batch_duration_.record_us(static_cast<std::uint64_t>(watch.elapsed_us()));
}

bool StreamingContext::all_inputs_drained() const {
  for (const auto& input : inputs_) {
    if (!input->drained()) return false;
  }
  return true;
}

void StreamingContext::publish_metrics() {
  if (metrics_published_) return;
  metrics_published_ = true;
  // Plan-shape evidence: how many shuffles the job's lineage materialized
  // (a P1 pipeline with no wide dependency must report 0).
  registry_.counter("shuffles_run").add(sc_.shuffles_run());
  runtime::MetricsRegistry::global().merge(registry_.snapshot(), "spark.");
}

Status StreamingContext::start() {
  if (started_) return Status::failed_precondition("already started");
  if (outputs_.empty()) {
    return Status::failed_precondition("no output operations registered");
  }
  started_ = true;
  generator_spawned_ = true;
  generator_task_ = runtime_.spawn("spark-gen", [this] {
    while (!stop_requested_.load()) {
      const Stopwatch watch;
      run_one_batch();
      const auto spent_ms = static_cast<std::int64_t>(watch.elapsed_ms());
      // The effective interval routes through the policy engine: when the
      // adaptive mode is on it scales the configured value from live cost
      // shares; when off (the default) it returns it unchanged.
      const std::int64_t wait_ms =
          runtime::PolicyEngine::instance().spark_batch_interval_ms(
              batch_interval_ms_) -
          spent_ms;
      if (wait_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      }
    }
    runtime::Profiler::instance().flush_this_thread();
  });
  return Status::ok();
}

void StreamingContext::stop() {
  stop_requested_.store(true);
  runtime_.request_stop();
  if (generator_spawned_) {
    runtime_.wait(generator_task_);
    generator_spawned_ = false;
    // Graceful drain: freeze the inputs' accepted sets, then deliver them
    // in one final batch. Without this, a receiver block accepted between
    // the last timer batch and the stop request would be dropped.
    for (const auto& input : inputs_) input->stop_input();
    if (runtime_.first_failure().is_ok() && batch_failure_.is_ok()) {
      try {
        run_one_batch();
      } catch (const std::exception& error) {
        batch_failure_ = Status::internal(
            std::string("drain batch failed after retries: ") + error.what());
      } catch (...) {
        batch_failure_ = Status::internal("drain batch failed after retries");
      }
    }
    publish_metrics();
  }
}

Status StreamingContext::run_bounded() {
  if (started_) {
    return Status::failed_precondition("run_bounded after start()");
  }
  if (outputs_.empty()) {
    return Status::failed_precondition("no output operations registered");
  }
  started_ = true;
  while (true) {
    const Stopwatch watch;
    try {
      run_one_batch();
    } catch (const std::exception& error) {
      batch_failure_ = Status::internal(
          std::string("batch failed after retries: ") + error.what());
      started_ = false;
      publish_metrics();
      return batch_failure_;
    } catch (...) {
      batch_failure_ = Status::internal("batch failed after retries");
      started_ = false;
      publish_metrics();
      return batch_failure_;
    }
    const bool empty_batch = last_batch_input_records_ == 0;
    if (empty_batch && all_inputs_drained()) break;
    const auto spent_ms = static_cast<std::int64_t>(watch.elapsed_ms());
    const std::int64_t wait_ms =
        runtime::PolicyEngine::instance().spark_batch_interval_ms(
            batch_interval_ms_) -
        spent_ms;
    if (wait_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
  }
  started_ = false;
  runtime::Profiler::instance().flush_this_thread();
  publish_metrics();
  return Status::ok();
}

}  // namespace dsps::spark
