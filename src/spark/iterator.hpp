// Pull-based iterators: the unit of computation inside a Spark stage.
//
// Spark pipelines narrow dependencies lazily — a task pulls records through
// the whole map/filter chain one at a time; only shuffles materialize.
// This matters to the paper's measurement: output records are produced
// *while* upstream work happens, so the first-to-last output-append span
// covers the processing time (not just a final write burst).
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace dsps::spark {

template <typename T>
class Iterator {
 public:
  virtual ~Iterator() = default;
  /// The next element, or nullopt at the end.
  virtual std::optional<T> next() = 0;
};

template <typename T>
using IterPtr = std::unique_ptr<Iterator<T>>;

/// Iterates an owned vector.
template <typename T>
class VectorIterator final : public Iterator<T> {
 public:
  explicit VectorIterator(std::vector<T> values)
      : values_(std::move(values)) {}

  std::optional<T> next() override {
    if (index_ >= values_.size()) return std::nullopt;
    return std::move(values_[index_++]);
  }

 private:
  std::vector<T> values_;
  std::size_t index_ = 0;
};

template <typename T>
IterPtr<T> iter_from_vector(std::vector<T> values) {
  return std::make_unique<VectorIterator<T>>(std::move(values));
}

/// Drains an iterator into a vector.
template <typename T>
std::vector<T> drain(Iterator<T>& iterator) {
  std::vector<T> out;
  while (auto value = iterator.next()) out.push_back(std::move(*value));
  return out;
}

}  // namespace dsps::spark
