// Discretized streams: a DStream is a sequence of RDDs, one per batch
// interval (§II-C). Transformations build a per-batch RDD lineage; output
// operations register actions the batch generator runs for every interval.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spark/spark_context.hpp"

namespace dsps::spark {

using BatchId = std::int64_t;

/// Untyped handle so StreamingContext can track inputs without T.
class InputDStreamBase {
 public:
  virtual ~InputDStreamBase() = default;
  /// True once the bounded input is fully consumed.
  virtual bool drained() const = 0;
  /// Records contributed to the most recent batch.
  virtual std::size_t last_batch_records() const = 0;
  /// Stop accepting new records (graceful shutdown). After this returns,
  /// everything the input ever accepted is visible to the next batch —
  /// StreamingContext::stop() runs one final drain batch to deliver it.
  virtual void stop_input() {}
};

template <typename T>
class DStreamNode {
 public:
  virtual ~DStreamNode() = default;
  /// Returns this stream's RDD for the batch (memoized per batch id, so
  /// multiple output ops share one lineage).
  virtual RDDPtr<T> rdd_for(BatchId batch, SparkContext& context) = 0;
};

template <typename T, typename R>
class TransformedDStreamNode final : public DStreamNode<R> {
 public:
  TransformedDStreamNode(std::shared_ptr<DStreamNode<T>> parent,
                         std::function<RDDPtr<R>(RDDPtr<T>)> transform)
      : parent_(std::move(parent)), transform_(std::move(transform)) {}

  RDDPtr<R> rdd_for(BatchId batch, SparkContext& context) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;
    cached_ = transform_(parent_->rdd_for(batch, context));
    cached_batch_ = batch;
    return cached_;
  }

 private:
  std::shared_ptr<DStreamNode<T>> parent_;
  std::function<RDDPtr<R>(RDDPtr<T>)> transform_;
  std::mutex mutex_;
  BatchId cached_batch_ = -1;
  RDDPtr<R> cached_;
};

class StreamingContext;

/// Typed user-facing stream handle.
template <typename T>
class DStream {
 public:
  DStream(StreamingContext* context, std::shared_ptr<DStreamNode<T>> node)
      : context_(context), node_(std::move(node)) {}

  template <typename R>
  DStream<R> map(std::function<R(const T&)> fn) const {
    return derive<R>([fn = std::move(fn)](RDDPtr<T> rdd) -> RDDPtr<R> {
      return std::make_shared<MapRDD<T, R>>(std::move(rdd), fn);
    });
  }

  DStream<T> filter(std::function<bool(const T&)> predicate) const {
    return derive<T>(
        [predicate = std::move(predicate)](RDDPtr<T> rdd) -> RDDPtr<T> {
          return std::make_shared<FilterRDD<T>>(std::move(rdd), predicate);
        });
  }

  template <typename R>
  DStream<R> flat_map(std::function<std::vector<R>(const T&)> fn) const {
    return derive<R>([fn = std::move(fn)](RDDPtr<T> rdd) -> RDDPtr<R> {
      return std::make_shared<FlatMapRDD<T, R>>(std::move(rdd), fn);
    });
  }

  /// Iterator-in / iterator-out partition transformation (lazy).
  template <typename R>
  DStream<R> map_partitions(
      std::function<IterPtr<R>(IterPtr<T>)> fn) const {
    return derive<R>([fn = std::move(fn)](RDDPtr<T> rdd) -> RDDPtr<R> {
      return std::make_shared<MapPartitionsRDD<T, R>>(std::move(rdd), fn);
    });
  }

  DStream<T> repartition(int partitions) const {
    return derive<T>([partitions](RDDPtr<T> rdd) -> RDDPtr<T> {
      return std::make_shared<RepartitionRDD<T>>(std::move(rdd), partitions);
    });
  }

  /// Arbitrary per-batch RDD-to-RDD transformation (Spark's transform()).
  template <typename R>
  DStream<R> transform(std::function<RDDPtr<R>(RDDPtr<T>)> fn) const {
    return derive<R>(std::move(fn));
  }

  /// Sliding window over batches (Spark Streaming's window()): each output
  /// batch is the union of the last `window_batches` input batch RDDs,
  /// advancing one batch at a time.
  DStream<T> window(int window_batches) const;

  /// Registers an output operation; defined in streaming_context.hpp.
  void foreach_rdd(
      std::function<void(SparkContext&, const RDDPtr<T>&)> action) const;

  std::shared_ptr<DStreamNode<T>> node() const { return node_; }
  StreamingContext* context() const noexcept { return context_; }

 private:
  template <typename R>
  DStream<R> derive(std::function<RDDPtr<R>(RDDPtr<T>)> transform) const {
    return DStream<R>(context_, std::make_shared<TransformedDStreamNode<T, R>>(
                                    node_, std::move(transform)));
  }

  StreamingContext* context_;
  std::shared_ptr<DStreamNode<T>> node_;
};

/// Windowed stream node: remembers the last `window_batches` parent RDDs
/// and unions them per batch.
template <typename T>
class WindowedDStreamNode final : public DStreamNode<T> {
 public:
  WindowedDStreamNode(std::shared_ptr<DStreamNode<T>> parent,
                      int window_batches)
      : parent_(std::move(parent)), window_batches_(window_batches) {
    require(window_batches >= 1, "window must cover at least one batch");
  }

  RDDPtr<T> rdd_for(BatchId batch, SparkContext& context) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;
    // Materialize any batches we skipped (outputs may sample batches).
    for (BatchId b = last_seen_ + 1; b <= batch; ++b) {
      history_.push_back(parent_->rdd_for(b, context));
      if (static_cast<int>(history_.size()) > window_batches_) {
        history_.erase(history_.begin());
      }
    }
    last_seen_ = std::max(last_seen_, batch);
    cached_ = std::make_shared<UnionRDD<T>>(history_);
    cached_batch_ = batch;
    return cached_;
  }

 private:
  std::shared_ptr<DStreamNode<T>> parent_;
  const int window_batches_;
  std::mutex mutex_;
  std::vector<RDDPtr<T>> history_;
  BatchId last_seen_ = -1;
  BatchId cached_batch_ = -1;
  RDDPtr<T> cached_;
};

template <typename T>
DStream<T> DStream<T>::window(int window_batches) const {
  return DStream<T>(context_, std::make_shared<WindowedDStreamNode<T>>(
                                  node_, window_batches));
}

/// Pair-stream helper: reduce_by_key over each batch.
template <typename K, typename V>
DStream<std::pair<K, V>> reduce_by_key(
    const DStream<std::pair<K, V>>& stream,
    std::function<V(const V&, const V&)> reduce, int partitions) {
  return stream.template transform<std::pair<K, V>>(
      [reduce = std::move(reduce),
       partitions](RDDPtr<std::pair<K, V>> rdd) -> RDDPtr<std::pair<K, V>> {
        return std::make_shared<ReduceByKeyRDD<K, V>>(std::move(rdd), reduce,
                                                      partitions);
      });
}

}  // namespace dsps::spark
