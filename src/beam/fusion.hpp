// Graph fusion: the plan-quality optimization production Beam runners apply
// and the era's runners the paper measured did not.
//
// The pass greedily collapses maximal chains of one-to-one element-wise
// ParDos into a single composite stage whose process_element drives the
// whole chain by direct calls — no channel hop, no re-encode at the fused
// boundaries. Fusion stops at every point where the dataflow genuinely
// changes shape:
//
//   * sources            (readers stay their own operator)
//   * sinks              (terminal transforms; the writer keeps its own
//                         bundle/flush cadence)
//   * GroupByKey / any keyed redistribution (key_hash set)
//   * stateful ParDos    (keyed routing owns their state placement)
//   * parallelism changes (differing parallelism_hint = redistribution)
//   * multi-consumer outputs (a fan-out point must materialize its output
//                         once per consumer)
//
// The rewrite is opt-in (PipelineOptions{.fuse_stages = true}): the default
// unfused translation is the paper-faithful plan the figures reproduce.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "beam/graph.hpp"

namespace dsps::beam {

/// One fused chain in the rewritten graph.
struct FusedStageInfo {
  /// Node id inside FusionResult::graph.
  int node_id = 0;
  /// Original transform names, in chain order.
  std::vector<std::string> members;
};

struct FusionResult {
  BeamGraph graph;
  /// Only chains with >= 2 members; singletons pass through untouched.
  std::vector<FusedStageInfo> stages;
  std::size_t original_node_count = 0;

  std::size_t node_count() const { return graph.nodes().size(); }
  std::size_t nodes_eliminated() const {
    return original_node_count - node_count();
  }
};

/// True when the pass may place `node` inside a fused chain: an element-wise
/// ParDo with a single input and no keyed routing or state. (Being a chain
/// *interior* additionally requires a single consumer; being a chain member
/// at all requires not being terminal — the pass checks both.)
bool fusible(const TransformNode& node);

/// A composite stage executing `members` back to back by direct calls.
/// Elements emitted by member i feed member i+1's process() synchronously;
/// bundle boundaries and finish cascade down the chain in order.
/// `member_names` (same order, optional) label each member's profiler
/// attribution site ("beam.<name>") so a fused composite still breaks its
/// cost down per original transform.
StageFactory fused_stage(std::vector<StageFactory> members,
                         std::vector<std::string> member_names = {});

/// Rewrites `graph`, fusing maximal eligible chains. Node ids are
/// renumbered; relative (topological) order is preserved.
FusionResult fuse_graph(const BeamGraph& graph);

/// Human-readable one-line-per-stage summary (plan dumps, bench logs).
std::string describe(const FusionResult& result);

}  // namespace dsps::beam
