// PipelineRunner interface and run result (§II-A: engine-specific runners
// translate the Beam program to the target runtime).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "runtime/fault.hpp"

namespace dsps::beam {

class Pipeline;

/// One portable restart hint, translated by each runner onto the engine's
/// native recovery mechanism (the Beam model has no recovery API of its
/// own — resilience is whatever the underlying engine provides):
///  * FlinkRunner — fixed-delay job restart: the whole translated job is
///    re-executed from scratch (full source re-read, at-least-once);
///  * SparkRunner — micro-batch retry: a failed batch re-runs against the
///    same claimed offset range;
///  * ApexRunner  — YARN application reattempt: STRAM redeploys fresh
///    operator instances which re-read the bounded input.
struct RestartHint {
  /// Extra attempts beyond the first (0 = fail fast).
  int max_restarts = 0;
  runtime::BackoffPolicy backoff{};
};

enum class PipelineState { kDone, kFailed };

struct PipelineResult {
  PipelineState state = PipelineState::kDone;
  double duration_ms = 0.0;
  /// Elements that entered each transform, by transform name (best effort).
  std::map<std::string, std::uint64_t> elements_in;
  /// The engine's execution plan for the translated job, when available.
  std::string execution_plan;
};

class PipelineRunner {
 public:
  virtual ~PipelineRunner() = default;
  virtual Result<PipelineResult> run(const Pipeline& pipeline) = 0;
  virtual std::string name() const = 0;
};

}  // namespace dsps::beam
