// PipelineRunner interface and run result (§II-A: engine-specific runners
// translate the Beam program to the target runtime).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"

namespace dsps::beam {

class Pipeline;

enum class PipelineState { kDone, kFailed };

struct PipelineResult {
  PipelineState state = PipelineState::kDone;
  double duration_ms = 0.0;
  /// Elements that entered each transform, by transform name (best effort).
  std::map<std::string, std::uint64_t> elements_in;
  /// The engine's execution plan for the translated job, when available.
  std::string execution_plan;
};

class PipelineRunner {
 public:
  virtual ~PipelineRunner() = default;
  virtual Result<PipelineResult> run(const Pipeline& pipeline) = 0;
  virtual std::string name() const = 0;
};

}  // namespace dsps::beam
