// Stage executors: the runner-facing, type-erased execution form of each
// transform. Runners instantiate one executor per translated operator
// instance and pump windowed Elements through it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "beam/dofn.hpp"
#include "beam/element.hpp"
#include "beam/options.hpp"

namespace dsps::beam {

using Emit = std::function<void(Element&&)>;

class StageExecutor {
 public:
  virtual ~StageExecutor() = default;
  /// Runner hook, invoked after construction and before start(): hands the
  /// pipeline-level options to the executor (Beam's PipelineOptions
  /// accessor). Stage factories are captured at graph build time, so flags
  /// a runner translates (e.g. async_sinks) reach user code through here.
  virtual void configure(const PipelineOptions& /*options*/) {}
  virtual void start() {}
  virtual void process(const Element& element, const Emit& emit) = 0;
  /// Bundle boundary: the runner decides how often bundles end. A DoFn that
  /// buffers (e.g. the Kafka writer) flushes here — so a runner with tiny
  /// bundles pays per-element flush costs (the Apex runner, §III-C3).
  virtual void bundle_boundary(const Emit& /*emit*/) {}
  /// Called once after the last element (flush groupings, finish bundles).
  virtual void finish(const Emit& emit) = 0;
};

using StageFactory = std::function<std::unique_ptr<StageExecutor>()>;

/// Bounded source reader; runners pull until advance() returns false.
class SourceReader {
 public:
  virtual ~SourceReader() = default;
  virtual void open() {}
  /// Fills `out` and returns true, or returns false at end of input.
  virtual bool advance(Element& out) = 0;
  virtual void close() {}
};

/// shard / num_shards support parallel sources.
using ReaderFactory =
    std::function<std::unique_ptr<SourceReader>(int shard, int num_shards)>;

// ---------------------------------------------------------------------------

template <typename In, typename Out>
class ParDoExecutor final : public StageExecutor {
 public:
  explicit ParDoExecutor(DoFnPtr<In, Out> fn) : fn_(std::move(fn)) {
    // Resource-owning DoFns hand every executor instance its own copy.
    if (auto cloned = fn_->clone()) fn_ = std::move(cloned);
  }

  void configure(const PipelineOptions& options) override {
    fn_->set_pipeline_options(options);
  }

  void start() override {
    fn_->setup();
    fn_->start_bundle();
  }

  void process(const Element& element, const Emit& emit) override {
    // The abstraction's per-element envelope: unbox the value, then rebox
    // each output together with a copy of the windowing metadata.
    const In& value = element_value<In>(element);
    typename DoFn<In, Out>::ProcessContext context(
        value, element, [&element, &emit](Out out, Timestamp timestamp) {
          Element produced;
          produced.value = std::move(out);
          produced.timestamp = timestamp;
          produced.windows = element.windows;
          produced.pane = element.pane;
          emit(std::move(produced));
        });
    fn_->process(context);
  }

  void bundle_boundary(const Emit& emit) override {
    fn_->finish_bundle([&emit](Out out) {
      Element produced;
      produced.value = std::move(out);
      emit(std::move(produced));
    });
    fn_->start_bundle();
  }

  void finish(const Emit& emit) override {
    fn_->finish_bundle([&emit](Out out) {
      Element produced;
      produced.value = std::move(out);
      emit(std::move(produced));
    });
    fn_->teardown();
  }

  const DoFnPtr<In, Out>& fn() const noexcept { return fn_; }

 private:
  DoFnPtr<In, Out> fn_;
};

/// GroupByKey: per (window, key) accumulation; the default trigger on
/// bounded data fires once at end of input, per window.
template <typename K, typename V>
class GroupByKeyExecutor final : public StageExecutor {
 public:
  void process(const Element& element, const Emit& /*emit*/) override {
    const auto& kv = element_value<KV<K, V>>(element);
    for (const auto& window : element.windows) {
      groups_[{window.start, window.end}][kv.key].push_back(kv.value);
    }
  }

  void finish(const Emit& emit) override {
    for (auto& [window_key, by_key] : groups_) {
      const BoundedWindow window{window_key.first, window_key.second};
      for (auto& [key, values] : by_key) {
        Element out;
        out.value = KV<K, std::vector<V>>{key, std::move(values)};
        out.timestamp = window.end == std::numeric_limits<Timestamp>::max()
                            ? window.end
                            : window.end - 1;
        out.windows = {window};
        out.pane = PaneInfo{.is_first = true, .is_last = true, .index = 0};
        emit(std::move(out));
      }
    }
    groups_.clear();
  }

 private:
  std::map<std::pair<Timestamp, Timestamp>,
           std::unordered_map<K, std::vector<V>>>
      groups_;
};

/// Assigns windows from the element timestamp.
using WindowFn = std::function<std::vector<BoundedWindow>(Timestamp)>;

class WindowIntoExecutor final : public StageExecutor {
 public:
  explicit WindowIntoExecutor(WindowFn fn) : fn_(std::move(fn)) {}

  void process(const Element& element, const Emit& emit) override {
    Element out = element;
    out.windows = fn_(element.timestamp);
    emit(std::move(out));
  }
  void finish(const Emit& /*emit*/) override {}

 private:
  WindowFn fn_;
};

/// Fixed (tumbling) event-time windows of the given size.
inline WindowFn fixed_windows(std::int64_t size_ms) {
  return [size_ms](Timestamp timestamp) {
    Timestamp start = timestamp - (timestamp % size_ms);
    if (timestamp < 0 && timestamp % size_ms != 0) start -= size_ms;
    return std::vector<BoundedWindow>{{start, start + size_ms}};
  };
}

/// Hash of the key of a KV element, for keyed routing at GBK boundaries.
template <typename K, typename V>
std::uint64_t kv_key_hash(const Element& element) {
  const auto& kv = element_value<KV<K, V>>(element);
  if constexpr (std::is_integral_v<K>) {
    return static_cast<std::uint64_t>(kv.key) * 0x9E3779B97F4A7C15ULL;
  } else {
    return fnv1a(std::string_view{kv.key});
  }
}

}  // namespace dsps::beam
