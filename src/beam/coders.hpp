// Coders: how Beam-sim materializes elements to bytes at runner-chosen
// boundaries. The Apex runner encodes the *full windowed value* (value +
// timestamp + windows + pane) on every inter-container hop, which is real
// serialization work per element per stage.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "beam/element.hpp"

namespace dsps::beam {

/// Encodes/decodes the type-erased value payload of an Element.
class Coder {
 public:
  virtual ~Coder() = default;
  virtual void encode(const Value& value, BinaryWriter& out) const = 0;
  virtual Value decode(BinaryReader& in) const = 0;
  virtual std::string name() const = 0;
};

using CoderPtr = std::shared_ptr<const Coder>;

class StringUtf8Coder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    out.write_string(value.get<std::string>());
  }
  Value decode(BinaryReader& in) const override {
    return in.read_string();
  }
  std::string name() const override { return "StringUtf8Coder"; }
};

/// Coder for runtime::Payload values. Encoding copies the payload's bytes
/// into the wire buffer and decoding materializes a fresh owning payload —
/// a serialized hop pays real per-byte work even though in-memory hops
/// share storage, preserving the abstraction cost under measurement.
class PayloadCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    out.write_string(value.get<runtime::Payload>().view());
  }
  Value decode(BinaryReader& in) const override {
    return runtime::Payload(in.read_string());
  }
  std::string name() const override { return "PayloadCoder"; }
};

class VarIntCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    out.write_i64(value.get<std::int64_t>());
  }
  Value decode(BinaryReader& in) const override { return in.read_i64(); }
  std::string name() const override { return "VarIntCoder"; }
};

class DoubleCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    const double v = value.get<double>();
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    out.write_u64(bits);
  }
  Value decode(BinaryReader& in) const override {
    const std::uint64_t bits = in.read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string name() const override { return "DoubleCoder"; }
};

/// Coder for KV<K, V> given the component coders and the concrete types.
template <typename K, typename V>
class KvCoder final : public Coder {
 public:
  KvCoder(CoderPtr key_coder, CoderPtr value_coder)
      : key_coder_(std::move(key_coder)),
        value_coder_(std::move(value_coder)) {}

  void encode(const Value& value, BinaryWriter& out) const override {
    const auto& kv = value.get<KV<K, V>>();
    key_coder_->encode(Value{kv.key}, out);
    value_coder_->encode(Value{kv.value}, out);
  }
  Value decode(BinaryReader& in) const override {
    KV<K, V> kv;
    kv.key = key_coder_->decode(in).template get<K>();
    kv.value = value_coder_->decode(in).template get<V>();
    return kv;
  }
  std::string name() const override {
    return "KvCoder(" + key_coder_->name() + ", " + value_coder_->name() +
           ")";
  }

 private:
  CoderPtr key_coder_;
  CoderPtr value_coder_;
};

/// Compile-time coder lookup. Specialize for custom element types used with
/// runners that serialize (the Apex runner).
template <typename T>
struct CoderTraits;

template <>
struct CoderTraits<std::string> {
  static CoderPtr of() { return std::make_shared<StringUtf8Coder>(); }
};

template <>
struct CoderTraits<runtime::Payload> {
  static CoderPtr of() { return std::make_shared<PayloadCoder>(); }
};

template <>
struct CoderTraits<std::int64_t> {
  static CoderPtr of() { return std::make_shared<VarIntCoder>(); }
};

template <>
struct CoderTraits<double> {
  static CoderPtr of() { return std::make_shared<DoubleCoder>(); }
};

template <typename K, typename V>
struct CoderTraits<KV<K, V>> {
  static CoderPtr of() {
    return std::make_shared<KvCoder<K, V>>(CoderTraits<K>::of(),
                                           CoderTraits<V>::of());
  }
};

/// Serializes the full windowed value: payload + timestamp + windows + pane.
class WindowedValueCoder {
 public:
  explicit WindowedValueCoder(CoderPtr value_coder)
      : value_coder_(std::move(value_coder)) {}

  Bytes encode(const Element& element) const {
    Bytes out;
    BinaryWriter writer(out);
    writer.write_i64(element.timestamp);
    writer.write_u32(static_cast<std::uint32_t>(element.windows.size()));
    for (const auto& window : element.windows) {
      writer.write_i64(window.start);
      writer.write_i64(window.end);
    }
    writer.write_u8(static_cast<std::uint8_t>((element.pane.is_first << 1) |
                                              element.pane.is_last));
    writer.write_i64(element.pane.index);
    value_coder_->encode(element.value, writer);
    return out;
  }

  Element decode(const Bytes& bytes) const {
    BinaryReader reader(bytes);
    Element element;
    element.timestamp = reader.read_i64();
    const std::uint32_t window_count = reader.read_u32();
    if (window_count == 1) {
      BoundedWindow window;
      window.start = reader.read_i64();
      window.end = reader.read_i64();
      element.windows = {window};
    } else {
      std::vector<BoundedWindow> windows;
      windows.reserve(window_count);
      for (std::uint32_t w = 0; w < window_count; ++w) {
        BoundedWindow window;
        window.start = reader.read_i64();
        window.end = reader.read_i64();
        windows.push_back(window);
      }
      element.windows = WindowSet(std::move(windows));
    }
    const std::uint8_t pane_bits = reader.read_u8();
    element.pane.is_first = (pane_bits & 2) != 0;
    element.pane.is_last = (pane_bits & 1) != 0;
    element.pane.index = reader.read_i64();
    element.value = value_coder_->decode(reader);
    return element;
  }

  const CoderPtr& value_coder() const noexcept { return value_coder_; }

 private:
  CoderPtr value_coder_;
};

}  // namespace dsps::beam
