// PipelineOptions: portable knobs a Beam program hands to whichever runner
// executes it (mirroring Beam's PipelineOptions / --experiments flags).
//
// `fuse_stages` opts into the graph-fusion optimizer (beam/fusion.hpp). It
// is OFF by default on purpose: the unfused translation is what the paper
// measured (one operator per transform, Fig. 13), and the figure
// reproductions and slowdown factors must keep reproducing that plan. With
// fusion on, maximal chains of one-to-one ParDos execute as a single stage —
// the mitigation production Beam runners apply — which quantifies how much
// of the measured abstraction penalty is recoverable plan quality rather
// than structural cost.
#pragma once

#include "common/env.hpp"

namespace dsps::beam {

struct PipelineOptions {
  /// Run the fusion pass before translation (--fuse-stages).
  bool fuse_stages = false;

  /// Asynchronous pipelined sinks (--async-sinks): KafkaIO writers hand
  /// batches to a background sender instead of flushing synchronously per
  /// bundle. OFF by default for the same reason as fusion: the paper's
  /// writers produce synchronously, and Fig. 11–13 must keep reproducing
  /// that behaviour; turning it on quantifies how much of the sink-path
  /// penalty pipelining recovers.
  bool async_sinks = false;

  /// Resolves the env overrides: STREAMSHIM_FUSE_STAGES=1 turns fusion on,
  /// STREAMSHIM_ASYNC_SINKS=1 turns async sinks on, for every runner that
  /// reads its options through here.
  static PipelineOptions from_env() {
    return PipelineOptions{
        .fuse_stages = env_flag("STREAMSHIM_FUSE_STAGES"),
        .async_sinks = env_flag("STREAMSHIM_ASYNC_SINKS")};
  }
};

}  // namespace dsps::beam
