// DoFn: the user-code contract of ParDo (§II-A). Element-by-element
// processing where one input may produce zero or more outputs, with the
// bundle lifecycle (setup / start_bundle / process / finish_bundle /
// teardown) and optional per-key state for stateful processing.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "beam/element.hpp"
#include "beam/options.hpp"

namespace dsps::beam {

template <typename In, typename Out>
class DoFn {
 public:
  /// Handed to process(): the current element plus output collectors.
  class ProcessContext {
   public:
    ProcessContext(const In& element, const Element& raw,
                   std::function<void(Out, Timestamp)> output)
        : element_(element), raw_(raw), output_(std::move(output)) {}

    const In& element() const noexcept { return element_; }
    Timestamp timestamp() const noexcept { return raw_.timestamp; }
    const WindowSet& windows() const noexcept { return raw_.windows; }
    PaneInfo pane() const noexcept { return raw_.pane; }

    void output(Out value) { output_(std::move(value), raw_.timestamp); }
    void output_with_timestamp(Out value, Timestamp timestamp) {
      output_(std::move(value), timestamp);
    }

   private:
    const In& element_;
    const Element& raw_;
    std::function<void(Out, Timestamp)> output_;
  };

  virtual ~DoFn() = default;

  /// Runner hook, invoked before setup(): the pipeline-level options
  /// (Beam's PipelineOptions accessor). DoFns that change behaviour on a
  /// pipeline flag (e.g. the Kafka writer under async_sinks) read it here.
  virtual void set_pipeline_options(const PipelineOptions& /*options*/) {}

  virtual void setup() {}
  virtual void start_bundle() {}
  virtual void process(ProcessContext& context) = 0;
  /// May emit leftovers via the collector.
  virtual void finish_bundle(const std::function<void(Out)>& /*output*/) {}
  virtual void teardown() {}

  /// Stateful DoFns require keyed input and runner support; the Spark
  /// runner rejects them (§III-B: the paper excluded stateful queries for
  /// exactly this reason).
  virtual bool is_stateful() const { return false; }

  /// Real Beam deserializes a fresh DoFn per bundle; here a DoFn that owns
  /// per-instance resources (producers, buffers) returns a fresh copy and
  /// each executor instance uses its own. Returning nullptr (the default)
  /// means the instance is stateless/thread-safe and may be shared.
  virtual std::shared_ptr<DoFn<In, Out>> clone() const { return nullptr; }
};

template <typename In, typename Out>
using DoFnPtr = std::shared_ptr<DoFn<In, Out>>;

/// Adapts a plain callable (In -> Out) into a DoFn.
template <typename In, typename Out>
class MapDoFn final : public DoFn<In, Out> {
 public:
  explicit MapDoFn(std::function<Out(const In&)> fn) : fn_(std::move(fn)) {}
  void process(typename DoFn<In, Out>::ProcessContext& context) override {
    context.output(fn_(context.element()));
  }

 private:
  std::function<Out(const In&)> fn_;
};

/// Adapts a callable emitting through a collector (flat map).
template <typename In, typename Out>
class FlatMapDoFn final : public DoFn<In, Out> {
 public:
  explicit FlatMapDoFn(
      std::function<void(const In&, const std::function<void(Out)>&)> fn)
      : fn_(std::move(fn)) {}
  void process(typename DoFn<In, Out>::ProcessContext& context) override {
    fn_(context.element(), [&context](Out value) {
      context.output(std::move(value));
    });
  }

 private:
  std::function<void(const In&, const std::function<void(Out)>&)> fn_;
};

/// Adapts a predicate into a filtering DoFn.
template <typename T>
class FilterDoFn final : public DoFn<T, T> {
 public:
  explicit FilterDoFn(std::function<bool(const T&)> predicate)
      : predicate_(std::move(predicate)) {}
  void process(typename DoFn<T, T>::ProcessContext& context) override {
    if (predicate_(context.element())) context.output(context.element());
  }

 private:
  std::function<bool(const T&)> predicate_;
};

/// Stateful DoFn over KV pairs: process_stateful sees a mutable per-key
/// state cell. K must be hashable via std::hash.
template <typename K, typename V, typename Out, typename State>
class StatefulDoFn : public DoFn<KV<K, V>, Out> {
 public:
  using Context = typename DoFn<KV<K, V>, Out>::ProcessContext;

  void process(Context& context) override {
    // Keyed routing sends each key to one executor instance, but executor
    // instances of a shared DoFn may run concurrently — serialize map
    // access. (The per-key state itself is still only touched by the
    // instance owning that key.)
    State* cell;
    {
      std::lock_guard lock(mutex_);
      cell = &state_[context.element().key];
    }
    process_stateful(context, *cell);
  }

  virtual void process_stateful(Context& context, State& state) = 0;

  bool is_stateful() const final { return true; }

  /// Runner hook: iterate final states at end of input.
  void for_each_state(
      const std::function<void(const K&, const State&)>& fn) const {
    std::lock_guard lock(mutex_);
    for (const auto& [key, state] : state_) fn(key, state);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<K, State> state_;
};

}  // namespace dsps::beam
