// The transform graph runners translate. Each node is one PTransform
// application, tagged with a URN the way PTransformTranslation keeps a
// registry of familiar transforms and uniform resource names.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "beam/coders.hpp"
#include "beam/stage.hpp"

namespace dsps::beam {

enum class TransformKind {
  kRead,
  kParDo,
  kGroupByKey,
  kFlatten,
  kWindowInto,
};

/// Well-known URNs (mirroring beam:transform:*).
namespace urns {
inline constexpr const char* kRead = "beam:transform:read:v1";
/// The ParDo a source expansion inserts to unwrap raw records — rendered as
/// the "Flat Map" operator in the Fig. 13 plan.
inline constexpr const char* kReadExpand = "beam:transform:read_expand:v1";
inline constexpr const char* kParDo = "beam:transform:pardo:v1";
/// A chain of one-to-one ParDos collapsed by the fusion pass
/// (beam/fusion.hpp) into a single bundle-executing stage.
inline constexpr const char* kFused = "beam:transform:fused:v1";
inline constexpr const char* kGroupByKey = "beam:transform:group_by_key:v1";
inline constexpr const char* kFlatten = "beam:transform:flatten:v1";
inline constexpr const char* kWindowInto = "beam:transform:window_into:v1";
}  // namespace urns

struct TransformNode {
  int id = 0;
  TransformKind kind = TransformKind::kParDo;
  std::string name;  // user-facing transform name
  std::string urn;
  std::vector<int> inputs;
  StageFactory stage;            // all kinds except kRead
  ReaderFactory reader;          // kRead
  /// Keyed routing for the GBK input edge (null otherwise).
  std::function<std::uint64_t(const Element&)> key_hash;
  /// Coder for this node's output elements (used where a runner serializes).
  CoderPtr output_coder;
  bool stateful = false;
  /// Requested parallelism for this transform (0 = inherit the pipeline
  /// default). A change of parallelism between producer and consumer is a
  /// redistribution point, so the fusion pass treats it as a barrier.
  int parallelism_hint = 0;
};

class BeamGraph {
 public:
  int add_node(TransformNode node) {
    node.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
  }

  const std::vector<TransformNode>& nodes() const noexcept { return nodes_; }
  const TransformNode& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  /// Re-tags a node's URN (composite transforms mark their sub-transforms,
  /// e.g. the read expansion's flat map).
  void set_urn(int id, std::string urn) {
    nodes_.at(static_cast<std::size_t>(id)).urn = std::move(urn);
  }

  /// Ids of nodes consuming `id`'s output.
  std::vector<int> consumers_of(int id) const {
    std::vector<int> out;
    for (const auto& node : nodes_) {
      for (const int input : node.inputs) {
        if (input == id) out.push_back(node.id);
      }
    }
    return out;
  }

  bool contains_stateful() const {
    for (const auto& node : nodes_) {
      if (node.stateful) return true;
    }
    return false;
  }

 private:
  std::vector<TransformNode> nodes_;
};

}  // namespace dsps::beam
