// KafkaIO for Beam-sim, expanding exactly the way the Fig. 13 execution
// plan shows:
//
//   read():  Read source ("PTransformTranslation.UnknownRawPTransform")
//            + a "Flat Map" ParDo unwrapping raw consumer records into
//              KafkaRecord elements
//   without_metadata(): RawParDo KafkaRecord -> KV<key, value>
//   (Values<...>::create() then drops the keys — beam/pipeline.hpp)
//   write(): RawParDo value -> ProducerRecordStub
//            + RawParDo KafkaWriter (produces to the broker; the writer
//              flushes at *bundle* boundaries, so the runner's bundle policy
//              decides how often the producer pays a network round trip)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "beam/coders.hpp"
#include "beam/pipeline.hpp"
#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"
#include "runtime/payload.hpp"

namespace dsps::beam {

/// A consumed record with its metadata (KafkaIO.read()'s element type).
/// Key and value are refcounted payload slices of the broker's storage —
/// the envelope and coder hops stay (the measured abstraction cost), but
/// the record bytes themselves are not copied until a coder materializes
/// them at a serialized boundary.
struct KafkaRecord {
  std::string topic;
  int partition = 0;
  std::int64_t offset = 0;
  Timestamp timestamp = 0;
  runtime::Payload key;
  runtime::Payload value;

  friend bool operator==(const KafkaRecord&, const KafkaRecord&) = default;
};

/// What ToProducerRecord emits and KafkaWriter consumes.
struct ProducerRecordStub {
  runtime::Payload key;
  runtime::Payload value;

  friend bool operator==(const ProducerRecordStub&,
                         const ProducerRecordStub&) = default;
};

template <>
struct CoderTraits<KafkaRecord> {
  static CoderPtr of();
};

template <>
struct CoderTraits<ProducerRecordStub> {
  static CoderPtr of();
};

struct KafkaReadConfig {
  std::string topic;
  bool bounded = true;
  /// Offset bookkeeping à la Kafka auto-commit: when `group_id` is set and
  /// `resume_from_group` is true, readers start from the group's committed
  /// offsets and commit every `commit_every_batches` fetched batches. Like
  /// auto-commit, offsets can run ahead of downstream flushes, so a crash
  /// may skip in-flight records on resume; the Beam *recovery* path
  /// therefore restarts with a fresh group (full replay, at-least-once),
  /// and this knob exists for incremental-rerun scenarios. Off by default.
  std::string group_id;
  bool resume_from_group = false;
  int commit_every_batches = 4;
};

struct KafkaWriteConfig {
  std::string topic;
  /// Output partition; -1 = partitioner-driven (keyless records round-robin
  /// over the topic's partitions), so parallel writer instances spread their
  /// output instead of contending on one partition log.
  int partition = 0;
  kafka::Acks acks = kafka::Acks::kLeader;
  /// Producer-side buffering; flushes also happen at bundle boundaries.
  std::size_t batch_size = 500;
  /// Force the async pipelined producer for this write regardless of
  /// PipelineOptions (the options flag is the normal way in:
  /// PipelineOptions{.async_sinks} reaches the writer through the runner's
  /// StageExecutor::configure hook).
  bool async = false;
};

/// Composite read transform: apply to a Pipeline.
class KafkaReadTransform {
 public:
  KafkaReadTransform(kafka::Broker& broker, KafkaReadConfig config)
      : broker_(&broker), config_(std::move(config)) {}

  PCollection<KafkaRecord> expand(Pipeline& pipeline) const;

 private:
  kafka::Broker* broker_;
  KafkaReadConfig config_;
};

/// KafkaRecord -> KV<key, value>: drops the Kafka metadata (§III-C3).
/// The emitted KV shares the record's payload storage (refcount bumps,
/// no byte copies).
class WithoutMetadataTransform {
 public:
  PCollection<KV<runtime::Payload, runtime::Payload>> expand(
      const PCollection<KafkaRecord>& input) const;
};

/// Composite write transform: apply to a PCollection<runtime::Payload>
/// (the zero-copy path) or a PCollection<std::string> (pipelines that
/// synthesize fresh output lines). Both expansions produce the identical
/// "ToProducerRecord" + "KafkaWriter" node pair.
class KafkaWriteTransform {
 public:
  KafkaWriteTransform(kafka::Broker& broker, KafkaWriteConfig config)
      : broker_(&broker), config_(std::move(config)) {}

  /// Returns the terminal writer PCollection (carries no useful elements).
  PCollection<std::int64_t> expand(
      const PCollection<runtime::Payload>& input) const;
  PCollection<std::int64_t> expand(const PCollection<std::string>& input) const;

 private:
  PCollection<std::int64_t> write_records(
      const PCollection<ProducerRecordStub>& records) const;

  kafka::Broker* broker_;
  KafkaWriteConfig config_;
};

struct KafkaIO {
  static KafkaReadTransform read(kafka::Broker& broker,
                                 KafkaReadConfig config) {
    return KafkaReadTransform(broker, std::move(config));
  }
  static WithoutMetadataTransform without_metadata() { return {}; }
  static KafkaWriteTransform write(kafka::Broker& broker,
                                   KafkaWriteConfig config) {
    return KafkaWriteTransform(broker, std::move(config));
  }
};

}  // namespace dsps::beam
