// StreamSQL (extension): a miniature SQL-for-streams dialect compiled to
// Beam-sim pipelines.
//
// The paper's related work (§IV) surveys the other road to portability:
// SQL-based stream languages (CQL/STREAM, Apache Calcite's STREAM
// extensions, KSQL, SamzaSQL). This module demonstrates that road on top
// of our stack: a declarative query compiles onto the same abstraction
// layer and therefore runs on every engine runner.
//
// Grammar (case-insensitive keywords, single-quoted string literals):
//
//   query     := SELECT projection FROM ident
//                [WHERE predicate] [SAMPLE number '%'] [INTO ident]
//   projection:= '*' | COLUMN '(' number ')'
//   predicate := [NOT] CONTAINS '(' string ')'
//
// Examples:
//   SELECT * FROM input WHERE CONTAINS('test') INTO output
//   SELECT COLUMN(0) FROM input SAMPLE 40% INTO output
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "beam/pipeline.hpp"
#include "kafka/broker.hpp"

namespace dsps::beam::sql {

/// The compiled logical plan of a StreamSQL query.
struct StreamQuery {
  std::string from_topic;
  std::string into_topic;          // empty = caller supplies the sink topic
  std::optional<int> project_column;  // nullopt = SELECT *
  std::optional<std::string> contains_needle;
  bool negate_contains = false;
  std::optional<double> sample_fraction;  // SAMPLE p% -> p/100
};

/// Parses the dialect above. Returns a descriptive error on bad syntax.
Result<StreamQuery> parse(const std::string& text);

/// Renders the plan back as canonical SQL (round-trip debugging aid).
std::string to_sql(const StreamQuery& query);

struct CompileOptions {
  /// Seed for SAMPLE's randomness.
  std::uint64_t seed = 42;
  /// Used when the query has no INTO clause.
  std::string default_output_topic = "output";
};

/// Builds the Beam pipeline implementing `query` against `broker` topics.
/// The resulting pipeline runs on any runner (that is the point).
Status compile(const StreamQuery& query, kafka::Broker& broker,
               Pipeline& pipeline, const CompileOptions& options = {});

/// parse + compile in one step.
Status compile(const std::string& text, kafka::Broker& broker,
               Pipeline& pipeline, const CompileOptions& options = {});

}  // namespace dsps::beam::sql
