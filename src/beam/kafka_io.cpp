#include "beam/kafka_io.hpp"

#include <utility>
#include <vector>

namespace dsps::beam {

namespace {

/// Coder for KafkaRecord (all metadata fields are encoded — the abstraction
/// pays for metadata it will immediately drop, §III-C3).
class KafkaRecordCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    const auto& record = value.get<KafkaRecord>();
    out.write_string(record.topic);
    out.write_u32(static_cast<std::uint32_t>(record.partition));
    out.write_i64(record.offset);
    out.write_i64(record.timestamp);
    out.write_string(record.key.view());
    out.write_string(record.value.view());
  }
  Value decode(BinaryReader& in) const override {
    KafkaRecord record;
    record.topic = in.read_string();
    record.partition = static_cast<int>(in.read_u32());
    record.offset = in.read_i64();
    record.timestamp = in.read_i64();
    record.key = runtime::Payload(in.read_string());
    record.value = runtime::Payload(in.read_string());
    return record;
  }
  std::string name() const override { return "KafkaRecordCoder"; }
};

class ProducerRecordStubCoder final : public Coder {
 public:
  void encode(const Value& value, BinaryWriter& out) const override {
    const auto& record = value.get<ProducerRecordStub>();
    out.write_string(record.key.view());
    out.write_string(record.value.view());
  }
  Value decode(BinaryReader& in) const override {
    ProducerRecordStub record;
    record.key = runtime::Payload(in.read_string());
    record.value = runtime::Payload(in.read_string());
    return record;
  }
  std::string name() const override { return "ProducerRecordStubCoder"; }
};

/// Bounded reader over all partitions of a topic (sharded by partition).
class KafkaSourceReader final : public SourceReader {
 public:
  KafkaSourceReader(kafka::Broker& broker, const KafkaReadConfig& config,
                    int shard, int num_shards)
      : broker_(broker), config_(config), shard_(shard),
        num_shards_(num_shards) {}

  void open() override {
    consumer_ = std::make_unique<kafka::Consumer>(
        broker_, kafka::ConsumerConfig{.group_id = config_.group_id,
                                       .max_poll_records = 1000});
    const auto partitions = broker_.partition_count(config_.topic);
    partitions.status().expect_ok();
    for (int p = 0; p < partitions.value(); ++p) {
      if (p % num_shards_ != shard_) continue;
      const kafka::TopicPartition tp{config_.topic, p};
      std::int64_t start = 0;
      if (config_.resume_from_group && !config_.group_id.empty()) {
        const std::int64_t committed =
            broker_.committed_offset(config_.group_id, tp);
        if (committed >= 0) start = committed;
      }
      consumer_->assign(tp, start).expect_ok();
      const auto end = broker_.end_offset(tp);
      end.status().expect_ok();
      bounded_end_.push_back(end.value());
    }
  }

  bool advance(Element& out) override {
    while (buffer_index_ >= batch_.records.size()) {
      if (done()) {
        commit_if_due(/*force=*/true);
        return false;
      }
      const kafka::FetchState state = consumer_->poll_batch(5, batch_);
      buffer_index_ = 0;
      commit_if_due(/*force=*/false);
      if (state == kafka::FetchState::kClosed && batch_.empty()) {
        // Broker mid-shutdown: the final batch was empty, stop reading.
        return false;
      }
      if (batch_.empty() && done()) {
        commit_if_due(/*force=*/true);
        return false;
      }
    }
    auto& record = batch_.records[buffer_index_++];
    // The raw element: the full record with metadata, stamped with the
    // record's broker timestamp (Beam's event time for KafkaIO). Payload
    // slices move out of the fetch batch still sharing the broker's
    // storage; the metadata wrapping (and its coder) stays — that is the
    // abstraction cost under measurement.
    out.value = KafkaRecord{.topic = batch_.tp.topic,
                            .partition = batch_.tp.partition,
                            .offset = record.offset,
                            .timestamp = record.timestamp,
                            .key = std::move(record.key),
                            .value = std::move(record.value)};
    out.timestamp = record.timestamp;
    out.windows = {global_window()};
    out.pane = PaneInfo{};
    return true;
  }

 private:
  bool done() const {
    if (!config_.bounded) return false;
    const auto positions = consumer_->positions();
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (positions[i].second < bounded_end_[i]) return false;
    }
    return true;
  }

  void commit_if_due(bool force) {
    if (!config_.resume_from_group || config_.group_id.empty()) return;
    if (!force && ++batches_since_commit_ < config_.commit_every_batches) {
      return;
    }
    consumer_->commit();
    batches_since_commit_ = 0;
  }

  kafka::Broker& broker_;
  KafkaReadConfig config_;
  int shard_;
  int num_shards_;
  std::unique_ptr<kafka::Consumer> consumer_;
  std::vector<std::int64_t> bounded_end_;
  kafka::FetchBatch batch_;
  std::size_t buffer_index_ = 0;
  int batches_since_commit_ = 0;
};

/// The writer DoFn: produces at process() time, flushes at bundle
/// boundaries. Emits one count at finish (terminal; consumers are rare).
class KafkaWriterDoFn final : public DoFn<ProducerRecordStub, std::int64_t> {
 public:
  KafkaWriterDoFn(kafka::Broker& broker, KafkaWriteConfig config)
      : broker_(broker), config_(std::move(config)), async_(config_.async) {}

  void set_pipeline_options(const PipelineOptions& options) override {
    async_ = config_.async || options.async_sinks;
  }

  void setup() override {
    producer_ = std::make_unique<kafka::Producer>(
        broker_, kafka::ProducerConfig{.acks = config_.acks,
                                       .batch_size = config_.batch_size,
                                       .async = async_});
  }

  void process(ProcessContext& context) override {
    kafka::ProducerRecord record{.key = context.element().key,
                                 .value = context.element().value};
    (config_.partition < 0
         ? producer_->send(config_.topic, std::move(record))
         : producer_->send(config_.topic, config_.partition,
                           std::move(record)))
        .expect_ok();
    ++written_;
  }

  void finish_bundle(
      const std::function<void(std::int64_t)>& /*output*/) override {
    // The sync writer flushes per bundle — one broker RTT per bundle, which
    // on a one-element-bundle runner is the per-record penalty of §III-C3.
    // The async writer must NOT flush here: batches ship through the
    // background sender at batch_size/linger granularity and the pipeline
    // drains at teardown, which is the whole point of the opt-in.
    if (producer_ && !async_) producer_->flush().expect_ok();
  }

  void teardown() override {
    if (!producer_) return;
    // close() drains the async pipeline (zero loss) and returns a Status;
    // a broker outage that outlives the producer's retries surfaces as a
    // throw the runner treats as a retryable operator failure — never as a
    // silent drop or a crash during unwind.
    producer_->close().expect_ok();
  }

  std::shared_ptr<DoFn<ProducerRecordStub, std::int64_t>> clone()
      const override {
    // The producer is a per-instance resource: parallel executor instances
    // must not share one writer.
    return std::make_shared<KafkaWriterDoFn>(broker_, config_);
  }

 private:
  kafka::Broker& broker_;
  KafkaWriteConfig config_;
  bool async_ = false;
  std::unique_ptr<kafka::Producer> producer_;
  std::int64_t written_ = 0;
};

}  // namespace

CoderPtr CoderTraits<KafkaRecord>::of() {
  return std::make_shared<KafkaRecordCoder>();
}

CoderPtr CoderTraits<ProducerRecordStub>::of() {
  return std::make_shared<ProducerRecordStubCoder>();
}

PCollection<KafkaRecord> KafkaReadTransform::expand(Pipeline& pipeline) const {
  // 1. The raw source node.
  TransformNode source;
  source.kind = TransformKind::kRead;
  source.name = "KafkaIO.Read/" + config_.topic;
  source.urn = urns::kRead;
  source.output_coder = CoderTraits<KafkaRecord>::of();
  source.reader = [broker = broker_, config = config_](int shard,
                                                       int num_shards) {
    return std::make_unique<KafkaSourceReader>(*broker, config, shard,
                                               num_shards);
  };
  const int source_id = pipeline.graph().add_node(std::move(source));

  // 2. The read-expansion "Flat Map" the runner shows as its own operator
  //    (Fig. 13): nominally unwraps raw messages into typed KafkaRecords.
  PCollection<KafkaRecord> raw(&pipeline, source_id);
  auto expanded = FlatMapElements<KafkaRecord, KafkaRecord>::via(
                      [](const KafkaRecord& record,
                         const std::function<void(KafkaRecord)>& out) {
                        out(record);
                      },
                      "KafkaIO.Read/FlatMap")
                      .expand(raw);
  pipeline.graph().set_urn(expanded.node_id(), urns::kReadExpand);
  return expanded;
}

PCollection<KV<runtime::Payload, runtime::Payload>>
WithoutMetadataTransform::expand(const PCollection<KafkaRecord>& input) const {
  return MapElements<KafkaRecord, KV<runtime::Payload, runtime::Payload>>::via(
             [](const KafkaRecord& record) {
               // Refcount bumps only: key/value still reference the
               // broker's storage.
               return KV<runtime::Payload, runtime::Payload>{record.key,
                                                             record.value};
             },
             "KafkaIO.Read/WithoutMetadata")
      .expand(input);
}

PCollection<std::int64_t> KafkaWriteTransform::write_records(
    const PCollection<ProducerRecordStub>& records) const {
  return ParDo::of<ProducerRecordStub, std::int64_t>(
             std::make_shared<KafkaWriterDoFn>(*broker_, config_),
             "KafkaIO.Write/KafkaWriter")
      .expand(records);
}

PCollection<std::int64_t> KafkaWriteTransform::expand(
    const PCollection<runtime::Payload>& input) const {
  return write_records(
      MapElements<runtime::Payload, ProducerRecordStub>::via(
          [](const runtime::Payload& value) {
            return ProducerRecordStub{.key = {}, .value = value};
          },
          "KafkaIO.Write/ToProducerRecord")
          .expand(input));
}

PCollection<std::int64_t> KafkaWriteTransform::expand(
    const PCollection<std::string>& input) const {
  return write_records(
      MapElements<std::string, ProducerRecordStub>::via(
          [](const std::string& value) {
            // A synthesized line: the payload takes an owning copy here,
            // the single materialization this path pays.
            return ProducerRecordStub{.key = {}, .value = runtime::Payload(value)};
          },
          "KafkaIO.Write/ToProducerRecord")
          .expand(input));
}

}  // namespace dsps::beam
