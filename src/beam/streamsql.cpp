#include "beam/streamsql.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include <thread>
#include "beam/kafka_io.hpp"
#include "workload/streambench.hpp"

namespace dsps::beam::sql {

namespace {

// --- tokenizer ---------------------------------------------------------------

enum class TokenKind { kWord, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> tokenize() {
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < input_.size()) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = i;
        while (i < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                input_[i] == '_' || input_[i] == '-')) {
          ++i;
        }
        tokens.push_back(
            Token{TokenKind::kWord, input_.substr(start, i - start)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t start = i;
        while (i < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[i])) ||
                input_[i] == '.')) {
          ++i;
        }
        tokens.push_back(
            Token{TokenKind::kNumber, input_.substr(start, i - start)});
        continue;
      }
      if (c == '\'') {
        const std::size_t close = input_.find('\'', i + 1);
        if (close == std::string::npos) {
          return Status::invalid_argument("unterminated string literal");
        }
        tokens.push_back(
            Token{TokenKind::kString, input_.substr(i + 1, close - i - 1)});
        i = close + 1;
        continue;
      }
      if (c == '*' || c == '(' || c == ')' || c == '%' || c == ';') {
        tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::invalid_argument(std::string("unexpected character '") +
                                      c + "'");
    }
    tokens.push_back(Token{TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& input_;
};

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

// --- parser -------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StreamQuery> parse() {
    StreamQuery query;
    if (Status s = expect_keyword("SELECT"); !s.is_ok()) return s;

    // projection
    if (peek().kind == TokenKind::kSymbol && peek().text == "*") {
      advance();
    } else if (is_keyword("COLUMN")) {
      advance();
      if (Status s = expect_symbol("("); !s.is_ok()) return s;
      if (peek().kind != TokenKind::kNumber) {
        return Status::invalid_argument("COLUMN expects a number");
      }
      query.project_column = std::stoi(advance().text);
      if (Status s = expect_symbol(")"); !s.is_ok()) return s;
    } else {
      return Status::invalid_argument(
          "projection must be '*' or COLUMN(n), got '" + peek().text + "'");
    }

    if (Status s = expect_keyword("FROM"); !s.is_ok()) return s;
    if (peek().kind != TokenKind::kWord) {
      return Status::invalid_argument("FROM expects a topic name");
    }
    query.from_topic = advance().text;

    // optional clauses in any sensible order: WHERE, SAMPLE, INTO
    while (peek().kind != TokenKind::kEnd) {
      if (peek().kind == TokenKind::kSymbol && peek().text == ";") {
        advance();
        break;
      }
      if (is_keyword("WHERE")) {
        advance();
        if (query.contains_needle.has_value()) {
          return Status::invalid_argument("duplicate WHERE clause");
        }
        if (is_keyword("NOT")) {
          advance();
          query.negate_contains = true;
        }
        if (Status s = expect_keyword("CONTAINS"); !s.is_ok()) return s;
        if (Status s = expect_symbol("("); !s.is_ok()) return s;
        if (peek().kind != TokenKind::kString) {
          return Status::invalid_argument(
              "CONTAINS expects a quoted string");
        }
        query.contains_needle = advance().text;
        if (Status s = expect_symbol(")"); !s.is_ok()) return s;
        continue;
      }
      if (is_keyword("SAMPLE")) {
        advance();
        if (peek().kind != TokenKind::kNumber) {
          return Status::invalid_argument("SAMPLE expects a percentage");
        }
        const double percent = std::stod(advance().text);
        if (percent <= 0.0 || percent > 100.0) {
          return Status::invalid_argument("SAMPLE must be in (0, 100]");
        }
        query.sample_fraction = percent / 100.0;
        if (Status s = expect_symbol("%"); !s.is_ok()) return s;
        continue;
      }
      if (is_keyword("INTO")) {
        advance();
        if (peek().kind != TokenKind::kWord) {
          return Status::invalid_argument("INTO expects a topic name");
        }
        query.into_topic = advance().text;
        continue;
      }
      return Status::invalid_argument("unexpected token '" + peek().text +
                                      "'");
    }
    if (peek().kind != TokenKind::kEnd) {
      return Status::invalid_argument("trailing input after ';'");
    }
    return query;
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token advance() { return tokens_[index_++]; }
  bool is_keyword(const char* keyword) const {
    return peek().kind == TokenKind::kWord && upper(peek().text) == keyword;
  }
  Status expect_keyword(const char* keyword) {
    if (!is_keyword(keyword)) {
      return Status::invalid_argument(std::string("expected ") + keyword +
                                      ", got '" + peek().text + "'");
    }
    advance();
    return Status::ok();
  }
  Status expect_symbol(const char* symbol) {
    if (peek().kind != TokenKind::kSymbol || peek().text != symbol) {
      return Status::invalid_argument(std::string("expected '") + symbol +
                                      "', got '" + peek().text + "'");
    }
    advance();
    return Status::ok();
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<StreamQuery> parse(const std::string& text) {
  auto tokens = Lexer(text).tokenize();
  if (!tokens.is_ok()) return tokens.status();
  return Parser(std::move(tokens).value()).parse();
}

std::string to_sql(const StreamQuery& query) {
  std::string sql = "SELECT ";
  sql += query.project_column.has_value()
             ? "COLUMN(" + std::to_string(*query.project_column) + ")"
             : "*";
  sql += " FROM " + query.from_topic;
  if (query.contains_needle.has_value()) {
    sql += " WHERE ";
    if (query.negate_contains) sql += "NOT ";
    sql += "CONTAINS('" + *query.contains_needle + "')";
  }
  if (query.sample_fraction.has_value()) {
    sql += " SAMPLE " + format_double(*query.sample_fraction * 100.0, 0) +
           "%";
  }
  if (!query.into_topic.empty()) sql += " INTO " + query.into_topic;
  return sql;
}

Status compile(const StreamQuery& query, kafka::Broker& broker,
               Pipeline& pipeline, const CompileOptions& options) {
  const std::string output_topic =
      query.into_topic.empty() ? options.default_output_topic
                               : query.into_topic;
  if (!broker.topic_exists(query.from_topic)) {
    return Status::not_found("FROM topic missing: " + query.from_topic);
  }
  if (!broker.topic_exists(output_topic)) {
    return Status::not_found("INTO topic missing: " + output_topic);
  }

  auto values =
      pipeline
          .apply(KafkaIO::read(broker,
                               KafkaReadConfig{.topic = query.from_topic}))
          .apply(KafkaIO::without_metadata())
          .apply(Values<runtime::Payload>::create<runtime::Payload>());

  if (query.contains_needle.has_value()) {
    values = values.apply(Filter<runtime::Payload>::by(
        [needle = *query.contains_needle,
         negate = query.negate_contains](const runtime::Payload& line) {
          return contains(line.view(), needle) != negate;
        },
        "Where/Contains"));
  }
  if (query.sample_fraction.has_value()) {
    // Thread-local RNG: statistically correct under any runner parallelism.
    values = values.apply(Filter<runtime::Payload>::by(
        [fraction = *query.sample_fraction,
         seed = options.seed](const runtime::Payload&) {
          thread_local Xoshiro256 rng(
              seed ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
          return rng.next_double() < fraction;
        },
        "Sample"));
  }
  if (query.project_column.has_value()) {
    values = values.apply(MapElements<runtime::Payload, runtime::Payload>::via(
        [column = *query.project_column](const runtime::Payload& line) {
          // The selected column is a sub-slice sharing the line's storage.
          const auto fields = split_views(line.view(), '\t');
          const auto index = static_cast<std::size_t>(column);
          return index < fields.size()
                     ? line.slice(
                           static_cast<std::size_t>(fields[index].data() -
                                                    line.view().data()),
                           fields[index].size())
                     : runtime::Payload{};
        },
        "Project/Column"));
  }
  values.apply(
      KafkaIO::write(broker, KafkaWriteConfig{.topic = output_topic}));
  return Status::ok();
}

Status compile(const std::string& text, kafka::Broker& broker,
               Pipeline& pipeline, const CompileOptions& options) {
  auto query = parse(text);
  if (!query.is_ok()) return query.status();
  return compile(query.value(), broker, pipeline, options);
}

}  // namespace dsps::beam::sql
