// The Beam-sim runtime element: a type-erased value plus the windowing
// metadata (timestamp, window set, pane) the Dataflow model attaches to
// every record. Carrying this envelope through every translated transform —
// boxing on entry, unboxing per stage, copying the window set — is the
// structural per-element cost of the abstraction layer the paper measures.
#pragma once

#include <any>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/clock.hpp"

namespace dsps::beam {

/// Event-time window [start, end). The global window spans all time.
struct BoundedWindow {
  Timestamp start = std::numeric_limits<Timestamp>::min();
  Timestamp end = std::numeric_limits<Timestamp>::max();

  friend bool operator==(const BoundedWindow&,
                         const BoundedWindow&) = default;
};

inline BoundedWindow global_window() { return {}; }

/// Which firing of a trigger produced this element.
struct PaneInfo {
  bool is_first = true;
  bool is_last = true;
  std::int64_t index = 0;
};

/// One windowed value.
struct Element {
  std::any value;
  Timestamp timestamp = std::numeric_limits<Timestamp>::min();
  std::vector<BoundedWindow> windows{global_window()};
  PaneInfo pane{};
};

template <typename T>
Element make_element(T value,
                     Timestamp timestamp =
                         std::numeric_limits<Timestamp>::min()) {
  Element element;
  element.value = std::move(value);
  element.timestamp = timestamp;
  return element;
}

template <typename T>
const T& element_value(const Element& element) {
  return std::any_cast<const T&>(element.value);
}

/// Key/value pair, the currency of GroupByKey and stateful ParDo.
template <typename K, typename V>
struct KV {
  using key_t = K;
  using value_t = V;

  K key;
  V value;

  friend bool operator==(const KV&, const KV&) = default;
};

template <typename T>
concept KvElement = requires {
  typename T::key_t;
  typename T::value_t;
};

}  // namespace dsps::beam
