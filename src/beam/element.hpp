// The Beam-sim runtime element: a type-erased value plus the windowing
// metadata (timestamp, window set, pane) the Dataflow model attaches to
// every record. Carrying this envelope through every translated transform —
// boxing on entry, unboxing per stage, copying the window set — is the
// structural per-element cost of the abstraction layer the paper measures.
//
// The envelope itself is kept lean so the measured overhead is the *model's*
// (the extra translated operators, the coder hops, the per-record writer),
// not accidental allocator traffic: hot payload types live inline in a
// variant instead of a heap-boxed std::any, and the window set stores the
// ubiquitous single-window case without allocating.
#pragma once

#include <algorithm>
#include <any>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/clock.hpp"
#include "runtime/payload.hpp"

namespace dsps::beam {

/// Event-time window [start, end). The global window spans all time.
struct BoundedWindow {
  Timestamp start = std::numeric_limits<Timestamp>::min();
  Timestamp end = std::numeric_limits<Timestamp>::max();

  friend bool operator==(const BoundedWindow&,
                         const BoundedWindow&) = default;
};

inline BoundedWindow global_window() { return {}; }

/// Which firing of a trigger produced this element.
struct PaneInfo {
  bool is_first = true;
  bool is_last = true;
  std::int64_t index = 0;
};

/// Key/value pair, the currency of GroupByKey and stateful ParDo.
template <typename K, typename V>
struct KV {
  using key_t = K;
  using value_t = V;

  K key;
  V value;

  friend bool operator==(const KV&, const KV&) = default;
};

template <typename T>
concept KvElement = requires {
  typename T::key_t;
  typename T::value_t;
};

/// Type-erased element payload. The payload types the translated queries
/// move in bulk — refcounted Payload slices, strings, KV pairs, and the
/// numeric scalars — are stored inline in a variant; any other type falls
/// back to std::any, paying the heap boxing every payload used to pay.
class Value {
 public:
  Value() = default;

  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Value>)
  Value(T&& value) {  // NOLINT(google-explicit-constructor)
    assign(std::forward<T>(value));
  }

  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Value>)
  Value& operator=(T&& value) {
    assign(std::forward<T>(value));
    return *this;
  }

  bool has_value() const noexcept {
    return !std::holds_alternative<std::monostate>(storage_);
  }

  template <typename T>
  const T& get() const {
    if constexpr (kInline<T>) {
      if (const T* inline_value = std::get_if<T>(&storage_)) {
        return *inline_value;
      }
    }
    return std::any_cast<const T&>(std::get<std::any>(storage_));
  }

 private:
  template <typename T>
  static constexpr bool kInline =
      std::is_same_v<T, std::string> ||
      std::is_same_v<T, KV<std::string, std::string>> ||
      std::is_same_v<T, runtime::Payload> ||
      std::is_same_v<T, KV<runtime::Payload, runtime::Payload>> ||
      std::is_same_v<T, std::int64_t> || std::is_same_v<T, double>;

  template <typename T>
  void assign(T&& value) {
    using Decayed = std::remove_cvref_t<T>;
    if constexpr (kInline<Decayed>) {
      storage_ = std::forward<T>(value);
    } else {
      storage_ = std::any{std::forward<T>(value)};
    }
  }

  std::variant<std::monostate, std::string, KV<std::string, std::string>,
               runtime::Payload, KV<runtime::Payload, runtime::Payload>,
               std::int64_t, double, std::any>
      storage_;
};

/// The window set of one element. Nearly every element lives in exactly one
/// window — the global window until a WindowInto reassigns it — so that
/// case is stored inline and never allocates. A multi-window assignment
/// (sliding windows) spills all windows to a vector, keeping iteration
/// contiguous either way.
class WindowSet {
 public:
  /// A fresh element belongs to the global window, as in Beam.
  WindowSet() = default;

  WindowSet(std::initializer_list<BoundedWindow> windows)
      : size_(windows.size()) {
    if (size_ == 1) {
      first_ = *windows.begin();
    } else if (size_ > 1) {
      overflow_.assign(windows.begin(), windows.end());
    }
  }

  WindowSet(std::vector<BoundedWindow> windows)  // NOLINT
      : size_(windows.size()) {
    if (size_ == 1) {
      first_ = windows.front();
    } else if (size_ > 1) {
      overflow_ = std::move(windows);
    }
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const BoundedWindow* begin() const noexcept {
    return size_ > 1 ? overflow_.data() : &first_;
  }
  const BoundedWindow* end() const noexcept { return begin() + size_; }

  const BoundedWindow& operator[](std::size_t index) const {
    return begin()[index];
  }

  friend bool operator==(const WindowSet& a, const WindowSet& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  BoundedWindow first_ = global_window();
  std::vector<BoundedWindow> overflow_;  // holds *all* windows when size_ > 1
  std::size_t size_ = 1;
};

/// One windowed value.
struct Element {
  Value value;
  Timestamp timestamp = std::numeric_limits<Timestamp>::min();
  WindowSet windows;
  PaneInfo pane{};
};

template <typename T>
Element make_element(T value,
                     Timestamp timestamp =
                         std::numeric_limits<Timestamp>::min()) {
  Element element;
  element.value = std::move(value);
  element.timestamp = timestamp;
  return element;
}

template <typename T>
const T& element_value(const Element& element) {
  return element.value.get<T>();
}

}  // namespace dsps::beam
