#include "beam/fusion.hpp"

#include <map>
#include <memory>
#include <utility>

#include "beam/stage.hpp"
#include "common/status.hpp"
#include "runtime/invoker.hpp"

namespace dsps::beam {

namespace {

/// Executes a fused chain of stage executors by direct calls. The emit
/// lambdas are built once at start(): emits_[i] feeds member i, and the
/// final slot forwards to whatever sink the runner passed into the current
/// call — so processing an element costs zero allocations beyond what the
/// member DoFns themselves do.
class FusedStageExecutor final : public StageExecutor {
 public:
  FusedStageExecutor(const std::vector<StageFactory>& factories,
                     const std::vector<std::string>& member_names) {
    members_.reserve(factories.size());
    for (const auto& factory : factories) members_.push_back(factory());
    // Per-member attribution: a fused composite reports each original
    // transform's cost under its own "beam.<name>" site, so fusing stages
    // never loses breakdown resolution.
    invokers_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      const std::string name = i < member_names.size()
                                   ? member_names[i]
                                   : "fused#" + std::to_string(i);
      invokers_.emplace_back("beam." + name);
    }
  }

  void configure(const PipelineOptions& options) override {
    for (auto& member : members_) member->configure(options);
  }

  void start() override {
    for (auto& member : members_) member->start();
    emits_.resize(members_.size() + 1);
    emits_[members_.size()] = [this](Element&& element) {
      (*sink_)(std::move(element));
    };
    for (std::size_t i = members_.size(); i-- > 1;) {
      emits_[i] = [this, i](Element&& element) {
        invokers_[i].invoke_unfaulted(
            [&] { members_[i]->process(element, emits_[i + 1]); });
      };
    }
  }

  void process(const Element& element, const Emit& emit) override {
    sink_ = &emit;
    invokers_.front().invoke_unfaulted(
        [&] { members_.front()->process(element, emits_[1]); });
  }

  void bundle_boundary(const Emit& emit) override {
    sink_ = &emit;
    // In chain order: a flush by member i still flows through i+1..n.
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i]->bundle_boundary(emits_[i + 1]);
    }
  }

  void finish(const Emit& emit) override {
    sink_ = &emit;
    // Finishing member i may emit; those elements are *processed* by the
    // not-yet-finished downstream members before their own finish runs.
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i]->finish(emits_[i + 1]);
    }
  }

 private:
  std::vector<std::unique_ptr<StageExecutor>> members_;
  std::vector<runtime::OperatorInvoker> invokers_;
  std::vector<Emit> emits_;
  const Emit* sink_ = nullptr;
};

std::string fused_name(const std::vector<std::string>& members) {
  std::string name = "Fused[";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) name += " + ";
    name += members[i];
  }
  name += "]";
  return name;
}

}  // namespace

bool fusible(const TransformNode& node) {
  return node.kind == TransformKind::kParDo && !node.stateful &&
         !node.key_hash && node.inputs.size() == 1;
}

StageFactory fused_stage(std::vector<StageFactory> members,
                         std::vector<std::string> member_names) {
  require(members.size() >= 2, "a fused stage needs at least two members");
  return [members = std::move(members),
          member_names = std::move(member_names)] {
    return std::make_unique<FusedStageExecutor>(members, member_names);
  };
}

FusionResult fuse_graph(const BeamGraph& graph) {
  const auto& nodes = graph.nodes();

  // Consumer lists once, up front (consumers_of is a scan per call).
  std::vector<std::vector<int>> consumers(nodes.size());
  for (const auto& node : nodes) {
    for (const int input : node.inputs) {
      consumers[static_cast<std::size_t>(input)].push_back(node.id);
    }
  }

  // A node may join a chain if it is fusible and not a sink (terminal).
  const auto chainable = [&](int id) {
    return fusible(nodes[static_cast<std::size_t>(id)]) &&
           !consumers[static_cast<std::size_t>(id)].empty();
  };

  // Greedy maximal chains, walking ids in (topological) builder order.
  std::vector<std::vector<int>> groups;
  std::vector<bool> grouped(nodes.size(), false);
  for (const auto& node : nodes) {
    if (grouped[static_cast<std::size_t>(node.id)]) continue;
    std::vector<int> group{node.id};
    grouped[static_cast<std::size_t>(node.id)] = true;
    if (chainable(node.id)) {
      int tail = node.id;
      while (true) {
        const auto& outs = consumers[static_cast<std::size_t>(tail)];
        // Multi-consumer output: fan-out is a barrier.
        if (outs.size() != 1) break;
        const int next = outs.front();
        if (!chainable(next)) break;
        // A parallelism change between two transforms is a redistribution.
        if (nodes[static_cast<std::size_t>(next)].parallelism_hint !=
            nodes[static_cast<std::size_t>(tail)].parallelism_hint) {
          break;
        }
        group.push_back(next);
        grouped[static_cast<std::size_t>(next)] = true;
        tail = next;
      }
    }
    groups.push_back(std::move(group));
  }

  // Rebuild the graph, one node per group. Groups are headed in ascending
  // id order, so every producer's group is emitted before its consumers'.
  FusionResult result;
  result.original_node_count = nodes.size();
  std::map<int, int> old_to_new;
  for (const auto& group : groups) {
    const TransformNode& head = nodes[static_cast<std::size_t>(group.front())];
    TransformNode fused;
    if (group.size() == 1) {
      fused = head;
      fused.inputs.clear();
    } else {
      const TransformNode& last =
          nodes[static_cast<std::size_t>(group.back())];
      std::vector<StageFactory> factories;
      std::vector<std::string> member_names;
      factories.reserve(group.size());
      member_names.reserve(group.size());
      for (const int member : group) {
        factories.push_back(nodes[static_cast<std::size_t>(member)].stage);
        member_names.push_back(nodes[static_cast<std::size_t>(member)].name);
      }
      fused.kind = TransformKind::kParDo;
      fused.name = fused_name(member_names);
      fused.urn = urns::kFused;
      fused.stage = fused_stage(std::move(factories), member_names);
      // The chain's externally visible coder is its tail's: interior
      // boundaries never re-encode.
      fused.output_coder = last.output_coder;
      fused.parallelism_hint = head.parallelism_hint;
    }
    for (const int input : head.inputs) {
      fused.inputs.push_back(old_to_new.at(input));
    }
    const int new_id = result.graph.add_node(std::move(fused));
    for (const int member : group) old_to_new[member] = new_id;
    if (group.size() > 1) {
      std::vector<std::string> member_names;
      for (const int member : group) {
        member_names.push_back(nodes[static_cast<std::size_t>(member)].name);
      }
      result.stages.push_back(
          FusedStageInfo{.node_id = new_id, .members = std::move(member_names)});
    }
  }
  return result;
}

std::string describe(const FusionResult& result) {
  std::string out = "fusion: " + std::to_string(result.original_node_count) +
                    " -> " + std::to_string(result.node_count()) + " nodes\n";
  for (const auto& stage : result.stages) {
    out += "  " + fused_name(stage.members) + "\n";
  }
  return out;
}

}  // namespace dsps::beam
