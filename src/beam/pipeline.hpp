// Pipeline and the typed PCollection/PTransform API (§II-A).
//
//   beam::Pipeline p;
//   auto records = p.apply(KafkaIO::read(broker, "input"));
//   auto kvs     = records.apply(KafkaIO::without_metadata());
//   auto values  = kvs.apply(Values<std::string>::create());
//   auto hits    = values.apply(Filter<std::string>::by([](const auto& s) {
//                    return s.find("test") != std::string::npos; }));
//   hits.apply(KafkaIO::write(broker, "output"));
//   auto result  = p.run(runner);
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "beam/graph.hpp"
#include "beam/runner.hpp"

namespace dsps::beam {

template <typename T>
class PCollection;

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Applies a root transform (one with an `expand(Pipeline&)`).
  template <typename Transform>
  auto apply(const Transform& transform) {
    return transform.expand(*this);
  }

  Result<PipelineResult> run(PipelineRunner& runner) {
    return runner.run(*this);
  }

  BeamGraph& graph() noexcept { return graph_; }
  const BeamGraph& graph() const noexcept { return graph_; }

 private:
  BeamGraph graph_;
};

/// A (possibly unbounded) distributed data set handle.
template <typename T>
class PCollection {
 public:
  PCollection(Pipeline* pipeline, int node_id)
      : pipeline_(pipeline), node_id_(node_id) {}

  /// Applies a transform (one with an `expand(const PCollection<T>&)`).
  template <typename Transform>
  auto apply(const Transform& transform) const {
    return transform.expand(*this);
  }

  Pipeline* pipeline() const noexcept { return pipeline_; }
  int node_id() const noexcept { return node_id_; }

 private:
  Pipeline* pipeline_;
  int node_id_;
};

// ---------------------------------------------------------------------------
// Core transforms.

/// ParDo.of(do_fn): the element-by-element core transform.
template <typename In, typename Out>
class ParDoTransform {
 public:
  ParDoTransform(DoFnPtr<In, Out> fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}

  ParDoTransform with_name(std::string name) const {
    ParDoTransform copy = *this;
    copy.name_ = std::move(name);
    return copy;
  }

  PCollection<Out> expand(const PCollection<In>& input) const {
    TransformNode node;
    node.kind = TransformKind::kParDo;
    node.name = name_;
    node.urn = urns::kParDo;
    node.inputs = {input.node_id()};
    node.stage = [fn = fn_] {
      return std::make_unique<ParDoExecutor<In, Out>>(fn);
    };
    node.stateful = fn_->is_stateful();
    if constexpr (KvElement<In>) {
      // Stateful DoFns need keyed routing so every instance owns its keys.
      if (fn_->is_stateful()) {
        node.key_hash =
            kv_key_hash<typename In::key_t, typename In::value_t>;
      }
    }
    if constexpr (requires { CoderTraits<Out>::of(); }) {
      node.output_coder = CoderTraits<Out>::of();
    }
    const int id = input.pipeline()->graph().add_node(std::move(node));
    return PCollection<Out>(input.pipeline(), id);
  }

 private:
  DoFnPtr<In, Out> fn_;
  std::string name_;
};

struct ParDo {
  template <typename In, typename Out>
  static ParDoTransform<In, Out> of(DoFnPtr<In, Out> fn,
                                    std::string name = "ParDo") {
    return ParDoTransform<In, Out>(std::move(fn), std::move(name));
  }
};

/// MapElements.via(fn).
template <typename In, typename Out>
class MapElements {
 public:
  static MapElements via(std::function<Out(const In&)> fn,
                         std::string name = "MapElements") {
    return MapElements(std::move(fn), std::move(name));
  }

  PCollection<Out> expand(const PCollection<In>& input) const {
    return ParDo::of<In, Out>(std::make_shared<MapDoFn<In, Out>>(fn_), name_)
        .expand(input);
  }

 private:
  MapElements(std::function<Out(const In&)> fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}

  std::function<Out(const In&)> fn_;
  std::string name_;
};

/// FlatMapElements.via(fn): fn emits through the collector callback.
template <typename In, typename Out>
class FlatMapElements {
 public:
  static FlatMapElements via(
      std::function<void(const In&, const std::function<void(Out)>&)> fn,
      std::string name = "FlatMapElements") {
    return FlatMapElements(std::move(fn), std::move(name));
  }

  PCollection<Out> expand(const PCollection<In>& input) const {
    return ParDo::of<In, Out>(std::make_shared<FlatMapDoFn<In, Out>>(fn_),
                              name_)
        .expand(input);
  }

 private:
  FlatMapElements(
      std::function<void(const In&, const std::function<void(Out)>&)> fn,
      std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}

  std::function<void(const In&, const std::function<void(Out)>&)> fn_;
  std::string name_;
};

/// Filter.by(predicate).
template <typename T>
class Filter {
 public:
  static Filter by(std::function<bool(const T&)> predicate,
                   std::string name = "Filter") {
    return Filter(std::move(predicate), std::move(name));
  }

  PCollection<T> expand(const PCollection<T>& input) const {
    return ParDo::of<T, T>(std::make_shared<FilterDoFn<T>>(predicate_), name_)
        .expand(input);
  }

 private:
  Filter(std::function<bool(const T&)> predicate, std::string name)
      : predicate_(std::move(predicate)), name_(std::move(name)) {}

  std::function<bool(const T&)> predicate_;
  std::string name_;
};

/// GroupByKey.create(): KV<K,V> -> KV<K, vector<V>> per window.
template <typename K, typename V>
class GroupByKey {
 public:
  static GroupByKey create() { return GroupByKey(); }

  PCollection<KV<K, std::vector<V>>> expand(
      const PCollection<KV<K, V>>& input) const {
    TransformNode node;
    node.kind = TransformKind::kGroupByKey;
    node.name = "GroupByKey";
    node.urn = urns::kGroupByKey;
    node.inputs = {input.node_id()};
    node.stage = [] { return std::make_unique<GroupByKeyExecutor<K, V>>(); };
    node.key_hash = kv_key_hash<K, V>;
    const int id = input.pipeline()->graph().add_node(std::move(node));
    return PCollection<KV<K, std::vector<V>>>(input.pipeline(), id);
  }
};

/// Window.into(window_fn).
template <typename T>
class WindowInto {
 public:
  explicit WindowInto(WindowFn fn, std::string name = "Window.Into")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  PCollection<T> expand(const PCollection<T>& input) const {
    TransformNode node;
    node.kind = TransformKind::kWindowInto;
    node.name = name_;
    node.urn = urns::kWindowInto;
    node.inputs = {input.node_id()};
    node.stage = [fn = fn_] {
      return std::make_unique<WindowIntoExecutor>(fn);
    };
    if constexpr (requires { CoderTraits<T>::of(); }) {
      node.output_coder = CoderTraits<T>::of();
    }
    const int id = input.pipeline()->graph().add_node(std::move(node));
    return PCollection<T>(input.pipeline(), id);
  }

 private:
  WindowFn fn_;
  std::string name_;
};

/// Flatten: merges same-typed PCollections into one (§II-A).
template <typename T>
PCollection<T> flatten(const std::vector<PCollection<T>>& inputs,
                       const std::string& name = "Flatten") {
  require(!inputs.empty(), "flatten needs at least one input");
  Pipeline* pipeline = inputs.front().pipeline();
  TransformNode node;
  node.kind = TransformKind::kFlatten;
  node.name = name;
  node.urn = urns::kFlatten;
  for (const auto& input : inputs) {
    require(input.pipeline() == pipeline,
            "flatten inputs must share a pipeline");
    node.inputs.push_back(input.node_id());
  }
  // Identity stage: flatten only merges streams.
  node.stage = [] {
    class Identity final : public StageExecutor {
     public:
      void process(const Element& element, const Emit& emit) override {
        emit(Element{element});
      }
      void finish(const Emit&) override {}
    };
    return std::make_unique<Identity>();
  };
  if constexpr (requires { CoderTraits<T>::of(); }) {
    node.output_coder = CoderTraits<T>::of();
  }
  const int id = pipeline->graph().add_node(std::move(node));
  return PCollection<T>(pipeline, id);
}

/// Values.create(): KV<K,V> -> V (drops keys; §III-C3's plan walkthrough).
template <typename V>
struct Values {
  template <typename K>
  struct OfKv {
    PCollection<V> expand(const PCollection<KV<K, V>>& input) const {
      return MapElements<KV<K, V>, V>::via(
                 [](const KV<K, V>& kv) { return kv.value; }, "Values")
          .expand(input);
    }
  };

  template <typename K = std::string>
  static OfKv<K> create() {
    return OfKv<K>{};
  }
};

/// Combine.per_key(fn): composite of GBK + a reducing ParDo.
template <typename K, typename V>
class CombinePerKey {
 public:
  CombinePerKey(std::function<V(const V&, const V&)> fn,
                std::string name = "Combine.PerKey")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  PCollection<KV<K, V>> expand(const PCollection<KV<K, V>>& input) const {
    auto grouped = GroupByKey<K, V>::create().expand(input);
    return MapElements<KV<K, std::vector<V>>, KV<K, V>>::via(
               [fn = fn_](const KV<K, std::vector<V>>& group) {
                 V accumulator = group.value.front();
                 for (std::size_t i = 1; i < group.value.size(); ++i) {
                   accumulator = fn(accumulator, group.value[i]);
                 }
                 return KV<K, V>{group.key, accumulator};
               },
               name_)
        .expand(grouped);
  }

 private:
  std::function<V(const V&, const V&)> fn_;
  std::string name_;
};

/// Count.per_element(): element -> KV<element, count>.
template <typename T>
class CountPerElement {
 public:
  PCollection<KV<T, std::int64_t>> expand(const PCollection<T>& input) const {
    auto keyed = MapElements<T, KV<T, std::int64_t>>::via(
                     [](const T& value) {
                       return KV<T, std::int64_t>{value, 1};
                     },
                     "Count.PerElement/Init")
                     .expand(input);
    return CombinePerKey<T, std::int64_t>(
               [](const std::int64_t& a, const std::int64_t& b) {
                 return a + b;
               },
               "Count.PerElement/Sum")
        .expand(keyed);
  }
};

/// Generic source transform from a ReaderFactory (used by IOs and tests).
template <typename T>
class ReadTransform {
 public:
  ReadTransform(ReaderFactory reader, std::string name)
      : reader_(std::move(reader)), name_(std::move(name)) {}

  PCollection<T> expand(Pipeline& pipeline) const {
    TransformNode node;
    node.kind = TransformKind::kRead;
    node.name = name_;
    node.urn = urns::kRead;
    node.reader = reader_;
    if constexpr (requires { CoderTraits<T>::of(); }) {
      node.output_coder = CoderTraits<T>::of();
    }
    const int id = pipeline.graph().add_node(std::move(node));
    return PCollection<T>(&pipeline, id);
  }

 private:
  ReaderFactory reader_;
  std::string name_;
};

/// Create.of(values): in-memory bounded source (tests & quickstart).
template <typename T>
class Create {
 public:
  static ReadTransform<T> of(std::vector<T> values,
                             std::string name = "Create") {
    auto shared = std::make_shared<const std::vector<T>>(std::move(values));
    ReaderFactory factory = [shared](int shard, int num_shards) {
      class VectorReader final : public SourceReader {
       public:
        VectorReader(std::shared_ptr<const std::vector<T>> values, int shard,
                     int num_shards)
            : values_(std::move(values)),
              index_(static_cast<std::size_t>(shard)),
              stride_(static_cast<std::size_t>(num_shards)) {}
        bool advance(Element& out) override {
          if (index_ >= values_->size()) return false;
          out = make_element<T>((*values_)[index_]);
          index_ += stride_;
          return true;
        }

       private:
        std::shared_ptr<const std::vector<T>> values_;
        std::size_t index_;
        std::size_t stride_;
      };
      return std::make_unique<VectorReader>(shared, shard, num_shards);
    };
    return ReadTransform<T>(std::move(factory), std::move(name));
  }
};

}  // namespace dsps::beam
