#include "beam/runners/apex_runner.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <string_view>
#include <utility>

#include "beam/fusion.hpp"
#include "common/clock.hpp"
#include "apex/dag.hpp"
#include "apex/engine.hpp"
#include "runtime/invoker.hpp"

namespace dsps::beam {

namespace {

/// Serializes the full windowed value on every inter-container hop.
class BeamTupleCodec final : public apex::StreamCodec {
 public:
  explicit BeamTupleCodec(CoderPtr value_coder)
      : coder_(std::move(value_coder)) {}

  Bytes serialize(const apex::Tuple& tuple) const override {
    return coder_.encode(apex::tuple_cast<Element>(tuple));
  }
  apex::Tuple deserialize(const Bytes& bytes) const override {
    return apex::make_tuple_of<Element>(coder_.decode(bytes));
  }

 private:
  WindowedValueCoder coder_;
};

/// Source operator pumping a Beam reader.
class BeamApexInput final : public apex::InputOperator {
 public:
  explicit BeamApexInput(ReaderFactory factory)
      : factory_(std::move(factory)), out_(register_output()) {}

  void setup(const apex::OperatorContext& context) override {
    reader_ = factory_(context.partition_index, context.partition_count);
    reader_->open();
  }

  bool emit_tuples(std::size_t budget) override {
    Element element;
    for (std::size_t i = 0; i < budget; ++i) {
      if (!reader_->advance(element)) return false;
      emit(out_, apex::make_tuple_of<Element>(std::move(element)));
      element = Element{};
    }
    return true;
  }

  void teardown() override {
    if (reader_) reader_->close();
  }

 private:
  ReaderFactory factory_;
  int out_;
  std::unique_ptr<SourceReader> reader_;
};

/// Stage operator with single-element bundles.
class BeamApexStage final : public apex::Operator {
 public:
  BeamApexStage(StageFactory factory, PipelineOptions pipeline_options,
                const std::string& site)
      : factory_(std::move(factory)), pipeline_options_(pipeline_options),
        invoker_(site),
        in_(register_input([this](const apex::Tuple& tuple) {
          on_tuple(tuple);
        })),
        out_(register_output()) {}

  void setup(const apex::OperatorContext& /*context*/) override {
    executor_ = factory_();
    // Translate pipeline-level flags (async_sinks, ...) before user code
    // initializes in start().
    executor_->configure(pipeline_options_);
    executor_->start();
  }

  void end_stream() override {
    if (executor_) {
      invoker_.invoke_unfaulted([&] { executor_->finish(emit_fn()); });
    }
  }

 private:
  Emit emit_fn() {
    return [this](Element&& produced) {
      emit(out_, apex::make_tuple_of<Element>(std::move(produced)));
    };
  }

  void on_tuple(const apex::Tuple& tuple) {
    const Emit emit = emit_fn();
    invoker_.invoke_unfaulted(
        [&] { executor_->process(apex::tuple_cast<Element>(tuple), emit); });
    // One-element bundles: buffering DoFns (the Kafka writer) flush here.
    executor_->bundle_boundary(emit);
  }

  StageFactory factory_;
  PipelineOptions pipeline_options_;
  runtime::OperatorInvoker invoker_;
  int in_;
  int out_;
  std::unique_ptr<StageExecutor> executor_;
};

Status translate(const BeamGraph& graph, const ApexRunnerOptions& options,
                 apex::Dag& dag) {
  if (graph.nodes().empty()) {
    return Status::failed_precondition("empty pipeline");
  }
  std::map<int, int> beam_to_apex;
  for (const auto& node : graph.nodes()) {
    // The node's parallelism hint wins over the pipeline default — the
    // runner maps it onto Apex's native operator partitioning.
    const int node_parallelism = node.parallelism_hint > 0
                                     ? node.parallelism_hint
                                     : options.parallelism;
    int apex_id;
    if (node.kind == TransformKind::kRead) {
      apex_id = dag.add_input_operator(node.name, [factory = node.reader] {
        return std::make_unique<BeamApexInput>(factory);
      });
      // Partitioned read: each physical instance is a reader shard
      // (BeamApexInput passes its partition index/count to the factory).
      if (node_parallelism > 1) dag.set_partitions(apex_id, node_parallelism);
    } else {
      apex_id = dag.add_operator(node.name,
                                 [factory = node.stage,
                                  pipeline_options = options.pipeline,
                                  site = "beam." + node.name] {
        return std::make_unique<BeamApexStage>(factory, pipeline_options,
                                               site);
      });
      const bool terminal = graph.consumers_of(node.id).empty();
      const bool partitionable = node.kind == TransformKind::kParDo &&
                                 !node.key_hash && !node.stateful &&
                                 !terminal;
      if (partitionable && node_parallelism > 1) {
        dag.set_partitions(apex_id, node_parallelism);
      }
    }
    beam_to_apex[node.id] = apex_id;

    for (const int input : node.inputs) {
      const auto& producer = graph.node(input);
      apex::CodecFactory codec;
      apex::Locality locality = apex::Locality::kContainerLocal;
      if (producer.output_coder != nullptr) {
        // One container per operator: the hop serializes.
        locality = apex::Locality::kNodeLocal;
        codec = [coder = producer.output_coder] {
          return std::make_unique<BeamTupleCodec>(coder);
        };
      }
      dag.add_stream("s_" + std::to_string(input) + "_" +
                         std::to_string(node.id),
                     apex::PortRef{beam_to_apex.at(input), 0},
                     apex::PortRef{beam_to_apex.at(node.id), 0}, locality,
                     std::move(codec));
    }
  }
  return Status::ok();
}

}  // namespace

Result<PipelineResult> ApexRunner::run(const Pipeline& pipeline) {
  const BeamGraph graph = options_.pipeline.fuse_stages &&
                                  !pipeline.graph().nodes().empty()
                              ? fuse_graph(pipeline.graph()).graph
                              : pipeline.graph();
  apex::Dag dag;
  if (Status s = translate(graph, options_, dag); !s.is_ok()) return s;

  yarn::ResourceManager rm;
  for (int n = 0; n < options_.cluster_nodes; ++n) {
    rm.add_node("node-" + std::to_string(n),
                yarn::Resource{options_.vcores_per_node,
                               options_.memory_mb_per_node});
  }

  const auto plan = apex::render_physical_plan(dag);
  // The restart hint maps onto YARN application reattempts; the Beam
  // readers are rebuilt per attempt and re-read the bounded input.
  apex::EngineConfig engine_config;
  engine_config.max_attempts = 1 + std::max(0, options_.restart.max_restarts);
  engine_config.restart_backoff = options_.restart.backoff;
  auto metrics = apex::launch_application(rm, dag, engine_config);
  if (!metrics.is_ok()) return metrics.status();

  PipelineResult result;
  result.state = PipelineState::kDone;
  result.duration_ms = metrics.value().gauge("app.duration_ms");
  if (plan.is_ok()) result.execution_plan = plan.value();
  // Unified schema: "operator.<name>.tuples_in" -> per-transform counts.
  constexpr std::string_view kPrefix = "operator.";
  constexpr std::string_view kSuffix = ".tuples_in";
  for (const auto& [name, count] :
       metrics.value().counters_with_prefix(kPrefix)) {
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        !name.ends_with(kSuffix)) {
      continue;
    }
    result.elements_in[name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size())] =
        count;
  }
  return result;
}

Result<std::string> ApexRunner::translate_plan(
    const Pipeline& pipeline) const {
  const BeamGraph graph = options_.pipeline.fuse_stages &&
                                  !pipeline.graph().nodes().empty()
                              ? fuse_graph(pipeline.graph()).graph
                              : pipeline.graph();
  apex::Dag dag;
  if (Status s = translate(graph, options_, dag); !s.is_ok()) return s;
  return apex::render_physical_plan(dag);
}

}  // namespace dsps::beam
