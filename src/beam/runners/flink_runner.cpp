#include "beam/runners/flink_runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "beam/fusion.hpp"
#include "flink/environment.hpp"
#include "runtime/metrics.hpp"

namespace dsps::beam {

namespace {

/// Source function pumping a Beam reader into the Flink-sim pipeline.
class BeamSourceFunction final : public flink::SourceFunction {
 public:
  explicit BeamSourceFunction(ReaderFactory factory)
      : factory_(std::move(factory)) {}

  void open(const flink::RuntimeContext& context) override {
    reader_ = factory_(context.subtask_index, context.parallelism);
    reader_->open();
  }

  void run(flink::SourceContext& context) override {
    Element element;
    while (!context.cancelled() && reader_->advance(element)) {
      context.collect(flink::make_elem<Element>(std::move(element)));
      element = Element{};
    }
    reader_->close();
  }

 private:
  ReaderFactory factory_;
  std::unique_ptr<SourceReader> reader_;
};

/// Operator wrapping a StageExecutor; ends bundles every `bundle_size`
/// elements and finishes the stage at close().
class BeamStageOperator final : public flink::StreamOperator {
 public:
  BeamStageOperator(StageFactory factory, std::size_t bundle_size,
                    PipelineOptions pipeline_options)
      : factory_(std::move(factory)), bundle_size_(bundle_size),
        pipeline_options_(pipeline_options) {}

  void open(const flink::RuntimeContext& /*context*/) override {
    executor_ = factory_();
    // Translate pipeline-level flags (async_sinks, ...) before user code
    // initializes in start().
    executor_->configure(pipeline_options_);
    executor_->start();
  }

  void process(flink::Elem element, flink::Collector& out) override {
    const Emit emit = [&out](Element&& produced) {
      out.collect(flink::make_elem<Element>(std::move(produced)));
    };
    executor_->process(flink::elem_cast<Element>(element), emit);
    if (++since_bundle_ >= bundle_size_) {
      since_bundle_ = 0;
      executor_->bundle_boundary(emit);
    }
  }

  void close(flink::Collector& out) override {
    if (!executor_) return;
    executor_->finish([&out](Element&& produced) {
      out.collect(flink::make_elem<Element>(std::move(produced)));
    });
  }

 private:
  StageFactory factory_;
  std::size_t bundle_size_;
  PipelineOptions pipeline_options_;
  std::unique_ptr<StageExecutor> executor_;
  std::size_t since_bundle_ = 0;
};

const char* translated_name(const TransformNode& node) {
  switch (node.kind) {
    case TransformKind::kRead:
      return "PTransformTranslation.UnknownRawPTransform";
    case TransformKind::kGroupByKey:
      return "GroupByKey";
    case TransformKind::kWindowInto:
    case TransformKind::kFlatten:
    case TransformKind::kParDo:
      if (node.urn == urns::kFused) return node.name.c_str();
      return node.urn == urns::kReadExpand ? "Flat Map"
                                           : "ParDoTranslation.RawParDo";
  }
  return "ParDoTranslation.RawParDo";
}

/// Builds the Flink-sim job for the (possibly fused) Beam graph.
Status translate(const BeamGraph& graph, const FlinkRunnerOptions& options,
                 flink::StreamExecutionEnvironment& env) {
  if (graph.nodes().empty()) {
    return Status::failed_precondition("empty pipeline");
  }
  env.set_parallelism(options.parallelism);
  // The paper-faithful translation runs one operator per transform: no
  // chaining (Fig. 13's plan shape). When the fusion pass is opted in, the
  // plan is already collapsed, so let the engine's own chaining glue the
  // fused stage to its source and sink — direct calls end to end, like the
  // native pipeline. What remains of the slowdown is then the structural
  // cost of the abstraction (element boxing), not operator scheduling.
  if (!options.pipeline.fuse_stages) env.disable_operator_chaining();

  std::map<int, int> beam_to_flink;
  std::map<int, int> beam_parallelism;
  for (const auto& node : graph.nodes()) {
    flink::StreamNode flink_node;
    flink_node.name = translated_name(node);
    // The node's parallelism hint wins over the pipeline default — the
    // runner maps it onto Flink's native per-operator parallelism.
    const int node_parallelism = node.parallelism_hint > 0
                                     ? node.parallelism_hint
                                     : options.parallelism;
    flink_node.parallelism = node_parallelism;
    beam_parallelism[node.id] = node_parallelism;
    if (node.kind == TransformKind::kRead) {
      flink_node.kind = flink::NodeKind::kSource;
      flink_node.make_source = [factory = node.reader] {
        return std::make_unique<BeamSourceFunction>(factory);
      };
    } else {
      flink_node.kind = flink::NodeKind::kOperator;
      flink_node.make_operator = [factory = node.stage,
                                  bundle = options.bundle_size,
                                  pipeline_options = options.pipeline] {
        return std::make_unique<BeamStageOperator>(factory, bundle,
                                                   pipeline_options);
      };
    }
    const int flink_id = env.add_node(std::move(flink_node));
    beam_to_flink[node.id] = flink_id;

    for (const int input : node.inputs) {
      flink::StreamEdge edge;
      edge.from = beam_to_flink.at(input);
      edge.to = flink_id;
      if (node.key_hash) {
        edge.mode = flink::PartitionMode::kHash;
        edge.key_fn = [hash = node.key_hash](const flink::Elem& elem) {
          return hash(flink::elem_cast<Element>(elem));
        };
      } else if (beam_parallelism.at(input) != node_parallelism) {
        // A parallelism change is a redistribution point: round-robin the
        // producer's output over the consumer's subtasks.
        edge.mode = flink::PartitionMode::kRebalance;
      } else {
        edge.mode = flink::PartitionMode::kForward;
      }
      env.add_edge(std::move(edge));
    }
  }
  return Status::ok();
}

/// One job execution: a fresh environment and fresh source readers.
Result<PipelineResult> run_once(const BeamGraph& graph,
                                const FlinkRunnerOptions& options) {
  flink::StreamExecutionEnvironment env;
  if (Status s = translate(graph, options, env); !s.is_ok()) return s;
  const std::string plan = env.execution_plan();
  auto job = env.execute("beam-flink-job");
  if (!job.is_ok()) return job.status();

  PipelineResult result;
  result.state = PipelineState::kDone;
  result.duration_ms = job.value().duration_ms;
  result.execution_plan = plan;
  // Translation adds job vertices in Beam-node order, so vertex id i is
  // transform i; counts come from the unified metrics snapshot.
  const auto& nodes = graph.nodes();
  for (std::size_t i = 0;
       i < nodes.size() && i < job.value().vertex_names.size(); ++i) {
    result.elements_in[nodes[i].name] =
        job.value().records_in(static_cast<int>(i));
  }
  return result;
}

/// The graph the runner actually translates: fused when opted in.
BeamGraph translated_graph(const Pipeline& pipeline,
                           const FlinkRunnerOptions& options) {
  if (options.pipeline.fuse_stages && !pipeline.graph().nodes().empty()) {
    return fuse_graph(pipeline.graph()).graph;
  }
  return pipeline.graph();
}

}  // namespace

Result<PipelineResult> FlinkRunner::run(const Pipeline& pipeline) {
  const BeamGraph graph = translated_graph(pipeline, options_);
  // Fixed-delay restart strategy: each attempt rebuilds the translated job
  // from the Beam graph (new environment, new readers) and re-executes it
  // from scratch — how Flink restarts a job that has no checkpoint state.
  const runtime::RestartPolicy policy{
      .max_attempts = 1 + std::max(0, options_.restart.max_restarts),
      .backoff = options_.restart.backoff};
  Result<PipelineResult> outcome = Status::internal("job never ran");
  const Status final_status = runtime::run_supervised(
      policy,
      [&](int /*attempt*/) -> Status {
        auto attempt_result = run_once(graph, options_);
        if (!attempt_result.is_ok()) return attempt_result.status();
        outcome = std::move(attempt_result);
        return Status::ok();
      },
      [](int /*attempt*/, const Status& /*error*/) {
        runtime::MetricsRegistry::global()
            .counter("flink.recovery.restarts")
            .add(1);
      });
  if (!final_status.is_ok()) return final_status;
  return outcome;
}

Result<std::string> FlinkRunner::translate_plan(
    const Pipeline& pipeline) const {
  flink::StreamExecutionEnvironment env;
  const BeamGraph graph = translated_graph(pipeline, options_);
  if (Status s = translate(graph, options_, env); !s.is_ok()) return s;
  return env.execution_plan();
}

}  // namespace dsps::beam
