// DirectRunner: in-process, single-threaded reference runner (Beam's
// DirectRunner analogue). Used by tests to pin transform semantics and as
// the ground truth the engine runners are checked against.
#pragma once

#include <cstddef>

#include "beam/options.hpp"
#include "beam/pipeline.hpp"
#include "beam/runner.hpp"

namespace dsps::beam {

struct DirectRunnerOptions {
  /// Elements per bundle (finish_bundle cadence).
  std::size_t bundle_size = 1000;
  /// Pipeline-level flags, forwarded to every stage executor. The reference
  /// runner translates them too so a flagged pipeline can be differentially
  /// checked against the same flags on an engine runner.
  PipelineOptions pipeline;
};

class DirectRunner final : public PipelineRunner {
 public:
  explicit DirectRunner(DirectRunnerOptions options = {})
      : options_(options) {}

  Result<PipelineResult> run(const Pipeline& pipeline) override;
  std::string name() const override { return "DirectRunner"; }

 private:
  DirectRunnerOptions options_;
};

}  // namespace dsps::beam
