#include "beam/runners/spark_runner.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "beam/fusion.hpp"
#include "common/clock.hpp"
#include "runtime/invoker.hpp"
#include "spark/streaming_context.hpp"

namespace dsps::beam {

namespace {

/// Bounded Beam source as a Spark input DStream: the first batch drains the
/// readers (one per parallelism shard), later batches are empty.
class BeamSourceDStreamNode final : public spark::DStreamNode<Element>,
                                    public spark::InputDStreamBase {
 public:
  BeamSourceDStreamNode(ReaderFactory factory, int parallelism)
      : factory_(std::move(factory)), parallelism_(parallelism) {}

  spark::RDDPtr<Element> rdd_for(spark::BatchId batch,
                                 spark::SparkContext& /*sc*/) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;
    std::vector<std::vector<Element>> shards(
        static_cast<std::size_t>(parallelism_));
    std::size_t total = 0;
    if (!exhausted_) {
      for (int shard = 0; shard < parallelism_; ++shard) {
        auto reader = factory_(shard, parallelism_);
        reader->open();
        Element element;
        while (reader->advance(element)) {
          shards[static_cast<std::size_t>(shard)].push_back(
              std::move(element));
          element = Element{};
        }
        reader->close();
      }
      for (const auto& shard : shards) total += shard.size();
      exhausted_ = true;  // bounded readers are one-shot
    }
    last_batch_records_ = total;
    cached_ =
        std::make_shared<spark::ParallelCollectionRDD<Element>>(
            std::move(shards));
    cached_batch_ = batch;
    return cached_;
  }

  bool drained() const override {
    std::lock_guard lock(mutex_);
    return exhausted_;
  }
  std::size_t last_batch_records() const override {
    std::lock_guard lock(mutex_);
    return last_batch_records_;
  }

 private:
  ReaderFactory factory_;
  int parallelism_;
  mutable std::mutex mutex_;
  bool exhausted_ = false;
  std::size_t last_batch_records_ = 0;
  spark::BatchId cached_batch_ = -1;
  spark::RDDPtr<Element> cached_;
};

/// Unions several parent streams batch-wise (the Flatten translation).
class UnionDStreamNode final : public spark::DStreamNode<Element> {
 public:
  explicit UnionDStreamNode(
      std::vector<std::shared_ptr<spark::DStreamNode<Element>>> parents)
      : parents_(std::move(parents)) {}

  spark::RDDPtr<Element> rdd_for(spark::BatchId batch,
                                 spark::SparkContext& sc) override {
    std::lock_guard lock(mutex_);
    if (batch == cached_batch_ && cached_) return cached_;
    std::vector<spark::RDDPtr<Element>> rdds;
    rdds.reserve(parents_.size());
    for (const auto& parent : parents_) {
      rdds.push_back(parent->rdd_for(batch, sc));
    }
    cached_ = std::make_shared<spark::UnionRDD<Element>>(std::move(rdds));
    cached_batch_ = batch;
    return cached_;
  }

 private:
  std::vector<std::shared_ptr<spark::DStreamNode<Element>>> parents_;
  std::mutex mutex_;
  spark::BatchId cached_batch_ = -1;
  spark::RDDPtr<Element> cached_;
};

/// Lazy stage iterator: pulls input elements through the stage executor one
/// at a time (pipelined, like a real Spark task), ending bundles every
/// `bundle_size` elements and finishing the executor at end of input.
class StageIterator final : public spark::Iterator<Element> {
 public:
  StageIterator(const StageFactory& factory, spark::IterPtr<Element> in,
                std::size_t bundle_size,
                const PipelineOptions& pipeline_options,
                const std::string& site)
      : executor_(factory()),
        invoker_(site),
        in_(std::move(in)),
        bundle_size_(bundle_size) {
    // Translate pipeline-level flags (async_sinks, ...) before user code
    // initializes in start().
    executor_->configure(pipeline_options);
    executor_->start();
  }

  std::optional<Element> next() override {
    while (buffer_index_ >= buffer_.size()) {
      buffer_.clear();
      buffer_index_ = 0;
      const Emit emit = [this](Element&& produced) {
        buffer_.push_back(std::move(produced));
      };
      if (auto element = in_->next()) {
        invoker_.invoke_unfaulted([&] { executor_->process(*element, emit); });
        if (++since_bundle_ >= bundle_size_) {
          since_bundle_ = 0;
          executor_->bundle_boundary(emit);
        }
        continue;
      }
      if (!finished_) {
        invoker_.invoke_unfaulted([&] { executor_->finish(emit); });
        finished_ = true;
        continue;
      }
      return std::nullopt;
    }
    return std::move(buffer_[buffer_index_++]);
  }

 private:
  std::unique_ptr<StageExecutor> executor_;
  runtime::OperatorInvoker invoker_;
  spark::IterPtr<Element> in_;
  std::size_t bundle_size_;
  std::vector<Element> buffer_;
  std::size_t buffer_index_ = 0;
  std::size_t since_bundle_ = 0;
  bool finished_ = false;
};

}  // namespace

Result<PipelineResult> SparkRunner::run(const Pipeline& pipeline) {
  if (pipeline.graph().nodes().empty()) {
    return Status::failed_precondition("empty pipeline");
  }
  const BeamGraph graph = options_.pipeline.fuse_stages
                              ? fuse_graph(pipeline.graph()).graph
                              : pipeline.graph();
  if (graph.contains_stateful()) {
    // Beam 2.3's Spark runner capability matrix: no stateful processing.
    return Status::unsupported(
        "the Spark runner does not support stateful ParDo "
        "(see the Beam capability matrix; the paper excluded stateful "
        "queries for this reason)");
  }

  spark::SparkConf conf;
  conf.app_name = "beam-spark-job";
  conf.default_parallelism = options_.parallelism;
  spark::StreamingContext ssc(conf, options_.batch_interval_ms);
  // The restart hint maps onto Spark's native mechanism: per-batch retry
  // against the same cached RDD.
  ssc.set_batch_retries(std::max(0, options_.restart.max_restarts),
                        options_.restart.backoff);

  // Translate nodes to DStreams.
  std::map<int, spark::DStream<Element>> translated;
  std::vector<std::shared_ptr<std::atomic<std::uint64_t>>> counters;
  for (const auto& node : graph.nodes()) {
    counters.push_back(std::make_shared<std::atomic<std::uint64_t>>(0));
    auto counter = counters.back();
    // Per-transform parallelism: the node's hint wins over the pipeline
    // default (Beam's way to express engine-native scaling per transform).
    const int node_parallelism =
        node.parallelism_hint > 0 ? node.parallelism_hint
                                  : options_.parallelism;
    if (node.kind == TransformKind::kRead) {
      auto source = std::make_shared<BeamSourceDStreamNode>(
          node.reader, node_parallelism);
      ssc.register_input(source);
      spark::DStream<Element> stream(&ssc, source);
      if (node_parallelism > 1) {
        // Bundle redistribution after the source: costs a shuffle per batch.
        translated.emplace(node.id, stream.repartition(node_parallelism));
      } else {
        // P1: the source already yields exactly one shard — a repartition
        // here would shuffle every record into the same single split.
        translated.emplace(node.id, stream);
      }
      continue;
    }

    require(!node.inputs.empty(), "non-source node without inputs");
    spark::DStream<Element> input = translated.at(node.inputs.front());
    if (node.inputs.size() > 1) {
      // Flatten: union the parent streams batch-wise.
      std::vector<std::shared_ptr<spark::DStreamNode<Element>>> parents;
      parents.reserve(node.inputs.size());
      for (const int parent : node.inputs) {
        parents.push_back(translated.at(parent).node());
      }
      input = spark::DStream<Element>(
          &ssc, std::make_shared<UnionDStreamNode>(std::move(parents)));
    }

    if (node.key_hash) {
      input = input.transform<Element>(
          [hash = node.key_hash,
           parallelism = node_parallelism](
              spark::RDDPtr<Element> rdd) -> spark::RDDPtr<Element> {
            return std::make_shared<spark::KeyPartitionRDD<Element>>(
                std::move(rdd), hash, parallelism);
          });
    }
    translated.emplace(
        node.id,
        input.map_partitions<Element>(
            [factory = node.stage, counter, site = "beam." + node.name,
             pipeline_options = options_.pipeline](
                spark::IterPtr<Element> in) -> spark::IterPtr<Element> {
              class CountingIter final : public spark::Iterator<Element> {
               public:
                CountingIter(spark::IterPtr<Element> in,
                             std::atomic<std::uint64_t>* counter)
                    : in_(std::move(in)), counter_(counter) {}
                std::optional<Element> next() override {
                  auto element = in_->next();
                  if (element) {
                    counter_->fetch_add(1, std::memory_order_relaxed);
                  }
                  return element;
                }

               private:
                spark::IterPtr<Element> in_;
                std::atomic<std::uint64_t>* counter_;
              };
              return std::make_unique<StageIterator>(
                  factory,
                  std::make_unique<CountingIter>(std::move(in),
                                                 counter.get()),
                  /*bundle_size=*/1000, pipeline_options, site);
            }));
  }

  // Terminal nodes (no consumers) become output operations.
  bool has_output = false;
  for (const auto& node : graph.nodes()) {
    if (!graph.consumers_of(node.id).empty()) continue;
    has_output = true;
    translated.at(node.id).foreach_rdd(
        [](spark::SparkContext& sc, const spark::RDDPtr<Element>& rdd) {
          // Force evaluation of the whole lineage for this batch.
          sc.run_job<Element>(rdd, [](int, spark::IterPtr<Element> iter) {
            while (iter->next()) {
            }
          });
        });
  }
  if (!has_output) {
    return Status::failed_precondition("pipeline has no terminal transform");
  }

  Stopwatch watch;
  if (Status s = ssc.run_bounded(); !s.is_ok()) return s;

  PipelineResult result;
  result.state = PipelineState::kDone;
  result.duration_ms = watch.elapsed_ms();
  const auto& nodes = graph.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    result.elements_in[nodes[i].name] = counters[i]->load();
  }
  return result;
}

}  // namespace dsps::beam
