// SparkRunner: translates the Beam graph onto Spark-sim micro-batches.
//
// Translation style (matching the real runner as of Beam 2.3):
//  * stateful ParDo is rejected — the reason the paper had to exclude the
//    stateful StreamBench queries (§III-B);
//  * at parallelism > 1 the source is followed by a bundle-redistribution
//    repartition, so every batch pays a shuffle that trivial queries cannot
//    amortize — the observed P2-slower-than-P1 anomaly (§III-C1). At
//    parallelism 1 the repartition is skipped: the source already yields
//    exactly one shard, so the degenerate single-partition shuffle would
//    move nothing (pinned by SparkPlanShapeTest);
//  * each transform becomes a mapPartitions stage over boxed elements, one
//    bundle per partition per batch;
//  * GroupByKey hash-partitions by key and groups within the micro-batch.
#pragma once

#include <cstdint>

#include "beam/options.hpp"
#include "beam/pipeline.hpp"
#include "beam/runner.hpp"
#include "kafka/broker.hpp"

namespace dsps::beam {

struct SparkRunnerOptions {
  /// spark.default.parallelism (§III-A2).
  int parallelism = 1;
  std::int64_t batch_interval_ms = 50;
  /// Portable pipeline-level knobs. With `fuse_stages`, chains of
  /// one-to-one ParDos run as one mapPartitions stage per batch instead of
  /// one per transform. Off by default (paper-faithful translation).
  PipelineOptions pipeline{};
  /// Translated to Spark's micro-batch retry: a failed batch re-runs
  /// against the same cached RDD (same input slice), at-least-once.
  RestartHint restart{};
};

class SparkRunner final : public PipelineRunner {
 public:
  explicit SparkRunner(SparkRunnerOptions options = {}) : options_(options) {}

  Result<PipelineResult> run(const Pipeline& pipeline) override;
  std::string name() const override { return "SparkRunner"; }

 private:
  SparkRunnerOptions options_;
};

}  // namespace dsps::beam
