#include "beam/runners/direct_runner.hpp"

#include <map>
#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "runtime/invoker.hpp"

namespace dsps::beam {

Result<PipelineResult> DirectRunner::run(const Pipeline& pipeline) {
  const BeamGraph& graph = pipeline.graph();
  if (graph.nodes().empty()) {
    return Status::failed_precondition("empty pipeline");
  }

  Stopwatch watch;

  // One executor per non-read node; one reader per read node. Each executor
  // pairs with an invoker carrying its "beam.<name>" attribution site.
  std::map<int, std::unique_ptr<StageExecutor>> executors;
  std::map<int, runtime::OperatorInvoker> invokers;
  std::map<int, std::uint64_t> elements_in;
  std::map<int, std::size_t> bundle_counts;
  for (const auto& node : graph.nodes()) {
    elements_in[node.id] = 0;
    if (node.kind != TransformKind::kRead) {
      executors[node.id] = node.stage();
      executors[node.id]->configure(options_.pipeline);
      executors[node.id]->start();
      invokers.emplace(node.id,
                       runtime::OperatorInvoker("beam." + node.name));
    }
  }

  // Depth-first push: processing an element at `node` forwards every output
  // to all consumers immediately.
  std::function<void(int, Element&&)> feed = [&](int node_id,
                                                 Element&& element) {
    auto& executor = executors.at(node_id);
    ++elements_in[node_id];
    const auto consumers = graph.consumers_of(node_id);
    const Emit emit = [&](Element&& out) {
      for (const int consumer : consumers) {
        Element copy = out;  // fan-out copies, as a distributed shuffle would
        feed(consumer, std::move(copy));
      }
    };
    invokers.at(node_id).invoke_unfaulted(
        [&] { executor->process(element, emit); });
    if (++bundle_counts[node_id] >= options_.bundle_size) {
      bundle_counts[node_id] = 0;
      executor->bundle_boundary(emit);
    }
  };

  // Drive each source to exhaustion, then finish nodes topologically
  // (builder order is topological).
  for (const auto& node : graph.nodes()) {
    if (node.kind != TransformKind::kRead) continue;
    auto reader = node.reader(/*shard=*/0, /*num_shards=*/1);
    reader->open();
    Element element;
    const auto consumers = graph.consumers_of(node.id);
    while (reader->advance(element)) {
      ++elements_in[node.id];
      for (const int consumer : consumers) {
        Element copy = element;
        feed(consumer, std::move(copy));
      }
    }
    reader->close();
  }
  for (const auto& node : graph.nodes()) {
    if (node.kind == TransformKind::kRead) continue;
    const auto consumers = graph.consumers_of(node.id);
    executors.at(node.id)->finish([&](Element&& out) {
      for (const int consumer : consumers) {
        Element copy = out;
        feed(consumer, std::move(copy));
      }
    });
  }

  PipelineResult result;
  result.state = PipelineState::kDone;
  result.duration_ms = watch.elapsed_ms();
  for (const auto& node : graph.nodes()) {
    result.elements_in[node.name] = elements_in[node.id];
  }
  return result;
}

}  // namespace dsps::beam
