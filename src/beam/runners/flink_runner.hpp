// FlinkRunner: translates the Beam graph onto Flink-sim.
//
// Translation style (matching the real runner as the paper observed it in
// Fig. 13): every transform becomes its *own* unfused operator (operator
// chaining is disabled), the source renders as
// "PTransformTranslation.UnknownRawPTransform", the read expansion as
// "Flat Map", and every other transform as "ParDoTranslation.RawParDo".
// Elements cross a channel between every pair of stages, boxed in the full
// windowed-value envelope.
#pragma once

#include <cstddef>

#include "beam/options.hpp"
#include "beam/pipeline.hpp"
#include "beam/runner.hpp"

namespace dsps::beam {

struct FlinkRunnerOptions {
  /// The -p / --parallelism submission flag (§III-A2).
  int parallelism = 1;
  /// Elements per bundle; the writer flushes at bundle boundaries.
  std::size_t bundle_size = 1000;
  /// Portable pipeline-level knobs. With `fuse_stages`, the fusion pass
  /// (beam/fusion.hpp) runs before translation, so chains of one-to-one
  /// ParDos deploy as one operator instead of one each — the translated
  /// plan shrinks toward the native Fig. 12 shape. Off by default: the
  /// unfused plan is what the paper measured.
  PipelineOptions pipeline{};
  /// Translated to Flink's fixed-delay restart strategy: on failure, the
  /// whole job is rebuilt and re-executed from scratch (full source
  /// re-read, at-least-once — the translated job runs without Beam-side
  /// checkpoint state).
  RestartHint restart{};
};

class FlinkRunner final : public PipelineRunner {
 public:
  explicit FlinkRunner(FlinkRunnerOptions options = {}) : options_(options) {}

  Result<PipelineResult> run(const Pipeline& pipeline) override;
  std::string name() const override { return "FlinkRunner"; }

  /// The translated execution plan without running (Fig. 13 reproduction).
  Result<std::string> translate_plan(const Pipeline& pipeline) const;

 private:
  FlinkRunnerOptions options_;
};

}  // namespace dsps::beam
