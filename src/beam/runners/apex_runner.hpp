// ApexRunner: translates the Beam graph onto Apex-sim running on YARN-sim.
//
// Translation style (matching the era's runner as the paper measured it):
//  * every transform deploys as its own operator in its own container, so
//    every hop serializes the full windowed value (coder work per element
//    per stage);
//  * bundles are a single element wide: the Kafka writer flushes — and pays
//    a broker round trip — once per output record. That makes the penalty
//    grow with output volume: identity/projection (100% output) are hit
//    hardest, sample (40%) less, grep (0.3%) barely — exactly the pattern
//    of Fig. 11 and the §III-C3 discussion.
#pragma once

#include "beam/options.hpp"
#include "beam/pipeline.hpp"
#include "beam/runner.hpp"

namespace dsps::beam {

struct ApexRunnerOptions {
  /// VCORE-style parallelism applied to partitionable ParDo operators
  /// (the paper configures Apex parallelism through YARN VCOREs + a DAG
  /// attribute, §III-A2).
  int parallelism = 1;
  /// Simulated cluster shape (the paper used 2 worker nodes).
  int cluster_nodes = 2;
  int vcores_per_node = 64;
  int memory_mb_per_node = 65536;
  /// Translated to YARN application reattempts: STRAM redeploys fresh
  /// operator instances; Beam readers are one-shot, so a reattempt re-reads
  /// the bounded input from the beginning (at-least-once).
  RestartHint restart{};
  /// Portable pipeline-level knobs. With `fuse_stages`, a fused chain
  /// deploys as ONE container — interior hops neither serialize nor cross
  /// containers, so the per-hop windowed-value coder cost (the §III-C3
  /// catastrophe) is paid once per chain instead of once per transform.
  /// Off by default (paper-faithful translation).
  PipelineOptions pipeline{};
};

class ApexRunner final : public PipelineRunner {
 public:
  explicit ApexRunner(ApexRunnerOptions options = {}) : options_(options) {}

  Result<PipelineResult> run(const Pipeline& pipeline) override;
  std::string name() const override { return "ApexRunner"; }

  /// The translated physical plan without running.
  Result<std::string> translate_plan(const Pipeline& pipeline) const;

 private:
  ApexRunnerOptions options_;
};

}  // namespace dsps::beam
