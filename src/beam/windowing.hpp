// Extended windowing strategies beyond fixed windows: sliding windows,
// session windows (with merging), and count-based triggers for GroupByKey.
// These cover the Dataflow-model features (§II-A: "one must use an
// aggregation trigger or non-global windowing in order to enable the
// grouping to be applied to a finite data set") that the paper's stateless
// queries did not exercise — and that its future-work section points at.
#pragma once

#include <algorithm>
#include <cstdint>

#include "beam/stage.hpp"

namespace dsps::beam {

/// Sliding event-time windows: every element lands in size/period windows.
/// E.g. size=60s, period=30s: each timestamp belongs to 2 windows.
inline WindowFn sliding_windows(std::int64_t size, std::int64_t period) {
  require(size > 0 && period > 0 && period <= size,
          "sliding windows need 0 < period <= size");
  return [size, period](Timestamp timestamp) {
    std::vector<BoundedWindow> windows;
    // The last window starting at or before `timestamp`.
    Timestamp start = timestamp - (timestamp % period);
    if (timestamp < 0 && timestamp % period != 0) start -= period;
    // Walk back while the window still contains the timestamp.
    for (Timestamp s = start; s > timestamp - size; s -= period) {
      windows.push_back(BoundedWindow{s, s + size});
    }
    std::reverse(windows.begin(), windows.end());
    return windows;
  };
}

/// Session windows: each element opens a gap-sized proto-window; the
/// session GroupByKey merges overlapping windows per key.
inline WindowFn session_windows(std::int64_t gap) {
  require(gap > 0, "session gap must be positive");
  return [gap](Timestamp timestamp) {
    return std::vector<BoundedWindow>{{timestamp, timestamp + gap}};
  };
}

/// GroupByKey with session-window merging: overlapping proto-windows of the
/// same key merge into one session before emission.
template <typename K, typename V>
class SessionGroupByKeyExecutor final : public StageExecutor {
 public:
  void process(const Element& element, const Emit& /*emit*/) override {
    const auto& kv = element_value<KV<K, V>>(element);
    for (const auto& window : element.windows) {
      per_key_[kv.key].push_back({window, kv.value});
    }
  }

  void finish(const Emit& emit) override {
    for (auto& [key, entries] : per_key_) {
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.window.start < b.window.start;
                });
      std::size_t i = 0;
      while (i < entries.size()) {
        BoundedWindow session = entries[i].window;
        std::vector<V> values{entries[i].value};
        std::size_t j = i + 1;
        while (j < entries.size() &&
               entries[j].window.start <= session.end) {
          session.end = std::max(session.end, entries[j].window.end);
          values.push_back(entries[j].value);
          ++j;
        }
        Element out;
        out.value = KV<K, std::vector<V>>{key, std::move(values)};
        out.timestamp = session.end - 1;
        out.windows = {session};
        emit(std::move(out));
        i = j;
      }
    }
    per_key_.clear();
  }

 private:
  struct Entry {
    BoundedWindow window;
    V value;
  };
  std::unordered_map<K, std::vector<Entry>> per_key_;
};

/// Session-merging GroupByKey transform (apply after
/// WindowInto(session_windows(gap))).
template <typename K, typename V>
class SessionGroupByKey {
 public:
  PCollection<KV<K, std::vector<V>>> expand(
      const PCollection<KV<K, V>>& input) const {
    TransformNode node;
    node.kind = TransformKind::kGroupByKey;
    node.name = "SessionGroupByKey";
    node.urn = urns::kGroupByKey;
    node.inputs = {input.node_id()};
    node.stage = [] {
      return std::make_unique<SessionGroupByKeyExecutor<K, V>>();
    };
    node.key_hash = kv_key_hash<K, V>;
    const int id = input.pipeline()->graph().add_node(std::move(node));
    return PCollection<KV<K, std::vector<V>>>(input.pipeline(), id);
  }
};

/// GroupByKey variant with an element-count trigger: fires a pane for a
/// (key, window) every `count` elements (plus a final closing pane).
/// Early panes carry is_last=false; the on-time pane carries is_last=true.
template <typename K, typename V>
class TriggeredGroupByKeyExecutor final : public StageExecutor {
 public:
  explicit TriggeredGroupByKeyExecutor(std::size_t count) : count_(count) {}

  void process(const Element& element, const Emit& emit) override {
    const auto& kv = element_value<KV<K, V>>(element);
    for (const auto& window : element.windows) {
      auto& cell = groups_[{window.start, window.end}][kv.key];
      cell.values.push_back(kv.value);
      if (cell.values.size() >= count_) {
        fire(window, kv.key, cell, /*is_last=*/false, emit);
      }
    }
  }

  void finish(const Emit& emit) override {
    for (auto& [window_key, by_key] : groups_) {
      const BoundedWindow window{window_key.first, window_key.second};
      for (auto& [key, cell] : by_key) {
        if (!cell.values.empty() || cell.pane_index == 0) {
          fire(window, key, cell, /*is_last=*/true, emit);
        }
      }
    }
    groups_.clear();
  }

 private:
  struct Cell {
    std::vector<V> values;
    std::int64_t pane_index = 0;
  };

  void fire(const BoundedWindow& window, const K& key, Cell& cell,
            bool is_last, const Emit& emit) {
    Element out;
    out.value = KV<K, std::vector<V>>{key, std::move(cell.values)};
    cell.values.clear();
    out.timestamp = window.end == std::numeric_limits<Timestamp>::max()
                        ? window.end
                        : window.end - 1;
    out.windows = {window};
    out.pane = PaneInfo{.is_first = cell.pane_index == 0,
                        .is_last = is_last,
                        .index = cell.pane_index};
    ++cell.pane_index;
    emit(std::move(out));
  }

  std::size_t count_;
  std::map<std::pair<Timestamp, Timestamp>, std::unordered_map<K, Cell>>
      groups_;
};

/// GroupByKey with an element-count trigger — the "aggregation trigger"
/// §II-A names as the alternative to non-global windowing.
template <typename K, typename V>
class TriggeredGroupByKey {
 public:
  explicit TriggeredGroupByKey(std::size_t element_count)
      : element_count_(element_count) {
    require(element_count > 0, "trigger count must be positive");
  }

  PCollection<KV<K, std::vector<V>>> expand(
      const PCollection<KV<K, V>>& input) const {
    TransformNode node;
    node.kind = TransformKind::kGroupByKey;
    node.name = "GroupByKey.Triggered";
    node.urn = urns::kGroupByKey;
    node.inputs = {input.node_id()};
    node.stage = [count = element_count_] {
      return std::make_unique<TriggeredGroupByKeyExecutor<K, V>>(count);
    };
    node.key_hash = kv_key_hash<K, V>;
    const int id = input.pipeline()->graph().add_node(std::move(node));
    return PCollection<KV<K, std::vector<V>>>(input.pipeline(), id);
  }

 private:
  std::size_t element_count_;
};

}  // namespace dsps::beam
