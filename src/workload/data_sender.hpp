// Data sender: benchmark phase 1 (§III-A2, step "Data Ingestion").
//
// Mirrors the paper's Scala data sender: reads the input data and forwards
// it to the message broker, with configurable ingestion rate and producer
// acknowledgement level. The benchmark input topic is created with one
// partition and replication factor one so record order is guaranteed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "kafka/producer.hpp"
#include "workload/aol_generator.hpp"

namespace dsps::workload {

struct DataSenderConfig {
  std::string topic;
  /// Records per second; 0 = as fast as possible (the paper pre-loads).
  std::uint64_t ingestion_rate = 0;
  kafka::Acks acks = kafka::Acks::kLeader;
  std::size_t producer_batch_size = 1000;
  /// How records spread over a multi-partition topic. The paper's setup is
  /// a one-partition topic, where both partitioners degenerate to
  /// partition 0; the scale-out sweep round-robins over N partitions.
  kafka::Partitioner partitioner = kafka::Partitioner::kRoundRobin;
};

struct IngestReport {
  std::uint64_t records_sent = 0;
  double duration_ms = 0.0;
};

class DataSender {
 public:
  DataSender(kafka::Broker& broker, DataSenderConfig config);

  /// Sends pre-built lines.
  Result<IngestReport> send_lines(const std::vector<std::string>& lines);

  /// Streams records straight from the generator (no materialized vector —
  /// supports the full 1,000,001-record paper scale without holding it).
  Result<IngestReport> send_generated(const AolGenerator& generator);

 private:
  Result<IngestReport> send_impl(
      std::uint64_t count,
      const std::function<std::string(std::uint64_t)>& line_at);

  kafka::Broker& broker_;
  DataSenderConfig config_;
};

/// Creates the benchmark topic exactly as the paper does: one partition,
/// replication factor one, LogAppendTime stamping. The `partitions`
/// overload keeps the paper's replication/timestamp setup but fans the
/// topic out for the scale-out sweep.
Status create_benchmark_topic(kafka::Broker& broker, const std::string& name);
Status create_benchmark_topic(kafka::Broker& broker, const std::string& name,
                              int partitions);

}  // namespace dsps::workload
