// Synthetic AOL-search-log workload.
//
// The paper streams 1,000,001 records of the (now withdrawn) AOL Search
// Query Log: five tab-separated columns — anonymous user id, query text,
// query time, clicked result rank (optional), clicked URL (optional)
// (§III-A1). The dataset is not redistributable, so we synthesize records
// with the same schema and the selectivities the benchmark depends on:
//   * the Grep needle "test" appears in ~0.3003% of queries
//     (3,003 of 1,000,001 in the paper);
//   * rank/URL present for roughly half the records (clicked results).
// Generation is deterministic in the seed: same seed + count => same data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsps::workload {

struct AolRecord {
  std::string user_id;
  std::string query;
  std::string query_time;
  std::string item_rank;  // empty when the user did not click
  std::string click_url;  // empty when the user did not click

  /// The tab-separated line as it would appear in the log file.
  std::string to_line() const;

  /// Parses a tab-separated line (inverse of to_line).
  static AolRecord from_line(const std::string& line);
};

struct AolGeneratorConfig {
  std::uint64_t record_count = 1'000'001;
  std::uint64_t seed = 42;
  /// Fraction of queries containing the Grep needle.
  double grep_needle_fraction = 3003.0 / 1'000'001.0;
  std::string grep_needle = "test";
};

class AolGenerator {
 public:
  explicit AolGenerator(AolGeneratorConfig config);

  /// Generates record `index` (0-based). Stateless in `this` apart from
  /// config: any index can be generated independently and deterministically.
  AolRecord record_at(std::uint64_t index) const;

  /// Generates records [0, config.record_count) as lines.
  std::vector<std::string> all_lines() const;

  /// True when record `index` contains the grep needle.
  bool is_grep_match(std::uint64_t index) const;

  /// Exact number of grep matches in [0, record_count).
  std::uint64_t grep_match_count() const;

  const AolGeneratorConfig& config() const noexcept { return config_; }

 private:
  AolGeneratorConfig config_;
  std::uint64_t needle_modulus_;  // index % modulus == kNeedleResidue => match
};

}  // namespace dsps::workload
