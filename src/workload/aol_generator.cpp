#include "workload/aol_generator.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace dsps::workload {

namespace {

constexpr std::uint64_t kNeedleResidue = 7;

// Vocabulary for query synthesis. None of these contain "test" as a
// substring ("contest", "protest", "latest" are deliberately absent), so
// needle occurrence is fully controlled by the generator.
constexpr std::array kWords = {
    "weather",  "lyrics",  "recipe",   "movie",   "hotel",   "flight",
    "games",    "news",    "pictures", "school",  "music",   "phone",
    "house",    "jobs",    "car",      "credit",  "dollar",  "health",
    "store",    "beach",   "county",   "city",    "map",     "code",
    "florida",  "texas",   "free",     "online",  "cheap",   "best",
    "york",     "sale",    "book",     "radio",   "tickets", "college",
};

constexpr std::array kDomains = {
    "example.com",   "search.net",   "shopping.org", "travelsite.com",
    "localnews.com", "bigstore.com", "questions.net", "photos.org",
};

}  // namespace

std::string AolRecord::to_line() const {
  std::string line;
  line.reserve(user_id.size() + query.size() + query_time.size() +
               item_rank.size() + click_url.size() + 4);
  line += user_id;
  line += '\t';
  line += query;
  line += '\t';
  line += query_time;
  line += '\t';
  line += item_rank;
  line += '\t';
  line += click_url;
  return line;
}

AolRecord AolRecord::from_line(const std::string& line) {
  const auto fields = split(line, '\t');
  AolRecord record;
  if (fields.size() > 0) record.user_id = fields[0];
  if (fields.size() > 1) record.query = fields[1];
  if (fields.size() > 2) record.query_time = fields[2];
  if (fields.size() > 3) record.item_rank = fields[3];
  if (fields.size() > 4) record.click_url = fields[4];
  return record;
}

AolGenerator::AolGenerator(AolGeneratorConfig config)
    : config_(std::move(config)) {
  require(config_.record_count > 0, "record_count must be positive");
  require(config_.grep_needle_fraction > 0.0 &&
              config_.grep_needle_fraction < 1.0,
          "grep_needle_fraction must be in (0, 1)");
  needle_modulus_ = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(1.0 / config_.grep_needle_fraction));
}

bool AolGenerator::is_grep_match(std::uint64_t index) const {
  return index % needle_modulus_ == kNeedleResidue % needle_modulus_;
}

std::uint64_t AolGenerator::grep_match_count() const {
  const std::uint64_t full_cycles = config_.record_count / needle_modulus_;
  const std::uint64_t remainder = config_.record_count % needle_modulus_;
  return full_cycles +
         ((kNeedleResidue % needle_modulus_) < remainder ? 1 : 0);
}

AolRecord AolGenerator::record_at(std::uint64_t index) const {
  // A per-record generator keyed on (seed, index) makes records independent
  // of generation order.
  Xoshiro256 rng(config_.seed ^ (index * 0x9E3779B97F4A7C15ULL + 1));

  AolRecord record;
  record.user_id = std::to_string(100000 + rng.next_below(900000));

  // 1-4 vocabulary words; the needle is injected deterministically.
  const std::uint64_t word_count = 1 + rng.next_below(4);
  std::string query;
  for (std::uint64_t w = 0; w < word_count; ++w) {
    if (w > 0) query += ' ';
    query += kWords[rng.next_below(kWords.size())];
  }
  if (is_grep_match(index)) {
    query += ' ';
    query += config_.grep_needle;
  }
  record.query = std::move(query);

  // AOL log timeframe: March–May 2006.
  char time_buffer[32];
  std::snprintf(time_buffer, sizeof time_buffer,
                "2006-%02" PRIu64 "-%02" PRIu64 " %02" PRIu64 ":%02" PRIu64
                ":%02" PRIu64,
                3 + rng.next_below(3), 1 + rng.next_below(28),
                rng.next_below(24), rng.next_below(60), rng.next_below(60));
  record.query_time = time_buffer;

  // Roughly half the records carry a clicked result.
  if (rng.next_below(2) == 0) {
    record.item_rank = std::to_string(1 + rng.next_below(10));
    record.click_url = std::string("http://www.") +
                       kDomains[rng.next_below(kDomains.size())];
  }
  return record;
}

std::vector<std::string> AolGenerator::all_lines() const {
  std::vector<std::string> lines;
  lines.reserve(config_.record_count);
  for (std::uint64_t i = 0; i < config_.record_count; ++i) {
    lines.push_back(record_at(i).to_line());
  }
  return lines;
}

}  // namespace dsps::workload
