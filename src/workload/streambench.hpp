// The four stateless StreamBench queries the paper benchmarks (Table II),
// plus the shared query logic every implementation (native or Beam) reuses
// so that all 24 setups compute identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/payload.hpp"

namespace dsps::workload {

enum class QueryId { kIdentity, kSample, kProjection, kGrep };

struct QueryInfo {
  QueryId id;
  std::string name;
  std::string description;
  /// Expected output/input ratio (1.0, ~0.4, 1.0, ~0.003).
  double expected_selectivity;
};

const std::vector<QueryInfo>& all_queries();
const QueryInfo& query_info(QueryId id);

/// The Sample query keeps ~40% of records (Table II).
inline constexpr double kSampleFraction = 0.4;

/// The Grep query's needle (Table II: search string "test").
inline constexpr const char* kGrepNeedle = "test";

// --- shared per-record logic -------------------------------------------------

/// Identity: the record itself.
std::string identity_of(std::string_view line);

/// Projection: the first tab-separated column (§III-B: "the values of the
/// first column are chosen").
std::string projection_of(std::string_view line);

/// Projection over a Payload record: the first column as a sub-slice
/// sharing the record's storage (no copy — the native engines' fast path).
runtime::Payload projection_payload(const runtime::Payload& line);

/// Grep: does the record contain the needle?
bool grep_matches(std::string_view line);

/// Sample: a stateful 40% coin-flipper. Each call site owns one instance
/// (not shared across threads).
class SampleDecider {
 public:
  explicit SampleDecider(std::uint64_t seed);
  bool keep();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Thread-safe convenience: a fresh deterministic decider per thread.
/// Parallel runs remain statistically correct (~40% kept) even though the
/// exact kept-set depends on thread scheduling.
bool sample_keep_threadlocal(std::uint64_t seed);

/// Content-deterministic sampler: the keep decision is a pure function of
/// (line, seed), so the kept-set is identical regardless of how records are
/// partitioned across parallel operator instances. All engine pipelines use
/// this one — it is what makes a P8 run byte-equal to the P1 run.
bool sample_keep(std::string_view line, std::uint64_t seed);

}  // namespace dsps::workload
