#include "workload/nexmark.hpp"

#include <charconv>
#include <system_error>

#include "common/status.hpp"
#include "common/strings.hpp"

namespace dsps::workload {

std::string Bid::to_line() const {
  std::string line;
  line.reserve(48);
  line += std::to_string(auction);
  line += ',';
  line += std::to_string(bidder);
  line += ',';
  line += std::to_string(price);
  line += ',';
  line += std::to_string(date_time);
  return line;
}

Bid Bid::from_line(std::string_view line) {
  const auto fields = split_views(line, ',');
  require(fields.size() == 4, "malformed bid line");
  const auto parse_i64 = [](std::string_view field) {
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    require(ec == std::errc{} && ptr == field.data() + field.size(),
            "malformed bid field");
    return value;
  };
  return Bid{.auction = parse_i64(fields[0]),
             .bidder = parse_i64(fields[1]),
             .price = parse_i64(fields[2]),
             .date_time = parse_i64(fields[3])};
}

NexmarkGenerator::NexmarkGenerator(NexmarkConfig config)
    : config_(std::move(config)) {
  require(config_.bid_count > 0, "bid_count must be positive");
  require(config_.auctions > 0 && config_.bidders > 0,
          "auctions and bidders must be positive");
}

Bid NexmarkGenerator::bid_at(std::uint64_t index) const {
  Xoshiro256 rng(config_.seed ^ (index * 0x2545F4914F6CDD1DULL + 11));
  return Bid{
      .auction = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(config_.auctions))),
      .bidder = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(config_.bidders))),
      // Hot-item skew: a quadratic ramp makes some prices much larger.
      .price = 100 + static_cast<std::int64_t>(rng.next_below(10'000)) +
               static_cast<std::int64_t>(rng.next_below(100)) *
                   static_cast<std::int64_t>(rng.next_below(100)),
      .date_time =
          static_cast<std::int64_t>(index) * config_.inter_event_us,
  };
}

std::vector<Bid> NexmarkGenerator::all_bids() const {
  std::vector<Bid> bids;
  bids.reserve(config_.bid_count);
  for (std::uint64_t i = 0; i < config_.bid_count; ++i) {
    bids.push_back(bid_at(i));
  }
  return bids;
}

std::vector<std::string> NexmarkGenerator::all_lines() const {
  std::vector<std::string> lines;
  lines.reserve(config_.bid_count);
  for (std::uint64_t i = 0; i < config_.bid_count; ++i) {
    lines.push_back(bid_at(i).to_line());
  }
  return lines;
}

}  // namespace dsps::workload
