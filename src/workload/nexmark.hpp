// NEXMark-inspired auction workload (extension).
//
// The paper's related work (§IV) discusses NEXMark and the Beam NEXMark
// suite as the other established Beam benchmark. As an extension beyond
// the StreamBench reproduction we provide a miniature NEXMark: a seeded
// bid-event generator and three queries implemented on the Beam-sim API —
// runnable on every runner (bench/ext_nexmark).
//
//   Q1 (currency conversion): map bid prices from USD to EUR.
//   Q2 (selection):           bids on a set of auction ids.
//   QW (windowed max):        highest bid per auction per fixed window.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace dsps::workload {

struct Bid {
  std::int64_t auction = 0;
  std::int64_t bidder = 0;
  /// Price in hundredths of a currency unit.
  std::int64_t price = 0;
  /// Event time in microseconds since the stream epoch.
  std::int64_t date_time = 0;

  friend bool operator==(const Bid&, const Bid&) = default;

  /// Serializes as "auction,bidder,price,date_time" (the broker carries
  /// strings, like the Kafka-based NEXMark setups).
  std::string to_line() const;
  /// Accepts any byte view (std::string, runtime::Payload::view()) — the
  /// parse allocates nothing.
  static Bid from_line(std::string_view line);
};

struct NexmarkConfig {
  std::uint64_t bid_count = 10'000;
  std::uint64_t seed = 42;
  std::int64_t auctions = 100;
  std::int64_t bidders = 500;
  /// Event-time distance between consecutive bids (microseconds).
  std::int64_t inter_event_us = 1'000;
};

class NexmarkGenerator {
 public:
  explicit NexmarkGenerator(NexmarkConfig config);

  /// Deterministic, order-independent access to bid `index`.
  Bid bid_at(std::uint64_t index) const;

  std::vector<Bid> all_bids() const;
  std::vector<std::string> all_lines() const;

  const NexmarkConfig& config() const noexcept { return config_; }

 private:
  NexmarkConfig config_;
};

/// NEXMark Q1's fixed conversion rate (USD -> EUR).
inline constexpr double kUsdToEur = 0.908;

inline std::int64_t convert_usd_to_eur(std::int64_t price_usd) {
  return static_cast<std::int64_t>(static_cast<double>(price_usd) *
                                   kUsdToEur);
}

}  // namespace dsps::workload
