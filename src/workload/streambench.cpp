#include "workload/streambench.hpp"

#include <thread>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace dsps::workload {

const std::vector<QueryInfo>& all_queries() {
  static const std::vector<QueryInfo> queries = {
      {QueryId::kIdentity, "Identity",
       "Read input and output it without any transformation (computational "
       "baseline).",
       1.0},
      {QueryId::kSample, "Sample",
       "Output a randomly chosen ~40% subset of the input.", kSampleFraction},
      {QueryId::kProjection, "Projection",
       "Output only the first column of each input record.", 1.0},
      {QueryId::kGrep, "Grep",
       "Output only records containing the string \"test\" (~0.3% of "
       "input).",
       3003.0 / 1'000'001.0},
  };
  return queries;
}

const QueryInfo& query_info(QueryId id) {
  for (const auto& info : all_queries()) {
    if (info.id == id) return info;
  }
  throw std::invalid_argument("unknown query id");
}

std::string identity_of(std::string_view line) { return std::string(line); }

std::string projection_of(std::string_view line) {
  const std::size_t tab = line.find('\t');
  return std::string(tab == std::string_view::npos ? line
                                                   : line.substr(0, tab));
}

runtime::Payload projection_payload(const runtime::Payload& line) {
  const std::size_t tab = line.view().find('\t');
  return tab == std::string_view::npos ? line : line.slice(0, tab);
}

bool grep_matches(std::string_view line) {
  // The shared hot path of all four Grep implementations (native x3 and
  // Beam): the vectorized substring kernel in common/strings.
  return find_substring(line, kGrepNeedle) != std::string_view::npos;
}

struct SampleDecider::Impl {
  explicit Impl(std::uint64_t seed) : rng(seed) {}
  Xoshiro256 rng;
};

SampleDecider::SampleDecider(std::uint64_t seed)
    : impl_(std::make_shared<Impl>(seed)) {}

bool SampleDecider::keep() {
  return impl_->rng.next_double() < kSampleFraction;
}

bool sample_keep(std::string_view line, std::uint64_t seed) {
  // splitmix64 finalizer over fnv1a(line) ^ seed: the raw FNV hash is not
  // uniform enough in its high bits for a threshold comparison.
  std::uint64_t h = fnv1a(line) ^ seed;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  // Top 53 bits -> [0, 1), the same mapping Xoshiro256::next_double uses.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < kSampleFraction;
}

bool sample_keep_threadlocal(std::uint64_t seed) {
  thread_local std::uint64_t current_seed = 0;
  thread_local std::unique_ptr<Xoshiro256> rng;
  if (!rng || current_seed != seed) {
    const auto thread_hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    rng = std::make_unique<Xoshiro256>(seed ^ thread_hash);
    current_seed = seed;
  }
  return rng->next_double() < kSampleFraction;
}

}  // namespace dsps::workload
