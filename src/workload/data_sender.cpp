#include "workload/data_sender.hpp"

#include <chrono>
#include <thread>

#include "common/clock.hpp"

namespace dsps::workload {

DataSender::DataSender(kafka::Broker& broker, DataSenderConfig config)
    : broker_(broker), config_(std::move(config)) {}

Result<IngestReport> DataSender::send_lines(
    const std::vector<std::string>& lines) {
  return send_impl(lines.size(),
                   [&lines](std::uint64_t i) { return lines[i]; });
}

Result<IngestReport> DataSender::send_generated(
    const AolGenerator& generator) {
  return send_impl(generator.config().record_count,
                   [&generator](std::uint64_t i) {
                     return generator.record_at(i).to_line();
                   });
}

Result<IngestReport> DataSender::send_impl(
    std::uint64_t count,
    const std::function<std::string(std::uint64_t)>& line_at) {
  kafka::Producer producer(
      broker_, kafka::ProducerConfig{.acks = config_.acks,
                                     .partitioner = config_.partitioner,
                                     .batch_size =
                                         config_.producer_batch_size});
  Stopwatch watch;
  const double per_record_us =
      config_.ingestion_rate == 0
          ? 0.0
          : 1e6 / static_cast<double>(config_.ingestion_rate);
  for (std::uint64_t i = 0; i < count; ++i) {
    // Partitioner-driven (keyless -> round-robin): a one-partition topic
    // keeps the paper's in-order single log; N partitions spread evenly.
    Status sent = producer.send(
        config_.topic,
        kafka::ProducerRecord{.key = {}, .value = line_at(i)});
    if (!sent.is_ok()) return sent;
    if (per_record_us > 0.0) {
      const auto target_us =
          static_cast<std::int64_t>(per_record_us * static_cast<double>(i + 1));
      const std::int64_t ahead_us = target_us - watch.elapsed_us();
      if (ahead_us > 1000) {
        std::this_thread::sleep_for(std::chrono::microseconds(ahead_us));
      }
    }
  }
  if (Status closed = producer.close(); !closed.is_ok()) return closed;
  return IngestReport{.records_sent = count,
                      .duration_ms = watch.elapsed_ms()};
}

Status create_benchmark_topic(kafka::Broker& broker,
                              const std::string& name) {
  return create_benchmark_topic(broker, name, /*partitions=*/1);
}

Status create_benchmark_topic(kafka::Broker& broker, const std::string& name,
                              int partitions) {
  return broker.create_topic(
      name, kafka::TopicConfig{
                .partitions = partitions,
                .replication_factor = 1,
                .timestamp_type = kafka::TimestampType::kLogAppendTime});
}

}  // namespace dsps::workload
