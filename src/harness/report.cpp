#include "harness/report.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace dsps::harness {

std::string render_figure(const Figure& figure) {
  std::string out = figure.title + "\n";
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& row : figure.rows) {
    label_width = std::max(label_width, row.label.size());
    max_value = std::max(max_value, row.value);
  }
  constexpr int kBarWidth = 46;
  for (const auto& row : figure.rows) {
    const int bar =
        max_value <= 0.0
            ? 0
            : static_cast<int>(std::lround(row.value / max_value * kBarWidth));
    out += "  " + pad_right(row.label, label_width) + " |" +
           std::string(static_cast<std::size_t>(bar), '#') +
           std::string(static_cast<std::size_t>(kBarWidth - bar), ' ') +
           "| " + format_double(row.value, 4) + "\n";
  }
  out += "  (" + figure.value_axis + ")\n";
  return out;
}

std::string render_comparison(const Figure& measured,
                              const std::map<std::string, double>& paper,
                              const std::string& paper_caption) {
  double min_measured = 0.0;
  double min_paper = 0.0;
  bool first = true;
  for (const auto& row : measured.rows) {
    const auto it = paper.find(row.label);
    if (it == paper.end()) continue;
    if (first || row.value < min_measured) min_measured = row.value;
    if (first || it->second < min_paper) min_paper = it->second;
    first = false;
  }
  if (min_measured <= 0.0) min_measured = 1.0;
  if (min_paper <= 0.0) min_paper = 1.0;

  std::size_t label_width = std::string("setup").size();
  for (const auto& row : measured.rows) {
    label_width = std::max(label_width, row.label.size());
  }

  std::string out = "measured vs " + paper_caption + "\n";
  out += "  " + pad_right("setup", label_width) + "  " +
         pad_left("measured", 12) + pad_left("x-min", 9) +
         pad_left("paper", 12) + pad_left("x-min", 9) + "\n";
  for (const auto& row : measured.rows) {
    const auto it = paper.find(row.label);
    out += "  " + pad_right(row.label, label_width) + "  " +
           pad_left(format_double(row.value, 4), 12) +
           pad_left(format_double(row.value / min_measured, 1), 9);
    if (it != paper.end()) {
      out += pad_left(format_double(it->second, 2), 12) +
             pad_left(format_double(it->second / min_paper, 1), 9);
    } else {
      out += pad_left("-", 12) + pad_left("-", 9);
    }
    out += "\n";
  }
  return out;
}

std::string to_csv(const MeasurementSet& set) {
  std::string out =
      "engine,sdk,query,parallelism,run,execution_seconds,output_records\n";
  for (const auto& [label, measurements] : set.all()) {
    const auto& key = measurements.key;
    for (std::size_t r = 0; r < measurements.runs.size(); ++r) {
      out += std::string(queries::engine_name(key.engine)) + "," +
             queries::sdk_name(key.sdk) + "," +
             workload::query_info(key.query).name + "," +
             std::to_string(key.parallelism) + "," + std::to_string(r + 1) +
             "," + format_double(measurements.runs[r].execution_seconds, 6) +
             "," + std::to_string(measurements.runs[r].output_records) +
             "\n";
    }
  }
  return out;
}

std::string render_recovery_summary(const runtime::MetricsSnapshot& snapshot) {
  struct EngineRow {
    const char* name;
    const char* restarts;  // counter
    const char* replayed;  // counter
    const char* time_ms;   // gauge; nullptr = engine records no wall-time
  };
  // Spark retries inside the driver loop, so its recovery time is folded
  // into batch duration and has no separate gauge.
  constexpr EngineRow kEngines[] = {
      {"Flink", "flink.recovery.restarts", "flink.recovery.replayed_records",
       "flink.recovery.time_ms"},
      {"Spark", "spark.recovery.batch_retries",
       "spark.recovery.replayed_records", nullptr},
      {"Apex", "apex.recovery.restarts", "apex.recovery.replayed_records",
       "apex.recovery.time_ms"},
  };

  const std::uint64_t injected = snapshot.counter("fault.injected");
  const std::uint64_t task_restarts = snapshot.counter("runtime.task_restarts");
  const std::uint64_t relaunches = snapshot.counter("yarn.container_relaunches");
  bool any_engine = false;
  for (const auto& engine : kEngines) {
    any_engine = any_engine || snapshot.counter(engine.restarts) > 0 ||
                 snapshot.counter(engine.replayed) > 0;
  }
  if (!any_engine && injected == 0 && task_restarts == 0 && relaunches == 0) {
    return "";
  }

  std::string out = "recovery summary\n";
  out += "  " + pad_right("engine", 7) + pad_left("restarts", 10) +
         pad_left("replayed", 12) + pad_left("recovery_ms", 13) + "\n";
  for (const auto& engine : kEngines) {
    out += "  " + pad_right(engine.name, 7) +
           pad_left(std::to_string(snapshot.counter(engine.restarts)), 10) +
           pad_left(std::to_string(snapshot.counter(engine.replayed)), 12);
    out += engine.time_ms != nullptr
               ? pad_left(format_double(snapshot.gauge(engine.time_ms), 2), 13)
               : pad_left("-", 13);
    out += "\n";
  }
  out += "  faults injected: " + std::to_string(injected);
  for (const auto& [name, value] : snapshot.counters_with_prefix("fault.")) {
    if (name == "fault.injected" || value == 0) continue;
    out += "  " + name.substr(std::string("fault.").size()) + "=" +
           std::to_string(value);
  }
  out += "\n  supervised task restarts: " + std::to_string(task_restarts) +
         "    yarn container relaunches: " + std::to_string(relaunches) + "\n";
  return out;
}

std::string render_scaling_table(const std::vector<ScalingPoint>& points) {
  if (points.empty()) return "";
  std::size_t setup_width = std::string("setup").size();
  std::size_t query_width = std::string("query").size();
  for (const auto& p : points) {
    setup_width = std::max(setup_width, p.setup.size());
    query_width = std::max(query_width, p.query.size());
  }

  std::string out = "scaling efficiency (throughput(P) / (P * throughput(1)))\n";
  out += "  " + pad_right("setup", setup_width) + "  " +
         pad_right("query", query_width) + pad_left("P", 4) +
         pad_left("rec/s", 12) + pad_left("speedup", 9) +
         pad_left("eff", 7) + pad_left("slowdown", 10) + "\n";
  std::string last_block;
  for (const auto& p : points) {
    const std::string block = p.setup + "/" + p.query;
    if (!last_block.empty() && block != last_block) out += "\n";
    last_block = block;
    out += "  " + pad_right(p.setup, setup_width) + "  " +
           pad_right(p.query, query_width) +
           pad_left(std::to_string(p.parallelism), 4) +
           pad_left(format_double(p.records_per_sec, 0), 12) +
           pad_left(format_double(p.speedup, 2), 9) +
           pad_left(format_double(p.efficiency, 2), 7);
    out += p.slowdown > 0.0 ? pad_left(format_double(p.slowdown, 2), 10)
                            : pad_left("-", 10);
    out += "\n";
  }
  return out;
}

std::string render_partition_gauges(const runtime::MetricsSnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> lag;
  std::vector<std::pair<std::string, double>> depth;
  for (const auto& [name, value] : snapshot.gauges) {
    // Canonical spelling first; accept the legacy one so snapshots captured
    // before the rename still render.
    if (name.rfind("kafka.consumer.lag.", 0) == 0) {
      lag.emplace_back(
          name.substr(std::string("kafka.consumer.lag.").size()), value);
    } else if (name.rfind("kafka.lag.", 0) == 0) {
      lag.emplace_back(name.substr(std::string("kafka.lag.").size()), value);
    } else if (name.find(".channel.") != std::string::npos &&
               name.size() > 11 &&
               name.compare(name.size() - 11, 11, ".peak_depth") == 0) {
      depth.emplace_back(name, value);
    }
  }
  if (lag.empty() && depth.empty()) return "";

  std::string out = "per-partition data plane\n";
  if (!lag.empty()) {
    out += "  consumer lag (group.topic.partition -> records behind)\n";
    for (const auto& [name, value] : lag) {
      out += "    " + name + " = " + format_double(value, 0) + "\n";
    }
  }
  if (!depth.empty()) {
    out += "  channel peak queue depth (vertex.subtask -> records)\n";
    for (const auto& [name, value] : depth) {
      out += "    " + name + " = " + format_double(value, 0) + "\n";
    }
  }
  return out;
}

std::string render_profile_breakdown(
    const std::vector<std::pair<std::string, runtime::ProfileSnapshot>>&
        per_setup) {
  bool any = false;
  std::size_t label_width = std::string("setup").size();
  for (const auto& [label, profile] : per_setup) {
    any = any || profile.attributed_us() > 0;
    label_width = std::max(label_width, label.size());
  }
  if (!any) return "";

  using runtime::Stage;
  constexpr Stage kOrder[] = {Stage::kQueueWait, Stage::kDecode,
                              Stage::kUserFn,    Stage::kEncode,
                              Stage::kBrokerRtt, Stage::kCheckpoint,
                              Stage::kOther};
  std::string out =
      "cost breakdown (share of attributed time per stage; profiler "
      "stride-sampled)\n";
  out += "  " + pad_right("setup", label_width) + pad_left("attrib_ms", 11);
  for (const Stage stage : kOrder) {
    out += pad_left(std::string(runtime::stage_name(stage)), 11);
  }
  out += "\n";
  for (const auto& [label, profile] : per_setup) {
    const std::uint64_t attributed = profile.attributed_us();
    out += "  " + pad_right(label, label_width) +
           pad_left(format_double(static_cast<double>(attributed) / 1e3, 1),
                    11);
    for (const Stage stage : kOrder) {
      out += attributed == 0
                 ? pad_left("-", 11)
                 : pad_left(format_double(profile.share(stage) * 100.0, 1) +
                                "%",
                            11);
    }
    out += "\n";
  }

  // The heaviest instrumented sites across all setups, for "which operator
  // is the hot one" at a glance.
  std::map<std::string, runtime::StageCost> operators;
  for (const auto& [label, profile] : per_setup) {
    for (const auto& [name, cost] : profile.operators) {
      operators[name] += cost;
    }
  }
  std::vector<std::pair<std::string, runtime::StageCost>> ranked(
      operators.begin(), operators.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  constexpr std::size_t kTopOperators = 8;
  if (!ranked.empty()) {
    out += "  top operators by attributed time:\n";
    for (std::size_t i = 0; i < ranked.size() && i < kTopOperators; ++i) {
      if (ranked[i].second.total_us == 0) break;
      out += "    " + ranked[i].first + " = " +
             format_double(
                 static_cast<double>(ranked[i].second.total_us) / 1e3, 1) +
             "ms (" + std::to_string(ranked[i].second.samples) +
             " samples)\n";
    }
  }
  return out;
}

std::string render_producer_pipeline(const runtime::MetricsSnapshot& snapshot) {
  const auto wait = snapshot.histograms.find("kafka.producer.queue_wait_us");
  const bool has_wait =
      wait != snapshot.histograms.end() && wait->second.count > 0;
  const bool has_inflight =
      snapshot.gauges.contains("kafka.producer.inflight");
  if (!has_wait && !has_inflight) return "";

  std::string out = "async producer pipeline\n";
  if (has_inflight) {
    out += "  in-flight requests (last observed window) = " +
           format_double(snapshot.gauge("kafka.producer.inflight"), 0) + "\n";
  }
  if (has_wait) {
    const auto& h = wait->second;
    out += "  sender queue wait: batches=" + std::to_string(h.count) +
           "  mean=" + format_double(h.mean_us(), 1) + "us" +
           "  p99<=" + std::to_string(h.percentile_us(0.99)) + "us\n";
  }
  return out;
}

}  // namespace dsps::harness
