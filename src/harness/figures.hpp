// Figure assembly: turns setup measurements into the rows of the paper's
// figures, including the slowdown-factor formula of §III-C3.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/benchmark.hpp"

namespace dsps::harness {

/// The 12 setups of one execution-time figure (Figs. 6-9), in the paper's
/// y-axis order: Apex Beam P1/P2, Apex P1/P2, Flink Beam ..., Spark P2.
std::vector<SetupKey> figure_setups(workload::QueryId query);

/// All 48 setups (4 queries x 12) for Figs. 10/11.
std::vector<SetupKey> full_matrix();

struct FigureRow {
  std::string label;
  double value = 0.0;
};

struct Figure {
  std::string title;
  std::string value_axis;
  std::vector<FigureRow> rows;
};

/// Keyed measurement store shared by the figure builders.
class MeasurementSet {
 public:
  void add(const SetupMeasurements& measurements);
  bool contains(const SetupKey& key) const;
  const SetupMeasurements& get(const SetupKey& key) const;
  const std::map<std::string, SetupMeasurements>& all() const {
    return by_label_;
  }

 private:
  std::map<std::string, SetupMeasurements> by_label_;
};

/// Figs. 6-9: average execution time per setup for one query.
Figure execution_time_figure(const MeasurementSet& set,
                             workload::QueryId query);

/// Fig. 10: relative stddev per system-query-SDK, averaged over the two
/// parallelism factors ("Deviations for the two parallelism factors are
/// averaged and condensed in this way", §III-C2).
Figure stddev_figure(const MeasurementSet& set);

/// The paper's slowdown factor:
///   sf(dsps, query) = (1/Np) * sum_p  t̄_beam(p) / t̄_native(p)
double slowdown_factor(const MeasurementSet& set, queries::Engine engine,
                       workload::QueryId query);

/// Fig. 11: slowdown factor per (engine, query).
Figure slowdown_figure(const MeasurementSet& set);

/// "Apex Beam Grep" style label used by Fig. 10.
std::string system_query_sdk_label(queries::Engine engine, queries::Sdk sdk,
                                   workload::QueryId query);

}  // namespace dsps::harness
