// Result calculator: benchmark phase 3 (§III-A2/3).
//
// Reads the query output topic and computes the execution time as the
// difference between the LogAppendTime of the first and the last output
// record — application- and system-independent, because the stamping
// happens in the broker, not in the system under test.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "kafka/broker.hpp"

namespace dsps::harness {

struct QueryResult {
  double execution_seconds = 0.0;
  std::int64_t output_records = 0;
  Timestamp first_append = 0;
  Timestamp last_append = 0;
};

class ResultCalculator {
 public:
  explicit ResultCalculator(kafka::Broker& broker) : broker_(broker) {}

  /// Computes the execution time for a (single-partition) output topic.
  Result<QueryResult> calculate(const std::string& output_topic) const;

 private:
  kafka::Broker& broker_;
};

}  // namespace dsps::harness
