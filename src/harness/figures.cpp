#include "harness/figures.hpp"

#include "common/stats.hpp"

namespace dsps::harness {

using queries::Engine;
using queries::Sdk;
using workload::QueryId;

namespace {

constexpr Engine kEngines[] = {Engine::kApex, Engine::kFlink, Engine::kSpark};
constexpr Sdk kSdks[] = {Sdk::kBeam, Sdk::kNative};
constexpr QueryId kQueries[] = {QueryId::kIdentity, QueryId::kSample,
                                QueryId::kProjection, QueryId::kGrep};
constexpr int kParallelisms[] = {1, 2};

double mean_execution_time(const MeasurementSet& set, const SetupKey& key) {
  if (!set.contains(key)) return 0.0;
  return mean(set.get(key).execution_times());
}

}  // namespace

std::vector<SetupKey> figure_setups(QueryId query) {
  std::vector<SetupKey> setups;
  for (const Engine engine : kEngines) {
    for (const Sdk sdk : kSdks) {
      for (const int parallelism : kParallelisms) {
        setups.push_back(SetupKey{engine, sdk, query, parallelism});
      }
    }
  }
  return setups;
}

std::vector<SetupKey> full_matrix() {
  std::vector<SetupKey> setups;
  for (const QueryId query : kQueries) {
    const auto per_query = figure_setups(query);
    setups.insert(setups.end(), per_query.begin(), per_query.end());
  }
  return setups;
}

void MeasurementSet::add(const SetupMeasurements& measurements) {
  by_label_[setup_label(measurements.key) + "/" +
            workload::query_info(measurements.key.query).name] = measurements;
}

bool MeasurementSet::contains(const SetupKey& key) const {
  return by_label_.contains(setup_label(key) + "/" +
                            workload::query_info(key.query).name);
}

const SetupMeasurements& MeasurementSet::get(const SetupKey& key) const {
  return by_label_.at(setup_label(key) + "/" +
                      workload::query_info(key.query).name);
}

Figure execution_time_figure(const MeasurementSet& set, QueryId query) {
  Figure figure;
  figure.title = "Average Execution Times - " +
                 workload::query_info(query).name + " Query";
  figure.value_axis = "Average Execution Time in s";
  for (const SetupKey& key : figure_setups(query)) {
    figure.rows.push_back(
        FigureRow{setup_label(key), mean_execution_time(set, key)});
  }
  return figure;
}

std::string system_query_sdk_label(Engine engine, Sdk sdk, QueryId query) {
  std::string label = queries::engine_name(engine);
  if (sdk == Sdk::kBeam) label += " Beam";
  label += " " + workload::query_info(query).name;
  return label;
}

Figure stddev_figure(const MeasurementSet& set) {
  Figure figure;
  figure.title = "Relative Standard Deviation for System-Query-SDK "
                 "Combinations";
  figure.value_axis = "Relative Standard Deviation";
  for (const Engine engine : kEngines) {
    for (const Sdk sdk : kSdks) {
      for (const QueryId query : kQueries) {
        double sum = 0.0;
        int count = 0;
        for (const int parallelism : kParallelisms) {
          const SetupKey key{engine, sdk, query, parallelism};
          if (!set.contains(key)) continue;
          sum += relative_stddev(set.get(key).execution_times());
          ++count;
        }
        if (count == 0) continue;
        figure.rows.push_back(
            FigureRow{system_query_sdk_label(engine, sdk, query),
                      sum / static_cast<double>(count)});
      }
    }
  }
  return figure;
}

double slowdown_factor(const MeasurementSet& set, Engine engine,
                       QueryId query) {
  double sum = 0.0;
  int parallelisms = 0;
  for (const int parallelism : kParallelisms) {
    const SetupKey beam{engine, Sdk::kBeam, query, parallelism};
    const SetupKey native{engine, Sdk::kNative, query, parallelism};
    const double native_mean = mean_execution_time(set, native);
    if (native_mean <= 0.0) continue;
    sum += mean_execution_time(set, beam) / native_mean;
    ++parallelisms;
  }
  return parallelisms == 0 ? 0.0 : sum / static_cast<double>(parallelisms);
}

Figure slowdown_figure(const MeasurementSet& set) {
  Figure figure;
  figure.title = "Slowdown Factor for the Analyzed Systems and Queries";
  figure.value_axis = "Slowdown Factor sf(dsps, query)";
  for (const Engine engine : kEngines) {
    for (const QueryId query : kQueries) {
      figure.rows.push_back(
          FigureRow{std::string(queries::engine_name(engine)) + " " +
                        workload::query_info(query).name,
                    slowdown_factor(set, engine, query)});
    }
  }
  return figure;
}

}  // namespace dsps::harness
