// Benchmark orchestration: the three-phase process of §III-A2.
//
//   1. Data ingestion — the data sender loads the input topic (one
//      partition, replication factor 1) with AOL-like records, once.
//   2. Program execution — every (engine, sdk, query, parallelism) setup
//      runs `runs` times; each run gets a fresh engine instance ("each
//      system is restarted") and a fresh output topic.
//   3. Result calculation — execution time from broker append timestamps.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/noise.hpp"
#include "common/status.hpp"
#include "kafka/broker.hpp"
#include "queries/query_factory.hpp"
#include "harness/result_calculator.hpp"
#include "runtime/profiler.hpp"

namespace dsps::harness {

struct SetupKey {
  queries::Engine engine;
  queries::Sdk sdk;
  workload::QueryId query;
  int parallelism = 1;
};

/// "Apex Beam P1", "Flink P2", ... — the y-axis labels of Figs. 6-9.
std::string setup_label(const SetupKey& key);

struct RunMeasurement {
  double execution_seconds = 0.0;   // the paper's metric
  double wall_seconds = 0.0;        // sanity cross-check
  std::int64_t output_records = 0;
  std::int64_t injected_pause_ms = 0;  // noise model, Table III only
};

struct SetupMeasurements {
  SetupKey key;
  std::vector<RunMeasurement> runs;
  /// Cost-attribution delta accumulated over this setup's runs. All zeros
  /// unless the profiler is armed (HarnessConfig::profile).
  runtime::ProfileSnapshot profile;

  std::vector<double> execution_times() const;
};

struct HarnessConfig {
  std::uint64_t records = 20'000;
  int runs = 3;
  std::uint64_t seed = 42;
  /// Simulated broker network RTT per producer flush (§DESIGN.md: stands in
  /// for the paper's inter-VM network; calibrated so the structural cost
  /// ratios land in the paper's bands at the default 20k-record scale).
  std::int64_t broker_rtt_us = 25;
  NoiseConfig noise;  // disabled by default
  /// Beam setups only: run the fusion optimizer (beam/fusion.hpp). Default
  /// off — figure reproductions measure the paper's unfused plans; the
  /// fusion sweep bench flips this to quantify the recoverable share.
  bool fuse_stages = false;
  /// All setups: asynchronous pipelined sink producers. Default off — the
  /// paper's writers are synchronous; the async-sinks sweep flips this to
  /// quantify how much of the sink-path penalty pipelining recovers.
  bool async_sinks = false;
  /// Input topic partitions. 1 = the paper's setup (ordered single log);
  /// the scale-out sweep fans the input out so N parallel consumers can
  /// drain N partitions concurrently (STREAMSHIM_INPUT_PARTITIONS).
  int input_partitions = 1;
  /// Default setup parallelism for binaries that take it from the env
  /// (STREAMSHIM_PARALLELISM / --parallelism). 1 = paper-faithful plans.
  int parallelism = 1;
  /// Arm the cost-attribution profiler for the harness run
  /// (STREAMSHIM_PROFILE). Default off: disarmed scopes cost one relaxed
  /// atomic load, so paper-faithful numbers are untouched.
  bool profile = false;
  /// Enable the adaptive policy engine (STREAMSHIM_ADAPTIVE): auto-tunes
  /// the Spark micro-batch interval and the Flink router flush timeout from
  /// live cost shares. Default off — Figs. 11-13 measure fixed knobs.
  bool adaptive = false;

  static HarnessConfig from_env() {
    const BenchScale scale = resolve_bench_scale();
    HarnessConfig config;
    config.records = scale.records;
    config.runs = scale.runs;
    config.seed = scale.seed;
    config.fuse_stages = env_flag("STREAMSHIM_FUSE_STAGES");
    config.async_sinks = env_flag("STREAMSHIM_ASYNC_SINKS");
    config.profile = env_flag("STREAMSHIM_PROFILE");
    config.adaptive = env_flag("STREAMSHIM_ADAPTIVE");
    config.parallelism = static_cast<int>(
        env_i64("STREAMSHIM_PARALLELISM", config.parallelism));
    // By default the input fans out with the requested parallelism (one
    // partition per consumer); override to pin it independently.
    config.input_partitions = static_cast<int>(env_i64(
        "STREAMSHIM_INPUT_PARTITIONS", std::max(1, config.parallelism)));
    return config;
  }
};

/// Owns the broker and the ingested input topic; runs setups on demand.
class BenchmarkHarness {
 public:
  explicit BenchmarkHarness(HarnessConfig config);

  /// Phase 1. Idempotent; called lazily by run_setup if needed.
  Status ingest();

  /// Phases 2+3 for one setup.
  Result<SetupMeasurements> run_setup(const SetupKey& key);

  /// One run (fresh engine + output topic). Phase 2+3 for a single run.
  Result<RunMeasurement> run_once(const SetupKey& key);

  kafka::Broker& broker() noexcept { return broker_; }
  const HarnessConfig& config() const noexcept { return config_; }
  const std::string& input_topic() const noexcept { return input_topic_; }
  std::uint64_t expected_grep_matches() const;

 private:
  HarnessConfig config_;
  kafka::Broker broker_;
  std::string input_topic_ = "benchmark-input";
  bool ingested_ = false;
  int next_output_id_ = 0;
  NoiseInjector noise_;
};

}  // namespace dsps::harness
