#include "harness/paper_data.hpp"

#include <stdexcept>

namespace dsps::harness::paper {

using workload::QueryId;

const std::map<std::string, double>& execution_times(QueryId query) {
  // Fig. 6 (identity), Fig. 7 (sample), Fig. 8 (projection), Fig. 9 (grep).
  static const std::map<std::string, double> identity = {
      {"Apex Beam P1", 237.53}, {"Apex Beam P2", 241.01},
      {"Apex P1", 3.35},        {"Apex P2", 5.71},
      {"Flink Beam P1", 30.28}, {"Flink Beam P2", 32.97},
      {"Flink P1", 6.52},       {"Flink P2", 3.74},
      {"Spark Beam P1", 7.51},  {"Spark Beam P2", 12.75},
      {"Spark P1", 3.26},       {"Spark P2", 3.23},
  };
  static const std::map<std::string, double> sample = {
      {"Apex Beam P1", 118.74}, {"Apex Beam P2", 125.67},
      {"Apex P1", 4.1},         {"Apex P2", 3.55},
      {"Flink Beam P1", 26.62}, {"Flink Beam P2", 26.88},
      {"Flink P1", 2.09},       {"Flink P2", 3.0},
      {"Spark Beam P1", 11.0},  {"Spark Beam P2", 11.48},
      {"Spark P1", 2.23},       {"Spark P2", 2.16},
  };
  static const std::map<std::string, double> projection = {
      {"Apex Beam P1", 229.91}, {"Apex Beam P2", 241.35},
      {"Apex P1", 4.75},        {"Apex P2", 3.52},
      {"Flink Beam P1", 33.54}, {"Flink Beam P2", 33.33},
      {"Flink P1", 6.1},        {"Flink P2", 5.47},
      {"Spark Beam P1", 10.07}, {"Spark Beam P2", 14.73},
      {"Spark P1", 3.18},       {"Spark P2", 3.48},
  };
  static const std::map<std::string, double> grep = {
      {"Apex Beam P1", 3.76},   {"Apex Beam P2", 2.58},
      {"Apex P1", 3.58},        {"Apex P2", 3.37},
      {"Flink Beam P1", 20.03}, {"Flink Beam P2", 20.46},
      {"Flink P1", 1.58},       {"Flink P2", 1.43},
      {"Spark Beam P1", 6.34},  {"Spark Beam P2", 11.8},
      {"Spark P1", 1.28},       {"Spark P2", 1.21},
  };
  switch (query) {
    case QueryId::kIdentity: return identity;
    case QueryId::kSample: return sample;
    case QueryId::kProjection: return projection;
    case QueryId::kGrep: return grep;
  }
  throw std::invalid_argument("unknown query");
}

const std::map<std::string, double>& relative_stddevs() {
  static const std::map<std::string, double> values = {
      {"Apex Beam Grep", 0.12},        {"Apex Beam Identity", 0.0315},
      {"Apex Beam Projection", 0.0457},{"Apex Beam Sample", 0.14},
      {"Apex Grep", 0.0904},           {"Apex Identity", 0.15},
      {"Apex Projection", 0.11},       {"Apex Sample", 0.0912},
      {"Flink Beam Grep", 0.0443},     {"Flink Beam Identity", 0.0312},
      {"Flink Beam Projection", 0.0625},{"Flink Beam Sample", 0.0489},
      {"Flink Grep", 0.11},            {"Flink Identity", 0.54},
      {"Flink Projection", 0.087},     {"Flink Sample", 0.23},
      {"Spark Beam Grep", 0.043},      {"Spark Beam Identity", 0.0914},
      {"Spark Beam Projection", 0.0932},{"Spark Beam Sample", 0.0551},
      {"Spark Grep", 0.0816},          {"Spark Identity", 0.15},
      {"Spark Projection", 0.23},      {"Spark Sample", 0.2},
  };
  return values;
}

const std::map<std::string, double>& slowdown_factors() {
  static const std::map<std::string, double> values = {
      {"Apex Identity", 56.58},  {"Apex Sample", 32.17},
      {"Apex Projection", 58.46},{"Apex Grep", 0.91},
      {"Flink Identity", 6.73},  {"Flink Sample", 10.87},
      {"Flink Projection", 5.79},{"Flink Grep", 13.51},
      {"Spark Identity", 3.13},  {"Spark Sample", 5.13},
      {"Spark Projection", 3.7}, {"Spark Grep", 7.37},
  };
  return values;
}

const FlinkIdentityRuns& flink_identity_runs() {
  static const FlinkIdentityRuns runs = {
      .p1 = {6.25, 21.56, 3.42, 3.31, 3.73, 12.69, 3.90, 3.96, 3.42, 3.01},
      .p2 = {4.15, 3.77, 2.71, 5.29, 3.00, 3.93, 2.90, 3.66, 3.57, 4.45},
  };
  return runs;
}

}  // namespace dsps::harness::paper
