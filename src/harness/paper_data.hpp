// The paper's published numbers, transcribed from Figs. 6-11 and Table III.
// Benches print measured-vs-paper tables from these so the reproduction's
// *shape* (orderings, ratios) can be checked at a glance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "workload/streambench.hpp"

namespace dsps::harness::paper {

/// Average execution times in seconds, keyed by the y-axis labels of
/// Figs. 6-9 ("Apex Beam P1", ..., "Spark P2").
const std::map<std::string, double>& execution_times(workload::QueryId query);

/// Relative standard deviations of Fig. 10, keyed "Apex Beam Grep" style.
const std::map<std::string, double>& relative_stddevs();

/// Slowdown factors of Fig. 11, keyed "Apex Identity" style.
const std::map<std::string, double>& slowdown_factors();

/// Table III: per-run identity times on Flink, parallelism 1 and 2.
struct FlinkIdentityRuns {
  std::vector<double> p1;
  std::vector<double> p2;
};
const FlinkIdentityRuns& flink_identity_runs();

}  // namespace dsps::harness::paper
