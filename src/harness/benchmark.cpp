#include "harness/benchmark.hpp"

#include "common/clock.hpp"
#include "runtime/policy.hpp"
#include "workload/aol_generator.hpp"
#include "workload/data_sender.hpp"

namespace dsps::harness {

std::string setup_label(const SetupKey& key) {
  std::string label = queries::engine_name(key.engine);
  if (key.sdk == queries::Sdk::kBeam) label += " Beam";
  label += " P" + std::to_string(key.parallelism);
  return label;
}

std::vector<double> SetupMeasurements::execution_times() const {
  std::vector<double> times;
  times.reserve(runs.size());
  for (const auto& run : runs) times.push_back(run.execution_seconds);
  return times;
}

BenchmarkHarness::BenchmarkHarness(HarnessConfig config)
    : config_(config), noise_(config.noise) {
  broker_.set_rtt_us(config_.broker_rtt_us);
  // Adaptive mode implies profiling (the policy engine consumes live
  // snapshots); plain profiling arms without the policy hook.
  if (config_.adaptive) {
    runtime::PolicyEngine::instance().enable();
  } else if (config_.profile && !runtime::Profiler::instance().armed()) {
    runtime::Profiler::instance().arm();
  }
}

std::uint64_t BenchmarkHarness::expected_grep_matches() const {
  workload::AolGenerator generator(workload::AolGeneratorConfig{
      .record_count = config_.records, .seed = config_.seed});
  return generator.grep_match_count();
}

Status BenchmarkHarness::ingest() {
  if (ingested_) return Status::ok();
  if (Status s = workload::create_benchmark_topic(
          broker_, input_topic_, std::max(1, config_.input_partitions));
      !s.is_ok()) {
    return s;
  }
  workload::AolGenerator generator(workload::AolGeneratorConfig{
      .record_count = config_.records, .seed = config_.seed});
  workload::DataSender sender(
      broker_, workload::DataSenderConfig{.topic = input_topic_});
  auto report = sender.send_generated(generator);
  if (!report.is_ok()) return report.status();
  ingested_ = true;
  return Status::ok();
}

Result<RunMeasurement> BenchmarkHarness::run_once(const SetupKey& key) {
  if (Status s = ingest(); !s.is_ok()) return s;

  const std::string output_topic =
      "benchmark-output-" + std::to_string(next_output_id_++);
  // Output fans out with the setup's parallelism so parallel sinks write
  // disjoint logs; the ResultCalculator already spans all partitions.
  if (Status s = workload::create_benchmark_topic(
          broker_, output_topic, std::max(1, key.parallelism));
      !s.is_ok()) {
    return s;
  }

  queries::QueryContext ctx;
  ctx.broker = &broker_;
  ctx.input_topic = input_topic_;
  ctx.output_topic = output_topic;
  ctx.parallelism = key.parallelism;
  ctx.seed = config_.seed;
  ctx.fuse_stages = config_.fuse_stages;
  ctx.async_sinks = config_.async_sinks;

  RunMeasurement measurement;
  // Optional seeded noise (Table III's outlier analysis): pause before the
  // run, emulating a co-tenant VM stealing the machine mid-benchmark.
  measurement.injected_pause_ms = noise_.maybe_pause();

  Stopwatch wall;
  // Noise pauses model interference *during* the run; fold the pause into
  // the run by injecting it between engine start and measurement end: we
  // approximate by running the query after the pause and adding the pause
  // to the measured execution time below.
  Status run = queries::run_query(key.engine, key.sdk, key.query, ctx);
  measurement.wall_seconds = wall.elapsed_seconds();
  if (!run.is_ok()) {
    (void)broker_.delete_topic(output_topic);
    return run;
  }

  ResultCalculator calculator(broker_);
  auto result = calculator.calculate(output_topic);
  (void)broker_.delete_topic(output_topic);
  if (!result.is_ok()) return result.status();
  measurement.execution_seconds =
      result.value().execution_seconds +
      static_cast<double>(measurement.injected_pause_ms) / 1e3;
  measurement.output_records = result.value().output_records;
  return measurement;
}

Result<SetupMeasurements> BenchmarkHarness::run_setup(const SetupKey& key) {
  SetupMeasurements measurements;
  measurements.key = key;
  // Snapshot deltas bracket the setup so its profile excludes previous
  // setups' costs (cheap no-op maps when the profiler is disarmed).
  const runtime::ProfileSnapshot before =
      runtime::Profiler::instance().snapshot();
  for (int r = 0; r < config_.runs; ++r) {
    auto run = run_once(key);
    if (!run.is_ok()) return run.status();
    measurements.runs.push_back(run.value());
  }
  measurements.profile =
      runtime::Profiler::instance().snapshot().since(before);
  return measurements;
}

}  // namespace dsps::harness
