#include "harness/result_calculator.hpp"

namespace dsps::harness {

Result<QueryResult> ResultCalculator::calculate(
    const std::string& output_topic) const {
  const auto partitions = broker_.partition_count(output_topic);
  if (!partitions.is_ok()) return partitions.status();

  QueryResult result;
  bool any = false;
  for (int p = 0; p < partitions.value(); ++p) {
    const auto info = broker_.partition_info({output_topic, p});
    if (!info.is_ok()) return info.status();
    if (info.value().record_count == 0) continue;
    result.output_records += info.value().record_count;
    if (!any || info.value().first_timestamp < result.first_append) {
      result.first_append = info.value().first_timestamp;
    }
    if (!any || info.value().last_timestamp > result.last_append) {
      result.last_append = info.value().last_timestamp;
    }
    any = true;
  }
  if (!any) {
    return Status::failed_precondition("output topic is empty: " +
                                       output_topic);
  }
  result.execution_seconds =
      timestamp_delta_seconds(result.last_append - result.first_append);
  return result;
}

}  // namespace dsps::harness
