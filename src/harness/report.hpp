// Rendering: ASCII bar charts of figures, and measured-vs-paper tables.
#pragma once

#include <map>
#include <string>

#include "harness/figures.hpp"

namespace dsps::harness {

/// Horizontal ASCII bar chart, one row per figure entry.
std::string render_figure(const Figure& figure);

/// Side-by-side measured vs paper values with the ratio of each column's
/// value to the column minimum, so orderings/shapes compare directly even
/// though absolute times differ by construction.
std::string render_comparison(const Figure& measured,
                              const std::map<std::string, double>& paper,
                              const std::string& paper_caption);

/// Raw per-run measurements as CSV
/// (engine,sdk,query,parallelism,run,execution_seconds,output_records)
/// for plotting outside this repo.
std::string to_csv(const MeasurementSet& set);

}  // namespace dsps::harness
