// Rendering: ASCII bar charts of figures, and measured-vs-paper tables.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/figures.hpp"
#include "runtime/metrics.hpp"
#include "runtime/profiler.hpp"

namespace dsps::harness {

/// Horizontal ASCII bar chart, one row per figure entry.
std::string render_figure(const Figure& figure);

/// Side-by-side measured vs paper values with the ratio of each column's
/// value to the column minimum, so orderings/shapes compare directly even
/// though absolute times differ by construction.
std::string render_comparison(const Figure& measured,
                              const std::map<std::string, double>& paper,
                              const std::string& paper_caption);

/// Raw per-run measurements as CSV
/// (engine,sdk,query,parallelism,run,execution_seconds,output_records)
/// for plotting outside this repo.
std::string to_csv(const MeasurementSet& set);

/// Human-readable recovery block for chaos runs: per-engine restarts,
/// replayed records, and recovery wall-time, plus the substrate counters
/// (supervised task restarts, YARN container relaunches, injected faults).
/// Empty string when the snapshot records no recovery or fault activity.
std::string render_recovery_summary(const runtime::MetricsSnapshot& snapshot);

/// One measured point of the scale-out sweep (bench/ext_scaling).
struct ScalingPoint {
  std::string setup;   // "Flink", "Flink Beam", ...
  std::string query;   // "Identity", ...
  int parallelism = 1;
  double records_per_sec = 0.0;
  /// throughput(P) / throughput(1) for the same setup+query.
  double speedup = 0.0;
  /// Scaling efficiency: throughput(P) / (P * throughput(1)).
  double efficiency = 0.0;
  /// Beam rows only: execution_time(Beam) / execution_time(native) at the
  /// same engine, query and parallelism (the paper's slowdown factor,
  /// tracked per P). 0 when not applicable.
  double slowdown = 0.0;
};

/// Scaling-efficiency table, one block per setup+query, one row per P.
std::string render_scaling_table(const std::vector<ScalingPoint>& points);

/// Per-partition data-plane gauges: consumer lag (kafka.consumer.lag.*,
/// with the legacy kafka.lag.* spelling still accepted) and channel queue
/// depths (*.channel.*.depth/.peak_depth). Empty string when the snapshot
/// has neither.
std::string render_partition_gauges(const runtime::MetricsSnapshot& snapshot);

/// Per-setup cost breakdown from the always-on profiler: one row per setup,
/// one column per stage (share of attributed time), plus the heaviest
/// instrumented operators. Empty string when no setup attributed any time (the
/// profiler was disarmed).
std::string render_profile_breakdown(
    const std::vector<std::pair<std::string, runtime::ProfileSnapshot>>&
        per_setup);

/// Async producer pipeline health: the kafka.producer.inflight gauge (last
/// observed in-flight request window) and the kafka.producer.queue_wait_us
/// histogram (time batches sat in the sender queue before dispatch). Empty
/// string when no async producer ran.
std::string render_producer_pipeline(const runtime::MetricsSnapshot& snapshot);

}  // namespace dsps::harness
