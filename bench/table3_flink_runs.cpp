// Reproduces Table III: the per-run execution times of the Identity query
// on Flink at parallelism 1 and 2, plus the outlier analysis of §III-C2.
//
// The paper's outliers came from its (co-tenant) VM environment; we inject
// equivalent pauses deterministically with the seeded NoiseInjector so the
// detection/explanation workflow is reproducible. Runs always number 10
// here (the table's shape), regardless of STREAMSHIM_RUNS.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"

int main() {
  using namespace dsps;
  auto config = bench::config_from_env();
  config.runs = 10;  // Table III lists ten runs per parallelism
  // Noise models the paper's VM interference: ~30% of runs stall for a
  // multiple of the typical runtime, exactly the P1 pattern of Table III.
  // Pause magnitudes scale with the typical run time at this record count
  // (the paper's outliers were ~2-6x the typical 3.5s run; our typical
  // Identity run at 20k records is ~12ms).
  config.noise = NoiseConfig{.enabled = true,
                             .pause_probability = 0.3,
                             .min_pause_ms = 15,
                             .max_pause_ms = 70,
                             .seed = config.seed};
  std::printf("=== Identity on Flink, per-run times (reproduction of "
              "Table III) ===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  harness::SetupMeasurements by_parallelism[2];
  for (const int parallelism : {1, 2}) {
    auto measurements = harness.run_setup(
        harness::SetupKey{queries::Engine::kFlink, queries::Sdk::kNative,
                          workload::QueryId::kIdentity, parallelism});
    measurements.status().expect_ok();
    by_parallelism[parallelism - 1] = measurements.value();
  }

  std::printf("%-14s %-18s %-18s\n", "Number of Run", "Parallelism = 1",
              "Parallelism = 2");
  const auto& p1 = by_parallelism[0].runs;
  const auto& p2 = by_parallelism[1].runs;
  for (std::size_t r = 0; r < p1.size(); ++r) {
    std::printf("%-14zu %-18s %-18s\n", r + 1,
                (format_double(p1[r].execution_seconds, 4) + "s").c_str(),
                (format_double(p2[r].execution_seconds, 4) + "s").c_str());
  }

  for (const int parallelism : {1, 2}) {
    const auto times = by_parallelism[parallelism - 1].execution_times();
    const auto outliers = outlier_indices(times, 2.0);
    std::printf("\nP%d: mean %.4fs, rel. stddev %.3f, outliers (>2 sigma):",
                parallelism, mean(times), relative_stddev(times));
    if (outliers.empty()) std::printf(" none");
    for (const auto index : outliers) {
      std::printf(" run %zu (%.4fs, injected pause %lld ms)", index + 1,
                  times[index],
                  static_cast<long long>(
                      by_parallelism[parallelism - 1]
                          .runs[index]
                          .injected_pause_ms));
    }
    std::printf("\n");
  }

  std::printf("\npaper reference (Table III): P1 mean 6.52s with outliers "
              "21.56s/12.69s/6.25s; P2 homogeneous, mean 3.74s.\n");
  std::printf("The paper attributes its outliers to the virtualized "
              "environment; here they are injected (seed %llu) and the "
              "analysis identifies exactly the injected runs.\n",
              static_cast<unsigned long long>(config.seed));
  return 0;
}
