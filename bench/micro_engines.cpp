// Engine primitives: per-engine pipeline throughput and the knobs that
// shape it (Apex stream locality, Spark micro-batch assembly, Flink
// parallelism) — the per-engine baselines behind Figs. 6-9.
#include <benchmark/benchmark.h>

#include "apex/engine.hpp"
#include "apex/operators_library.hpp"
#include "flink/environment.hpp"
#include "spark/streaming_context.hpp"
#include "yarn/resource_manager.hpp"

namespace {

using namespace dsps;

// --- Flink-sim -----------------------------------------------------------------

void BM_FlinkThroughputByParallelism(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const int records = 50000;
  class IntSource final : public flink::SourceFunction {
   public:
    explicit IntSource(int n) : n_(n) {}
    void open(const flink::RuntimeContext& context) override {
      start_ = context.subtask_index;
      stride_ = context.parallelism;
    }
    void run(flink::SourceContext& context) override {
      for (int i = start_; i < n_; i += stride_) {
        context.collect(flink::make_elem<int>(i));
      }
    }

   private:
    int n_;
    int start_ = 0;
    int stride_ = 1;
  };
  for (auto _ : state) {
    flink::StreamExecutionEnvironment env;
    env.set_parallelism(parallelism);
    env.add_source<int>(
           [records] { return std::make_unique<IntSource>(records); })
        .map<int>([](const int& v) { return v * 2; })
        .for_each([](const int&) {});
    env.execute().status().expect_ok();
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_FlinkThroughputByParallelism)->Arg(1)->Arg(2)->Arg(4);

// --- Spark-sim -----------------------------------------------------------------

void BM_SparkBoundedRun(benchmark::State& state) {
  const int records = 20000;
  for (auto _ : state) {
    state.PauseTiming();
    kafka::Broker broker;
    broker.create_topic("in", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    {
      kafka::Producer producer(
          broker, kafka::ProducerConfig{.batch_size = 1000, .linger_us = 0});
      for (int i = 0; i < records; ++i) {
        producer.send("in", 0, kafka::ProducerRecord{.value = "x"})
            .expect_ok();
      }
      producer.close().expect_ok();
    }
    state.ResumeTiming();

    spark::StreamingContext ssc(
        spark::SparkConf{.default_parallelism =
                             static_cast<int>(state.range(0))},
        /*batch_interval_ms=*/5);
    auto lines = ssc.kafka_direct_stream(broker, "in");
    std::atomic<std::size_t> seen{0};
    lines.foreach_rdd([&seen](spark::SparkContext& sc,
                              const spark::RDDPtr<kafka::Payload>& rdd) {
      seen.fetch_add(sc.count(rdd));
    });
    ssc.run_bounded().expect_ok();
    benchmark::DoNotOptimize(seen.load());
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_SparkBoundedRun)->Arg(1)->Arg(2);

// --- Apex-sim: stream locality ----------------------------------------------------

void apex_locality_run(apex::Locality locality, int records) {
  yarn::ResourceManager rm;
  rm.add_node("n0", yarn::Resource{64, 65536});
  rm.add_node("n1", yarn::Resource{64, 65536});

  class IntInput final : public apex::InputOperator {
   public:
    explicit IntInput(int n) : n_(n), out_(register_output()) {}
    bool emit_tuples(std::size_t budget) override {
      for (std::size_t b = 0; b < budget && next_ < n_; ++b) {
        emit(out_, apex::make_tuple_of<runtime::Payload>(std::to_string(next_++)));
      }
      return next_ < n_;
    }

   private:
    int n_;
    int next_ = 0;
    int out_;
  };
  class NullSink final : public apex::Operator {
   public:
    NullSink() : in_(register_input([](const apex::Tuple&) {})) {}

   private:
    int in_;
  };

  apex::Dag dag;
  const int in = dag.add_input_operator(
      "in", [records] { return std::make_unique<IntInput>(records); });
  const int out =
      dag.add_operator("out", [] { return std::make_unique<NullSink>(); });
  dag.add_stream("s", apex::PortRef{in, 0}, apex::PortRef{out, 0}, locality,
                 locality == apex::Locality::kNodeLocal
                     ? apex::payload_codec()
                     : apex::CodecFactory{});
  apex::launch_application(rm, dag, apex::EngineConfig{}).status().expect_ok();
}

void BM_ApexLocality_ThreadLocal(benchmark::State& state) {
  for (auto _ : state) {
    apex_locality_run(apex::Locality::kThreadLocal, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ApexLocality_ThreadLocal);

void BM_ApexLocality_ContainerLocal(benchmark::State& state) {
  for (auto _ : state) {
    apex_locality_run(apex::Locality::kContainerLocal, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ApexLocality_ContainerLocal);

void BM_ApexLocality_NodeLocalSerialized(benchmark::State& state) {
  for (auto _ : state) {
    apex_locality_run(apex::Locality::kNodeLocal, 20000);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ApexLocality_NodeLocalSerialized);

}  // namespace

BENCHMARK_MAIN();
