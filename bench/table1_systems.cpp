// Reproduces Table I: the qualitative comparison of the three DSPSs —
// verified against the simulators' actual behaviour rather than merely
// printed (processing model probed by observing engine mechanics).
#include <cstdio>

#include "apex/engine.hpp"
#include "spark/streaming_context.hpp"
#include "flink/environment.hpp"

int main() {
  std::printf(
      "=== Table I — Comparison of Apache Flink, Apache Spark Streaming, "
      "and Apache Apex (as modelled) ===\n\n");
  std::printf("%-28s %-18s %-18s %-18s\n", "Criteria", "Flink(-sim)",
              "Spark Streaming(-sim)", "Apex(-sim)");
  std::printf("%-28s %-18s %-18s %-18s\n", "Data processing",
              "tuple-by-tuple", "micro-batch", "tuple-by-tuple");
  std::printf("%-28s %-18s %-18s %-18s\n", "Execution unit",
              "task slots", "executor tasks", "YARN containers");
  std::printf("%-28s %-18s %-18s %-18s\n", "Operator fusion",
              "operator chains", "stage pipelining", "stream locality");
  std::printf("%-28s %-18s %-18s %-18s\n", "Parallelism knob",
              "-p/--parallelism", "default.parallelism", "VCOREs/partitions");
  std::printf("%-28s %-18s %-18s %-18s\n", "Beam runner translation",
              "unfused operators", "mapPartitions", "container/operator");
  std::printf(
      "\nmechanical checks against the simulators:\n"
      "  * Flink-sim: operator chaining fuses linear pipelines into one\n"
      "    task (see bench/fig12_13_plans and the chaining ablation);\n"
      "  * Spark-sim: a record is only processed when its micro-batch\n"
      "    fires, never earlier (StreamingContext batch history);\n"
      "  * Apex-sim: operators deploy into YARN containers whose count the\n"
      "    physical plan reports (unified metrics snapshots).\n"
      "All three engines process each record exactly once in the benchmark\n"
      "configuration; the 24-setup correctness matrix in tests/test_queries\n"
      "pins that property.\n");
  return 0;
}
