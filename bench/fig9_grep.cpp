// Reproduces Fig. 9: average execution times of the Grep query.
#include "bench_util.hpp"

int main() {
  return dsps::bench::run_execution_time_figure(
      dsps::workload::QueryId::kGrep, "Fig. 9");
}
