// Profile smoke: the full setup matrix with the cost-attribution profiler
// armed, plus the armed-vs-disarmed overhead probe that CI gates on.
//
// Companion to perf_smoke (healthy data plane) and chaos_smoke (recovery
// plane): this target tracks *where the microseconds go* — the per-stage
// cost breakdown of every engine x SDK x query setup — and proves the
// profiler itself stays inside its <2% overhead budget. Results merge into
// BENCH_dataplane.json as a "profile" section (appended to perf_smoke's
// output when that file exists, standalone otherwise).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "runtime/profiler.hpp"

namespace {

using namespace dsps;

std::string json_escape(const std::string& in) {
  std::string out;
  for (const char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main() {
  auto config = bench::config_from_env();
  config.profile = true;   // the point of this bench
  config.adaptive = false; // policy engine is measured elsewhere, opt-in
  std::printf("=== Profile smoke (cost attribution, all setups) ===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  std::vector<harness::SetupKey> setups;
  for (const auto query :
       {workload::QueryId::kIdentity, workload::QueryId::kSample,
        workload::QueryId::kProjection, workload::QueryId::kGrep}) {
    for (const auto engine : {queries::Engine::kFlink, queries::Engine::kSpark,
                              queries::Engine::kApex}) {
      for (const auto sdk : {queries::Sdk::kNative, queries::Sdk::kBeam}) {
        setups.push_back(harness::SetupKey{
            .engine = engine, .sdk = sdk, .query = query, .parallelism = 1});
      }
    }
  }

  std::vector<std::pair<std::string, runtime::ProfileSnapshot>> per_setup;
  for (const auto& key : setups) {
    const std::string label = harness::setup_label(key) + " " +
                              workload::query_info(key.query).name;
    std::fprintf(stderr, "  profiling %-24s ...", label.c_str());
    auto measurements = harness.run_setup(key);
    measurements.status().expect_ok();
    const auto& profile = measurements.value().profile;
    std::fprintf(stderr, " %.1fms attributed\n",
                 static_cast<double>(profile.attributed_us()) / 1e3);
    per_setup.emplace_back(label, profile);
  }

  std::printf("\n%s\n",
              harness::render_profile_breakdown(per_setup).c_str());

  // Overhead probe: interleaved armed/disarmed Identity trials on the Flink
  // native setup (the highest record rate, so per-record scope cost shows
  // up first). The probe pins its own record count — at the reduced smoke
  // scales a single run is sub-millisecond and scheduler noise would
  // swamp a 2% budget — and each trial sums several back-to-back runs to
  // widen the measurement window. Best-of-N on both sides: co-tenant noise
  // only ever adds time, so the minimum is the robust estimator.
  auto& profiler = runtime::Profiler::instance();
  profiler.disarm();
  auto probe_config = config;
  probe_config.records = std::max<std::uint64_t>(config.records, 50'000);
  probe_config.profile = false;  // armed manually per trial below
  harness::BenchmarkHarness probe_harness(probe_config);
  const harness::SetupKey probe{.engine = queries::Engine::kFlink,
                                .sdk = queries::Sdk::kNative,
                                .query = workload::QueryId::kIdentity,
                                .parallelism = 1};
  constexpr int kOverheadPairs = 12;
  double best_disarmed = 0.0;
  double best_armed = 0.0;
  std::fprintf(stderr, "  overhead probe (%d interleaved pairs) ...",
               kOverheadPairs);
  for (int i = 0; i < kOverheadPairs; ++i) {
    profiler.disarm();
    auto off = probe_harness.run_once(probe);
    off.status().expect_ok();
    const double off_s = off.value().execution_seconds;
    if (i == 0 || off_s < best_disarmed) best_disarmed = off_s;

    profiler.arm();
    auto on = probe_harness.run_once(probe);
    on.status().expect_ok();
    const double on_s = on.value().execution_seconds;
    if (i == 0 || on_s < best_armed) best_armed = on_s;
  }
  profiler.disarm();
  const double overhead_pct =
      best_disarmed > 0.0 ? (best_armed / best_disarmed - 1.0) * 100.0 : 0.0;
  std::fprintf(stderr, " done\n");
  std::printf(
      "profiler overhead (Identity, Flink native, %llu records, best of %d "
      "interleaved runs per side):\n"
      "  disarmed %.4fs  armed %.4fs  overhead %+.2f%% (budget < 2%%)\n",
      static_cast<unsigned long long>(probe_config.records), kOverheadPairs,
      best_disarmed, best_armed, overhead_pct);

  // Merge into perf_smoke's BENCH_dataplane.json when present (CI runs
  // perf_smoke first); write a standalone document otherwise.
  const char* path = "BENCH_dataplane.json";
  std::string existing;
  if (std::FILE* in = std::fopen(path, "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }

  using runtime::Stage;
  constexpr Stage kOrder[] = {Stage::kQueueWait, Stage::kDecode,
                              Stage::kUserFn,    Stage::kEncode,
                              Stage::kBrokerRtt, Stage::kCheckpoint,
                              Stage::kOther};
  std::string section = "  \"profile\": {\n";
  {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"overhead\": {\"disarmed_best_seconds\": %.6f, "
                  "\"armed_best_seconds\": %.6f, \"overhead_pct\": %.3f},\n",
                  best_disarmed, best_armed, overhead_pct);
    section += line;
  }
  section += "    \"setups\": [\n";
  for (std::size_t i = 0; i < per_setup.size(); ++i) {
    const auto& [label, profile] = per_setup[i];
    section += "      {\"setup\": \"" + json_escape(label) +
               "\", \"attributed_ms\": ";
    char value[64];
    std::snprintf(value, sizeof(value), "%.3f",
                  static_cast<double>(profile.attributed_us()) / 1e3);
    section += value;
    section += ", \"shares\": {";
    for (std::size_t s = 0; s < std::size(kOrder); ++s) {
      std::snprintf(value, sizeof(value), "\"%s\": %.4f",
                    std::string(runtime::stage_name(kOrder[s])).c_str(),
                    profile.share(kOrder[s]));
      section += value;
      if (s + 1 < std::size(kOrder)) section += ", ";
    }
    section += "}}";
    section += i + 1 < per_setup.size() ? ",\n" : "\n";
  }
  section += "    ]\n  }\n";

  // A rerun replaces the previous profile section rather than duplicating
  // it. The key is matched with its colon so metric names containing
  // "profile" (runtime.profile.*) can never false-positive.
  const std::size_t prior = existing.find("\"profile\":");
  if (prior != std::string::npos) {
    const std::size_t comma = existing.rfind(',', prior);
    existing = comma != std::string::npos
                   ? existing.substr(0, comma) + "\n}\n"
                   : std::string();
  }
  const std::size_t close = existing.find_last_of('}');
  std::string merged;
  if (close != std::string::npos) {
    merged = existing.substr(0, close);
    while (!merged.empty() &&
           (merged.back() == '\n' || merged.back() == ' ')) {
      merged.pop_back();
    }
    merged += ",\n" + section + "}\n";
  } else {
    merged = "{\n" + section + "}\n";
  }
  if (std::FILE* out = std::fopen(path, "w")) {
    std::fwrite(merged.data(), 1, merged.size(), out);
    std::fclose(out);
    std::printf("\nwrote profile section into %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }

  // Fail loudly if any setup attributed nothing — that means an engine's
  // execution path fell off the unified invoker.
  bool all_attributed = true;
  for (const auto& [label, profile] : per_setup) {
    if (profile.attributed_us() == 0) {
      std::fprintf(stderr, "no attributed time for %s\n", label.c_str());
      all_attributed = false;
    }
  }
  return all_attributed ? 0 : 1;
}
