// Extension bench: sensitivity of the headline Apex slowdown factor to the
// one calibrated constant in this reproduction — the simulated broker
// network RTT. At RTT 0 only the structural overheads remain (unfused
// operators, windowed-value boxing, per-hop serialization, queue hops);
// increasing RTT scales the output-proportional component that the Beam
// Apex runner's single-element bundles expose.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dsps;
  std::printf("=== Broker-RTT sensitivity of sf(Apex, Identity) and "
              "sf(Flink, Identity) (extension) ===\n\n");
  std::printf("%10s %18s %18s    note\n", "RTT (us)", "sf Apex Identity",
              "sf Flink Identity");
  for (const std::int64_t rtt_us : {0, 5, 25, 100}) {
    harness::HarnessConfig config = harness::HarnessConfig::from_env();
    config.runs = 1;
    config.broker_rtt_us = rtt_us;
    harness::BenchmarkHarness harness(config);
    harness::MeasurementSet set;
    for (const auto engine : {queries::Engine::kApex, queries::Engine::kFlink}) {
      for (const auto sdk : {queries::Sdk::kNative, queries::Sdk::kBeam}) {
        for (const int parallelism : {1, 2}) {
          auto measurements = harness.run_setup(harness::SetupKey{
              engine, sdk, workload::QueryId::kIdentity, parallelism});
          measurements.status().expect_ok();
          set.add(measurements.value());
        }
      }
    }
    const double apex = harness::slowdown_factor(
        set, queries::Engine::kApex, workload::QueryId::kIdentity);
    const double flink = harness::slowdown_factor(
        set, queries::Engine::kFlink, workload::QueryId::kIdentity);
    const char* note =
        rtt_us == 0 ? "<- structural overheads only"
        : rtt_us == 25 ? "<- default (paper-shaped factors)" : "";
    std::printf("%10lld %18.2f %18.2f    %s\n",
                static_cast<long long>(rtt_us), apex, flink, note);
  }
  std::printf(
      "\nreading: the Flink factor barely moves (its writer batches, so\n"
      "RTT amortizes), while the Apex factor scales with RTT because its\n"
      "runner flushes per record — evidence that the reproduced 50x gap is\n"
      "the paper's network-bound mechanism, not an artifact of one engine\n"
      "simulator being slower than another.\n");
  return 0;
}
