// Extension bench: bundle-size ablation on the Flink runner. Beam runners
// choose how many elements form a bundle; buffering DoFns (the Kafka
// writer) flush per bundle, so tiny bundles pay per-element round trips —
// the exact mechanism that makes the (single-element-bundle) Apex runner
// output-proportional. This sweep makes that continuum measurable on one
// runner.
#include <cstdio>

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/flink_runner.hpp"
#include "common/env.hpp"
#include "harness/result_calculator.hpp"
#include "kafka/producer.hpp"
#include "workload/aol_generator.hpp"
#include "workload/data_sender.hpp"

int main() {
  using namespace dsps;
  const auto records = static_cast<std::uint64_t>(
      env_i64("STREAMSHIM_RECORDS", 20'000));
  const auto rtt_us = env_i64("STREAMSHIM_RTT_US", 25);
  std::printf("=== Beam bundle-size sweep, Identity on the Flink runner "
              "(extension) ===\n");
  std::printf("%llu records, broker RTT %lld us\n\n",
              static_cast<unsigned long long>(records),
              static_cast<long long>(rtt_us));

  std::printf("%12s %12s    note\n", "bundle size", "exec time");
  for (const std::size_t bundle :
       {std::size_t{1}, std::size_t{8}, std::size_t{64}, std::size_t{512},
        std::size_t{4096}}) {
    kafka::Broker broker;
    broker.set_rtt_us(rtt_us);
    workload::create_benchmark_topic(broker, "in").expect_ok();
    workload::create_benchmark_topic(broker, "out").expect_ok();
    workload::AolGenerator generator({.record_count = records, .seed = 42});
    workload::DataSender sender(broker,
                                workload::DataSenderConfig{.topic = "in"});
    sender.send_generated(generator).status().expect_ok();

    beam::Pipeline pipeline;
    pipeline
        .apply(beam::KafkaIO::read(broker,
                                   beam::KafkaReadConfig{.topic = "in"}))
        .apply(beam::KafkaIO::without_metadata())
        .apply(beam::Values<runtime::Payload>::create<runtime::Payload>())
        .apply(beam::KafkaIO::write(broker,
                                    beam::KafkaWriteConfig{.topic = "out"}));
    beam::FlinkRunner runner(
        beam::FlinkRunnerOptions{.parallelism = 1, .bundle_size = bundle});
    pipeline.run(runner).status().expect_ok();

    harness::ResultCalculator calculator(broker);
    auto result = calculator.calculate("out");
    result.status().expect_ok();
    const char* note = bundle == 1
                           ? "<- how the Apex runner behaves"
                           : bundle >= 4096 ? "<- amortized, near-native "
                                              "flush cadence"
                                            : "";
    std::printf("%12zu %10.4f s    %s\n", bundle,
                result.value().execution_seconds, note);
  }
  std::printf("\nSmaller bundles => more writer flushes => more simulated\n"
              "network round trips per output record. At bundle size 1 the\n"
              "Flink runner degrades toward the Apex runner's identity-query\n"
              "times, isolating bundle policy as the dominant Beam-on-Apex\n"
              "cost (DESIGN.md §5).\n");
  return 0;
}
