// Reproduces Fig. 7: average execution times of the Sample query.
#include "bench_util.hpp"

int main() {
  return dsps::bench::run_execution_time_figure(
      dsps::workload::QueryId::kSample, "Fig. 7");
}
