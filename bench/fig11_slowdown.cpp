// Reproduces Fig. 11, the paper's headline result: the slowdown factor
//   sf(dsps, query) = (1/Np) * sum_p  mean_beam(p) / mean_native(p)
// for every engine and query. The paper's claims to check:
//   * Beam is slower in almost all scenarios (sf > 1, mostly sf > 3);
//   * on Apex the penalty grows with output volume
//     (identity/projection >> sample >> grep ~ native);
//   * on Flink/Spark the pattern inverts: the shortest query (grep) has the
//     highest penalty;
//   * the worst case is roughly an order of magnitude beyond the rest.
#include "bench_util.hpp"

int main() {
  using namespace dsps;
  const auto config = bench::config_from_env();
  std::printf("=== Slowdown Factor sf(dsps, query) (reproduction of Fig. 11) "
              "===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  const auto set = bench::run_setups(harness, harness::full_matrix());
  const auto figure = harness::slowdown_figure(set);
  std::printf("%s\n", harness::render_figure(figure).c_str());
  std::printf("%s\n", harness::render_comparison(
                          figure, harness::paper::slowdown_factors(),
                          "Fig. 11 (slowdown factors)")
                          .c_str());

  // Shape checks the paper's conclusions rest on.
  const auto sf = [&](queries::Engine engine, workload::QueryId query) {
    return harness::slowdown_factor(set, engine, query);
  };
  using workload::QueryId;
  std::printf("shape checks:\n");
  std::printf("  [%s] Apex penalty is output-proportional "
              "(identity > sample > grep)\n",
              sf(queries::Engine::kApex, QueryId::kIdentity) >
                      sf(queries::Engine::kApex, QueryId::kSample) &&
                      sf(queries::Engine::kApex, QueryId::kSample) >
                          sf(queries::Engine::kApex, QueryId::kGrep)
                  ? "ok"
                  : "MISMATCH");
  std::printf("  [%s] Flink pattern inverts (grep penalty > identity "
              "penalty)\n",
              sf(queries::Engine::kFlink, QueryId::kGrep) >
                      sf(queries::Engine::kFlink, QueryId::kIdentity)
                  ? "ok"
                  : "MISMATCH");
  std::printf("  [%s] Apex worst case dominates every Flink/Spark factor\n",
              sf(queries::Engine::kApex, QueryId::kIdentity) >
                      sf(queries::Engine::kFlink, QueryId::kGrep) &&
                      sf(queries::Engine::kApex, QueryId::kIdentity) >
                          sf(queries::Engine::kSpark, QueryId::kGrep)
                  ? "ok"
                  : "MISMATCH");
  std::printf("  [%s] Beam slower than native for every engine on "
              "identity/sample/projection\n",
              [&] {
                for (const auto engine :
                     {queries::Engine::kFlink, queries::Engine::kSpark,
                      queries::Engine::kApex}) {
                  for (const auto query : {QueryId::kIdentity,
                                           QueryId::kSample,
                                           QueryId::kProjection}) {
                    if (sf(engine, query) <= 1.0) return false;
                  }
                }
                return true;
              }()
                  ? "ok"
                  : "MISMATCH");
  return 0;
}
