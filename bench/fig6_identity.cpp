// Reproduces Fig. 6: average execution times of the Identity query across
// the 12 system/SDK/parallelism setups.
#include "bench_util.hpp"

int main() {
  return dsps::bench::run_execution_time_figure(
      dsps::workload::QueryId::kIdentity, "Fig. 6");
}
