// Extension bench: the NEXMark-inspired mini-suite (§IV mentions the Beam
// NEXMark suite as the other benchmark in this space). Runs Q1/Q2/QW on
// every engine's Beam runner and reports the broker-timestamp execution
// times — extending the paper's single-workload comparison with a second,
// windowed workload.
#include <cstdio>

#include "common/env.hpp"
#include "common/strings.hpp"
#include "harness/result_calculator.hpp"
#include "kafka/producer.hpp"
#include "queries/nexmark_queries.hpp"
#include "workload/data_sender.hpp"
#include "workload/nexmark.hpp"

int main() {
  using namespace dsps;
  const auto bids = static_cast<std::uint64_t>(
      env_i64("STREAMSHIM_RECORDS", 20'000));
  std::printf("=== NEXMark-inspired suite on Beam-sim (extension) ===\n");
  std::printf("%llu bids, fixed windows of 1s event time\n\n",
              static_cast<unsigned long long>(bids));

  workload::NexmarkGenerator generator({.bid_count = bids, .seed = 42});
  std::printf("%-18s %-8s %12s %10s\n", "query", "runner", "exec time",
              "outputs");
  for (const auto query :
       {queries::NexmarkQuery::kQ1CurrencyConversion,
        queries::NexmarkQuery::kQ2Selection,
        queries::NexmarkQuery::kQWWindowedMaxBid}) {
    for (const auto engine :
         {queries::Engine::kFlink, queries::Engine::kSpark,
          queries::Engine::kApex}) {
      kafka::Broker broker;
      broker.set_rtt_us(env_i64("STREAMSHIM_RTT_US", 25));
      workload::create_benchmark_topic(broker, "bids").expect_ok();
      workload::create_benchmark_topic(broker, "out").expect_ok();
      {
        kafka::Producer producer(
            broker, kafka::ProducerConfig{.batch_size = 1000});
        for (std::uint64_t i = 0; i < bids; ++i) {
          producer
              .send("bids", 0,
                    kafka::ProducerRecord{
                        .value = generator.bid_at(i).to_line()})
              .expect_ok();
        }
        producer.close().expect_ok();
      }
      queries::QueryContext ctx{&broker, "bids", "out", 1, 42};
      queries::run_nexmark(engine, query, ctx).expect_ok();
      harness::ResultCalculator calculator(broker);
      auto result = calculator.calculate("out");
      result.status().expect_ok();
      std::printf("%-18s %-8s %10.4f s %10lld\n",
                  queries::nexmark_query_name(query),
                  queries::engine_name(engine),
                  result.value().execution_seconds,
                  static_cast<long long>(result.value().output_records));
    }
  }
  std::printf(
      "\nexpected shape: Q1 (full output) is the slowest everywhere and\n"
      "worst on the Apex runner (per-record writer flushes); Q2 and QW\n"
      "emit far less and converge across runners — the same output-volume\n"
      "pattern as the StreamBench reproduction.\n");
  return 0;
}
