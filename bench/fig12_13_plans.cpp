// Reproduces Fig. 12 and Fig. 13: the Flink execution plans for the Grep
// query at parallelism 1, implemented natively (3 chained elements) and via
// Beam (7 unfused elements, no dedicated sink). Also prints the Apex
// physical plans — the native THREAD_LOCAL single container versus the Beam
// runner's container-per-operator deployment — which underpin §III-C3.
#include <cstdio>

#include "queries/query_factory.hpp"
#include "workload/data_sender.hpp"

int main() {
  using namespace dsps;
  kafka::Broker broker;
  workload::create_benchmark_topic(broker, "input").expect_ok();
  workload::create_benchmark_topic(broker, "output").expect_ok();
  queries::QueryContext ctx{&broker, "input", "output", /*parallelism=*/1,
                            /*seed=*/42};

  const struct {
    queries::Engine engine;
    queries::Sdk sdk;
    const char* caption;
  } cases[] = {
      {queries::Engine::kFlink, queries::Sdk::kNative,
       "Fig. 12 — Flink execution plan, Grep, native API"},
      {queries::Engine::kFlink, queries::Sdk::kBeam,
       "Fig. 13 — Flink execution plan, Grep, via Apache Beam"},
      {queries::Engine::kApex, queries::Sdk::kNative,
       "(extension) Apex physical plan, Grep, native API"},
      {queries::Engine::kApex, queries::Sdk::kBeam,
       "(extension) Apex physical plan, Grep, via Apache Beam"},
  };
  for (const auto& plan_case : cases) {
    auto plan = queries::execution_plan(plan_case.engine, plan_case.sdk,
                                        workload::QueryId::kGrep, ctx);
    plan.status().expect_ok();
    std::printf("=== %s ===\n%s\n", plan_case.caption, plan.value().c_str());
  }
  std::printf(
      "observations matching §III-C3:\n"
      "  * the native Flink plan has 3 elements fused into one chain;\n"
      "  * the Beam plan has 7 elements (UnknownRawPTransform source, a\n"
      "    Flat Map, five RawParDos) and no dedicated data sink;\n"
      "  * the native Apex plan places the pipeline THREAD_LOCAL in one\n"
      "    container; the Beam Apex plan deploys one container per\n"
      "    operator with serialized NODE_LOCAL hops.\n");
  return 0;
}
