// Reproduces Fig. 10: relative standard deviation of execution times for
// every system-query-SDK combination (parallelism factors averaged).
#include "bench_util.hpp"

int main() {
  using namespace dsps;
  const auto config = bench::config_from_env();
  std::printf("=== Relative Standard Deviation (reproduction of Fig. 10) "
              "===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  const auto set = bench::run_setups(harness, harness::full_matrix());
  const auto figure = harness::stddev_figure(set);
  std::printf("%s\n", harness::render_figure(figure).c_str());
  std::printf(
      "%s\n",
      harness::render_comparison(
          figure, harness::paper::relative_stddevs(),
          "Fig. 10 (dispersion depends on the host; compare magnitudes)")
          .c_str());
  return 0;
}
