// Extension bench: scaling behaviour (the paper's §V names "scaling,
// parallelism" as future work). Sweeps parallelism 1..4 for the Identity
// query, native vs Beam, on every engine.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dsps;
  auto config = bench::config_from_env();
  std::printf("=== Parallelism scaling, Identity query (extension) ===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  std::printf("%-10s %-8s", "engine", "sdk");
  for (int p = 1; p <= 4; ++p) std::printf("        P%d", p);
  std::printf("\n");
  for (const auto engine :
       {queries::Engine::kFlink, queries::Engine::kSpark,
        queries::Engine::kApex}) {
    for (const auto sdk : {queries::Sdk::kNative, queries::Sdk::kBeam}) {
      std::printf("%-10s %-8s", queries::engine_name(engine),
                  queries::sdk_name(sdk));
      for (int parallelism = 1; parallelism <= 4; ++parallelism) {
        auto measurements = harness.run_setup(harness::SetupKey{
            engine, sdk, workload::QueryId::kIdentity, parallelism});
        measurements.status().expect_ok();
        std::printf("  %7.4fs",
                    mean(measurements.value().execution_times()));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nThe paper observed (§III-C1) that differences between parallelism\n"
      "factors are small compared to the native-vs-Beam gap, and that\n"
      "higher parallelism does not reliably help these trivial queries —\n"
      "both visible here: rows differ by far more than columns.\n");
  return 0;
}
