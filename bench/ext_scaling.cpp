// Extension bench: the P1..P16 scale-out sweep (the paper's §V names
// "scaling, parallelism" as future work).
//
// Every StreamBench query runs {native, Beam} x {Flink, Spark, Apex} at
// P in {1, 2, 4, 8, 16} over a 16-partition input log (one consumer per
// partition at the top end). For each setup the sweep reports:
//
//   - throughput(P)            records / min execution time
//   - speedup                  throughput(P) / throughput(1)
//   - scaling efficiency       throughput(P) / (P * throughput(1))
//   - per-P slowdown factor    time(Beam) / time(native), same engine+P —
//                              does the abstraction penalty grow or shrink
//                              as the plan fans out?
//
// The result lands as a "scaling" section in BENCH_dataplane.json (merged
// next to perf_smoke's "setups" and chaos_smoke's "chaos" sections) so CI
// can gate on it once a baseline is committed.
//
// STREAMSHIM_SCALING_POINTS=1,4 (or --parallelism 1,4) restricts the sweep
// to a subset — CI smoke runs P1/P4 only.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

std::vector<int> parse_points(const std::string& spec) {
  std::vector<int> points;
  std::string token;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) points.push_back(std::stoi(token));
      token.clear();
    } else if (c != ' ') {
      token += c;
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsps;

  std::vector<int> points = {1, 2, 4, 8, 16};
  std::string spec = env_string("STREAMSHIM_SCALING_POINTS", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--parallelism") == 0) spec = argv[i + 1];
  }
  if (!spec.empty()) {
    points = parse_points(spec);
    if (points.empty() || points.front() < 1) {
      std::fprintf(stderr, "bad parallelism points: %s\n", spec.c_str());
      return 1;
    }
  }
  // Efficiency is defined against P1; sweep it even when not requested.
  if (points.front() != 1) points.insert(points.begin(), 1);
  const int max_p = points.back();

  auto config = bench::config_from_env();
  // One input partition per consumer at the top of the sweep; every P
  // shares the same ingested log so rows are directly comparable.
  config.input_partitions = std::max(config.input_partitions, max_p);
  // Scale-out hides network latency: the sweep defaults to a WAN-ish RTT
  // (vs the figure benches' 25us) so producer flush stalls dominate and
  // parallel pipelines visibly overlap them — which also keeps the sweep
  // meaningful on single-core runners, where CPU-parallel speedup is
  // physically unavailable. STREAMSHIM_RTT_US overrides as usual.
  if (env_string("STREAMSHIM_RTT_US", "").empty()) {
    config.broker_rtt_us = 1000;
  }
  // Flush stalls are sleeps, not scheduler noise, so a single run per cell
  // is already stable — and the Beam-on-Apex setups pay one RTT per record
  // (single-element bundles), which makes repeated runs expensive.
  // STREAMSHIM_RUNS still overrides.
  if (env_string("STREAMSHIM_RUNS", "").empty()) {
    config.runs = 1;
  }

  std::printf("=== Scale-out sweep, all queries (extension) ===\n");
  bench::print_scale(config);
  std::printf("parallelism points:");
  for (const int p : points) std::printf(" %d", p);
  std::printf("   input partitions: %d\n\n", config.input_partitions);

  harness::BenchmarkHarness harness(config);

  struct Cell {
    double min_seconds = 0.0;
    double records_per_sec = 0.0;
  };
  // (setup label without P suffix, query, P) -> measurement.
  std::map<std::string, std::map<std::string, std::map<int, Cell>>> cells;
  std::vector<harness::ScalingPoint> table;

  const auto engines = {queries::Engine::kFlink, queries::Engine::kSpark,
                        queries::Engine::kApex};
  const auto sdks = {queries::Sdk::kNative, queries::Sdk::kBeam};

  for (const auto engine : engines) {
    for (const auto sdk : sdks) {
      std::string setup = queries::engine_name(engine);
      if (sdk == queries::Sdk::kBeam) setup += " Beam";
      for (const auto& info : workload::all_queries()) {
        for (const int parallelism : points) {
          const harness::SetupKey key{engine, sdk, info.id, parallelism};
          std::fprintf(stderr, "  running %-12s %-10s ...",
                       harness::setup_label(key).c_str(),
                       info.name.c_str());
          auto measurements = harness.run_setup(key);
          measurements.status().expect_ok();
          const auto times = measurements.value().execution_times();
          const double best = *std::min_element(times.begin(), times.end());
          double wall = measurements.value().runs.front().wall_seconds;
          for (const auto& run : measurements.value().runs) {
            wall = std::min(wall, run.wall_seconds);
          }
          Cell cell;
          // Sparse outputs (Grep at tiny scales) can land in one append
          // batch, collapsing the first-to-last-append window to zero;
          // fall back to job wall time rather than dividing by it.
          cell.min_seconds = best > 0.0 ? best : wall;
          cell.records_per_sec =
              cell.min_seconds > 0.0
                  ? static_cast<double>(config.records) / cell.min_seconds
                  : 0.0;
          cells[setup][info.name][parallelism] = cell;
          std::fprintf(stderr, " min %.4fs wall %.4fs (%.0f rec/s)\n", best,
                       wall, cell.records_per_sec);
        }
      }
    }
  }

  // Derive speedup / efficiency / per-P slowdown.
  for (const auto engine : engines) {
    const std::string native = queries::engine_name(engine);
    const std::string beam = native + " Beam";
    for (const auto& setup : {native, beam}) {
      for (const auto& info : workload::all_queries()) {
        const auto& by_p = cells.at(setup).at(info.name);
        const double base = by_p.at(1).records_per_sec;
        for (const int p : points) {
          const Cell& cell = by_p.at(p);
          harness::ScalingPoint row;
          row.setup = setup;
          row.query = info.name;
          row.parallelism = p;
          row.records_per_sec = cell.records_per_sec;
          row.speedup = base > 0.0 ? cell.records_per_sec / base : 0.0;
          row.efficiency = row.speedup / static_cast<double>(p);
          if (setup == beam) {
            const double native_seconds =
                cells.at(native).at(info.name).at(p).min_seconds;
            row.slowdown = native_seconds > 0.0
                               ? cell.min_seconds / native_seconds
                               : 0.0;
          }
          table.push_back(row);
        }
      }
    }
  }

  std::printf("\n%s\n", harness::render_scaling_table(table).c_str());
  std::printf(
      "%s", harness::render_partition_gauges(
                runtime::MetricsRegistry::global().snapshot())
                .c_str());

  // Headline check: does a native engine actually scale? (>= 2.5x at P4
  // on Identity for at least one engine, when P4 is in the sweep.)
  if (std::find(points.begin(), points.end(), 4) != points.end()) {
    double best_speedup = 0.0;
    std::string best_setup;
    for (const auto engine : engines) {
      const std::string setup = queries::engine_name(engine);
      const auto& by_p = cells.at(setup).at("Identity");
      const double base = by_p.at(1).records_per_sec;
      const double speedup =
          base > 0.0 ? by_p.at(4).records_per_sec / base : 0.0;
      if (speedup > best_speedup) {
        best_speedup = speedup;
        best_setup = setup;
      }
    }
    std::printf("\nbest native Identity P4 speedup: %.2fx (%s) — %s\n",
                best_speedup, best_setup.c_str(),
                best_speedup >= 2.5 ? "real scale-out"
                                    : "BELOW the 2.5x scale-out bar");
  }

  // Merge a "scaling" section into BENCH_dataplane.json (same idiom as
  // chaos_smoke): replace any prior section, append before the final '}'.
  const char* path = "BENCH_dataplane.json";
  std::string existing;
  if (std::FILE* in = std::fopen(path, "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  std::string scaling = "  \"scaling\": [\n";
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& row = table[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"setup\": \"%s\", \"query\": \"%s\", "
                  "\"parallelism\": %d, \"records_per_sec\": %.3f, "
                  "\"speedup\": %.4f, \"efficiency\": %.4f, "
                  "\"slowdown\": %.4f}%s\n",
                  row.setup.c_str(), row.query.c_str(), row.parallelism,
                  row.records_per_sec, row.speedup, row.efficiency,
                  row.slowdown, i + 1 < table.size() ? "," : "");
    scaling += line;
  }
  scaling += "  ]\n";

  const std::size_t prior = existing.find("\"scaling\"");
  if (prior != std::string::npos) {
    const std::size_t comma = existing.rfind(',', prior);
    existing = comma != std::string::npos
                   ? existing.substr(0, comma) + "\n}\n"
                   : std::string();
  }
  const std::size_t close = existing.find_last_of('}');
  std::string merged;
  if (close != std::string::npos) {
    merged = existing.substr(0, close);
    while (!merged.empty() &&
           (merged.back() == '\n' || merged.back() == ' ')) {
      merged.pop_back();
    }
    merged += ",\n" + scaling + "}\n";
  } else {
    merged = "{\n" + scaling + "}\n";
  }
  if (std::FILE* out = std::fopen(path, "w")) {
    std::fwrite(merged.data(), 1, merged.size(), out);
    std::fclose(out);
    std::printf("wrote scaling section into %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  return 0;
}
