// Chaos smoke: one faulted-and-recovered Identity run per engine x SDK.
//
// Companion to perf_smoke: where that target tracks the healthy data plane,
// this one tracks the *recovery* plane — how many restarts a seeded kill
// schedule costs each engine, how many records get replayed, and the
// wall-clock recovery overhead versus an unfaulted run of the same setup.
// Per-setup numbers are published into the unified MetricsRegistry under
// chaos.<setup>.* and merged into BENCH_dataplane.json as a "chaos" section
// (appended to perf_smoke's output when that file exists, standalone
// otherwise) so one JSON carries both trajectories.
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "harness/benchmark.hpp"
#include "harness/report.hpp"
#include "kafka/broker.hpp"
#include "queries/query_factory.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "workload/streambench.hpp"

namespace {

using namespace dsps;
using queries::Engine;
using queries::Sdk;
using runtime::FaultPoint;
using runtime::FaultRule;

constexpr const char* kIn = "chaos-in";
constexpr const char* kOut = "chaos-out";
constexpr int kRecords = 9'000;
constexpr std::uint64_t kSeed = 1;

void load_input(kafka::Broker& broker) {
  broker.create_topic(kIn, kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic(kOut, kafka::TopicConfig{.partitions = 1}).expect_ok();
  std::vector<kafka::ProducerRecord> batch;
  batch.reserve(kRecords);
  for (int i = 0; i < kRecords; ++i) {
    batch.push_back(kafka::ProducerRecord{
        .value = "row-" + std::to_string(i) + "\tpayload-" + std::to_string(i)});
  }
  broker.append_batch({kIn, 0}, batch, false).status().expect_ok();
}

struct ChaosResult {
  std::string setup;
  double clean_ms = 0.0;
  double faulted_ms = 0.0;
  std::uint64_t injected = 0;
  std::uint64_t restarts = 0;
  std::uint64_t replayed = 0;
  bool ok = false;
};

double run_once(Engine engine, Sdk sdk, bool faulted, bool& ok,
                std::uint64_t& injected) {
  kafka::Broker broker;
  load_input(broker);
  queries::QueryContext ctx;
  ctx.broker = &broker;
  ctx.input_topic = kIn;
  ctx.output_topic = kOut;
  ctx.recovery.enabled = true;
  ctx.recovery.max_restarts = 4;
  ctx.recovery.backoff_seed = kSeed;

  auto& injector = runtime::FaultInjector::instance();
  if (faulted) {
    FaultRule kill{.point = FaultPoint::kOperatorThrow, .times = 1};
    int burn = 0;
    switch (engine) {
      case Engine::kFlink:
        if (sdk == Sdk::kNative) {
          kill.site = "flink.source.";
          kill.after_hits = 2;
        } else {
          kill.site = "ParDo";
          kill.after_hits = 2;
        }
        break;
      case Engine::kSpark:
        kill.site = "spark.batch";
        kill.after_hits = 1;
        burn = 1;
        break;
      case Engine::kApex:
        kill.site = "apex.";
        kill.after_hits = 2;
        break;
    }
    injector.arm(kSeed, {kill});
    for (int i = 0; i < burn; ++i) {
      try {
        injector.maybe_throw(FaultPoint::kOperatorThrow, "spark.batch");
      } catch (const runtime::FaultInjectedError&) {
      }
    }
  }
  Stopwatch watch;
  const Status status =
      queries::run_query(engine, sdk, workload::QueryId::kIdentity, ctx);
  const double ms = watch.elapsed_ms();
  if (faulted) {
    injected = injector.injected_count();
    injector.disarm();
  }
  ok = status.is_ok();
  if (!ok) {
    std::fprintf(stderr, "  %s/%s %s run failed: %s\n",
                 queries::engine_name(engine), queries::sdk_name(sdk),
                 faulted ? "faulted" : "clean", status.to_string().c_str());
  }
  return ms;
}

std::uint64_t counter_delta(const runtime::MetricsSnapshot& before,
                            const runtime::MetricsSnapshot& after,
                            std::string_view name) {
  return after.counter(name) - before.counter(name);
}

}  // namespace

int main() {
  std::printf("=== Chaos smoke (Identity under a seeded kill, all setups) ===\n");
  std::printf("scale: %d records, seed %llu, max_restarts 4\n\n", kRecords,
              static_cast<unsigned long long>(kSeed));

  auto& global = runtime::MetricsRegistry::global();
  std::vector<ChaosResult> results;
  bool all_ok = true;
  for (const auto engine : {Engine::kFlink, Engine::kSpark, Engine::kApex}) {
    const std::string restart_counter =
        engine == Engine::kFlink   ? "flink.recovery.restarts"
        : engine == Engine::kSpark ? "spark.recovery.batch_retries"
                                   : "apex.recovery.restarts";
    const std::string replay_counter =
        engine == Engine::kFlink   ? "flink.recovery.replayed_records"
        : engine == Engine::kSpark ? "spark.recovery.replayed_records"
                                   : "apex.recovery.replayed_records";
    for (const auto sdk : {Sdk::kNative, Sdk::kBeam}) {
      ChaosResult r;
      r.setup = std::string(queries::engine_name(engine)) + "-" +
                queries::sdk_name(sdk);
      bool clean_ok = false;
      std::uint64_t unused = 0;
      r.clean_ms = run_once(engine, sdk, false, clean_ok, unused);
      const auto before = global.snapshot();
      bool faulted_ok = false;
      r.faulted_ms = run_once(engine, sdk, true, faulted_ok, r.injected);
      const auto after = global.snapshot();
      r.restarts = counter_delta(before, after, restart_counter);
      r.replayed = counter_delta(before, after, replay_counter);
      r.ok = clean_ok && faulted_ok && r.injected > 0;
      all_ok = all_ok && r.ok;

      // Publish the recovery trajectory through the same registry the
      // engines use, so report/figures render chaos runs unchanged.
      const std::string prefix = "chaos." + r.setup;
      global.gauge(prefix + ".clean_ms").set(r.clean_ms);
      global.gauge(prefix + ".faulted_ms").set(r.faulted_ms);
      global.gauge(prefix + ".recovery_overhead_ms")
          .set(r.faulted_ms - r.clean_ms);
      global.counter(prefix + ".restarts").add(r.restarts);
      global.counter(prefix + ".replayed_records").add(r.replayed);
      global.counter(prefix + ".faults_injected").add(r.injected);
      results.push_back(r);
    }
  }

  std::printf("%-14s %10s %12s %9s %9s %10s %6s\n", "setup", "clean_ms",
              "faulted_ms", "injected", "restarts", "replayed", "ok");
  for (const auto& r : results) {
    std::printf("%-14s %10.2f %12.2f %9llu %9llu %10llu %6s\n",
                r.setup.c_str(), r.clean_ms, r.faulted_ms,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.restarts),
                static_cast<unsigned long long>(r.replayed),
                r.ok ? "yes" : "NO");
  }

  std::printf("\n%s",
              harness::render_recovery_summary(global.snapshot()).c_str());

  // Merge into perf_smoke's BENCH_dataplane.json when present (CI runs
  // perf_smoke first); write a standalone document otherwise.
  const char* path = "BENCH_dataplane.json";
  std::string existing;
  if (std::FILE* in = std::fopen(path, "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  std::string chaos = "  \"chaos\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"setup\": \"%s\", \"clean_ms\": %.3f, "
                  "\"faulted_ms\": %.3f, \"faults_injected\": %llu, "
                  "\"restarts\": %llu, \"replayed_records\": %llu}%s\n",
                  r.setup.c_str(), r.clean_ms, r.faulted_ms,
                  static_cast<unsigned long long>(r.injected),
                  static_cast<unsigned long long>(r.restarts),
                  static_cast<unsigned long long>(r.replayed),
                  i + 1 < results.size() ? "," : "");
    chaos += line;
  }
  chaos += "  ]\n";

  // A rerun replaces the previous chaos section rather than duplicating it.
  const std::size_t prior = existing.find("\"chaos\"");
  if (prior != std::string::npos) {
    const std::size_t comma = existing.rfind(',', prior);
    existing = comma != std::string::npos
                   ? existing.substr(0, comma) + "\n}\n"
                   : std::string();
  }
  const std::size_t close = existing.find_last_of('}');
  std::string merged;
  if (close != std::string::npos) {
    merged = existing.substr(0, close);
    while (!merged.empty() &&
           (merged.back() == '\n' || merged.back() == ' ')) {
      merged.pop_back();
    }
    merged += ",\n" + chaos + "}\n";
  } else {
    merged = "{\n" + chaos + "}\n";
  }
  if (std::FILE* out = std::fopen(path, "w")) {
    std::fwrite(merged.data(), 1, merged.size(), out);
    std::fclose(out);
    std::printf("\nwrote chaos section into %s\n", path);
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  return all_ok ? 0 : 1;
}
