// Reproduces Table II: the four StreamBench queries with their expected
// selectivities — and *measures* the actual selectivities by running every
// query through the harness on one engine.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dsps;
  auto config = bench::config_from_env();
  config.runs = 1;
  std::printf("=== Table II — Overview of the Benchmark Queries ===\n\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  std::printf("%-12s %-9s %-10s %-10s  %s\n", "Query", "expected",
              "measured", "output", "description");
  for (const auto& info : workload::all_queries()) {
    auto measurement = harness.run_once(harness::SetupKey{
        queries::Engine::kFlink, queries::Sdk::kNative, info.id, 1});
    measurement.status().expect_ok();
    const double measured =
        static_cast<double>(measurement.value().output_records) /
        static_cast<double>(config.records);
    std::printf("%-12s %-9s %-10s %-10lld  %s\n", info.name.c_str(),
                format_double(info.expected_selectivity, 4).c_str(),
                format_double(measured, 4).c_str(),
                static_cast<long long>(measurement.value().output_records),
                info.description.c_str());
  }
  std::printf(
      "\npaper reference: identity/projection 100%% of input; sample ~40%%;\n"
      "grep 3,003 of 1,000,001 records (~0.3%%) for the search string "
      "\"test\".\n");
  return 0;
}
