// MiniKafka primitives: append/fetch throughput, batch effects, consumer
// polling — establishes the broker baseline the engine numbers sit on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"

namespace {

using namespace dsps;

void BM_AppendSingle(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  const kafka::ProducerRecord record{.value = std::string(64, 'x')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.append({"t", 0}, record, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendSingle);

void BM_AppendBatch(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  const std::vector<kafka::ProducerRecord> batch(
      static_cast<std::size_t>(state.range(0)),
      kafka::ProducerRecord{.value = std::string(64, 'x')});
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.append_batch({"t", 0}, batch, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AppendBatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_AppendWithReplication(benchmark::State& state) {
  kafka::Broker broker;
  broker
      .create_topic("t", kafka::TopicConfig{.partitions = 1,
                                            .replication_factor = 3})
      .expect_ok();
  const kafka::ProducerRecord record{.value = std::string(64, 'x')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        broker.append({"t", 0}, record, /*wait_for_replication=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendWithReplication);

void BM_FetchRange(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 10000; ++i) {
    broker
        .append({"t", 0},
                kafka::ProducerRecord{.value = std::string(64, 'x')}, false)
        .status()
        .expect_ok();
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<kafka::StoredRecord> out;
  std::int64_t offset = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(broker.fetch({"t", 0}, offset, n, out));
    offset = (offset + static_cast<std::int64_t>(n)) % 9000;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FetchRange)->Arg(100)->Arg(1000);

void BM_ConsumerPollLoop(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 50000; ++i) {
    broker
        .append({"t", 0},
                kafka::ProducerRecord{.value = std::string(64, 'x')}, false)
        .status()
        .expect_ok();
  }
  for (auto _ : state) {
    kafka::Consumer consumer(broker,
                             kafka::ConsumerConfig{.max_poll_records = 1000});
    consumer.subscribe("t").expect_ok();
    std::size_t total = 0;
    while (!consumer.at_end()) total += consumer.poll(0).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_ConsumerPollLoop);

void BM_ProducerSendBatched(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  kafka::Producer producer(
      broker, kafka::ProducerConfig{
                  .batch_size = static_cast<std::size_t>(state.range(0)),
                  .linger_us = 0});
  const std::string value(64, 'x');
  for (auto _ : state) {
    producer.send("t", 0, kafka::ProducerRecord{.value = value}).expect_ok();
  }
  producer.flush().expect_ok();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProducerSendBatched)->Arg(1)->Arg(100)->Arg(1000);

// --- sync vs async producer under simulated RTT ------------------------------
//
// The pair below is the microbench view of the PR's sink ablation: same
// broker RTT (25us, the harness default), same batch size; the sync mode
// pays one blocking RTT per shipped batch on the caller thread, the async
// mode hands batches to the background sender, which write-combines and
// pipelines them. p99_send_us is the caller-visible per-record send cost.

void producer_mode_run(benchmark::State& state, bool async) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr int kRecords = 2000;
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.set_rtt_us(25);
  const std::string value(64, 'x');
  std::vector<std::int64_t> send_ns;
  send_ns.reserve(static_cast<std::size_t>(state.max_iterations) * kRecords);
  for (auto _ : state) {
    kafka::Producer producer(
        broker, kafka::ProducerConfig{
                    .batch_size = batch, .linger_us = 0, .async = async});
    for (int i = 0; i < kRecords; ++i) {
      const auto start = std::chrono::steady_clock::now();
      producer.send("t", 0, kafka::ProducerRecord{.value = value}).expect_ok();
      send_ns.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    producer.close().expect_ok();
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  std::sort(send_ns.begin(), send_ns.end());
  const std::int64_t p99 =
      send_ns.empty() ? 0 : send_ns[send_ns.size() * 99 / 100];
  state.counters["p99_send_us"] =
      benchmark::Counter(static_cast<double>(p99) / 1e3);
  state.SetLabel(std::string(async ? "async" : "sync") +
                 " batch=" + std::to_string(batch) + " rtt=25us");
}

void BM_ProducerSyncUnderRtt(benchmark::State& state) {
  producer_mode_run(state, /*async=*/false);
}
// batch=1 is the Beam-on-Apex writer shape; batch=500 the native sink.
BENCHMARK(BM_ProducerSyncUnderRtt)->Arg(1)->Arg(64)->Arg(500);

void BM_ProducerAsyncUnderRtt(benchmark::State& state) {
  producer_mode_run(state, /*async=*/true);
}
BENCHMARK(BM_ProducerAsyncUnderRtt)->Arg(1)->Arg(64)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
