// MiniKafka primitives: append/fetch throughput, batch effects, consumer
// polling — establishes the broker baseline the engine numbers sit on.
#include <benchmark/benchmark.h>

#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/producer.hpp"

namespace {

using namespace dsps;

void BM_AppendSingle(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  const kafka::ProducerRecord record{.value = std::string(64, 'x')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.append({"t", 0}, record, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendSingle);

void BM_AppendBatch(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  const std::vector<kafka::ProducerRecord> batch(
      static_cast<std::size_t>(state.range(0)),
      kafka::ProducerRecord{.value = std::string(64, 'x')});
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.append_batch({"t", 0}, batch, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AppendBatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_AppendWithReplication(benchmark::State& state) {
  kafka::Broker broker;
  broker
      .create_topic("t", kafka::TopicConfig{.partitions = 1,
                                            .replication_factor = 3})
      .expect_ok();
  const kafka::ProducerRecord record{.value = std::string(64, 'x')};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        broker.append({"t", 0}, record, /*wait_for_replication=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendWithReplication);

void BM_FetchRange(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 10000; ++i) {
    broker
        .append({"t", 0},
                kafka::ProducerRecord{.value = std::string(64, 'x')}, false)
        .status()
        .expect_ok();
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<kafka::StoredRecord> out;
  std::int64_t offset = 0;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(broker.fetch({"t", 0}, offset, n, out));
    offset = (offset + static_cast<std::int64_t>(n)) % 9000;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FetchRange)->Arg(100)->Arg(1000);

void BM_ConsumerPollLoop(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 50000; ++i) {
    broker
        .append({"t", 0},
                kafka::ProducerRecord{.value = std::string(64, 'x')}, false)
        .status()
        .expect_ok();
  }
  for (auto _ : state) {
    kafka::Consumer consumer(broker,
                             kafka::ConsumerConfig{.max_poll_records = 1000});
    consumer.subscribe("t").expect_ok();
    std::size_t total = 0;
    while (!consumer.at_end()) total += consumer.poll(0).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_ConsumerPollLoop);

void BM_ProducerSendBatched(benchmark::State& state) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  kafka::Producer producer(
      broker, kafka::ProducerConfig{
                  .batch_size = static_cast<std::size_t>(state.range(0)),
                  .linger_us = 0});
  const std::string value(64, 'x');
  for (auto _ : state) {
    producer.send("t", 0, kafka::ProducerRecord{.value = value}).expect_ok();
  }
  producer.flush().expect_ok();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProducerSendBatched)->Arg(1)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
