// Data-plane perf smoke: all four StreamBench queries (Identity, Sample,
// Projection, Grep) across all 6 engine/SDK setups.
//
// Not a figure reproduction — this target tracks the *substrate* throughput
// (records/sec) over time so that performance PRs have a trajectory to
// compare against. Writes BENCH_dataplane.json next to the working
// directory; check the file in when the numbers move.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/metrics.hpp"

namespace {

using namespace dsps;

struct SetupResult {
  harness::SetupKey key;
  double mean_seconds = 0.0;
  double best_seconds = 0.0;
  double records_per_sec = 0.0;
};

std::string json_escape(const std::string& in) {
  std::string out;
  for (const char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main() {
  const auto config = bench::config_from_env();
  std::printf("=== Data-plane perf smoke (all 4 queries, all setups) ===\n");
  bench::print_scale(config);

  harness::BenchmarkHarness harness(config);
  std::vector<harness::SetupKey> setups;
  for (const auto query :
       {workload::QueryId::kIdentity, workload::QueryId::kSample,
        workload::QueryId::kProjection, workload::QueryId::kGrep}) {
    for (const auto engine : {queries::Engine::kFlink, queries::Engine::kSpark,
                              queries::Engine::kApex}) {
      for (const auto sdk : {queries::Sdk::kNative, queries::Sdk::kBeam}) {
        setups.push_back(harness::SetupKey{
            .engine = engine, .sdk = sdk, .query = query, .parallelism = 1});
      }
    }
  }

  const auto set = bench::run_setups(harness, setups);
  std::vector<SetupResult> results;
  for (const auto& key : setups) {
    if (!set.contains(key)) continue;
    SetupResult result;
    result.key = key;
    const auto times = set.get(key).execution_times();
    result.mean_seconds = mean(times);
    // Throughput is computed from the best run: the regression gate compares
    // records_per_sec against a committed baseline, and the minimum time is
    // the robust estimator for that — co-tenant noise only ever adds time.
    result.best_seconds =
        times.empty() ? 0.0 : *std::min_element(times.begin(), times.end());
    result.records_per_sec =
        result.best_seconds > 0.0
            ? static_cast<double>(config.records) / result.best_seconds
            : 0.0;
    results.push_back(result);
  }

  std::printf("\n%-18s %-10s %12s %14s\n", "setup", "query", "seconds",
              "records/sec");
  for (const auto& r : results) {
    std::printf("%-18s %-10s %12.4f %14.0f\n",
                harness::setup_label(r.key).c_str(),
                workload::query_info(r.key.query).name.c_str(), r.mean_seconds,
                r.records_per_sec);
  }

  // Slowdown factors (Beam / native) for the shape record.
  std::printf("\nslowdown factors (Beam mean / native mean):\n");
  struct Slowdown {
    std::string engine;
    std::string query;
    double factor;
  };
  std::vector<Slowdown> slowdowns;
  for (const auto query :
       {workload::QueryId::kIdentity, workload::QueryId::kSample,
        workload::QueryId::kProjection, workload::QueryId::kGrep}) {
    for (const auto engine : {queries::Engine::kFlink, queries::Engine::kSpark,
                              queries::Engine::kApex}) {
      const double factor = harness::slowdown_factor(set, engine, query);
      slowdowns.push_back(Slowdown{queries::engine_name(engine),
                                   workload::query_info(query).name, factor});
      std::printf("  %-6s %-10s %.2fx\n", queries::engine_name(engine),
                  workload::query_info(query).name.c_str(), factor);
    }
  }

  // STREAMSHIM_PROFILE=1: append the per-setup cost breakdown.
  const std::string breakdown =
      harness::render_profile_breakdown(bench::setup_profiles(set));
  if (!breakdown.empty()) std::printf("\n%s", breakdown.c_str());

  const char* path = "BENCH_dataplane.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"records\": %llu,\n  \"runs\": %d,\n",
               static_cast<unsigned long long>(config.records), config.runs);
  std::fprintf(out, "  \"broker_rtt_us\": %lld,\n",
               static_cast<long long>(config.broker_rtt_us));
  std::fprintf(out, "  \"setups\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"setup\": \"%s\", \"query\": \"%s\", "
                 "\"seconds\": %.6f, \"best_seconds\": %.6f, "
                 "\"records_per_sec\": %.1f}%s\n",
                 json_escape(harness::setup_label(r.key)).c_str(),
                 json_escape(workload::query_info(r.key.query).name).c_str(),
                 r.mean_seconds, r.best_seconds, r.records_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"slowdown_factors\": [\n");
  for (std::size_t i = 0; i < slowdowns.size(); ++i) {
    std::fprintf(out,
                 "    {\"engine\": \"%s\", \"query\": \"%s\", "
                 "\"factor\": %.4f}%s\n",
                 slowdowns[i].engine.c_str(), slowdowns[i].query.c_str(),
                 slowdowns[i].factor,
                 i + 1 < slowdowns.size() ? "," : "");
  }
  // Unified substrate metrics: every engine published its per-job snapshot
  // into the process-wide registry (prefixed flink./spark./apex.), so one
  // snapshot covers all 12 setups through one schema.
  std::fprintf(out, "  ],\n  \"metrics\": %s\n}\n",
               runtime::MetricsRegistry::global().snapshot().to_json().c_str());
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
  return 0;
}
