// Shared driver for the figure-reproduction benches: runs the requested
// setups through the BenchmarkHarness, prints progress, and renders the
// figure next to the paper's published numbers.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "harness/benchmark.hpp"
#include "harness/figures.hpp"
#include "harness/paper_data.hpp"
#include "harness/report.hpp"

namespace dsps::bench {

inline harness::HarnessConfig config_from_env() {
  auto config = harness::HarnessConfig::from_env();
  config.broker_rtt_us = env_i64("STREAMSHIM_RTT_US", config.broker_rtt_us);
  return config;
}

inline void print_scale(const harness::HarnessConfig& config) {
  std::printf(
      "scale: %llu records, %d runs/setup, seed %llu, broker RTT %lld us\n"
      "       (STREAMSHIM_RECORDS / STREAMSHIM_RUNS / STREAMSHIM_SEED / "
      "STREAMSHIM_RTT_US / STREAMSHIM_FULL=1 for paper scale)\n\n",
      static_cast<unsigned long long>(config.records), config.runs,
      static_cast<unsigned long long>(config.seed),
      static_cast<long long>(config.broker_rtt_us));
}

/// Per-setup profiler deltas in report-renderer form; rows are all-zero
/// (and the renderer returns "") unless the profiler was armed.
inline std::vector<std::pair<std::string, runtime::ProfileSnapshot>>
setup_profiles(const harness::MeasurementSet& set) {
  std::vector<std::pair<std::string, runtime::ProfileSnapshot>> per_setup;
  for (const auto& [label, measurements] : set.all()) {
    per_setup.emplace_back(label, measurements.profile);
  }
  return per_setup;
}

/// Runs every requested setup, reporting progress on stderr.
inline harness::MeasurementSet run_setups(
    harness::BenchmarkHarness& harness,
    const std::vector<harness::SetupKey>& setups) {
  harness::MeasurementSet set;
  for (const auto& key : setups) {
    std::fprintf(stderr, "  running %-14s %-10s ...", setup_label(key).c_str(),
                 workload::query_info(key.query).name.c_str());
    auto measurements = harness.run_setup(key);
    measurements.status().expect_ok();
    std::fprintf(stderr, " mean %.4fs\n",
                 mean(measurements.value().execution_times()));
    set.add(measurements.value());
  }
  return set;
}

/// Runs and prints one execution-time figure (Figs. 6-9 analogues).
inline int run_execution_time_figure(workload::QueryId query,
                                     const char* paper_figure) {
  const auto config = config_from_env();
  std::printf("=== %s (reproduction of the paper's %s) ===\n",
              ("Average Execution Times - " +
               workload::query_info(query).name + " Query")
                  .c_str(),
              paper_figure);
  print_scale(config);

  harness::BenchmarkHarness harness(config);
  const auto set = run_setups(harness, harness::figure_setups(query));
  const auto figure = harness::execution_time_figure(set, query);
  std::printf("%s\n", harness::render_figure(figure).c_str());
  std::printf("%s\n",
              harness::render_comparison(
                  figure, harness::paper::execution_times(query),
                  std::string(paper_figure) +
                      " (absolute seconds differ by construction — compare "
                      "the x-min ratio columns)")
                  .c_str());
  // STREAMSHIM_PROFILE=1: where the microseconds of each setup went.
  const std::string breakdown =
      harness::render_profile_breakdown(setup_profiles(set));
  if (!breakdown.empty()) std::printf("%s\n", breakdown.c_str());
  return 0;
}

}  // namespace dsps::bench
