// Reproduces Fig. 8: average execution times of the Projection query.
#include "bench_util.hpp"

int main() {
  return dsps::bench::run_execution_time_figure(
      dsps::workload::QueryId::kProjection, "Fig. 8");
}
