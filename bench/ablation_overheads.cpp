// Ablation micro-benchmarks for the design choices DESIGN.md calls out:
// each one isolates a mechanism behind the paper's slowdown factors so the
// cost structure can be inspected independently of the full benchmark.
//
//   * operator chaining on/off      (why native Flink is fast, Fig. 12/13)
//   * type-erased element boxing    (the Beam envelope per element)
//   * windowed-value serialization  (the Apex runner's per-hop cost)
//   * channel hop                   (unfused operators exchange via queues)
//   * producer batching x RTT       (the output-proportional Apex penalty)
#include <benchmark/benchmark.h>

#include <any>

#include "beam/coders.hpp"
#include "beam/element.hpp"
#include "common/queue.hpp"
#include "flink/environment.hpp"
#include "kafka/broker.hpp"
#include "kafka/producer.hpp"

namespace {

using namespace dsps;

// --- operator chaining -------------------------------------------------------

flink::SourceFactory int_source(int n) {
  class IntSource final : public flink::SourceFunction {
   public:
    explicit IntSource(int n) : n_(n) {}
    void run(flink::SourceContext& context) override {
      for (int i = 0; i < n_; ++i) {
        context.collect(flink::make_elem<int>(i));
      }
    }

   private:
    int n_;
  };
  return [n] { return std::make_unique<IntSource>(n); };
}

void run_flink_pipeline(bool chaining, int records) {
  flink::StreamExecutionEnvironment env;
  if (!chaining) env.disable_operator_chaining();
  env.add_source<int>(int_source(records))
      .map<int>([](const int& v) { return v + 1; })
      .filter([](const int& v) { return v % 2 == 0; })
      .map<int>([](const int& v) { return v * 3; })
      .for_each([](const int&) {});
  env.execute().status().expect_ok();
}

void BM_FlinkPipeline_ChainingOn(benchmark::State& state) {
  for (auto _ : state) {
    run_flink_pipeline(true, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlinkPipeline_ChainingOn)->Arg(20000);

void BM_FlinkPipeline_ChainingOff(benchmark::State& state) {
  for (auto _ : state) {
    run_flink_pipeline(false, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlinkPipeline_ChainingOff)->Arg(20000);

// --- element boxing ------------------------------------------------------------

void BM_PlainStringPass(benchmark::State& state) {
  const std::string value = "1234567\tsome aol search query\t2006-03-01";
  for (auto _ : state) {
    std::string copy = value;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PlainStringPass);

void BM_BeamElementBoxing(benchmark::State& state) {
  const std::string value = "1234567\tsome aol search query\t2006-03-01";
  for (auto _ : state) {
    // What every translated stage does: box into the windowed envelope,
    // copy the window set, unbox via any_cast.
    beam::Element element = beam::make_element<std::string>(value, 42);
    beam::Element downstream;
    downstream.value = element.value;
    downstream.windows = element.windows;
    downstream.pane = element.pane;
    const auto& out = beam::element_value<std::string>(downstream);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BeamElementBoxing);

// --- windowed-value serialization -------------------------------------------------

void BM_WindowedValueSerde(benchmark::State& state) {
  const beam::WindowedValueCoder coder(beam::CoderTraits<std::string>::of());
  beam::Element element = beam::make_element<std::string>(
      "1234567\tsome aol search query\t2006-03-01", 42);
  for (auto _ : state) {
    const Bytes bytes = coder.encode(element);
    beam::Element restored = coder.decode(bytes);
    benchmark::DoNotOptimize(restored.timestamp);
  }
}
BENCHMARK(BM_WindowedValueSerde);

// --- channel hop -------------------------------------------------------------------

void BM_ChannelHop(benchmark::State& state) {
  BoundedQueue<flink::Elem> queue(1024);
  const flink::Elem element = flink::make_elem<std::string>("payload");
  for (auto _ : state) {
    queue.push(element);
    auto popped = queue.pop();
    benchmark::DoNotOptimize(popped);
  }
}
BENCHMARK(BM_ChannelHop);

// --- producer batching x simulated network RTT ---------------------------------------

void producer_run(std::size_t batch_size, std::int64_t rtt_us, int records) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.set_rtt_us(rtt_us);
  kafka::Producer producer(
      broker,
      kafka::ProducerConfig{.batch_size = batch_size, .linger_us = 0});
  for (int i = 0; i < records; ++i) {
    producer.send("t", 0, kafka::ProducerRecord{.value = "v"}).expect_ok();
  }
  producer.close().expect_ok();
}

void BM_ProducerBatchingUnderRtt(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    producer_run(batch, /*rtt_us=*/25, /*records=*/2000);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel("batch=" + std::to_string(batch) + " rtt=25us");
}
// batch=1 is the Beam-on-Apex writer; batch=500 is the native sink.
BENCHMARK(BM_ProducerBatchingUnderRtt)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
