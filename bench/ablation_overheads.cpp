// Ablation micro-benchmarks for the design choices DESIGN.md calls out:
// each one isolates a mechanism behind the paper's slowdown factors so the
// cost structure can be inspected independently of the full benchmark.
//
//   * operator chaining on/off      (why native Flink is fast, Fig. 12/13)
//   * type-erased element boxing    (the Beam envelope per element)
//   * windowed-value serialization  (the Apex runner's per-hop cost)
//   * channel hop                   (unfused operators exchange via queues)
//   * producer batching x RTT       (the output-proportional Apex penalty)
// After the micro-benchmarks, main() runs the fusion ablation: for every
// query x engine it measures native, Beam unfused, and Beam fused
// (STREAMSHIM_FUSE_STAGES semantics), and reports how much of each paper
// slowdown factor the fusion pass recovers. The sweep is merged into
// BENCH_dataplane.json as a "fusion" section.
//
// The async-sinks ablation follows the same shape: every query x engine,
// native and Beam, sync vs async sink producers (STREAMSHIM_ASYNC_SINKS
// semantics), merged as an "async_sinks" section. STREAMSHIM_SWEEP selects
// which harness sweeps run (all | fusion | async); the Google-benchmark
// micro rows always run and obey --benchmark_filter.
#include <benchmark/benchmark.h>

#include <any>
#include <string>
#include <vector>

#include "beam/coders.hpp"
#include "beam/element.hpp"
#include "bench_util.hpp"
#include "common/queue.hpp"
#include "flink/environment.hpp"
#include "kafka/broker.hpp"
#include "kafka/producer.hpp"
#include "runtime/metrics.hpp"

namespace {

using namespace dsps;

// --- operator chaining -------------------------------------------------------

flink::SourceFactory int_source(int n) {
  class IntSource final : public flink::SourceFunction {
   public:
    explicit IntSource(int n) : n_(n) {}
    void run(flink::SourceContext& context) override {
      for (int i = 0; i < n_; ++i) {
        context.collect(flink::make_elem<int>(i));
      }
    }

   private:
    int n_;
  };
  return [n] { return std::make_unique<IntSource>(n); };
}

void run_flink_pipeline(bool chaining, int records) {
  flink::StreamExecutionEnvironment env;
  if (!chaining) env.disable_operator_chaining();
  env.add_source<int>(int_source(records))
      .map<int>([](const int& v) { return v + 1; })
      .filter([](const int& v) { return v % 2 == 0; })
      .map<int>([](const int& v) { return v * 3; })
      .for_each([](const int&) {});
  env.execute().status().expect_ok();
}

void BM_FlinkPipeline_ChainingOn(benchmark::State& state) {
  for (auto _ : state) {
    run_flink_pipeline(true, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlinkPipeline_ChainingOn)->Arg(20000);

void BM_FlinkPipeline_ChainingOff(benchmark::State& state) {
  for (auto _ : state) {
    run_flink_pipeline(false, static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlinkPipeline_ChainingOff)->Arg(20000);

// --- element boxing ------------------------------------------------------------

void BM_PlainStringPass(benchmark::State& state) {
  const std::string value = "1234567\tsome aol search query\t2006-03-01";
  for (auto _ : state) {
    std::string copy = value;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_PlainStringPass);

void BM_BeamElementBoxing(benchmark::State& state) {
  const std::string value = "1234567\tsome aol search query\t2006-03-01";
  for (auto _ : state) {
    // What every translated stage does: box into the windowed envelope,
    // copy the window set, unbox via any_cast.
    beam::Element element = beam::make_element<std::string>(value, 42);
    beam::Element downstream;
    downstream.value = element.value;
    downstream.windows = element.windows;
    downstream.pane = element.pane;
    const auto& out = beam::element_value<std::string>(downstream);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BeamElementBoxing);

// --- windowed-value serialization -------------------------------------------------

void BM_WindowedValueSerde(benchmark::State& state) {
  const beam::WindowedValueCoder coder(beam::CoderTraits<std::string>::of());
  beam::Element element = beam::make_element<std::string>(
      "1234567\tsome aol search query\t2006-03-01", 42);
  for (auto _ : state) {
    const Bytes bytes = coder.encode(element);
    beam::Element restored = coder.decode(bytes);
    benchmark::DoNotOptimize(restored.timestamp);
  }
}
BENCHMARK(BM_WindowedValueSerde);

// --- channel hop -------------------------------------------------------------------

void BM_ChannelHop(benchmark::State& state) {
  BoundedQueue<flink::Elem> queue(1024);
  const flink::Elem element = flink::make_elem<std::string>("payload");
  for (auto _ : state) {
    queue.push(element);
    auto popped = queue.pop();
    benchmark::DoNotOptimize(popped);
  }
}
BENCHMARK(BM_ChannelHop);

// --- producer batching x simulated network RTT ---------------------------------------

void producer_run(std::size_t batch_size, std::int64_t rtt_us, int records) {
  kafka::Broker broker;
  broker.create_topic("t", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.set_rtt_us(rtt_us);
  kafka::Producer producer(
      broker,
      kafka::ProducerConfig{.batch_size = batch_size, .linger_us = 0});
  for (int i = 0; i < records; ++i) {
    producer.send("t", 0, kafka::ProducerRecord{.value = "v"}).expect_ok();
  }
  producer.close().expect_ok();
}

void BM_ProducerBatchingUnderRtt(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    producer_run(batch, /*rtt_us=*/25, /*records=*/2000);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel("batch=" + std::to_string(batch) + " rtt=25us");
}
// batch=1 is the Beam-on-Apex writer; batch=500 is the native sink.
BENCHMARK(BM_ProducerBatchingUnderRtt)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

// --- fusion sweep: how much of the abstraction penalty is recoverable --------

struct FusionRow {
  std::string engine;
  std::string query;
  double native_seconds = 0.0;
  double unfused_seconds = 0.0;
  double fused_seconds = 0.0;
  double unfused_factor = 0.0;
  double fused_factor = 0.0;
  // Fraction of the *excess* over native that fusion removed:
  //   (unfused_factor - fused_factor) / (unfused_factor - 1), in [0, 1].
  // 1.0 would mean fusion makes Beam as fast as native; what remains is the
  // structural cost of the abstraction (boxing, coders at real shuffles).
  double recovered_fraction = 0.0;
};

double setup_mean(const harness::MeasurementSet& set,
                  const harness::SetupKey& key) {
  return set.contains(key) ? mean(set.get(key).execution_times()) : 0.0;
}

std::vector<FusionRow> run_fusion_sweep(const harness::HarnessConfig& base) {
  const std::vector<workload::QueryId> sweep_queries = {
      workload::QueryId::kIdentity, workload::QueryId::kSample,
      workload::QueryId::kProjection, workload::QueryId::kGrep};
  const std::vector<queries::Engine> engines = {
      queries::Engine::kFlink, queries::Engine::kSpark, queries::Engine::kApex};

  std::vector<harness::SetupKey> unfused_setups;
  std::vector<harness::SetupKey> fused_setups;
  for (const auto query : sweep_queries) {
    for (const auto engine : engines) {
      unfused_setups.push_back(harness::SetupKey{
          .engine = engine, .sdk = queries::Sdk::kNative, .query = query,
          .parallelism = 1});
      unfused_setups.push_back(harness::SetupKey{
          .engine = engine, .sdk = queries::Sdk::kBeam, .query = query,
          .parallelism = 1});
      fused_setups.push_back(harness::SetupKey{
          .engine = engine, .sdk = queries::Sdk::kBeam, .query = query,
          .parallelism = 1});
    }
  }

  // Two harnesses over identically seeded input: the only difference is
  // PipelineOptions.fuse_stages on the Beam path.
  harness::HarnessConfig unfused_config = base;
  unfused_config.fuse_stages = false;
  harness::HarnessConfig fused_config = base;
  fused_config.fuse_stages = true;

  std::fprintf(stderr, "fusion sweep: unfused + native setups\n");
  harness::BenchmarkHarness unfused_harness(unfused_config);
  const auto unfused_set = bench::run_setups(unfused_harness, unfused_setups);
  std::fprintf(stderr, "fusion sweep: fused setups\n");
  harness::BenchmarkHarness fused_harness(fused_config);
  const auto fused_set = bench::run_setups(fused_harness, fused_setups);

  std::vector<FusionRow> rows;
  for (const auto query : sweep_queries) {
    for (const auto engine : engines) {
      FusionRow row;
      row.engine = queries::engine_name(engine);
      row.query = workload::query_info(query).name;
      row.native_seconds = setup_mean(
          unfused_set, harness::SetupKey{.engine = engine,
                                         .sdk = queries::Sdk::kNative,
                                         .query = query, .parallelism = 1});
      row.unfused_seconds = setup_mean(
          unfused_set, harness::SetupKey{.engine = engine,
                                         .sdk = queries::Sdk::kBeam,
                                         .query = query, .parallelism = 1});
      row.fused_seconds = setup_mean(
          fused_set, harness::SetupKey{.engine = engine,
                                       .sdk = queries::Sdk::kBeam,
                                       .query = query, .parallelism = 1});
      if (row.native_seconds > 0.0) {
        row.unfused_factor = row.unfused_seconds / row.native_seconds;
        row.fused_factor = row.fused_seconds / row.native_seconds;
      }
      if (row.unfused_factor > 1.0) {
        row.recovered_fraction = (row.unfused_factor - row.fused_factor) /
                                 (row.unfused_factor - 1.0);
        if (row.recovered_fraction < 0.0) row.recovered_fraction = 0.0;
        if (row.recovered_fraction > 1.0) row.recovered_fraction = 1.0;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

// --- async-sinks sweep: how much of the sink-path penalty is recoverable -----

struct AsyncRow {
  std::string engine;
  std::string query;
  double native_sync_seconds = 0.0;
  double native_async_seconds = 0.0;
  double beam_sync_seconds = 0.0;
  double beam_async_seconds = 0.0;
  // Slowdown factors against *sync native* — the paper's baseline — so the
  // async columns read as "what the abstraction costs once sinks pipeline".
  double beam_sync_factor = 0.0;
  double beam_async_factor = 0.0;
  // Per-path speedups from flipping only the sink mode.
  double native_speedup = 0.0;
  double beam_speedup = 0.0;
  // Fraction of the Beam excess over sync native that async sinks removed:
  //   (beam_sync_factor - beam_async_factor) / (beam_sync_factor - 1),
  // clamped to [0, 1]. High values on Apex confirm the per-record writer
  // flush — not the Beam envelope — dominates that runner's penalty.
  double recovered_fraction = 0.0;
};

std::vector<AsyncRow> run_async_sweep(const harness::HarnessConfig& base) {
  const std::vector<workload::QueryId> sweep_queries = {
      workload::QueryId::kIdentity, workload::QueryId::kSample,
      workload::QueryId::kProjection, workload::QueryId::kGrep};
  const std::vector<queries::Engine> engines = {
      queries::Engine::kFlink, queries::Engine::kSpark, queries::Engine::kApex};

  std::vector<harness::SetupKey> setups;
  for (const auto query : sweep_queries) {
    for (const auto engine : engines) {
      setups.push_back(harness::SetupKey{
          .engine = engine, .sdk = queries::Sdk::kNative, .query = query,
          .parallelism = 1});
      setups.push_back(harness::SetupKey{
          .engine = engine, .sdk = queries::Sdk::kBeam, .query = query,
          .parallelism = 1});
    }
  }

  // Two harnesses over identically seeded input: the only difference is
  // HarnessConfig.async_sinks (-> QueryContext.async_sinks -> every sink).
  harness::HarnessConfig sync_config = base;
  sync_config.async_sinks = false;
  harness::HarnessConfig async_config = base;
  async_config.async_sinks = true;

  std::fprintf(stderr, "async sweep: sync sinks (paper baseline)\n");
  harness::BenchmarkHarness sync_harness(sync_config);
  const auto sync_set = bench::run_setups(sync_harness, setups);
  std::fprintf(stderr, "async sweep: async pipelined sinks\n");
  harness::BenchmarkHarness async_harness(async_config);
  const auto async_set = bench::run_setups(async_harness, setups);

  std::vector<AsyncRow> rows;
  for (const auto query : sweep_queries) {
    for (const auto engine : engines) {
      const harness::SetupKey native_key{.engine = engine,
                                         .sdk = queries::Sdk::kNative,
                                         .query = query, .parallelism = 1};
      const harness::SetupKey beam_key{.engine = engine,
                                       .sdk = queries::Sdk::kBeam,
                                       .query = query, .parallelism = 1};
      AsyncRow row;
      row.engine = queries::engine_name(engine);
      row.query = workload::query_info(query).name;
      row.native_sync_seconds = setup_mean(sync_set, native_key);
      row.native_async_seconds = setup_mean(async_set, native_key);
      row.beam_sync_seconds = setup_mean(sync_set, beam_key);
      row.beam_async_seconds = setup_mean(async_set, beam_key);
      if (row.native_sync_seconds > 0.0) {
        row.beam_sync_factor = row.beam_sync_seconds / row.native_sync_seconds;
        row.beam_async_factor =
            row.beam_async_seconds / row.native_sync_seconds;
      }
      if (row.native_async_seconds > 0.0) {
        row.native_speedup = row.native_sync_seconds / row.native_async_seconds;
      }
      if (row.beam_async_seconds > 0.0) {
        row.beam_speedup = row.beam_sync_seconds / row.beam_async_seconds;
      }
      if (row.beam_sync_factor > 1.0) {
        row.recovered_fraction =
            (row.beam_sync_factor - row.beam_async_factor) /
            (row.beam_sync_factor - 1.0);
        if (row.recovered_fraction < 0.0) row.recovered_fraction = 0.0;
        if (row.recovered_fraction > 1.0) row.recovered_fraction = 1.0;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

/// Merges `section` (already formatted as `  "key": [...]\n`) into
/// BENCH_dataplane.json, replacing a previous section with the same key.
bool merge_section_into_dataplane(const std::string& key,
                                  const std::string& section) {
  const char* path = "BENCH_dataplane.json";
  std::string existing;
  if (std::FILE* in = std::fopen(path, "r")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  const std::size_t prior = existing.find("\"" + key + "\"");
  if (prior != std::string::npos) {
    const std::size_t comma = existing.rfind(',', prior);
    existing = comma != std::string::npos
                   ? existing.substr(0, comma) + "\n}\n"
                   : std::string();
  }
  const std::size_t close = existing.find_last_of('}');
  std::string merged;
  if (close != std::string::npos) {
    merged = existing.substr(0, close);
    while (!merged.empty() && (merged.back() == '\n' || merged.back() == ' ')) {
      merged.pop_back();
    }
    merged += ",\n" + section + "}\n";
  } else {
    merged = "{\n" + section + "}\n";
  }
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(merged.data(), 1, merged.size(), out);
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto config = bench::config_from_env();
  const std::string sweep = env_string("STREAMSHIM_SWEEP", "all");
  const bool do_fusion = sweep == "all" || sweep == "fusion";
  const bool do_async = sweep == "all" || sweep == "async";
  if (!do_fusion && !do_async) {
    std::fprintf(stderr, "unknown STREAMSHIM_SWEEP=%s (all|fusion|async)\n",
                 sweep.c_str());
    return 1;
  }

  if (do_fusion) {
    std::printf(
        "\n=== Fusion ablation (native vs Beam unfused vs fused) ===\n");
    bench::print_scale(config);
    const auto rows = run_fusion_sweep(config);

    std::printf("%-6s %-10s %10s %11s %9s %9s %7s %10s\n", "engine", "query",
                "native_s", "unfused_s", "fused_s", "unfused", "fused",
                "recovered");
    for (const auto& row : rows) {
      std::printf("%-6s %-10s %10.4f %11.4f %9.4f %8.2fx %6.2fx %9.0f%%\n",
                  row.engine.c_str(), row.query.c_str(), row.native_seconds,
                  row.unfused_seconds, row.fused_seconds, row.unfused_factor,
                  row.fused_factor, row.recovered_fraction * 100.0);
    }

    std::string section = "  \"fusion\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      char line[512];
      std::snprintf(line, sizeof(line),
                    "    {\"engine\": \"%s\", \"query\": \"%s\", "
                    "\"native_seconds\": %.6f, \"unfused_seconds\": %.6f, "
                    "\"fused_seconds\": %.6f, \"unfused_factor\": %.4f, "
                    "\"fused_factor\": %.4f, \"recovered_fraction\": %.4f}%s\n",
                    row.engine.c_str(), row.query.c_str(), row.native_seconds,
                    row.unfused_seconds, row.fused_seconds, row.unfused_factor,
                    row.fused_factor, row.recovered_fraction,
                    i + 1 < rows.size() ? "," : "");
      section += line;
    }
    section += "  ]\n";
    if (!merge_section_into_dataplane("fusion", section)) return 1;
    std::printf("\nwrote fusion section into BENCH_dataplane.json\n");
  }

  if (do_async) {
    std::printf("\n=== Async-sinks ablation (sync vs pipelined sinks) ===\n");
    bench::print_scale(config);
    const auto rows = run_async_sweep(config);

    std::printf("%-6s %-10s %9s %9s %9s %9s %8s %8s %8s %8s %10s\n", "engine",
                "query", "nat_sync", "nat_asyn", "beam_syn", "beam_asy",
                "syncfac", "asynfac", "nat_spd", "beam_spd", "recovered");
    for (const auto& row : rows) {
      std::printf(
          "%-6s %-10s %9.4f %9.4f %9.4f %9.4f %7.2fx %7.2fx %7.2fx %7.2fx "
          "%9.0f%%\n",
          row.engine.c_str(), row.query.c_str(), row.native_sync_seconds,
          row.native_async_seconds, row.beam_sync_seconds,
          row.beam_async_seconds, row.beam_sync_factor, row.beam_async_factor,
          row.native_speedup, row.beam_speedup,
          row.recovered_fraction * 100.0);
    }
    const std::string pipeline_block = harness::render_producer_pipeline(
        runtime::MetricsRegistry::global().snapshot());
    if (!pipeline_block.empty()) std::printf("\n%s", pipeline_block.c_str());

    std::string section = "  \"async_sinks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      char line[640];
      std::snprintf(
          line, sizeof(line),
          "    {\"engine\": \"%s\", \"query\": \"%s\", \"records\": %llu, "
          "\"native_sync_seconds\": %.6f, \"native_async_seconds\": %.6f, "
          "\"beam_sync_seconds\": %.6f, \"beam_async_seconds\": %.6f, "
          "\"beam_sync_factor\": %.4f, \"beam_async_factor\": %.4f, "
          "\"native_speedup\": %.4f, \"beam_speedup\": %.4f, "
          "\"recovered_fraction\": %.4f}%s\n",
          row.engine.c_str(), row.query.c_str(),
          static_cast<unsigned long long>(config.records),
          row.native_sync_seconds, row.native_async_seconds,
          row.beam_sync_seconds, row.beam_async_seconds, row.beam_sync_factor,
          row.beam_async_factor, row.native_speedup, row.beam_speedup,
          row.recovered_fraction, i + 1 < rows.size() ? "," : "");
      section += line;
    }
    section += "  ]\n";
    if (!merge_section_into_dataplane("async_sinks", section)) return 1;
    std::printf("\nwrote async_sinks section into BENCH_dataplane.json\n");
  }
  return 0;
}
