// Quickstart: write one Beam-sim pipeline, run it on three different
// engines without changing a line of pipeline code — the abstraction
// benefit the paper weighs against its measured cost.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/apex_runner.hpp"
#include "beam/runners/direct_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"

using namespace dsps;

namespace {

/// Builds the pipeline once: read -> keep lines mentioning streams ->
/// uppercase the first word -> write.
void build(beam::Pipeline& pipeline, kafka::Broker& broker) {
  pipeline
      .apply(beam::KafkaIO::read(broker, beam::KafkaReadConfig{.topic = "in"}))
      .apply(beam::KafkaIO::without_metadata())
      .apply(beam::Values<runtime::Payload>::create<runtime::Payload>())
      .apply(beam::Filter<runtime::Payload>::by(
          [](const runtime::Payload& line) {
            return line.view().find("stream") != std::string_view::npos;
          },
          "KeepStreamy"))
      .apply(beam::MapElements<runtime::Payload, std::string>::via(
          [](const runtime::Payload& line) { return "match: " + line.str(); },
          "Tag"))
      .apply(
          beam::KafkaIO::write(broker, beam::KafkaWriteConfig{.topic = "out"}));
}

}  // namespace

int main() {
  const std::vector<std::string> lines = {
      "batch processing is one size fits all",
      "stream processing frameworks multiply",
      "an abstraction layer for data stream processing",
      "object relational mapping is the analogy",
  };

  const struct {
    const char* name;
    std::function<std::unique_ptr<beam::PipelineRunner>()> make;
  } runners[] = {
      {"DirectRunner", [] { return std::make_unique<beam::DirectRunner>(); }},
      {"FlinkRunner (Flink-sim)",
       [] { return std::make_unique<beam::FlinkRunner>(); }},
      {"SparkRunner (Spark-sim)",
       [] { return std::make_unique<beam::SparkRunner>(); }},
      {"ApexRunner (Apex-sim on YARN-sim)",
       [] { return std::make_unique<beam::ApexRunner>(); }},
  };

  for (const auto& entry : runners) {
    // Fresh broker per engine, loaded with the same input.
    kafka::Broker broker;
    broker.create_topic("in", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    broker.create_topic("out", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    for (const auto& line : lines) {
      broker.append({"in", 0}, kafka::ProducerRecord{.value = line}, false)
          .status()
          .expect_ok();
    }

    beam::Pipeline pipeline;
    build(pipeline, broker);  // the SAME pipeline code for every engine
    auto runner = entry.make();
    auto result = pipeline.run(*runner);
    result.status().expect_ok();

    std::printf("--- %s (%.2f ms) ---\n", entry.name,
                result.value().duration_ms);
    std::vector<kafka::StoredRecord> out;
    broker.fetch({"out", 0}, 0, 100, out).status().expect_ok();
    for (const auto& record : out) {
      std::printf("  %s\n", record.value.str().c_str());
    }
  }
  std::printf("\nSame pipeline, four runtimes — that is the substitution-"
              "cost argument of the paper's introduction.\n");
  return 0;
}
