// StreamSQL extension demo: declarative queries compiled onto the Beam-sim
// layer and executed on an engine of your choice — the "SQL road" to
// portability the paper's related work (§IV: CQL, Calcite, KSQL) surveys.
//
//   $ ./examples/streamsql                       # demo queries
//   $ ./examples/streamsql "SELECT COLUMN(1) FROM input
//        WHERE CONTAINS('hotel')"               # your own query
#include <cstdio>

#include "beam/runners/flink_runner.hpp"
#include "beam/streamsql.hpp"
#include "workload/aol_generator.hpp"
#include "workload/data_sender.hpp"

using namespace dsps;

int main(int argc, char** argv) {
  kafka::Broker broker;
  workload::create_benchmark_topic(broker, "input").expect_ok();
  workload::AolGenerator generator({.record_count = 2000, .seed = 42});
  workload::DataSender sender(broker,
                              workload::DataSenderConfig{.topic = "input"});
  sender.send_generated(generator).status().expect_ok();

  std::vector<std::string> queries;
  if (argc > 1) {
    queries.emplace_back(argv[1]);
  } else {
    queries = {
        "SELECT * FROM input WHERE CONTAINS('test')",
        "SELECT COLUMN(0) FROM input SAMPLE 1%",
        "SELECT COLUMN(1) FROM input WHERE CONTAINS('hotel') SAMPLE 50%",
    };
  }

  for (const auto& text : queries) {
    auto parsed = beam::sql::parse(text);
    if (!parsed.is_ok()) {
      std::printf("parse error for \"%s\": %s\n", text.c_str(),
                  parsed.status().to_string().c_str());
      continue;
    }
    std::printf("> %s\n", beam::sql::to_sql(parsed.value()).c_str());

    (void)broker.delete_topic("output");
    broker.create_topic("output", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    beam::Pipeline pipeline;
    beam::sql::compile(parsed.value(), broker, pipeline).expect_ok();
    beam::FlinkRunner runner;  // any runner works here
    pipeline.run(runner).status().expect_ok();

    std::vector<kafka::StoredRecord> out;
    broker.fetch({"output", 0}, 0, 100000, out).status().expect_ok();
    std::printf("  %zu rows", out.size());
    for (std::size_t i = 0; i < out.size() && i < 5; ++i) {
      std::printf("\n    %s", out[i].value.str().c_str());
    }
    if (out.size() > 5) std::printf("\n    ...");
    std::printf("\n\n");
  }
  return 0;
}
