// Native Spark-sim API tour: a live micro-batch topology — records arrive
// while the batch generator ticks, and per-batch reduce_by_key aggregates
// flow out continuously. Shows the D-Stream model (a stream as a sequence
// of RDDs) and the batch history.
//
//   $ ./examples/spark_microbatch
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "spark/kafka_io.hpp"
#include "spark/streaming_context.hpp"

using namespace dsps;

int main() {
  kafka::Broker broker;
  broker.create_topic("events", kafka::TopicConfig{.partitions = 1})
      .expect_ok();

  spark::StreamingContext ssc(
      spark::SparkConf{.app_name = "microbatch-demo",
                       .default_parallelism = 2},
      /*batch_interval_ms=*/25);

  // events "<region>:<amount>" -> per-batch revenue per region.
  auto per_region = reduce_by_key<std::string, int>(
      ssc.kafka_direct_stream(broker, "events")
          .map<std::pair<std::string, int>>([](const std::string& event) {
            const auto colon = event.find(':');
            return std::make_pair(event.substr(0, colon),
                                  std::stoi(event.substr(colon + 1)));
          }),
      [](const int& a, const int& b) { return a + b; },
      /*partitions=*/2);

  auto print_mutex = std::make_shared<std::mutex>();
  per_region.foreach_rdd(
      [print_mutex](spark::SparkContext& sc,
                    const spark::RDDPtr<std::pair<std::string, int>>& rdd) {
        const auto totals = sc.collect(rdd);
        if (totals.empty()) return;
        std::lock_guard lock(*print_mutex);
        std::printf("batch:");
        for (const auto& [region, revenue] : totals) {
          std::printf("  %s=%d", region.c_str(), revenue);
        }
        std::printf("\n");
      });

  ssc.start().expect_ok();

  // Feed events while the generator runs.
  const char* regions[] = {"emea", "apac", "amer"};
  kafka::Producer producer(broker, kafka::ProducerConfig{.batch_size = 1});
  for (int i = 0; i < 60; ++i) {
    producer
        .send("events", 0,
              kafka::ProducerRecord{.value = std::string(regions[i % 3]) +
                                             ":" + std::to_string(10 + i)})
        .expect_ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  producer.close().expect_ok();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ssc.stop();

  std::printf("\n=== batch history ===\n");
  for (const auto& batch : ssc.batch_history()) {
    if (batch.input_records == 0) continue;
    std::printf("  batch %lld: %zu records, processed in %.2f ms\n",
                static_cast<long long>(batch.id), batch.input_records,
                batch.processing_ms);
  }
  return 0;
}
