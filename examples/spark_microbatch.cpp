// Native Spark-sim API tour: a live micro-batch topology — records arrive
// while the batch generator ticks, and per-batch reduce_by_key aggregates
// flow out continuously. Shows the D-Stream model (a stream as a sequence
// of RDDs) and the batch history.
//
//   $ ./examples/spark_microbatch
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "spark/kafka_io.hpp"
#include "spark/streaming_context.hpp"

using namespace dsps;

int main() {
  kafka::Broker broker;
  broker.create_topic("events", kafka::TopicConfig{.partitions = 1})
      .expect_ok();

  spark::StreamingContext ssc(
      spark::SparkConf{.app_name = "microbatch-demo",
                       .default_parallelism = 2},
      /*batch_interval_ms=*/25);

  // events "<region>:<amount>" -> per-batch revenue per region.
  auto per_region = spark::reduce_by_key<std::string, int>(
      ssc.kafka_direct_stream(broker, "events")
          .map<std::pair<std::string, int>>(
              [](const kafka::Payload& event) {
                const auto line = event.view();
                const auto colon = line.find(':');
                return std::make_pair(
                    std::string(line.substr(0, colon)),
                    std::stoi(std::string(line.substr(colon + 1))));
              }),
      [](const int& a, const int& b) { return a + b; },
      /*partitions=*/2);

  auto print_mutex = std::make_shared<std::mutex>();
  per_region.foreach_rdd(
      [print_mutex](spark::SparkContext& sc,
                    const spark::RDDPtr<std::pair<std::string, int>>& rdd) {
        const auto totals = sc.collect(rdd);
        if (totals.empty()) return;
        std::lock_guard lock(*print_mutex);
        std::printf("batch:");
        for (const auto& [region, revenue] : totals) {
          std::printf("  %s=%d", region.c_str(), revenue);
        }
        std::printf("\n");
      });

  ssc.start().expect_ok();

  // Feed events while the generator runs.
  const char* regions[] = {"emea", "apac", "amer"};
  kafka::Producer producer(broker, kafka::ProducerConfig{.batch_size = 1});
  for (int i = 0; i < 60; ++i) {
    producer
        .send("events", 0,
              kafka::ProducerRecord{.value = std::string(regions[i % 3]) +
                                             ":" + std::to_string(10 + i)})
        .expect_ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  producer.close().expect_ok();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ssc.stop();

  const runtime::MetricsSnapshot snapshot = ssc.metrics();
  std::printf("\n=== streaming metrics ===\n");
  std::printf("  batches run:    %llu\n",
              static_cast<unsigned long long>(snapshot.counter("batch.count")));
  std::printf("  input records:  %llu\n",
              static_cast<unsigned long long>(
                  snapshot.counter("input.records")));
  const auto duration = snapshot.histograms.find("batch.duration_us");
  if (duration != snapshot.histograms.end()) {
    std::printf("  batch time:     %.2f ms total\n",
                static_cast<double>(duration->second.sum_us) / 1000.0);
  }
  return 0;
}
