// Native Flink-sim API tour: a streaming word count over search queries —
// flat_map into words, key_by word, continuous keyed reduce — plus the
// execution plan and the chaining effect.
//
//   $ ./examples/flink_wordcount
#include <cstdio>
#include <map>
#include <mutex>

#include "common/strings.hpp"
#include "flink/environment.hpp"

using namespace dsps;

namespace {

struct WordCount {
  std::string word;
  int count = 1;
};

flink::SourceFactory query_source() {
  class QuerySource final : public flink::SourceFunction {
   public:
    void open(const flink::RuntimeContext& context) override {
      // Parallel sources shard their input: subtask i emits every
      // parallelism-th record (otherwise each subtask would emit all of
      // them and every count would be multiplied).
      shard_ = context.subtask_index;
      stride_ = context.parallelism;
    }
    void run(flink::SourceContext& context) override {
      const char* queries[] = {
          "cheap flight tickets", "cheap hotel", "flight status",
          "hotel near beach",     "beach weather", "cheap beach hotel",
      };
      for (std::size_t i = static_cast<std::size_t>(shard_);
           i < std::size(queries); i += static_cast<std::size_t>(stride_)) {
        context.collect(flink::make_elem<std::string>(queries[i]));
      }
    }

   private:
    int shard_ = 0;
    int stride_ = 1;
  };
  return [] { return std::make_unique<QuerySource>(); };
}

}  // namespace

int main() {
  flink::StreamExecutionEnvironment env;
  env.set_parallelism(2);

  auto final_counts = std::make_shared<std::map<std::string, int>>();
  auto mutex = std::make_shared<std::mutex>();

  env.add_source<std::string>(query_source(), "Search Queries")
      .flat_map<WordCount>(
          [](const std::string& query,
             const std::function<void(WordCount)>& out) {
            for (const auto& word : split(query, ' ')) {
              out(WordCount{word, 1});
            }
          },
          "Tokenize")
      .key_by<std::string>([](const WordCount& wc) { return wc.word; })
      .reduce(
          [](const WordCount& a, const WordCount& b) {
            return WordCount{a.word, a.count + b.count};
          },
          "Count")
      .for_each(
          [final_counts, mutex](const WordCount& wc) {
            std::lock_guard lock(*mutex);
            (*final_counts)[wc.word] = wc.count;  // last update wins
          },
          "Collect");

  std::printf("=== execution plan (keyed exchange breaks the chain) ===\n%s\n",
              env.execution_plan().c_str());

  auto result = env.execute("wordcount");
  result.status().expect_ok();

  std::printf("=== word counts ===\n");
  for (const auto& [word, count] : *final_counts) {
    std::printf("  %-10s %d\n", word.c_str(), count);
  }
  std::printf("\njob ran in %.2f ms across %zu job vertices\n",
              result.value().duration_ms,
              result.value().vertex_names.size());
  return 0;
}
