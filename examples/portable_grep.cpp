// The paper's experiment in miniature: the StreamBench Grep query over an
// AOL-like log, implemented once with the Beam-sim API and once with each
// native engine API, timed with the broker-timestamp methodology.
//
//   $ ./examples/portable_grep            # 10k records by default
//   $ STREAMSHIM_RECORDS=100000 ./examples/portable_grep
#include <cstdio>

#include "harness/benchmark.hpp"
#include "harness/figures.hpp"

using namespace dsps;

int main() {
  harness::HarnessConfig config = harness::HarnessConfig::from_env();
  config.records = static_cast<std::uint64_t>(
      env_i64("STREAMSHIM_RECORDS", 10'000));
  config.runs = 1;

  harness::BenchmarkHarness bench(config);
  std::printf("Grep query (\"%s\") over %llu synthetic AOL records; "
              "expected matches: %llu\n\n",
              workload::kGrepNeedle,
              static_cast<unsigned long long>(config.records),
              static_cast<unsigned long long>(bench.expected_grep_matches()));

  std::printf("%-16s %12s %10s\n", "setup", "exec time", "outputs");
  for (const auto engine :
       {queries::Engine::kFlink, queries::Engine::kSpark,
        queries::Engine::kApex}) {
    for (const auto sdk : {queries::Sdk::kNative, queries::Sdk::kBeam}) {
      const harness::SetupKey key{engine, sdk, workload::QueryId::kGrep, 1};
      auto measurement = bench.run_once(key);
      measurement.status().expect_ok();
      std::printf("%-16s %10.4f s %10lld\n",
                  harness::setup_label(key).c_str(),
                  measurement.value().execution_seconds,
                  static_cast<long long>(
                      measurement.value().output_records));
    }
  }
  std::printf(
      "\nThe Beam rows run ONE query implementation through three different\n"
      "runners; the native rows are three separate per-engine programs.\n"
      "Execution time is last-output-append minus first-output-append in\n"
      "broker time (the paper's §III-A3 methodology).\n");
  return 0;
}
