// CLI utility: run any single benchmark setup and print its measurement —
// handy for ad-hoc exploration beyond the fixed figure benches.
//
//   $ ./examples/run_setup <flink|spark|apex> <native|beam>
//        <identity|sample|projection|grep> [parallelism] [records] [runs]
//   $ ./examples/run_setup apex beam identity 2 50000 5
#include <cstdio>
#include <cstring>

#include "common/stats.hpp"
#include "harness/benchmark.hpp"

using namespace dsps;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <flink|spark|apex> <native|beam> "
               "<identity|sample|projection|grep> [parallelism=1] "
               "[records=20000] [runs=3]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage(argv[0]);

  queries::Engine engine;
  if (std::strcmp(argv[1], "flink") == 0) {
    engine = queries::Engine::kFlink;
  } else if (std::strcmp(argv[1], "spark") == 0) {
    engine = queries::Engine::kSpark;
  } else if (std::strcmp(argv[1], "apex") == 0) {
    engine = queries::Engine::kApex;
  } else {
    return usage(argv[0]);
  }

  queries::Sdk sdk;
  if (std::strcmp(argv[2], "native") == 0) {
    sdk = queries::Sdk::kNative;
  } else if (std::strcmp(argv[2], "beam") == 0) {
    sdk = queries::Sdk::kBeam;
  } else {
    return usage(argv[0]);
  }

  workload::QueryId query;
  if (std::strcmp(argv[3], "identity") == 0) {
    query = workload::QueryId::kIdentity;
  } else if (std::strcmp(argv[3], "sample") == 0) {
    query = workload::QueryId::kSample;
  } else if (std::strcmp(argv[3], "projection") == 0) {
    query = workload::QueryId::kProjection;
  } else if (std::strcmp(argv[3], "grep") == 0) {
    query = workload::QueryId::kGrep;
  } else {
    return usage(argv[0]);
  }

  harness::HarnessConfig config = harness::HarnessConfig::from_env();
  const int parallelism = argc > 4 ? std::atoi(argv[4]) : 1;
  if (argc > 5) config.records = static_cast<std::uint64_t>(std::atoll(argv[5]));
  if (argc > 6) config.runs = std::atoi(argv[6]);
  if (parallelism < 1 || config.runs < 1 || config.records < 1) {
    return usage(argv[0]);
  }

  harness::BenchmarkHarness bench(config);
  const harness::SetupKey key{engine, sdk, query, parallelism};
  std::printf("%s / %s, %llu records, %d runs\n",
              harness::setup_label(key).c_str(),
              workload::query_info(query).name.c_str(),
              static_cast<unsigned long long>(config.records), config.runs);

  auto measurements = bench.run_setup(key);
  measurements.status().expect_ok();
  const auto times = measurements.value().execution_times();
  for (std::size_t r = 0; r < times.size(); ++r) {
    std::printf("  run %zu: %.4f s (%lld output records)\n", r + 1, times[r],
                static_cast<long long>(
                    measurements.value().runs[r].output_records));
  }
  std::printf("mean %.4f s, rel. stddev %.3f\n", mean(times),
              relative_stddev(times));
  return 0;
}
