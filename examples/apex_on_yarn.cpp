// Native Apex-sim API tour: a DAG of port-based operators deployed by the
// STRAM AppMaster onto a YARN-sim cluster, with stream localities chosen
// explicitly — the mechanism behind the paper's Apex results (§III-C3).
//
//   $ ./examples/apex_on_yarn
#include <cstdio>

#include "apex/dag.hpp"
#include "apex/engine.hpp"
#include "apex/operators_library.hpp"
#include "yarn/resource_manager.hpp"

using namespace dsps;

int main() {
  // A 2-node YARN cluster like the paper's worker setup.
  yarn::ResourceManager rm;
  rm.add_node("worker-0", yarn::Resource{8, 16384});
  rm.add_node("worker-1", yarn::Resource{8, 16384});

  // Input topic with some click-log-ish records.
  kafka::Broker broker;
  broker.create_topic("clicks", kafka::TopicConfig{.partitions = 1})
      .expect_ok();
  broker.create_topic("alerts", kafka::TopicConfig{.partitions = 1})
      .expect_ok();
  for (int i = 0; i < 5000; ++i) {
    broker
        .append({"clicks", 0},
                kafka::ProducerRecord{.value = "user" + std::to_string(i % 97) +
                                               "\tpage" +
                                               std::to_string(i % 13)},
                false)
        .status()
        .expect_ok();
  }

  // DAG: kafka input -> filter (page0 only) -> enrich -> kafka output.
  apex::Dag dag;
  const int input = dag.add_input_operator(
      "clickReader", apex::kafka_input_factory(broker, "clicks"));
  const int filter = dag.add_operator(
      "landingPageOnly",
      apex::filter_payload_factory([](const runtime::Payload& s) {
        return s.view().ends_with("page0");
      }));
  const int enrich = dag.add_operator(
      "tagAlert", apex::map_payload_factory([](const runtime::Payload& s) {
        return runtime::Payload("ALERT\t" + s.str());
      }));
  const int output = dag.add_operator(
      "alertWriter",
      apex::kafka_output_factory(
          broker, apex::KafkaPayloadOutput::Config{.topic = "alerts"}));

  // Reader+filter fused THREAD_LOCAL; enrich partitioned 2-way in the same
  // container; the writer crosses a container boundary (serialized).
  dag.set_partitions(enrich, 2);
  dag.add_stream("clicks", apex::PortRef{input, 0}, apex::PortRef{filter, 0},
                 apex::Locality::kThreadLocal, {});
  dag.add_stream("filtered", apex::PortRef{filter, 0},
                 apex::PortRef{enrich, 0}, apex::Locality::kContainerLocal,
                 {});
  dag.add_stream("alerts", apex::PortRef{enrich, 0},
                 apex::PortRef{output, 0}, apex::Locality::kNodeLocal,
                 apex::payload_codec());

  auto plan = apex::render_physical_plan(dag);
  plan.status().expect_ok();
  std::printf("=== physical plan ===\n%s\n", plan.value().c_str());

  auto stats = apex::launch_application(rm, dag, apex::EngineConfig{});
  stats.status().expect_ok();
  const runtime::MetricsSnapshot& metrics = stats.value();
  std::printf("=== application finished ===\n");
  std::printf("  duration:        %.2f ms\n", metrics.gauge("app.duration_ms"));
  std::printf("  containers used: %d\n",
              static_cast<int>(metrics.gauge("app.containers")));
  std::printf("  thread groups:   %d\n",
              static_cast<int>(metrics.gauge("app.thread_groups")));
  std::printf("  stream windows:  %lld\n",
              static_cast<long long>(metrics.counter("windows.emitted")));
  for (const auto& [name, tuples] :
       metrics.counters_with_prefix("operator.")) {
    if (!name.ends_with(".tuples_in")) continue;
    const std::string op =
        name.substr(9, name.size() - 9 - 10);  // strip prefix + suffix
    std::printf("  tuples into %-16s %llu\n", (op + ":").c_str(),
                static_cast<unsigned long long>(tuples));
  }
  std::printf("  alerts written:  %lld\n",
              static_cast<long long>(
                  broker.end_offset({"alerts", 0}).value()));
  return 0;
}
