// Scale-out correctness: parallelism must not change the answer.
//
// 1. P1-vs-P8 differential: every (engine, sdk, query) setup runs once at
//    parallelism 1 over a single-partition input log and once at
//    parallelism 8 over an 8-partition input log — the output multisets
//    must be identical. This pins the content-deterministic Sample hash
//    (partitioning must not perturb which records are kept) and the
//    partition-sharded sources/sinks (no record lost or duplicated by the
//    fan-out/fan-in plumbing).
// 2. Spark plan shape: a parallelism-1 pipeline must not schedule the
//    degenerate single-partition repartition — `spark.shuffles_run` stays
//    flat at P1 (native and Beam) and rises at P>1.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kafka/broker.hpp"
#include "queries/query_factory.hpp"
#include "runtime/metrics.hpp"
#include "workload/aol_generator.hpp"
#include "workload/data_sender.hpp"

namespace dsps {
namespace {

using queries::Engine;
using queries::Sdk;
using workload::QueryId;

constexpr std::uint64_t kRecords = 2'000;
constexpr std::uint64_t kSeed = 7;

/// Runs one setup at the given parallelism over a `parallelism`-partition
/// input log and returns the sorted output record values.
std::vector<std::string> run_at(Engine engine, Sdk sdk, QueryId query,
                                int parallelism) {
  kafka::Broker broker;
  workload::create_benchmark_topic(broker, "in", parallelism).expect_ok();
  workload::create_benchmark_topic(broker, "out", parallelism).expect_ok();

  workload::AolGenerator generator(workload::AolGeneratorConfig{
      .record_count = kRecords, .seed = kSeed});
  workload::DataSender sender(broker,
                              workload::DataSenderConfig{.topic = "in"});
  sender.send_generated(generator).status().expect_ok();

  queries::QueryContext ctx;
  ctx.broker = &broker;
  ctx.input_topic = "in";
  ctx.output_topic = "out";
  ctx.parallelism = parallelism;
  ctx.seed = kSeed;
  queries::run_query(engine, sdk, query, ctx).expect_ok();

  std::vector<std::string> out;
  for (int p = 0; p < parallelism; ++p) {
    std::vector<kafka::StoredRecord> stored;
    broker.fetch({"out", p}, 0, 10'000'000, stored).status().expect_ok();
    for (auto& record : stored) out.push_back(record.value.str());
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct SetupCase {
  Engine engine;
  Sdk sdk;
};

class ScaleOutDifferentialTest : public ::testing::TestWithParam<SetupCase> {};

TEST_P(ScaleOutDifferentialTest, ParallelOutputsMatchSerial) {
  const auto [engine, sdk] = GetParam();
  for (QueryId query : {QueryId::kIdentity, QueryId::kSample,
                        QueryId::kProjection, QueryId::kGrep}) {
    SCOPED_TRACE(std::string(queries::engine_name(engine)) + " " +
                 queries::sdk_name(sdk) + " " +
                 workload::query_info(query).name);
    const auto serial = run_at(engine, sdk, query, 1);
    const auto parallel = run_at(engine, sdk, query, 8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(parallel, serial);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSetups, ScaleOutDifferentialTest,
    ::testing::Values(SetupCase{Engine::kFlink, Sdk::kNative},
                      SetupCase{Engine::kSpark, Sdk::kNative},
                      SetupCase{Engine::kApex, Sdk::kNative},
                      SetupCase{Engine::kFlink, Sdk::kBeam},
                      SetupCase{Engine::kSpark, Sdk::kBeam},
                      SetupCase{Engine::kApex, Sdk::kBeam}),
    [](const ::testing::TestParamInfo<SetupCase>& info) {
      return std::string(queries::engine_name(info.param.engine)) +
             queries::sdk_name(info.param.sdk);
    });

/// Delta of the global shuffle counter across one run of a setup.
std::uint64_t shuffles_for(Sdk sdk, int parallelism) {
  auto& global = runtime::MetricsRegistry::global();
  const auto before = global.snapshot().counter("spark.shuffles_run");
  (void)run_at(Engine::kSpark, sdk, QueryId::kIdentity, parallelism);
  return global.snapshot().counter("spark.shuffles_run") - before;
}

TEST(SparkPlanShapeTest, ParallelismOneSchedulesNoShuffle) {
  EXPECT_EQ(shuffles_for(Sdk::kNative, 1), 0u);
  EXPECT_EQ(shuffles_for(Sdk::kBeam, 1), 0u);
}

// The native direct stream maps Kafka partitions 1:1 onto RDD splits and
// every StreamBench transform is narrow, so the native plan never shuffles
// at any parallelism; only the Beam translation repartitions (to honor the
// parallelism hint), and only when it actually fans out.
TEST(SparkPlanShapeTest, OnlyScaledBeamPlansShuffle) {
  EXPECT_EQ(shuffles_for(Sdk::kNative, 4), 0u);
  EXPECT_GT(shuffles_for(Sdk::kBeam, 4), 0u);
}

}  // namespace
}  // namespace dsps
