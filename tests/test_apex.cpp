// Tests for Apex-sim: DAG validation, physical planning (thread groups,
// containers, localities), the window lifecycle, partitioning, codecs, and
// the Kafka operator library on YARN-sim.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "apex/codec.hpp"
#include "apex/dag.hpp"
#include "apex/engine.hpp"
#include "apex/operators_library.hpp"
#include "yarn/resource_manager.hpp"

namespace dsps::apex {
namespace {

using runtime::Payload;

/// Emits the integers [0, n) as strings.
class IntInput final : public InputOperator {
 public:
  explicit IntInput(int n) : n_(n), out_(register_output()) {}
  bool emit_tuples(std::size_t budget) override {
    for (std::size_t b = 0; b < budget && next_ < n_; ++b) {
      emit(out_, make_tuple_of<Payload>(std::to_string(next_++)));
    }
    return next_ < n_;
  }

 private:
  int n_;
  int next_ = 0;
  int out_;
};

/// Collects values with full lifecycle tracking.
class CollectorOp final : public Operator {
 public:
  struct Shared {
    std::mutex mutex;
    std::vector<std::string> values;
    std::atomic<int> setups{0};
    std::atomic<int> begin_windows{0};
    std::atomic<int> end_windows{0};
    std::atomic<int> teardowns{0};
    std::atomic<int> end_streams{0};
  };

  explicit CollectorOp(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)), in_(register_input([this](const Tuple& t) {
          std::lock_guard lock(shared_->mutex);
          shared_->values.push_back(tuple_cast<Payload>(t).str());
        })) {}

  void setup(const OperatorContext&) override { shared_->setups.fetch_add(1); }
  void begin_window(WindowId) override { shared_->begin_windows.fetch_add(1); }
  void end_window() override { shared_->end_windows.fetch_add(1); }
  void end_stream() override { shared_->end_streams.fetch_add(1); }
  void teardown() override { shared_->teardowns.fetch_add(1); }

 private:
  std::shared_ptr<Shared> shared_;
  int in_;
};

yarn::ResourceManager& test_rm() {
  static yarn::ResourceManager* rm = [] {
    auto* r = new yarn::ResourceManager();
    r->add_node("n0", yarn::Resource{64, 65536});
    r->add_node("n1", yarn::Resource{64, 65536});
    return r;
  }();
  return *rm;
}

std::vector<std::string> string_range(int n) {
  std::vector<std::string> v;
  for (int i = 0; i < n; ++i) v.push_back(std::to_string(i));
  return v;
}

// --- DAG validation --------------------------------------------------------------

TEST(ApexDagTest, ValidLinearDag) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kThreadLocal, {});
  EXPECT_TRUE(dag.validate().is_ok());
}

TEST(ApexDagTest, RejectsStreamIntoInputOperator) {
  Dag dag;
  const int a = dag.add_input_operator("a", [] {
    return std::make_unique<IntInput>(1);
  });
  const int b = dag.add_input_operator("b", [] {
    return std::make_unique<IntInput>(1);
  });
  dag.add_stream("s", PortRef{a, 0}, PortRef{b, 0}, Locality::kThreadLocal,
                 {});
  EXPECT_EQ(dag.validate().code(), StatusCode::kInvalidArgument);
}

TEST(ApexDagTest, RejectsSelfLoop) {
  Dag dag;
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.add_stream("s", PortRef{op, 0}, PortRef{op, 0}, Locality::kThreadLocal,
                 {});
  EXPECT_EQ(dag.validate().code(), StatusCode::kInvalidArgument);
}

TEST(ApexDagTest, RejectsNodeLocalWithoutCodec) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0}, Locality::kNodeLocal,
                 {});
  EXPECT_EQ(dag.validate().code(), StatusCode::kInvalidArgument);
}

TEST(ApexDagTest, RejectsUnevenThreadLocalPartitions) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.set_partitions(op, 2);
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kThreadLocal, {});
  EXPECT_EQ(dag.validate().code(), StatusCode::kInvalidArgument);
}

TEST(ApexDagTest, AcceptsPartitionedInputOperator) {
  // Input operators partition like any other (each instance reads its own
  // slice of the topic at setup — see KafkaPayloadInput).
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  dag.set_partitions(in, 4);
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.set_partitions(op, 4);
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kContainerLocal, {});
  EXPECT_TRUE(dag.validate().is_ok());
}

TEST(ApexDagTest, RejectsDagWithoutInputOperator) {
  Dag dag;
  dag.add_operator("lonely", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  EXPECT_EQ(dag.validate().code(), StatusCode::kInvalidArgument);
}

// --- physical planning --------------------------------------------------------------

TEST(ApexPlanTest, ThreadLocalChainSharesContainer) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kThreadLocal, {});
  const auto plan = render_physical_plan(dag);
  ASSERT_TRUE(plan.is_ok());
  // One thread group, one container.
  EXPECT_NE(plan.value().find("Thread Group 0"), std::string::npos);
  EXPECT_EQ(plan.value().find("Thread Group 1"), std::string::npos);
}

TEST(ApexPlanTest, NodeLocalSplitsContainers) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator("op", [] {
    return std::make_unique<CollectorOp>(
        std::make_shared<CollectorOp::Shared>());
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0}, Locality::kNodeLocal,
                 payload_codec());
  const auto plan = render_physical_plan(dag);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_NE(plan.value().find("Container 0"), std::string::npos);
  EXPECT_NE(plan.value().find("Container 1"), std::string::npos);
}

// --- execution -----------------------------------------------------------------------

struct LocalityCase {
  Locality locality;
  const char* name;
};

class ApexLocalityTest : public ::testing::TestWithParam<LocalityCase> {};

TEST_P(ApexLocalityTest, DeliversAllTuplesInOrder) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(500);
  });
  auto shared = std::make_shared<CollectorOp::Shared>();
  const int op = dag.add_operator("collect", [shared] {
    return std::make_unique<CollectorOp>(shared);
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0}, GetParam().locality,
                 GetParam().locality == Locality::kNodeLocal
                     ? payload_codec()
                     : CodecFactory{});
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  ASSERT_EQ(shared->values.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(shared->values[static_cast<std::size_t>(i)],
              std::to_string(i));
  }
  EXPECT_EQ(stats.value().counter("operator.collect.tuples_in"), 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Localities, ApexLocalityTest,
    ::testing::Values(LocalityCase{Locality::kThreadLocal, "thread"},
                      LocalityCase{Locality::kContainerLocal, "container"},
                      LocalityCase{Locality::kNodeLocal, "node"}),
    [](const auto& info) { return info.param.name; });

TEST(ApexEngineTest, WindowLifecycleBalanced) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(10000);
  });
  auto shared = std::make_shared<CollectorOp::Shared>();
  const int op = dag.add_operator("collect", [shared] {
    return std::make_unique<CollectorOp>(shared);
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kContainerLocal, {});
  EngineConfig config;
  config.window_tuple_budget = 1024;
  auto stats = launch_application(test_rm(), dag, config);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(shared->setups.load(), 1);
  EXPECT_EQ(shared->teardowns.load(), 1);
  EXPECT_EQ(shared->end_streams.load(), 1);
  EXPECT_EQ(shared->begin_windows.load(), shared->end_windows.load());
  // 10000 tuples at 1024/window => at least 10 windows were emitted.
  EXPECT_GE(stats.value().counter("windows.emitted"), 10u);
}

TEST(ApexEngineTest, PartitionedOperatorSeesEverythingOnce) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1000);
  });
  // Pass-through compute partitioned 3 ways, merged into one collector.
  const int compute = dag.add_operator(
      "compute", map_payload_factory([](const Payload& s) { return s; }));
  dag.set_partitions(compute, 3);
  auto shared = std::make_shared<CollectorOp::Shared>();
  const int sink = dag.add_operator("collect", [shared] {
    return std::make_unique<CollectorOp>(shared);
  });
  dag.add_stream("a", PortRef{in, 0}, PortRef{compute, 0},
                 Locality::kContainerLocal, {});
  dag.add_stream("b", PortRef{compute, 0}, PortRef{sink, 0},
                 Locality::kContainerLocal, {});
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok());
  ASSERT_EQ(shared->values.size(), 1000u);
  std::vector<std::string> sorted = shared->values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> expected = string_range(1000);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST(ApexEngineTest, InvalidDagRejectedBeforeDeployment) {
  Dag dag;  // empty
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  EXPECT_FALSE(stats.is_ok());
}

TEST(ApexEngineTest, ReportsContainerAndGroupCounts) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(10);
  });
  const int a = dag.add_operator(
      "a", map_payload_factory([](const Payload& s) { return s; }));
  const int b = dag.add_operator(
      "b", map_payload_factory([](const Payload& s) { return s; }));
  dag.add_stream("s1", PortRef{in, 0}, PortRef{a, 0}, Locality::kNodeLocal,
                 payload_codec());
  dag.add_stream("s2", PortRef{a, 0}, PortRef{b, 0}, Locality::kNodeLocal,
                 payload_codec());
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().gauge("app.containers"), 3.0);
  EXPECT_EQ(stats.value().gauge("app.thread_groups"), 3.0);
}

TEST(ApexEngineTest, RunsOnDegradedClusterAfterNodeFailure) {
  // Failure injection: one of two YARN nodes dies before submission; the
  // application must still deploy and complete on the surviving node.
  yarn::ResourceManager rm;
  auto& doomed = rm.add_node("doomed", yarn::Resource{64, 65536});
  rm.add_node("survivor", yarn::Resource{64, 65536});
  doomed.fail_node();

  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(200);
  });
  auto shared = std::make_shared<CollectorOp::Shared>();
  const int op = dag.add_operator("collect", [shared] {
    return std::make_unique<CollectorOp>(shared);
  });
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kNodeLocal, payload_codec());
  auto stats = launch_application(rm, dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(shared->values.size(), 200u);
  for (const auto& report : rm.node_reports()) {
    if (report.id == "doomed") {
      EXPECT_FALSE(report.alive);
    }
  }
}

TEST(ApexEngineTest, FailsCleanlyWhenClusterTooSmall) {
  yarn::ResourceManager rm;
  rm.add_node("tiny", yarn::Resource{1, 256});  // fits the AM only
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(1);
  });
  const int op = dag.add_operator(
      "op", map_payload_factory([](const Payload& s) { return s; }));
  dag.add_stream("s", PortRef{in, 0}, PortRef{op, 0},
                 Locality::kNodeLocal, payload_codec());
  auto stats = launch_application(rm, dag, EngineConfig{});
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

// --- codecs ---------------------------------------------------------------------------

TEST(ApexCodecTest, PayloadCodecRoundTrip) {
  PayloadCodec codec;
  const Tuple tuple = make_tuple_of<Payload>("hello\tworld");
  const Bytes bytes = codec.serialize(tuple);
  const Tuple restored = codec.deserialize(bytes);
  EXPECT_EQ(tuple_cast<Payload>(restored).view(), "hello\tworld");
}

TEST(ApexCodecTest, EmptyPayloadRoundTrip) {
  PayloadCodec codec;
  const Tuple restored =
      codec.deserialize(codec.serialize(make_tuple_of<Payload>("")));
  EXPECT_EQ(tuple_cast<Payload>(restored).view(), "");
}

TEST(ApexCodecTest, DeserializedPayloadOwnsItsBytes) {
  // A deserialized tuple must not alias the (transient) wire buffer.
  PayloadCodec codec;
  Tuple restored;
  {
    const Bytes bytes = codec.serialize(make_tuple_of<Payload>("boundary"));
    restored = codec.deserialize(bytes);
  }
  EXPECT_EQ(tuple_cast<Payload>(restored).view(), "boundary");
}

// --- functional operator library ----------------------------------------------------

TEST(ApexOperatorsTest, MapFilterFlatMapCompose) {
  Dag dag;
  const int in = dag.add_input_operator("in", [] {
    return std::make_unique<IntInput>(10);
  });
  const int doubled = dag.add_operator(
      "double", map_payload_factory([](const Payload& s) {
        return Payload(std::to_string(std::stoi(s.str()) * 2));
      }));
  const int filtered = dag.add_operator(
      "filter", filter_payload_factory([](const Payload& s) {
        return std::stoi(s.str()) >= 10;
      }));
  const int expanded = dag.add_operator(
      "expand", flat_map_payload_factory([](const Payload& s) {
        return std::vector<Payload>{s, s};
      }));
  auto shared = std::make_shared<CollectorOp::Shared>();
  const int sink = dag.add_operator("collect", [shared] {
    return std::make_unique<CollectorOp>(shared);
  });
  dag.add_stream("s1", PortRef{in, 0}, PortRef{doubled, 0},
                 Locality::kThreadLocal, {});
  dag.add_stream("s2", PortRef{doubled, 0}, PortRef{filtered, 0},
                 Locality::kThreadLocal, {});
  dag.add_stream("s3", PortRef{filtered, 0}, PortRef{expanded, 0},
                 Locality::kThreadLocal, {});
  dag.add_stream("s4", PortRef{expanded, 0}, PortRef{sink, 0},
                 Locality::kThreadLocal, {});
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok());
  // Inputs 0..9 doubled -> 0..18 even; >=10: 10,12,14,16,18; duplicated.
  EXPECT_EQ(shared->values.size(), 10u);
}

// --- Kafka operators end to end -----------------------------------------------------

TEST(ApexKafkaTest, KafkaInputToOutputOnYarn) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 300; ++i) {
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  Dag dag;
  const int in =
      dag.add_input_operator("kafkaIn", kafka_input_factory(broker, "in"));
  const int out = dag.add_operator(
      "kafkaOut", kafka_output_factory(
                      broker, KafkaPayloadOutput::Config{.topic = "out"}));
  dag.add_stream("s", PortRef{in, 0}, PortRef{out, 0},
                 Locality::kThreadLocal, {});
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(broker.end_offset({"out", 0}).value(), 300);
}

TEST(ApexKafkaTest, PartitionedInputDrainsAllTopicPartitionsOnce) {
  // Scale-out path: a 4-way partitioned input operator over a 4-partition
  // topic, auto-partitioned output (-1). Every record must come out exactly
  // once, spread over the output partitions.
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 4}).expect_ok();
  broker.create_topic("out", kafka::TopicConfig{.partitions = 4}).expect_ok();
  for (int i = 0; i < 400; ++i) {
    broker.append({"in", i % 4},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  Dag dag;
  const int in =
      dag.add_input_operator("kafkaIn", kafka_input_factory(broker, "in"));
  dag.set_partitions(in, 4);
  const int out = dag.add_operator(
      "kafkaOut",
      kafka_output_factory(
          broker, KafkaPayloadOutput::Config{.topic = "out", .partition = -1}));
  dag.set_partitions(out, 4);
  dag.add_stream("s", PortRef{in, 0}, PortRef{out, 0},
                 Locality::kContainerLocal, {});
  auto stats = launch_application(test_rm(), dag, EngineConfig{});
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();

  std::vector<std::string> values;
  int used_partitions = 0;
  for (int p = 0; p < 4; ++p) {
    std::vector<kafka::StoredRecord> records;
    broker.fetch({"out", p}, 0, 1000, records).status().expect_ok();
    if (!records.empty()) ++used_partitions;
    for (const auto& record : records) values.push_back(record.value.str());
  }
  ASSERT_EQ(values.size(), 400u);
  std::sort(values.begin(), values.end());
  std::vector<std::string> expected = string_range(400);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(values, expected);
  // The -1 sink really fanned out (each instance wrote its own partition).
  EXPECT_EQ(used_partitions, 4);
}

}  // namespace
}  // namespace dsps::apex
