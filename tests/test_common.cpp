// Unit and property tests for the dsps_common substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/noise.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace dsps {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::not_found("missing thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.to_string(), "NotFound: missing thing");
}

TEST(StatusTest, ExpectOkThrowsOnError) {
  EXPECT_NO_THROW(Status::ok().expect_ok());
  EXPECT_THROW(Status::internal("boom").expect_ok(), std::runtime_error);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kClosed}) {
    EXPECT_FALSE(status_code_name(code).empty());
    EXPECT_NE(status_code_name(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::invalid_argument("bad"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(result.value(), std::runtime_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

// --- BoundedQueue -------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(BoundedQueueTest, TryPushDistinguishesFullFromClosed) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.try_push(2), QueuePushResult::kOk);
  EXPECT_EQ(queue.try_push(3), QueuePushResult::kFull);
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  EXPECT_EQ(queue.try_push(4), QueuePushResult::kClosed);
}

TEST(BoundedQueueTest, TryPopDistinguishesEmptyFromDrained) {
  BoundedQueue<int> queue(2);
  int out = -1;
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kEmpty);
  queue.push(7);
  queue.close();
  EXPECT_FALSE(queue.is_drained());
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kOk);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kDrained);
  EXPECT_TRUE(queue.is_drained());
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> queue(8);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(2);
  std::thread popper([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  popper.join();
}

TEST(BoundedQueueTest, BlockedPushUnblocksOnPop) {
  BoundedQueue<int> queue(1);
  queue.push(0);
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    queue.push(1);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 0);
  pusher.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

// Property: N producers x M items arrive exactly once.
TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 500;
  BoundedQueue<int> queue(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kItemsEach; ++i) queue.push(p * kItemsEach + i);
    });
  }
  std::set<int> seen;
  std::mutex seen_mutex;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  queue.close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(seen.size(), kProducers * kItemsEach);
}

TEST(BoundedQueueTest, BatchOpsPreserveFifoOrder) {
  BoundedQueue<int> queue(64);
  std::vector<int> first{0, 1, 2, 3, 4};
  std::vector<int> second{5, 6, 7};
  EXPECT_EQ(queue.push_batch(std::move(first)), 5u);
  EXPECT_EQ(queue.push_batch(std::move(second)), 3u);
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 6), 6u);
  EXPECT_EQ(queue.pop_batch(out, 100), 2u);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, PushBatchLargerThanCapacityStreamsThrough) {
  BoundedQueue<int> queue(4);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  std::thread pusher([&] {
    EXPECT_EQ(queue.push_batch(std::move(items)), 100u);
    queue.close();
  });
  std::vector<int> out;
  while (queue.pop_batch(out, 16) > 0) {
  }
  pusher.join();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, CloseMidBatchDrainsAcceptedPrefix) {
  BoundedQueue<int> queue(2);
  std::vector<int> items{1, 2, 3, 4};
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  // Only the first capacity-sized chunk fits before close() lands.
  const std::size_t accepted = queue.push_batch(std::move(items));
  closer.join();
  EXPECT_EQ(accepted, 2u);
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.pop_batch(out, 10), 0u);  // drained
}

TEST(BoundedQueueTest, PopBatchReturnsZeroWhenClosedEmpty) {
  BoundedQueue<int> queue(4);
  queue.close();
  std::vector<int> out;
  EXPECT_EQ(queue.pop_batch(out, 8), 0u);
  EXPECT_TRUE(out.empty());
}

// --- SpscRingQueue ------------------------------------------------------------

TEST(SpscRingQueueTest, RoundsCapacityToPowerOfTwo) {
  SpscRingQueue<int> queue(100);
  EXPECT_EQ(queue.capacity(), 128u);
  EXPECT_THROW(SpscRingQueue<int>(0), std::invalid_argument);
}

TEST(SpscRingQueueTest, FifoOrderAndWrapAround) {
  SpscRingQueue<int> queue(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.push(round * 3 + i));
    for (int i = 0; i < 3; ++i) EXPECT_EQ(queue.pop(), round * 3 + i);
  }
}

TEST(SpscRingQueueTest, TryOpsDistinguishStates) {
  SpscRingQueue<int> queue(2);
  int out = -1;
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kEmpty);
  EXPECT_EQ(queue.try_push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.try_push(2), QueuePushResult::kOk);
  EXPECT_EQ(queue.try_push(3), QueuePushResult::kFull);
  queue.close();
  EXPECT_EQ(queue.try_push(4), QueuePushResult::kClosed);
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kOk);
  EXPECT_EQ(queue.try_pop(out), QueuePopResult::kDrained);
  EXPECT_TRUE(queue.is_drained());
}

TEST(SpscRingQueueTest, CloseDrainsThenEnds) {
  SpscRingQueue<int> queue(8);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// Property: everything one thread pushes arrives exactly once, in order, at
// the other thread, across single and batch operations mixed.
TEST(SpscRingQueueTest, TwoThreadStressPreservesOrder) {
  constexpr int kItems = 200000;
  SpscRingQueue<int> queue(256);
  std::thread producer([&] {
    int next = 0;
    while (next < kItems) {
      if (next % 3 == 0) {
        std::vector<int> batch;
        const int n = std::min(64, kItems - next);
        batch.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) batch.push_back(next + i);
        ASSERT_EQ(queue.push_batch(std::move(batch)),
                  static_cast<std::size_t>(n));
        next += n;
      } else {
        ASSERT_TRUE(queue.push(next));
        ++next;
      }
    }
    queue.close();
  });
  int expected = 0;
  std::vector<int> out;
  for (;;) {
    out.clear();
    const std::size_t n = queue.pop_batch(out, 48);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// --- RNG ------------------------------------------------------------------------

TEST(RngTest, SplitMixIsDeterministic) {
  SplitMix64 a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, XoshiroIsDeterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

// --- stats -----------------------------------------------------------------------

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(StatsTest, MeanOfValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
}

TEST(StatsTest, SampleStddevMatchesHandComputation) {
  // Values 2, 4, 4, 4, 5, 5, 7, 9: sample stddev = sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, RelativeStddevIsScaleInvariant) {
  const std::vector<double> base = {1.0, 2.0, 3.0};
  std::vector<double> scaled = {10.0, 20.0, 30.0};
  EXPECT_NEAR(relative_stddev(base), relative_stddev(scaled), 1e-12);
}

TEST(StatsTest, PercentileBounds) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(StatsTest, PercentileRejectsBadArgs) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(StatsTest, OutlierDetectionFindsTheSpike) {
  // Mirrors the Table III analysis: one 21.56s run among ~3.5s runs.
  const std::vector<double> runs = {6.25, 21.56, 3.42, 3.31, 3.73,
                                    12.69, 3.90, 3.96, 3.42, 3.01};
  const auto outliers = outlier_indices(runs, 2.0);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], 1u);  // the 21.56s run
}

TEST(StatsTest, NoOutliersInHomogeneousRuns) {
  const std::vector<double> runs = {4.15, 3.77, 2.71, 5.29, 3.00,
                                    3.93, 2.90, 3.66, 3.57, 4.45};
  EXPECT_TRUE(outlier_indices(runs, 2.5).empty());
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3.0, 1.0, 2.0}), 3.0);
  EXPECT_THROW(min_of({}), std::invalid_argument);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram histogram(1.0, 10);
  for (double v : {0.5, 1.5, 2.5, 3.5}) histogram.add(v);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 2.0);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram histogram(1.0, 100);
  for (int i = 0; i < 100; ++i) histogram.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(histogram.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(histogram.quantile(0.99), 99.0, 2.0);
}

TEST(HistogramTest, OverflowBucketCatchesLargeValues) {
  Histogram histogram(1.0, 4);
  histogram.add(1e9);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.quantile(1.0), 4.0);
}

// --- strings ----------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a\t\tb\t", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = split("abc", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitViewsMatchesSplit) {
  const std::string input = "x,y,,z";
  const auto owned = split(input, ',');
  const auto views = split_views(input, ',');
  ASSERT_EQ(owned.size(), views.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(owned[i], views[i]);
  }
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::string line = "1\tsearch query\t2006-03-01\t\t";
  EXPECT_EQ(join(split(line, '\t'), '\t'), line);
}

TEST(StringsTest, Contains) {
  EXPECT_TRUE(contains("a test query", "test"));
  EXPECT_FALSE(contains("a query", "test"));
  EXPECT_TRUE(contains("test", "test"));
  EXPECT_FALSE(contains("", "test"));
  EXPECT_TRUE(contains("anything", ""));
}

TEST(StringsTest, FindSubstringEdgeCases) {
  EXPECT_EQ(find_substring("", ""), 0u);
  EXPECT_EQ(find_substring("abc", ""), 0u);
  EXPECT_EQ(find_substring("", "a"), std::string_view::npos);
  EXPECT_EQ(find_substring("ab", "abc"), std::string_view::npos);
  EXPECT_EQ(find_substring("abc", "abc"), 0u);
  EXPECT_EQ(find_substring("xabc", "abc"), 1u);
  EXPECT_EQ(find_substring("abx", "x"), 2u);
}

TEST(StringsTest, FindSubstringMatchAtEveryOffsetOfLongHaystacks) {
  // Sweep the match across vector-block boundaries: the SSE2 path handles
  // 16 positions at a time, the memchr path handles the tail.
  const std::string needle = "needle!";
  for (std::size_t hay_len : {20u, 31u, 32u, 33u, 64u, 100u}) {
    for (std::size_t at = 0; at + needle.size() <= hay_len; ++at) {
      std::string hay(hay_len, 'n');  // 'n' stresses the first-byte filter
      hay.replace(at, needle.size(), needle);
      EXPECT_EQ(find_substring(hay, needle), at)
          << "len=" << hay_len << " at=" << at;
      EXPECT_EQ(find_substring(hay, needle), hay.find(needle));
    }
  }
}

TEST(StringsTest, FindSubstringAgreesWithStdFindOnRandomInputs) {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    std::string hay(next() % 120, '\0');
    for (auto& c : hay) c = static_cast<char>('a' + next() % 4);
    std::string needle(1 + next() % 6, '\0');
    for (auto& c : needle) c = static_cast<char>('a' + next() % 4);
    EXPECT_EQ(find_substring(hay, needle), hay.find(needle))
        << "hay=" << hay << " needle=" << needle;
  }
}

TEST(StringsTest, FindSubstringHandlesEmbeddedNulsAndRepeatedPrefixes) {
  const std::string hay("aa\0aab\0aabaaab", 14);
  EXPECT_EQ(find_substring(hay, std::string("b\0aab", 5)), 5u);
  EXPECT_EQ(find_substring("aaaaaaaaaaaaaaaaaaaaaab", "aab"), 20u);
  EXPECT_EQ(find_substring("ababababababababababababc", "ababc"), 20u);
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// --- bytes ------------------------------------------------------------------------

TEST(BytesTest, WriterReaderRoundTrip) {
  Bytes buffer;
  BinaryWriter writer(buffer);
  writer.write_u8(7);
  writer.write_u32(123456);
  writer.write_u64(0xDEADBEEFCAFEBABEULL);
  writer.write_i64(-42);
  writer.write_string("hello world");
  writer.write_bytes({1, 2, 3});

  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 123456u);
  EXPECT_EQ(reader.read_u64(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_EQ(reader.read_string(), "hello world");
  EXPECT_EQ(reader.read_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.failed());
}

TEST(BytesTest, ReaderFailsGracefullyOnTruncation) {
  Bytes buffer;
  BinaryWriter writer(buffer);
  writer.write_string("abcdef");
  buffer.resize(buffer.size() - 2);  // truncate
  BinaryReader reader(buffer);
  (void)reader.read_string();
  EXPECT_TRUE(reader.failed());
}

TEST(BytesTest, EmptyStringRoundTrip) {
  Bytes buffer;
  BinaryWriter writer(buffer);
  writer.write_string("");
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_FALSE(reader.failed());
}

TEST(BytesTest, FnvHashIsStableAndSpreads) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  // Distribution sanity: 1000 keys over 16 buckets, no bucket > 3x fair.
  std::vector<int> buckets(16, 0);
  for (int i = 0; i < 1000; ++i) {
    ++buckets[fnv1a("key-" + std::to_string(i)) % 16];
  }
  for (const int count : buckets) EXPECT_LT(count, 3 * 1000 / 16);
}

TEST(BytesTest, StringConversions) {
  EXPECT_EQ(to_string(to_bytes("round trip")), "round trip");
}

// --- env ---------------------------------------------------------------------------

TEST(EnvTest, FallbacksWhenUnset) {
  ::unsetenv("STREAMSHIM_TEST_VAR");
  EXPECT_EQ(env_string("STREAMSHIM_TEST_VAR", "fallback"), "fallback");
  EXPECT_EQ(env_i64("STREAMSHIM_TEST_VAR", 17), 17);
  EXPECT_FALSE(env_flag("STREAMSHIM_TEST_VAR"));
}

TEST(EnvTest, ParsesValues) {
  ::setenv("STREAMSHIM_TEST_VAR", "123", 1);
  EXPECT_EQ(env_i64("STREAMSHIM_TEST_VAR", 0), 123);
  ::setenv("STREAMSHIM_TEST_VAR", "true", 1);
  EXPECT_TRUE(env_flag("STREAMSHIM_TEST_VAR"));
  ::setenv("STREAMSHIM_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_i64("STREAMSHIM_TEST_VAR", 9), 9);
  ::unsetenv("STREAMSHIM_TEST_VAR");
}

TEST(EnvTest, BenchScaleDefaults) {
  ::unsetenv("STREAMSHIM_RECORDS");
  ::unsetenv("STREAMSHIM_RUNS");
  ::unsetenv("STREAMSHIM_SEED");
  ::unsetenv("STREAMSHIM_FULL");
  const BenchScale scale = resolve_bench_scale();
  EXPECT_EQ(scale.records, 20000u);
  EXPECT_EQ(scale.runs, 3);
  EXPECT_EQ(scale.seed, 42u);
  EXPECT_FALSE(scale.full);
}

TEST(EnvTest, FullScaleMatchesPaper) {
  ::setenv("STREAMSHIM_FULL", "1", 1);
  ::unsetenv("STREAMSHIM_RECORDS");
  ::unsetenv("STREAMSHIM_RUNS");
  const BenchScale scale = resolve_bench_scale();
  EXPECT_EQ(scale.records, 1000001u);  // the paper's AOL record count
  EXPECT_EQ(scale.runs, 10);           // the paper's run count
  ::unsetenv("STREAMSHIM_FULL");
}

TEST(EnvTest, ExplicitOverridesBeatFull) {
  ::setenv("STREAMSHIM_FULL", "1", 1);
  ::setenv("STREAMSHIM_RECORDS", "555", 1);
  EXPECT_EQ(resolve_bench_scale().records, 555u);
  ::unsetenv("STREAMSHIM_FULL");
  ::unsetenv("STREAMSHIM_RECORDS");
}

// --- noise -------------------------------------------------------------------------

TEST(NoiseTest, DisabledInjectorNeverPauses) {
  NoiseInjector injector(NoiseConfig{});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(injector.draw_pause_ms(), 0);
}

TEST(NoiseTest, DeterministicForSeed) {
  const NoiseConfig config{.enabled = true,
                           .pause_probability = 0.5,
                           .min_pause_ms = 1,
                           .max_pause_ms = 20,
                           .seed = 9};
  NoiseInjector a(config), b(config);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.draw_pause_ms(), b.draw_pause_ms());
}

TEST(NoiseTest, PausesWithinBoundsAndRoughFrequency) {
  const NoiseConfig config{.enabled = true,
                           .pause_probability = 0.3,
                           .min_pause_ms = 5,
                           .max_pause_ms = 10,
                           .seed = 4};
  NoiseInjector injector(config);
  int paused = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto pause = injector.draw_pause_ms();
    if (pause > 0) {
      ++paused;
      EXPECT_GE(pause, 5);
      EXPECT_LE(pause, 10);
    }
  }
  EXPECT_NEAR(static_cast<double>(paused) / 2000.0, 0.3, 0.05);
}

// --- clock -------------------------------------------------------------------------

TEST(ClockTest, TimestampsAreMonotonicEnough) {
  const Timestamp a = wall_clock_now();
  const Timestamp b = wall_clock_now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, StopwatchMeasuresSleep) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.elapsed_ms(), 18.0);
  EXPECT_LT(watch.elapsed_ms(), 500.0);
}

TEST(ClockTest, TimestampDeltaSeconds) {
  EXPECT_DOUBLE_EQ(timestamp_delta_seconds(1'000'000), 1.0);
  EXPECT_DOUBLE_EQ(timestamp_delta_seconds(250'000), 0.25);
}

}  // namespace
}  // namespace dsps
