// Fusion pass tests: the graph rewrite (maximal chains, every barrier), the
// fused composite executor, the translated plan shapes with fusion opted
// in, and the correctness contract the optimizer must honour — fused
// pipelines produce byte-identical output to unfused ones and to the
// DirectRunner reference, for every query shape on every engine runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "beam/fusion.hpp"
#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/apex_runner.hpp"
#include "beam/runners/direct_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"
#include "queries/query_factory.hpp"
#include "workload/streambench.hpp"

namespace dsps::beam {
namespace {

using runtime::Payload;

void load_topic(kafka::Broker& broker, const std::string& topic, int n) {
  broker.create_topic(topic, kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < n; ++i) {
    // Tab-separated rows; every 7th contains the Grep needle.
    const std::string value = (i % 7 == 0 ? "a test row " : "a plain row ") +
                              std::to_string(i) + "\tsecond-col";
    broker.append({topic, 0}, kafka::ProducerRecord{.value = value}, false)
        .status()
        .expect_ok();
  }
}

std::vector<std::string> read_topic(kafka::Broker& broker,
                                    const std::string& topic) {
  std::vector<kafka::StoredRecord> stored;
  broker.fetch({topic, 0}, 0, 1'000'000, stored).status().expect_ok();
  std::vector<std::string> values;
  values.reserve(stored.size());
  for (auto& record : stored) values.push_back(record.value.str());
  std::sort(values.begin(), values.end());
  return values;
}

// --- graph rewrite -----------------------------------------------------------

TransformNode pardo_node(std::string name, std::vector<int> inputs) {
  TransformNode node;
  node.kind = TransformKind::kParDo;
  node.name = std::move(name);
  node.urn = urns::kParDo;
  node.inputs = std::move(inputs);
  return node;
}

TransformNode read_node() {
  TransformNode node;
  node.kind = TransformKind::kRead;
  node.name = "Read";
  node.urn = urns::kRead;
  return node;
}

bool any_stage_contains(const FusionResult& result, const std::string& name) {
  for (const auto& stage : result.stages) {
    for (const auto& member : stage.members) {
      if (member == name) return true;
    }
  }
  return false;
}

TEST(FusionPassTest, FusibleRequiresPlainSingleInputParDo) {
  EXPECT_TRUE(fusible(pardo_node("a", {0})));
  EXPECT_FALSE(fusible(read_node()));

  TransformNode gbk = pardo_node("g", {0});
  gbk.kind = TransformKind::kGroupByKey;
  EXPECT_FALSE(fusible(gbk));

  TransformNode stateful = pardo_node("s", {0});
  stateful.stateful = true;
  EXPECT_FALSE(fusible(stateful));

  TransformNode keyed = pardo_node("k", {0});
  keyed.key_hash = [](const Element&) { return std::uint64_t{0}; };
  EXPECT_FALSE(fusible(keyed));

  TransformNode two_inputs = pardo_node("f", {0, 1});
  EXPECT_FALSE(fusible(two_inputs));
}

TEST(FusionPassTest, IdentityPipelineCollapsesToSourceFusedSink) {
  kafka::Broker broker;
  load_topic(broker, "in", 1);
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  Pipeline pipeline;
  pipeline.apply(KafkaIO::read(broker, KafkaReadConfig{.topic = "in"}))
      .apply(KafkaIO::without_metadata())
      .apply(Values<Payload>::create<Payload>())
      .apply(KafkaIO::write(broker, KafkaWriteConfig{.topic = "out"}));

  // 6 transforms: read, flat map, withoutMetadata, Values, ToProducerRecord,
  // KafkaWriter. Everything between the source and the terminal writer is a
  // chain of one-to-one ParDos => exactly one fused stage of 4 members.
  const FusionResult result = fuse_graph(pipeline.graph());
  EXPECT_EQ(result.original_node_count, 6u);
  ASSERT_EQ(result.node_count(), 3u);
  EXPECT_EQ(result.nodes_eliminated(), 3u);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].members.size(), 4u);

  const auto& nodes = result.graph.nodes();
  EXPECT_EQ(nodes[0].kind, TransformKind::kRead);
  EXPECT_EQ(nodes[1].urn, urns::kFused);
  EXPECT_TRUE(nodes[1].name.starts_with("Fused[")) << nodes[1].name;
  EXPECT_EQ(nodes[1].inputs, std::vector<int>{0});
  EXPECT_EQ(nodes[2].inputs, std::vector<int>{1});
  // The fused stage reports the tail's output coder so a serializing runner
  // still encodes the correct type at the fused boundary.
  EXPECT_EQ(nodes[1].output_coder != nullptr,
            pipeline.graph().nodes()[4].output_coder != nullptr);
  EXPECT_FALSE(describe(result).empty());
}

TEST(FusionPassTest, GroupByKeyIsABarrier) {
  kafka::Broker broker;
  load_topic(broker, "in", 1);
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  using Keyed = KV<std::string, std::int64_t>;
  using Grouped = KV<std::string, std::vector<std::int64_t>>;
  Pipeline pipeline;
  pipeline.apply(KafkaIO::read(broker, KafkaReadConfig{.topic = "in"}))
      .apply(KafkaIO::without_metadata())
      .apply(Values<Payload>::create<Payload>())
      .apply(MapElements<Payload, Keyed>::via(
          [](const Payload& s) { return Keyed{s.str(), 1}; }, "Key"))
      .apply(GroupByKey<std::string, std::int64_t>::create())
      .apply(MapElements<Grouped, std::string>::via(
          [](const Grouped& g) { return g.key; }, "Unkey"))
      .apply(KafkaIO::write(broker, KafkaWriteConfig{.topic = "out"}));

  const FusionResult result = fuse_graph(pipeline.graph());
  // The GBK survives as its own node; the ParDos fuse on each side of it.
  std::size_t gbk_count = 0;
  for (const auto& node : result.graph.nodes()) {
    if (node.kind == TransformKind::kGroupByKey) ++gbk_count;
    if (node.urn == urns::kFused) {
      EXPECT_NE(node.inputs.size(), 0u);
    }
  }
  EXPECT_EQ(gbk_count, 1u);
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_FALSE(any_stage_contains(result, "GroupByKey"));
  // Pre-GBK chain: flat map, withoutMetadata, Values, Key.
  EXPECT_EQ(result.stages[0].members.size(), 4u);
  // Post-GBK chain: Unkey + ToProducerRecord.
  EXPECT_EQ(result.stages[1].members.size(), 2u);
}

TEST(FusionPassTest, DivergingConsumersAreABarrier) {
  // read -> a -> {b, c}: `a` has two consumers, so nothing may fuse with
  // it; b and c only feed terminals, so no chain forms anywhere.
  BeamGraph diverging;
  const int read = diverging.add_node(read_node());
  const int a = diverging.add_node(pardo_node("a", {read}));
  const int b = diverging.add_node(pardo_node("b", {a}));
  const int c = diverging.add_node(pardo_node("c", {a}));
  diverging.add_node(pardo_node("sink-b", {b}));
  diverging.add_node(pardo_node("sink-c", {c}));

  const FusionResult result = fuse_graph(diverging);
  EXPECT_EQ(result.nodes_eliminated(), 0u);
  EXPECT_TRUE(result.stages.empty());

  // Control: the same chain without the second consumer fuses.
  BeamGraph linear;
  const int lread = linear.add_node(read_node());
  TransformNode la = pardo_node("a", {lread});
  TransformNode lb;
  la.stage = [] { return nullptr; };
  lb = pardo_node("b", {1});
  lb.stage = [] { return nullptr; };
  linear.add_node(std::move(la));
  linear.add_node(std::move(lb));
  linear.add_node(pardo_node("sink", {2}));
  const FusionResult fused = fuse_graph(linear);
  ASSERT_EQ(fused.stages.size(), 1u);
  EXPECT_EQ(fused.stages[0].members,
            (std::vector<std::string>{"a", "b"}));
}

TEST(FusionPassTest, ParallelismChangeIsABarrier) {
  // read -> a(p=1) -> b(p=2) -> c(p=2) -> sink: the p=1 -> p=2 edge is a
  // redistribution point, so `a` stays alone while b+c fuse.
  BeamGraph graph;
  const int read = graph.add_node(read_node());
  TransformNode a = pardo_node("a", {read});
  a.parallelism_hint = 1;
  TransformNode b = pardo_node("b", {1});
  b.parallelism_hint = 2;
  b.stage = [] { return nullptr; };
  TransformNode c = pardo_node("c", {2});
  c.parallelism_hint = 2;
  c.stage = [] { return nullptr; };
  graph.add_node(std::move(a));
  graph.add_node(std::move(b));
  graph.add_node(std::move(c));
  graph.add_node(pardo_node("sink", {3}));

  const FusionResult result = fuse_graph(graph);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].members,
            (std::vector<std::string>{"b", "c"}));
  EXPECT_FALSE(any_stage_contains(result, "a"));
}

TEST(FusionPassTest, StatefulParDoIsABarrier) {
  // read -> a -> s(stateful) -> b -> sink: `s` splits the chain and both
  // remaining fragments are single transforms, so nothing fuses.
  BeamGraph graph;
  const int read = graph.add_node(read_node());
  graph.add_node(pardo_node("a", {read}));
  TransformNode s = pardo_node("s", {1});
  s.stateful = true;
  graph.add_node(std::move(s));
  graph.add_node(pardo_node("b", {2}));
  graph.add_node(pardo_node("sink", {3}));

  const FusionResult result = fuse_graph(graph);
  EXPECT_EQ(result.nodes_eliminated(), 0u);
  EXPECT_TRUE(result.stages.empty());
  // Input wiring survives the (identity) rewrite.
  EXPECT_EQ(result.graph.nodes()[2].inputs, std::vector<int>{1});
}

// --- fused composite executor ------------------------------------------------

/// Buffers every element; flushes the buffer on bundle_boundary / finish.
class BufferingStage final : public StageExecutor {
 public:
  void process(const Element& element, const Emit& /*emit*/) override {
    buffer_.push_back(element);
  }
  void bundle_boundary(const Emit& emit) override { flush(emit); }
  void finish(const Emit& emit) override { flush(emit); }

 private:
  void flush(const Emit& emit) {
    for (auto& element : buffer_) emit(std::move(element));
    buffer_.clear();
  }
  std::vector<Element> buffer_;
};

/// Appends a suffix to string elements as they pass through.
class SuffixStage final : public StageExecutor {
 public:
  explicit SuffixStage(std::string suffix) : suffix_(std::move(suffix)) {}
  void process(const Element& element, const Emit& emit) override {
    Element out = element;
    out.value = element_value<std::string>(element) + suffix_;
    emit(std::move(out));
  }
  void finish(const Emit& /*emit*/) override {}

 private:
  std::string suffix_;
};

/// Emits each element twice (fan-out inside a fused chain).
class DuplicateStage final : public StageExecutor {
 public:
  void process(const Element& element, const Emit& emit) override {
    Element first = element;
    Element second = element;
    emit(std::move(first));
    emit(std::move(second));
  }
  void finish(const Emit& /*emit*/) override {}
};

Element string_element(std::string value) {
  Element element;
  element.value = std::move(value);
  return element;
}

TEST(FusedStageExecutorTest, DrivesMembersByDirectCallsInOrder) {
  const StageFactory factory = fused_stage(
      {[] { return std::make_unique<DuplicateStage>(); },
       [] { return std::make_unique<SuffixStage>("-x"); }});
  auto executor = factory();
  executor->start();
  std::vector<std::string> outputs;
  const Emit collect = [&outputs](Element&& element) {
    outputs.push_back(element_value<std::string>(element));
  };
  executor->process(string_element("a"), collect);
  executor->process(string_element("b"), collect);
  executor->finish(collect);
  EXPECT_EQ(outputs,
            (std::vector<std::string>{"a-x", "a-x", "b-x", "b-x"}));
}

TEST(FusedStageExecutorTest, FinishCascadesThroughDownstreamMembers) {
  // Elements a buffering member flushes at finish() must still pass through
  // the members *after* it in the chain — the cascade runs in chain order.
  const StageFactory factory = fused_stage(
      {[] { return std::make_unique<BufferingStage>(); },
       [] { return std::make_unique<SuffixStage>("-late"); }});
  auto executor = factory();
  executor->start();
  std::vector<std::string> outputs;
  const Emit collect = [&outputs](Element&& element) {
    outputs.push_back(element_value<std::string>(element));
  };
  executor->process(string_element("a"), collect);
  executor->process(string_element("b"), collect);
  EXPECT_TRUE(outputs.empty()) << "buffering member leaked early";
  executor->bundle_boundary(collect);
  EXPECT_EQ(outputs, (std::vector<std::string>{"a-late", "b-late"}));
  executor->process(string_element("c"), collect);
  executor->finish(collect);
  EXPECT_EQ(outputs,
            (std::vector<std::string>{"a-late", "b-late", "c-late"}));
}

// --- translated plans with fusion on -----------------------------------------

Pipeline& grep_pipeline(Pipeline& pipeline, kafka::Broker& broker) {
  pipeline.apply(KafkaIO::read(broker, KafkaReadConfig{.topic = "in"}))
      .apply(KafkaIO::without_metadata())
      .apply(Values<Payload>::create<Payload>())
      .apply(Filter<Payload>::by(
          [](const Payload& s) {
            return workload::grep_matches(s.view());
          },
          "Grep"))
      .apply(KafkaIO::write(broker, KafkaWriteConfig{.topic = "out"}));
  return pipeline;
}

TEST(FlinkRunnerFusionTest, FusedPlanCollapsesTheRawParDoChain) {
  kafka::Broker broker;
  load_topic(broker, "in", 1);
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  Pipeline pipeline;
  grep_pipeline(pipeline, broker);
  FlinkRunner runner(FlinkRunnerOptions{
      .parallelism = 1, .pipeline = {.fuse_stages = true}});
  auto plan = runner.translate_plan(pipeline);
  ASSERT_TRUE(plan.is_ok());
  // Fig. 13's chain of 5 standalone RawParDos collapses to one fused stage;
  // the only RawParDo left is the terminal KafkaWriter (a sink barrier).
  EXPECT_NE(plan.value().find("Fused["), std::string::npos) << plan.value();
  std::size_t rawpardo_count = 0;
  std::size_t pos = 0;
  while ((pos = plan.value().find("ParDoTranslation.RawParDo", pos)) !=
         std::string::npos) {
    ++rawpardo_count;
    pos += 1;
  }
  EXPECT_EQ(rawpardo_count, 1u) << plan.value();
}

TEST(ApexRunnerFusionTest, FusedPlanDeploysFewerContainers) {
  kafka::Broker broker;
  load_topic(broker, "in", 1);
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  Pipeline pipeline;
  grep_pipeline(pipeline, broker);
  ApexRunner runner(ApexRunnerOptions{
      .parallelism = 1, .pipeline = {.fuse_stages = true}});
  auto plan = runner.translate_plan(pipeline);
  ASSERT_TRUE(plan.is_ok());
  // source + fused chain + writer = 3 containers instead of 7.
  EXPECT_NE(plan.value().find("Container 2"), std::string::npos)
      << plan.value();
  EXPECT_EQ(plan.value().find("Container 3"), std::string::npos)
      << plan.value();
}

// --- differential: fused == unfused == DirectRunner --------------------------

enum class RunnerKind { kDirect, kFlink, kSpark, kApex };

std::unique_ptr<PipelineRunner> make_runner(RunnerKind kind, bool fuse) {
  switch (kind) {
    case RunnerKind::kDirect:
      return std::make_unique<DirectRunner>();
    case RunnerKind::kFlink:
      return std::make_unique<FlinkRunner>(FlinkRunnerOptions{
          .parallelism = 1, .pipeline = {.fuse_stages = fuse}});
    case RunnerKind::kSpark:
      return std::make_unique<SparkRunner>(SparkRunnerOptions{
          .parallelism = 1, .batch_interval_ms = 10,
          .pipeline = {.fuse_stages = fuse}});
    case RunnerKind::kApex:
      return std::make_unique<ApexRunner>(ApexRunnerOptions{
          .parallelism = 1, .pipeline = {.fuse_stages = fuse}});
  }
  throw std::invalid_argument("unknown runner");
}

/// The four StreamBench query bodies, expressed once for this suite. Sample
/// uses a per-pipeline seeded decider (not the thread-local production path)
/// so the kept subset is a pure function of element order — the property a
/// differential test needs.
PCollection<Payload> apply_query(const PCollection<Payload>& values,
                                 workload::QueryId query) {
  using workload::QueryId;
  switch (query) {
    case QueryId::kIdentity:
      return values.apply(MapElements<Payload, Payload>::via(
          [](const Payload& line) { return line; }, "Identity"));
    case QueryId::kSample:
      return values.apply(Filter<Payload>::by(
          [decider = workload::SampleDecider(7)](const Payload&) mutable {
            return decider.keep();
          },
          "Sample"));
    case QueryId::kProjection:
      return values.apply(MapElements<Payload, Payload>::via(
          [](const Payload& line) {
            return workload::projection_payload(line);
          },
          "Projection"));
    case QueryId::kGrep:
      return values.apply(Filter<Payload>::by(
          [](const Payload& line) {
            return workload::grep_matches(line.view());
          },
          "Grep"));
  }
  throw std::invalid_argument("unknown query");
}

std::vector<std::string> run_query_with(RunnerKind kind, bool fuse,
                                        workload::QueryId query) {
  kafka::Broker broker;
  load_topic(broker, "in", 400);
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  Pipeline pipeline;
  auto values =
      pipeline.apply(KafkaIO::read(broker, KafkaReadConfig{.topic = "in"}))
          .apply(KafkaIO::without_metadata())
          .apply(Values<Payload>::create<Payload>());
  apply_query(values, query)
      .apply(KafkaIO::write(broker, KafkaWriteConfig{.topic = "out"}));
  auto runner = make_runner(kind, fuse);
  auto result = pipeline.run(*runner);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return read_topic(broker, "out");
}

class FusionDifferentialTest
    : public ::testing::TestWithParam<workload::QueryId> {};

TEST_P(FusionDifferentialTest, FusedMatchesUnfusedAndDirectOnEveryRunner) {
  const workload::QueryId query = GetParam();
  const auto reference =
      run_query_with(RunnerKind::kDirect, false, query);
  ASSERT_FALSE(reference.empty() && query != workload::QueryId::kGrep);
  for (const RunnerKind kind :
       {RunnerKind::kFlink, RunnerKind::kSpark, RunnerKind::kApex}) {
    const auto unfused = run_query_with(kind, false, query);
    const auto fused = run_query_with(kind, true, query);
    EXPECT_EQ(unfused, reference) << "unfused diverged from DirectRunner";
    EXPECT_EQ(fused, reference) << "fused diverged from DirectRunner";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, FusionDifferentialTest,
    ::testing::Values(workload::QueryId::kIdentity, workload::QueryId::kSample,
                      workload::QueryId::kProjection,
                      workload::QueryId::kGrep),
    [](const auto& info) {
      return workload::query_info(info.param).name;
    });

// --- production query path (queries::run_beam + ctx.fuse_stages) -------------

TEST(FusionProductionPathTest, FuseStagesFlagPreservesQueryOutput) {
  // The deterministic production queries (Sample excluded: its thread-local
  // sampling is seeded per worker thread, and fusion legitimately changes
  // the threading) through the real factory, fused vs unfused per engine.
  for (const auto query :
       {workload::QueryId::kIdentity, workload::QueryId::kProjection,
        workload::QueryId::kGrep}) {
    std::vector<std::vector<std::string>> outputs;
    for (const auto engine :
         {queries::Engine::kFlink, queries::Engine::kSpark,
          queries::Engine::kApex}) {
      for (const bool fuse : {false, true}) {
        kafka::Broker broker;
        load_topic(broker, "in", 300);
        broker.create_topic("out", kafka::TopicConfig{.partitions = 1})
            .expect_ok();
        queries::QueryContext ctx;
        ctx.broker = &broker;
        ctx.input_topic = "in";
        ctx.output_topic = "out";
        ctx.fuse_stages = fuse;
        const Status status = queries::run_beam(engine, query, ctx);
        ASSERT_TRUE(status.is_ok()) << status.to_string();
        outputs.push_back(read_topic(broker, "out"));
      }
    }
    for (std::size_t i = 1; i < outputs.size(); ++i) {
      EXPECT_EQ(outputs[i], outputs[0])
          << workload::query_info(query).name << " run " << i
          << " diverged";
    }
  }
}

}  // namespace
}  // namespace dsps::beam
