// Tests for Spark-sim: RDD lineage and lazy pipelining, shuffles, the DAG
// scheduler, D-Streams, and the bounded streaming context.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <numeric>

#include "spark/kafka_io.hpp"
#include "spark/streaming_context.hpp"

namespace dsps::spark {
namespace {

std::vector<int> ints(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// --- RDD core ------------------------------------------------------------------

TEST(RddTest, ParallelizeSplitsEvenly) {
  SparkContext sc(SparkConf{.default_parallelism = 4});
  auto rdd = sc.parallelize(ints(100), 4);
  EXPECT_EQ(rdd->partitions(), 4);
  auto collected = sc.collect(rdd);
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, ints(100));
}

TEST(RddTest, MapIsLazyUntilAction) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  std::atomic<int> invocations{0};
  auto base = sc.parallelize(ints(10), 2);
  RDDPtr<int> mapped = std::make_shared<MapRDD<int, int>>(
      base, [&invocations](const int& v) {
        invocations.fetch_add(1);
        return v * 2;
      });
  EXPECT_EQ(invocations.load(), 0);  // nothing ran yet
  EXPECT_EQ(sc.count(mapped), 10u);
  EXPECT_EQ(invocations.load(), 10);
}

TEST(RddTest, FilterRemovesElements) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto base = sc.parallelize(ints(100), 2);
  RDDPtr<int> filtered = std::make_shared<FilterRDD<int>>(
      base, [](const int& v) { return v >= 90; });
  auto collected = sc.collect(filtered);
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<int>{90, 91, 92, 93, 94, 95, 96, 97, 98,
                                         99}));
}

TEST(RddTest, FlatMapExpands) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto base = sc.parallelize(ints(4), 2);
  RDDPtr<int> expanded = std::make_shared<FlatMapRDD<int, int>>(
      base, [](const int& v) { return std::vector<int>(static_cast<std::size_t>(v), v); });
  EXPECT_EQ(sc.count(expanded), 6u);  // 0+1+2+3
}

TEST(RddTest, NarrowChainPipelinesWithoutMaterializing) {
  // Pipelining property: the map fn on element i runs *after* the filter on
  // element i-1 would have been skipped — i.e. pulls interleave. We verify
  // by checking the max live intermediate count stays ~1 per pull, using an
  // instrumented iterator through MapPartitionsRDD.
  SparkContext sc(SparkConf{.default_parallelism = 1});
  auto base = sc.parallelize(ints(1000), 1);
  std::atomic<int> mapped{0};
  RDDPtr<int> chain = std::make_shared<MapRDD<int, int>>(
      base, [&mapped](const int& v) {
        mapped.fetch_add(1);
        return v;
      });
  auto iter = chain->compute(0);
  (void)iter->next();
  (void)iter->next();
  // Only the pulled elements were computed — lazy, not materialized.
  EXPECT_EQ(mapped.load(), 2);
}

TEST(RddTest, MapPartitionsSeesWholePartitionLazily) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto base = sc.parallelize(ints(10), 2);
  RDDPtr<int> summed = std::make_shared<MapPartitionsRDD<int, int>>(
      base, [](IterPtr<int> in) -> IterPtr<int> {
        int sum = 0;
        while (auto v = in->next()) sum += *v;
        return iter_from_vector(std::vector<int>{sum});
      });
  auto collected = sc.collect(summed);
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_EQ(collected[0] + collected[1], 45);
}

TEST(RddTest, UnionConcatenatesPartitions) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto a = sc.parallelize(ints(5), 2);
  auto b = sc.parallelize(ints(3), 1);
  RDDPtr<int> unioned = std::make_shared<UnionRDD<int>>(
      std::vector<RDDPtr<int>>{a, b});
  EXPECT_EQ(unioned->partitions(), 3);
  EXPECT_EQ(sc.count(unioned), 8u);
}

// --- shuffles --------------------------------------------------------------------

TEST(ShuffleTest, RepartitionPreservesElements) {
  SparkContext sc(SparkConf{.default_parallelism = 4});
  auto base = sc.parallelize(ints(1000), 2);
  RDDPtr<int> repartitioned = std::make_shared<RepartitionRDD<int>>(base, 5);
  EXPECT_EQ(repartitioned->partitions(), 5);
  auto collected = sc.collect(repartitioned);
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, ints(1000));
  EXPECT_EQ(sc.shuffles_run(), 1u);
}

TEST(ShuffleTest, RepartitionBalances) {
  SparkContext sc(SparkConf{.default_parallelism = 4});
  auto base = sc.parallelize(ints(1000), 1);
  auto repartitioned = std::make_shared<RepartitionRDD<int>>(base, 4);
  sc.prepare_shuffles(repartitioned);
  for (int p = 0; p < 4; ++p) {
    const auto part = drain(*repartitioned->compute(p));
    EXPECT_EQ(part.size(), 250u);  // round robin is exactly balanced
  }
}

TEST(ShuffleTest, KeyPartitionGroupsByHash) {
  SparkContext sc(SparkConf{.default_parallelism = 4});
  auto base = sc.parallelize(ints(1000), 3);
  auto keyed = std::make_shared<KeyPartitionRDD<int>>(
      base, [](const int& v) { return static_cast<std::uint64_t>(v % 7); },
      4);
  sc.prepare_shuffles(keyed);
  // Every residue class mod 7 lands wholly in one partition.
  std::map<int, std::set<int>> residue_to_partitions;
  for (int p = 0; p < 4; ++p) {
    for (const int v : drain(*keyed->compute(p))) {
      residue_to_partitions[v % 7].insert(p);
    }
  }
  for (const auto& [residue, partitions] : residue_to_partitions) {
    EXPECT_EQ(partitions.size(), 1u) << "residue " << residue << " split";
  }
}

TEST(ShuffleTest, ReduceByKeyAggregates) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  std::vector<std::pair<std::string, int>> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.emplace_back(i % 2 == 0 ? "even" : "odd", i);
  }
  auto base = sc.parallelize(std::move(pairs), 4);
  RDDPtr<std::pair<std::string, int>> reduced = std::make_shared<ReduceByKeyRDD<std::string, int>>(
      base, [](const int& a, const int& b) { return a + b; }, 2);
  auto collected = sc.collect(reduced);
  ASSERT_EQ(collected.size(), 2u);
  std::map<std::string, int> by_key(collected.begin(), collected.end());
  EXPECT_EQ(by_key["even"], 2450);
  EXPECT_EQ(by_key["odd"], 2500);
}

TEST(ShuffleTest, ShuffleRunsOncePerRddInstance) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto base = sc.parallelize(ints(10), 2);
  auto repartitioned = std::make_shared<RepartitionRDD<int>>(base, 2);
  sc.prepare_shuffles(repartitioned);
  sc.prepare_shuffles(repartitioned);  // idempotent
  EXPECT_EQ(sc.shuffles_run(), 1u);
}

TEST(ShuffleTest, ChainedShufflesPrepareParentsFirst) {
  SparkContext sc(SparkConf{.default_parallelism = 2});
  auto base = sc.parallelize(ints(100), 2);
  RDDPtr<int> first = std::make_shared<RepartitionRDD<int>>(base, 3);
  RDDPtr<int> mapped = std::make_shared<MapRDD<int, int>>(
      first, [](const int& v) { return v + 1; });
  RDDPtr<int> second = std::make_shared<RepartitionRDD<int>>(mapped, 2);
  auto collected = sc.collect(second);
  std::sort(collected.begin(), collected.end());
  std::vector<int> expected;
  for (int i = 1; i <= 100; ++i) expected.push_back(i);
  EXPECT_EQ(collected, expected);
  EXPECT_EQ(sc.shuffles_run(), 2u);
}

// --- scheduler metrics ------------------------------------------------------------

TEST(SchedulerTest, TaskCountMatchesPartitions) {
  SparkContext sc(SparkConf{.default_parallelism = 4});
  auto rdd = sc.parallelize(ints(100), 8);
  sc.run_job<int>(rdd, [](int, IterPtr<int>) {});
  EXPECT_EQ(sc.tasks_launched(), 8u);
  EXPECT_EQ(sc.jobs_run(), 1u);
}

TEST(SchedulerTest, RejectsBadParallelism) {
  EXPECT_THROW(SparkContext sc(SparkConf{.default_parallelism = 0}),
               std::invalid_argument);
}

// --- DStreams ---------------------------------------------------------------------

TEST(DStreamTest, KafkaDirectStreamProcessesBatches) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 100; ++i) {
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 2}, 10);
  auto lines = ssc.kafka_direct_stream(broker, "in");
  std::atomic<int> seen{0};
  lines.foreach_rdd([&seen](SparkContext& sc,
                            const RDDPtr<kafka::Payload>& rdd) {
    seen.fetch_add(static_cast<int>(sc.count(rdd)));
  });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  EXPECT_EQ(seen.load(), 100);
}

TEST(DStreamTest, KafkaReceiverStreamProcessesBatches) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 1500; ++i) {  // spans multiple receiver blocks
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 2}, 10);
  auto evens = ssc.kafka_receiver_stream(broker, "in")
                   .filter([](const kafka::Payload& s) {
                     return std::stoi(s.str()) % 2 == 0;
                   });
  std::atomic<int> seen{0};
  evens.foreach_rdd([&seen](SparkContext& sc,
                            const RDDPtr<kafka::Payload>& rdd) {
    seen.fetch_add(static_cast<int>(sc.count(rdd)));
  });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  EXPECT_EQ(seen.load(), 750);
}

TEST(DStreamTest, TransformationsComposePerBatch) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 50; ++i) {
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 1}, 10);
  auto out = ssc.kafka_direct_stream(broker, "in")
                 .map<int>([](const kafka::Payload& s) {
                   return std::stoi(s.str());
                 })
                 .filter([](const int& v) { return v % 5 == 0; });
  std::vector<int> seen;
  std::mutex seen_mutex;
  out.foreach_rdd([&](SparkContext& sc, const RDDPtr<int>& rdd) {
    for (const int v : sc.collect(rdd)) {
      std::lock_guard lock(seen_mutex);
      seen.push_back(v);
    }
  });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 5, 10, 15, 20, 25, 30, 35, 40, 45}));
}

TEST(DStreamTest, MultipleOutputsShareOneLineagePerBatch) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 10; ++i) {
    broker.append({"in", 0}, kafka::ProducerRecord{.value = "x"}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 1}, 10);
  std::atomic<int> transform_calls{0};
  auto stream =
      ssc.kafka_direct_stream(broker, "in")
          .transform<kafka::Payload>(
              [&transform_calls](RDDPtr<kafka::Payload> rdd)
                  -> RDDPtr<kafka::Payload> {
                transform_calls.fetch_add(1);
                return rdd;
              });
  std::atomic<int> a{0}, b{0};
  stream.foreach_rdd([&a](SparkContext& sc,
                          const RDDPtr<kafka::Payload>& rdd) {
    a.fetch_add(static_cast<int>(sc.count(rdd)));
  });
  stream.foreach_rdd([&b](SparkContext& sc,
                          const RDDPtr<kafka::Payload>& rdd) {
    b.fetch_add(static_cast<int>(sc.count(rdd)));
  });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  EXPECT_EQ(a.load(), 10);
  EXPECT_EQ(b.load(), 10);
  // Memoized per batch: the transform ran once per batch, not per output.
  EXPECT_EQ(transform_calls.load(),
            static_cast<int>(ssc.metrics().counter("batch.count")));
}

TEST(DStreamTest, ReduceByKeyHelper) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 20; ++i) {
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 2}, 10);
  auto pairs = ssc.kafka_direct_stream(broker, "in")
                   .map<std::pair<std::string, int>>(
                       [](const kafka::Payload& s) {
                         const int v = std::stoi(s.str());
                         return std::make_pair(
                             v % 2 == 0 ? std::string("even")
                                        : std::string("odd"),
                             v);
                       });
  auto reduced = reduce_by_key<std::string, int>(
      pairs, [](const int& a, const int& b) { return a + b; }, 2);
  std::map<std::string, int> totals;
  std::mutex totals_mutex;
  reduced.foreach_rdd(
      [&](SparkContext& sc, const RDDPtr<std::pair<std::string, int>>& rdd) {
        for (auto& [key, value] : sc.collect(rdd)) {
          std::lock_guard lock(totals_mutex);
          totals[key] += value;
        }
      });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  EXPECT_EQ(totals["even"], 90);
  EXPECT_EQ(totals["odd"], 100);
}

// --- streaming context ---------------------------------------------------------------

TEST(DStreamTest, WindowUnionsRecentBatches) {
  // Feed batches one at a time through start(); a 3-batch window must see
  // the union of the last 3 batches.
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  StreamingContext ssc(SparkConf{.default_parallelism = 1}, 10);
  auto windowed = ssc.kafka_direct_stream(broker, "in").window(3);
  std::vector<std::size_t> window_sizes;
  std::mutex sizes_mutex;
  windowed.foreach_rdd([&](SparkContext& sc,
                           const RDDPtr<kafka::Payload>& rdd) {
    const std::size_t count = sc.count(rdd);
    std::lock_guard lock(sizes_mutex);
    window_sizes.push_back(count);
  });
  ASSERT_TRUE(ssc.start().is_ok());
  // One record per ~batch for a while.
  for (int i = 0; i < 12; ++i) {
    broker.append({"in", 0}, kafka::ProducerRecord{.value = "x"}, false)
        .status()
        .expect_ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ssc.stop();
  // Window counts never exceed the window span and eventually exceed one
  // batch's worth (i.e. the union is really happening).
  std::lock_guard lock(sizes_mutex);
  ASSERT_FALSE(window_sizes.empty());
  std::size_t max_window = 0;
  for (const std::size_t size : window_sizes) {
    max_window = std::max(max_window, size);
  }
  EXPECT_GT(max_window, 1u);   // spans more than one batch
  EXPECT_LE(max_window, 12u);  // bounded by total input
}

TEST(StreamingContextTest, RunBoundedStopsWhenDrained) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.append({"in", 0}, kafka::ProducerRecord{.value = "only"}, false)
      .status()
      .expect_ok();
  StreamingContext ssc(SparkConf{.default_parallelism = 1}, 5);
  auto lines = ssc.kafka_direct_stream(broker, "in");
  lines.foreach_rdd(
      [](SparkContext& sc, const RDDPtr<kafka::Payload>& rdd) {
        (void)sc.count(rdd);
      });
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  const auto snapshot = ssc.metrics();
  EXPECT_GE(snapshot.counter("batch.count"), 2u);  // data batch + empty closer
  EXPECT_EQ(snapshot.counter("input.records"), 1u);
  EXPECT_EQ(snapshot.gauge("batch.last_input_records"), 0.0);
}

TEST(StreamingContextTest, StartStopStreamsContinuously) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  StreamingContext ssc(SparkConf{.default_parallelism = 1}, 5);
  auto lines = ssc.kafka_direct_stream(broker, "in");
  std::atomic<int> seen{0};
  lines.foreach_rdd([&seen](SparkContext& sc,
                            const RDDPtr<kafka::Payload>& rdd) {
    seen.fetch_add(static_cast<int>(sc.count(rdd)));
  });
  ASSERT_TRUE(ssc.start().is_ok());
  // Feed records while the generator ticks (true streaming, not bounded).
  for (int i = 0; i < 20; ++i) {
    broker.append({"in", 0}, kafka::ProducerRecord{.value = "x"}, false)
        .status()
        .expect_ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  while (seen.load() < 20) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ssc.stop();
  EXPECT_EQ(seen.load(), 20);
}

TEST(StreamingContextTest, StartWithoutOutputsFails) {
  StreamingContext ssc(SparkConf{}, 10);
  EXPECT_EQ(ssc.start().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingContextTest, WriteToKafkaEndToEnd) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (int i = 0; i < 200; ++i) {
    broker.append({"in", 0},
                  kafka::ProducerRecord{.value = std::to_string(i)}, false)
        .status()
        .expect_ok();
  }
  StreamingContext ssc(SparkConf{.default_parallelism = 2}, 10);
  auto evens = ssc.kafka_direct_stream(broker, "in")
                   .filter([](const kafka::Payload& s) {
                     return std::stoi(s.str()) % 2 == 0;
                   });
  write_to_kafka(evens, broker, KafkaWriteConfig{.topic = "out"});
  ASSERT_TRUE(ssc.run_bounded().is_ok());
  EXPECT_EQ(broker.end_offset({"out", 0}).value(), 100);
}

}  // namespace
}  // namespace dsps::spark
