// Tests for the workload module: the AOL-like generator's schema and
// selectivities, the data sender, and the StreamBench query logic.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.hpp"
#include "workload/aol_generator.hpp"
#include "workload/data_sender.hpp"
#include "workload/streambench.hpp"

namespace dsps::workload {
namespace {

TEST(AolGeneratorTest, RecordHasFiveTabSeparatedColumns) {
  AolGenerator generator({.record_count = 100, .seed = 1});
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto fields = split(generator.record_at(i).to_line(), '\t');
    ASSERT_EQ(fields.size(), 5u) << "record " << i;
    EXPECT_FALSE(fields[0].empty());  // user id
    EXPECT_FALSE(fields[1].empty());  // query
    EXPECT_FALSE(fields[2].empty());  // timestamp
  }
}

TEST(AolGeneratorTest, DeterministicInSeed) {
  AolGenerator a({.record_count = 50, .seed = 7});
  AolGenerator b({.record_count = 50, .seed = 7});
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.record_at(i).to_line(), b.record_at(i).to_line());
  }
}

TEST(AolGeneratorTest, DifferentSeedsProduceDifferentData) {
  AolGenerator a({.record_count = 50, .seed = 1});
  AolGenerator b({.record_count = 50, .seed = 2});
  int same = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    same += a.record_at(i).to_line() == b.record_at(i).to_line();
  }
  EXPECT_LT(same, 3);
}

TEST(AolGeneratorTest, RecordAccessIsOrderIndependent) {
  AolGenerator generator({.record_count = 100, .seed = 3});
  const auto forward = generator.record_at(10).to_line();
  (void)generator.record_at(99);
  (void)generator.record_at(0);
  EXPECT_EQ(generator.record_at(10).to_line(), forward);
}

TEST(AolGeneratorTest, GrepSelectivityMatchesPaperAtFullScale) {
  // The paper: 3,003 matches out of 1,000,001 records (~0.3003%).
  AolGenerator generator({.record_count = 1'000'001, .seed = 42});
  const double ratio = static_cast<double>(generator.grep_match_count()) /
                       1'000'001.0;
  EXPECT_NEAR(ratio, 3003.0 / 1'000'001.0, 0.0003);
}

TEST(AolGeneratorTest, GrepMatchCountFormulaAgreesWithEnumeration) {
  AolGenerator generator({.record_count = 5000, .seed = 42});
  std::uint64_t enumerated = 0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    enumerated += generator.is_grep_match(i);
  }
  EXPECT_EQ(enumerated, generator.grep_match_count());
}

TEST(AolGeneratorTest, NeedleAppearsExactlyInMatchingRecords) {
  AolGenerator generator({.record_count = 2000, .seed = 42});
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::string line = generator.record_at(i).to_line();
    EXPECT_EQ(contains(line, "test"), generator.is_grep_match(i))
        << "record " << i << ": " << line;
  }
}

TEST(AolGeneratorTest, LineParsingRoundTrips) {
  AolGenerator generator({.record_count = 20, .seed = 9});
  for (std::uint64_t i = 0; i < 20; ++i) {
    const AolRecord record = generator.record_at(i);
    const AolRecord parsed = AolRecord::from_line(record.to_line());
    EXPECT_EQ(parsed.user_id, record.user_id);
    EXPECT_EQ(parsed.query, record.query);
    EXPECT_EQ(parsed.query_time, record.query_time);
    EXPECT_EQ(parsed.item_rank, record.item_rank);
    EXPECT_EQ(parsed.click_url, record.click_url);
  }
}

TEST(AolGeneratorTest, AboutHalfTheRecordsHaveClicks) {
  AolGenerator generator({.record_count = 4000, .seed = 5});
  int clicks = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const AolRecord record = generator.record_at(i);
    EXPECT_EQ(record.item_rank.empty(), record.click_url.empty());
    clicks += !record.item_rank.empty();
  }
  EXPECT_NEAR(clicks / 4000.0, 0.5, 0.05);
}

TEST(AolGeneratorTest, RejectsBadConfig) {
  EXPECT_THROW(AolGenerator({.record_count = 0}), std::invalid_argument);
  EXPECT_THROW(AolGenerator({.record_count = 10, .grep_needle_fraction = 0}),
               std::invalid_argument);
}

// --- data sender --------------------------------------------------------------

TEST(DataSenderTest, SendsAllRecordsInOrder) {
  kafka::Broker broker;
  create_benchmark_topic(broker, "in").expect_ok();
  AolGenerator generator({.record_count = 500, .seed = 42});
  DataSender sender(broker, DataSenderConfig{.topic = "in"});
  auto report = sender.send_generated(generator);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().records_sent, 500u);
  EXPECT_EQ(broker.end_offset({"in", 0}).value(), 500);

  std::vector<kafka::StoredRecord> stored;
  broker.fetch({"in", 0}, 0, 1000, stored).status().expect_ok();
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(stored[i].value, generator.record_at(i).to_line());
  }
}

TEST(DataSenderTest, BenchmarkTopicHasPaperSettings) {
  kafka::Broker broker;
  create_benchmark_topic(broker, "in").expect_ok();
  const auto metadata = broker.describe_topic("in");
  ASSERT_TRUE(metadata.is_ok());
  // §III-A2: one partition, replication factor one (ordering guarantee).
  EXPECT_EQ(metadata.value().config.partitions, 1);
  EXPECT_EQ(metadata.value().config.replication_factor, 1);
  EXPECT_EQ(metadata.value().config.timestamp_type,
            kafka::TimestampType::kLogAppendTime);
}

TEST(DataSenderTest, RateLimitSlowsIngestion) {
  kafka::Broker broker;
  create_benchmark_topic(broker, "in").expect_ok();
  DataSender sender(broker, DataSenderConfig{.topic = "in",
                                             .ingestion_rate = 10'000});
  std::vector<std::string> lines(200, "line");
  auto report = sender.send_lines(lines);
  ASSERT_TRUE(report.is_ok());
  // 200 records at 10k/s should take ~20ms.
  EXPECT_GE(report.value().duration_ms, 15.0);
}

TEST(DataSenderTest, MissingTopicFails) {
  kafka::Broker broker;
  DataSender sender(broker, DataSenderConfig{.topic = "missing"});
  EXPECT_FALSE(sender.send_lines({"x"}).is_ok());
}

// --- query logic ----------------------------------------------------------------

TEST(StreamBenchTest, FourQueriesDefined) {
  EXPECT_EQ(all_queries().size(), 4u);
  EXPECT_EQ(query_info(QueryId::kIdentity).name, "Identity");
  EXPECT_EQ(query_info(QueryId::kSample).name, "Sample");
  EXPECT_EQ(query_info(QueryId::kProjection).name, "Projection");
  EXPECT_EQ(query_info(QueryId::kGrep).name, "Grep");
}

TEST(StreamBenchTest, IdentityIsIdentity) {
  EXPECT_EQ(identity_of("a\tb\tc"), "a\tb\tc");
}

TEST(StreamBenchTest, ProjectionTakesFirstColumn) {
  EXPECT_EQ(projection_of("user\tquery\ttime\t\t"), "user");
  EXPECT_EQ(projection_of("no-tabs-here"), "no-tabs-here");
  EXPECT_EQ(projection_of("\tleading"), "");
}

TEST(StreamBenchTest, GrepMatchesNeedle) {
  EXPECT_TRUE(grep_matches("1\tsearch test query\t2006"));
  EXPECT_TRUE(grep_matches("testify"));  // substring semantics
  EXPECT_FALSE(grep_matches("1\tsearch query\t2006"));
}

TEST(StreamBenchTest, SampleKeepsRoughlyFortyPercent) {
  SampleDecider decider(42);
  int kept = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) kept += decider.keep();
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, kSampleFraction, 0.01);
}

TEST(StreamBenchTest, SampleDeciderDeterministic) {
  SampleDecider a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.keep(), b.keep());
}

TEST(StreamBenchTest, ThreadLocalSamplerStatisticallyCorrect) {
  int kept = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) kept += sample_keep_threadlocal(42);
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, kSampleFraction, 0.01);
}

}  // namespace
}  // namespace dsps::workload
