// Tests for the extension features: sliding/session windows, triggered
// GroupByKey, and the NEXMark-inspired query suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "beam/runners/apex_runner.hpp"
#include "common/strings.hpp"
#include "beam/runners/direct_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"
#include "beam/windowing.hpp"
#include "queries/nexmark_queries.hpp"
#include "workload/data_sender.hpp"
#include "workload/nexmark.hpp"

namespace dsps {
namespace {

using beam::BoundedWindow;
using beam::KV;

// --- sliding windows -----------------------------------------------------------

TEST(SlidingWindowTest, ElementLandsInSizeOverPeriodWindows) {
  const auto fn = beam::sliding_windows(60, 30);
  const auto windows = fn(75);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (BoundedWindow{30, 90}));
  EXPECT_EQ(windows[1], (BoundedWindow{60, 120}));
}

TEST(SlidingWindowTest, PeriodEqualsSizeDegeneratesToFixed) {
  const auto sliding = beam::sliding_windows(100, 100);
  const auto fixed = beam::fixed_windows(100);
  for (const Timestamp t : {0L, 1L, 99L, 100L, 250L}) {
    EXPECT_EQ(sliding(t), fixed(t)) << "t=" << t;
  }
}

TEST(SlidingWindowTest, EveryWindowContainsTheTimestamp) {
  const auto fn = beam::sliding_windows(100, 25);
  for (Timestamp t = 0; t < 500; t += 7) {
    const auto windows = fn(t);
    EXPECT_EQ(windows.size(), 4u);
    for (const auto& window : windows) {
      EXPECT_LE(window.start, t);
      EXPECT_GT(window.end, t);
    }
  }
}

TEST(SlidingWindowTest, RejectsBadParameters) {
  EXPECT_THROW(beam::sliding_windows(10, 20), std::invalid_argument);
  EXPECT_THROW(beam::sliding_windows(0, 0), std::invalid_argument);
}

// --- session windows --------------------------------------------------------------

template <typename T>
struct Collected {
  std::mutex mutex;
  std::vector<T> values;
};

TEST(SessionWindowTest, MergesBurstsSeparatedByGaps) {
  using Keyed = KV<std::string, std::int64_t>;
  using Grouped = KV<std::string, std::vector<std::int64_t>>;

  // Events for key "u" at times 0, 10, 20 (one session with gap 15),
  // then 100, 105 (second session).
  struct Stamp final : beam::DoFn<std::int64_t, Keyed> {
    void process(ProcessContext& ctx) override {
      ctx.output_with_timestamp(Keyed{"u", ctx.element()}, ctx.element());
    }
  };
  auto collected = std::make_shared<Collected<Grouped>>();
  struct Sink final : beam::DoFn<Grouped, std::int64_t> {
    std::shared_ptr<Collected<Grouped>> out;
    explicit Sink(std::shared_ptr<Collected<Grouped>> o)
        : out(std::move(o)) {}
    void process(ProcessContext& ctx) override {
      std::lock_guard lock(out->mutex);
      out->values.push_back(ctx.element());
    }
  };

  beam::Pipeline pipeline;
  pipeline
      .apply(beam::Create<std::int64_t>::of({0, 10, 20, 100, 105}))
      .apply(beam::ParDo::of<std::int64_t, Keyed>(std::make_shared<Stamp>()))
      .apply(beam::WindowInto<Keyed>(beam::session_windows(15)))
      .apply(beam::SessionGroupByKey<std::string, std::int64_t>{})
      .apply(beam::ParDo::of<Grouped, std::int64_t>(
          std::make_shared<Sink>(collected)));
  beam::DirectRunner runner;
  ASSERT_TRUE(pipeline.run(runner).is_ok());
  ASSERT_EQ(collected->values.size(), 2u);
  std::sort(collected->values.begin(), collected->values.end(),
            [](const Grouped& a, const Grouped& b) {
              return a.value.size() > b.value.size();
            });
  EXPECT_EQ(collected->values[0].value.size(), 3u);  // the 0/10/20 burst
  EXPECT_EQ(collected->values[1].value.size(), 2u);  // the 100/105 burst
}

TEST(SessionWindowTest, DistinctKeysDoNotMerge) {
  using Keyed = KV<std::string, std::int64_t>;
  using Grouped = KV<std::string, std::vector<std::int64_t>>;
  struct Stamp final : beam::DoFn<std::int64_t, Keyed> {
    void process(ProcessContext& ctx) override {
      ctx.output_with_timestamp(
          Keyed{ctx.element() % 2 == 0 ? "even" : "odd", ctx.element()},
          /*same time for all:*/ 0);
    }
  };
  auto collected = std::make_shared<Collected<Grouped>>();
  struct Sink final : beam::DoFn<Grouped, std::int64_t> {
    std::shared_ptr<Collected<Grouped>> out;
    explicit Sink(std::shared_ptr<Collected<Grouped>> o)
        : out(std::move(o)) {}
    void process(ProcessContext& ctx) override {
      std::lock_guard lock(out->mutex);
      out->values.push_back(ctx.element());
    }
  };
  beam::Pipeline pipeline;
  pipeline.apply(beam::Create<std::int64_t>::of({0, 1, 2, 3}))
      .apply(beam::ParDo::of<std::int64_t, Keyed>(std::make_shared<Stamp>()))
      .apply(beam::WindowInto<Keyed>(beam::session_windows(100)))
      .apply(beam::SessionGroupByKey<std::string, std::int64_t>{})
      .apply(beam::ParDo::of<Grouped, std::int64_t>(
          std::make_shared<Sink>(collected)));
  beam::DirectRunner runner;
  ASSERT_TRUE(pipeline.run(runner).is_ok());
  EXPECT_EQ(collected->values.size(), 2u);  // one session per key
}

// --- triggered GroupByKey ------------------------------------------------------------

TEST(TriggeredGbkTest, FiresEarlyPanesEveryNElements) {
  using Keyed = KV<std::string, std::int64_t>;
  using Grouped = KV<std::string, std::vector<std::int64_t>>;
  auto collected = std::make_shared<Collected<Grouped>>();
  std::vector<beam::PaneInfo> panes;
  std::mutex panes_mutex;

  struct Sink final : beam::DoFn<Grouped, std::int64_t> {
    std::shared_ptr<Collected<Grouped>> out;
    std::vector<beam::PaneInfo>* panes;
    std::mutex* panes_mutex;
    Sink(std::shared_ptr<Collected<Grouped>> o,
         std::vector<beam::PaneInfo>* p, std::mutex* m)
        : out(std::move(o)), panes(p), panes_mutex(m) {}
    void process(ProcessContext& ctx) override {
      std::lock_guard lock(*panes_mutex);
      out->values.push_back(ctx.element());
      panes->push_back(ctx.pane());
    }
  };

  std::vector<Keyed> input;
  for (std::int64_t i = 0; i < 7; ++i) input.push_back(Keyed{"k", i});
  beam::Pipeline pipeline;
  pipeline.apply(beam::Create<Keyed>::of(std::move(input)))
      .apply(beam::TriggeredGroupByKey<std::string, std::int64_t>(3))
      .apply(beam::ParDo::of<Grouped, std::int64_t>(
          std::make_shared<Sink>(collected, &panes, &panes_mutex)));
  beam::DirectRunner runner;
  ASSERT_TRUE(pipeline.run(runner).is_ok());
  // 7 elements, trigger every 3: panes of 3, 3, then a final pane of 1.
  ASSERT_EQ(collected->values.size(), 3u);
  EXPECT_EQ(collected->values[0].value.size(), 3u);
  EXPECT_EQ(collected->values[1].value.size(), 3u);
  EXPECT_EQ(collected->values[2].value.size(), 1u);
  EXPECT_FALSE(panes[0].is_last);
  EXPECT_FALSE(panes[1].is_last);
  EXPECT_TRUE(panes[2].is_last);
  EXPECT_EQ(panes[0].index, 0);
  EXPECT_EQ(panes[2].index, 2);
  // Union of panes is exactly the input.
  std::vector<std::int64_t> all;
  for (const auto& group : collected->values) {
    all.insert(all.end(), group.value.begin(), group.value.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6}));
}

// --- NEXMark generator -----------------------------------------------------------------

TEST(NexmarkGeneratorTest, DeterministicAndParsable) {
  workload::NexmarkGenerator a({.bid_count = 100, .seed = 5});
  workload::NexmarkGenerator b({.bid_count = 100, .seed = 5});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bid_at(i), b.bid_at(i));
    EXPECT_EQ(workload::Bid::from_line(a.bid_at(i).to_line()), a.bid_at(i));
  }
}

TEST(NexmarkGeneratorTest, EventTimeAdvancesMonotonically) {
  workload::NexmarkGenerator generator(
      {.bid_count = 50, .seed = 1, .inter_event_us = 100});
  for (std::uint64_t i = 1; i < 50; ++i) {
    EXPECT_EQ(generator.bid_at(i).date_time -
                  generator.bid_at(i - 1).date_time,
              100);
  }
}

TEST(NexmarkGeneratorTest, IdsWithinConfiguredRanges) {
  workload::NexmarkGenerator generator(
      {.bid_count = 1000, .seed = 2, .auctions = 10, .bidders = 20});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto bid = generator.bid_at(i);
    EXPECT_GE(bid.auction, 0);
    EXPECT_LT(bid.auction, 10);
    EXPECT_GE(bid.bidder, 0);
    EXPECT_LT(bid.bidder, 20);
    EXPECT_GT(bid.price, 0);
  }
}

// --- NEXMark queries across runners ------------------------------------------------------

class NexmarkQueryTest
    : public ::testing::TestWithParam<queries::Engine> {
 protected:
  void SetUp() override {
    workload::create_benchmark_topic(broker_, "bids").expect_ok();
    workload::create_benchmark_topic(broker_, "out").expect_ok();
    workload::NexmarkGenerator generator(
        {.bid_count = 1000, .seed = 42, .inter_event_us = 1000});
    bids_ = generator.all_bids();
    kafka::Producer producer(broker_,
                             kafka::ProducerConfig{.batch_size = 100});
    for (const auto& bid : bids_) {
      producer.send("bids", 0, kafka::ProducerRecord{.value = bid.to_line()})
          .expect_ok();
    }
    producer.close().expect_ok();
    ctx_ = queries::QueryContext{&broker_, "bids", "out", 1, 42};
  }

  std::vector<std::string> output() {
    std::vector<kafka::StoredRecord> stored;
    broker_.fetch({"out", 0}, 0, 100000, stored).status().expect_ok();
    std::vector<std::string> values;
    for (auto& record : stored) values.push_back(record.value.str());
    return values;
  }

  kafka::Broker broker_;
  std::vector<workload::Bid> bids_;
  queries::QueryContext ctx_;
};

TEST_P(NexmarkQueryTest, Q1ConvertsEveryPrice) {
  ASSERT_TRUE(
      queries::run_nexmark(GetParam(),
                           queries::NexmarkQuery::kQ1CurrencyConversion, ctx_)
          .is_ok());
  auto out = output();
  ASSERT_EQ(out.size(), bids_.size());
  std::vector<std::string> expected;
  for (auto bid : bids_) {
    bid.price = workload::convert_usd_to_eur(bid.price);
    expected.push_back(bid.to_line());
  }
  std::sort(out.begin(), out.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST_P(NexmarkQueryTest, Q2SelectsAuctionSubset) {
  queries::NexmarkOptions options;
  options.q2_auction_modulo = 7;
  ASSERT_TRUE(queries::run_nexmark(GetParam(),
                                   queries::NexmarkQuery::kQ2Selection, ctx_,
                                   options)
                  .is_ok());
  auto out = output();
  std::vector<std::string> expected;
  for (const auto& bid : bids_) {
    if (bid.auction % 7 == 0) expected.push_back(bid.to_line());
  }
  std::sort(out.begin(), out.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST_P(NexmarkQueryTest, QWComputesWindowedMaxima) {
  queries::NexmarkOptions options;
  options.window_us = 100'000;  // 100 bids per window at 1000us spacing
  ASSERT_TRUE(queries::run_nexmark(
                  GetParam(), queries::NexmarkQuery::kQWWindowedMaxBid, ctx_,
                  options)
                  .is_ok());
  // Reference: max per (auction, window) computed directly.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> expected;
  for (const auto& bid : bids_) {
    const std::int64_t window_start =
        bid.date_time - (bid.date_time % options.window_us);
    auto& cell = expected[{bid.auction, window_start}];
    cell = std::max(cell, bid.price);
  }
  auto out = output();
  ASSERT_EQ(out.size(), expected.size());
  for (const auto& line : out) {
    const auto fields = split(line, ',');
    ASSERT_EQ(fields.size(), 3u);
    const auto key = std::make_pair(std::stoll(fields[0]),
                                    std::stoll(fields[1]));
    ASSERT_TRUE(expected.contains(key)) << line;
    EXPECT_EQ(std::stoll(fields[2]), expected.at(key)) << line;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, NexmarkQueryTest,
                         ::testing::Values(queries::Engine::kFlink,
                                           queries::Engine::kSpark,
                                           queries::Engine::kApex),
                         [](const auto& info) {
                           return std::string(
                               queries::engine_name(info.param));
                         });

}  // namespace
}  // namespace dsps
