// Chaos harness: the four StreamBench queries on every engine x SDK under
// seeded fault schedules (operator kills, consumer stalls, broker outage
// windows), asserting the delivery guarantee each recovery mechanism claims
// (DESIGN.md §5c) differentially against an unfaulted DirectRunner baseline:
//   * every recovered path is at-least-once — the faulted output is a
//     multiset superset of the baseline and introduces no record the
//     baseline lacks;
//   * native Flink with checkpointing + transactional sink is exactly-once
//     — the faulted output *equals* the baseline as a multiset;
//   * Sample (nondeterministic) degrades to output ⊆ input.
// Schedules are deterministic per seed; CI re-runs the suite under fixed
// seeds via STREAMSHIM_CHAOS_SEED=<n>.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/direct_runner.hpp"
#include "queries/query_factory.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/payload.hpp"
#include "workload/streambench.hpp"

namespace dsps {
namespace {

using queries::Engine;
using queries::Sdk;
using runtime::FaultInjector;
using runtime::FaultPoint;
using runtime::FaultRule;
using workload::QueryId;

constexpr const char* kIn = "chaos-in";
constexpr const char* kOut = "chaos-out";
// Sized so every engine's fault site is hit several times per attempt:
// the Flink source polls 1000 records at a time (9 polls), Apex windows
// carry up to 4096 tuples (3 windows).
constexpr int kRecords = 9'000;

std::vector<std::uint64_t> chaos_seeds() {
  if (const char* env = std::getenv("STREAMSHIM_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3};
}

/// Unique two-column rows (uniqueness makes the duplicate/loss assertions
/// sharp); every 7th row carries the Grep needle.
const std::vector<std::string>& chaos_input() {
  static const std::vector<std::string> input = [] {
    std::vector<std::string> lines;
    lines.reserve(kRecords);
    for (int i = 0; i < kRecords; ++i) {
      std::string line = "row-" + std::to_string(i);
      if (i % 7 == 0) line += "-" + std::string(workload::kGrepNeedle);
      line += "\tpayload-" + std::to_string(i);
      lines.push_back(std::move(line));
    }
    return lines;
  }();
  return input;
}

void load_input(kafka::Broker& broker) {
  broker.create_topic(kIn, kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic(kOut, kafka::TopicConfig{.partitions = 1}).expect_ok();
  std::vector<kafka::ProducerRecord> batch;
  batch.reserve(chaos_input().size());
  for (const auto& line : chaos_input()) {
    batch.push_back(kafka::ProducerRecord{.value = line});
  }
  broker.append_batch({kIn, 0}, batch, false).status().expect_ok();
}

std::vector<std::string> output_values(kafka::Broker& broker) {
  std::vector<kafka::StoredRecord> stored;
  broker.fetch({kOut, 0}, 0, 10'000'000, stored).status().expect_ok();
  std::vector<std::string> values;
  values.reserve(stored.size());
  for (const auto& record : stored) values.push_back(record.value.str());
  return values;
}

/// The unfaulted reference: the query on the DirectRunner over the same
/// input (Identity/Projection/Grep — Sample has no deterministic baseline).
const std::vector<std::string>& direct_baseline(QueryId query) {
  static std::map<QueryId, std::vector<std::string>> cache;
  auto it = cache.find(query);
  if (it != cache.end()) return it->second;

  kafka::Broker broker;
  load_input(broker);
  beam::Pipeline pipeline;
  auto values =
      pipeline
          .apply(beam::KafkaIO::read(broker,
                                     beam::KafkaReadConfig{.topic = kIn}))
          .apply(beam::KafkaIO::without_metadata())
          .apply(beam::Values<runtime::Payload>::create<runtime::Payload>());
  beam::PCollection<runtime::Payload> out = values;
  switch (query) {
    case QueryId::kIdentity:
      break;
    case QueryId::kProjection:
      out = values.apply(
          beam::MapElements<runtime::Payload, runtime::Payload>::via(
              [](const runtime::Payload& line) {
                return workload::projection_payload(line);
              },
              "Projection"));
      break;
    case QueryId::kGrep:
      out = values.apply(beam::Filter<runtime::Payload>::by(
          [](const runtime::Payload& line) {
            return workload::grep_matches(line.view());
          },
          "Grep"));
      break;
    case QueryId::kSample:
      ADD_FAILURE() << "Sample has no deterministic baseline";
      break;
  }
  out.apply(
      beam::KafkaIO::write(broker, beam::KafkaWriteConfig{.topic = kOut}));
  beam::DirectRunner runner;
  pipeline.run(runner).status().expect_ok();
  return cache.emplace(query, output_values(broker)).first->second;
}

/// The seeded schedule for one run: an operator kill at the engine's data
/// plane, a consumer stall on the input topic, and a brief broker outage
/// on the output topic (the producers' retry loops must ride it out).
struct ChaosPlan {
  std::vector<FaultRule> rules;
  int burn = 0;  // hits pre-consumed at burn_site so a rule can strike the
  std::string burn_site;  // engine's *first* matching call
};

ChaosPlan chaos_plan(Engine engine, Sdk sdk, std::uint64_t seed) {
  ChaosPlan plan;
  FaultRule kill{.point = FaultPoint::kOperatorThrow, .times = 1};
  switch (engine) {
    case Engine::kFlink:
      if (sdk == Sdk::kNative) {
        kill.site = "flink.source.";
        kill.after_hits = 1 + seed % 2;  // strikes poll 2 or 3 of ~9
      } else {
        // The translated job runs unchained: the kill lands in one of the
        // ParDo consumer tasks, mid-channel.
        kill.site = "ParDo";
        kill.after_hits = 1 + seed % 5;
      }
      break;
    case Engine::kSpark:
      // A bounded topic is claimed in one micro-batch, so position the
      // rule on the first spark.batch call by burning the pass-through hit.
      kill.site = "spark.batch";
      kill.after_hits = 1;
      plan.burn = 1;
      plan.burn_site = "spark.batch";
      break;
    case Engine::kApex:
      kill.site = "apex.";  // window (input group) or mailbox (processing)
      kill.after_hits = 1 + seed % 2;
      break;
  }
  plan.rules.push_back(kill);
  plan.rules.push_back(FaultRule{.point = FaultPoint::kSlowConsumer,
                                 .site = kIn,
                                 .after_hits = 1,
                                 .times = 2,
                                 .param_us = 300});
  plan.rules.push_back(FaultRule{.point = FaultPoint::kBrokerUnavailable,
                                 .site = kOut,
                                 .after_hits = 2,
                                 .times = 1,
                                 .param_us = 1'000});
  return plan;
}

std::vector<std::string> run_chaos(Engine engine, Sdk sdk, QueryId query,
                                   std::uint64_t seed, bool exactly_once) {
  kafka::Broker broker;
  load_input(broker);
  queries::QueryContext ctx;
  ctx.broker = &broker;
  ctx.input_topic = kIn;
  ctx.output_topic = kOut;
  ctx.parallelism = 1;
  ctx.recovery.enabled = true;
  ctx.recovery.max_restarts = 4;
  ctx.recovery.exactly_once = exactly_once;
  ctx.recovery.backoff_seed = seed;

  const ChaosPlan plan = chaos_plan(engine, sdk, seed);
  auto& injector = FaultInjector::instance();
  injector.arm(seed, plan.rules);
  for (int i = 0; i < plan.burn; ++i) {
    try {
      injector.maybe_throw(FaultPoint::kOperatorThrow, plan.burn_site);
    } catch (const runtime::FaultInjectedError&) {
    }
  }
  const Status status = queries::run_query(engine, sdk, query, ctx);
  const std::uint64_t injected = injector.injected_count();
  injector.disarm();
  EXPECT_TRUE(status.is_ok())
      << queries::engine_name(engine) << "/" << queries::sdk_name(sdk)
      << " seed " << seed << ": " << status.to_string();
  EXPECT_GT(injected, 0u)
      << queries::engine_name(engine) << "/" << queries::sdk_name(sdk)
      << " seed " << seed << ": the schedule never struck";
  return output_values(broker);
}

/// At-least-once: no baseline record lost (multiset superset) and no
/// record invented (equal as sets — duplicates allowed, novelties not).
void expect_at_least_once(const std::vector<std::string>& output,
                          const std::vector<std::string>& baseline) {
  std::map<std::string, long> missing;
  for (const auto& value : baseline) ++missing[value];
  for (const auto& value : output) --missing[value];
  long lost = 0;
  for (const auto& [value, count] : missing) {
    if (count > 0) lost += count;
  }
  EXPECT_EQ(lost, 0) << "recovered run lost " << lost << " of "
                     << baseline.size() << " baseline records";
  const std::set<std::string> output_set(output.begin(), output.end());
  const std::set<std::string> baseline_set(baseline.begin(), baseline.end());
  EXPECT_EQ(output_set, baseline_set);
}

/// Sample's contract under replay: every delivered record is an input
/// record (the kept subset itself is nondeterministic).
void expect_sampled_subset(const std::vector<std::string>& output) {
  const std::set<std::string> input_set(chaos_input().begin(),
                                        chaos_input().end());
  std::size_t foreign = 0;
  for (const auto& value : output) foreign += input_set.count(value) == 0;
  EXPECT_EQ(foreign, 0u) << "Sample delivered records not in the input";
  EXPECT_FALSE(output.empty());
  EXPECT_LT(output.size(), chaos_input().size() * 2);  // sanity, with dups
}

void run_matrix(Engine engine, Sdk sdk) {
  for (const std::uint64_t seed : chaos_seeds()) {
    for (const QueryId query : {QueryId::kIdentity, QueryId::kProjection,
                                QueryId::kGrep, QueryId::kSample}) {
      SCOPED_TRACE(std::string(queries::engine_name(engine)) + "/" +
                   queries::sdk_name(sdk) + "/" +
                   workload::query_info(query).name + " seed " +
                   std::to_string(seed));
      const auto output = run_chaos(engine, sdk, query, seed,
                                    /*exactly_once=*/false);
      if (query == QueryId::kSample) {
        expect_sampled_subset(output);
      } else {
        expect_at_least_once(output, direct_baseline(query));
      }
    }
  }
}

TEST(ChaosMatrixTest, FlinkNativeAtLeastOnce) {
  run_matrix(Engine::kFlink, Sdk::kNative);
}
TEST(ChaosMatrixTest, FlinkBeamAtLeastOnce) {
  run_matrix(Engine::kFlink, Sdk::kBeam);
}
TEST(ChaosMatrixTest, SparkNativeAtLeastOnce) {
  run_matrix(Engine::kSpark, Sdk::kNative);
}
TEST(ChaosMatrixTest, SparkBeamAtLeastOnce) {
  run_matrix(Engine::kSpark, Sdk::kBeam);
}
TEST(ChaosMatrixTest, ApexNativeAtLeastOnce) {
  run_matrix(Engine::kApex, Sdk::kNative);
}
TEST(ChaosMatrixTest, ApexBeamAtLeastOnce) {
  run_matrix(Engine::kApex, Sdk::kBeam);
}

TEST(ChaosFlinkExactlyOnceTest, CheckpointedJobMatchesBaselineExactly) {
  // Barrier-checkpointed source + transactional sink: a crash discards the
  // open epoch's buffered output and replays from the committed offsets,
  // so the faulted run's output is *identical* to the unfaulted baseline.
  for (const std::uint64_t seed : chaos_seeds()) {
    for (const QueryId query :
         {QueryId::kIdentity, QueryId::kProjection, QueryId::kGrep}) {
      SCOPED_TRACE("Flink/native exactly-once " +
                   workload::query_info(query).name + " seed " +
                   std::to_string(seed));
      auto output = run_chaos(Engine::kFlink, Sdk::kNative, query, seed,
                              /*exactly_once=*/true);
      auto baseline = direct_baseline(query);
      std::sort(output.begin(), output.end());
      std::sort(baseline.begin(), baseline.end());
      EXPECT_EQ(output, baseline);
    }
  }
}

TEST(ChaosRecoveryMetricsTest, RestartsAndReplaysAreAccounted) {
  auto& global = runtime::MetricsRegistry::global();

  const auto before_flink = global.snapshot();
  (void)run_chaos(Engine::kFlink, Sdk::kNative, QueryId::kIdentity, 1,
                  /*exactly_once=*/false);
  const auto after_flink = global.snapshot();
  EXPECT_GT(after_flink.counter("flink.recovery.restarts"),
            before_flink.counter("flink.recovery.restarts"));
  EXPECT_GT(after_flink.counter("flink.recovery.replayed_records"),
            before_flink.counter("flink.recovery.replayed_records"));
  EXPECT_GT(after_flink.counter("fault.injected"),
            before_flink.counter("fault.injected"));
  EXPECT_GE(after_flink.gauge("flink.recovery.time_ms", 0.0), 0.0);

  const auto before_spark = global.snapshot();
  (void)run_chaos(Engine::kSpark, Sdk::kNative, QueryId::kIdentity, 1,
                  /*exactly_once=*/false);
  const auto after_spark = global.snapshot();
  EXPECT_GT(after_spark.counter("spark.recovery.batch_retries"),
            before_spark.counter("spark.recovery.batch_retries"));
  EXPECT_GT(after_spark.counter("spark.recovery.replayed_records"),
            before_spark.counter("spark.recovery.replayed_records"));

  const auto before_apex = global.snapshot();
  (void)run_chaos(Engine::kApex, Sdk::kNative, QueryId::kIdentity, 1,
                  /*exactly_once=*/false);
  const auto after_apex = global.snapshot();
  EXPECT_GT(after_apex.counter("apex.recovery.restarts"),
            before_apex.counter("apex.recovery.restarts"));
  EXPECT_GT(after_apex.counter("apex.recovery.replayed_records"),
            before_apex.counter("apex.recovery.replayed_records"));
}

}  // namespace
}  // namespace dsps
