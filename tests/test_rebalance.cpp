// Consumer-group coordinator tests: sticky assignment, cooperative
// rebalance on join/leave, commit-then-release hand-off (no record lost or
// duplicated across a rebalance), per-partition committed-offset isolation,
// and the producer partitioners feeding multi-partition topics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kafka/broker.hpp"
#include "kafka/consumer.hpp"
#include "kafka/consumer_group.hpp"
#include "kafka/producer.hpp"

namespace dsps::kafka {
namespace {

TopicConfig partitions(int n) {
  return TopicConfig{.partitions = n,
                     .replication_factor = 1,
                     .timestamp_type = TimestampType::kLogAppendTime};
}

void produce_round_robin(Broker& broker, const std::string& topic, int count) {
  Producer producer(broker,
                    ProducerConfig{.partitioner = Partitioner::kRoundRobin,
                                   .batch_size = 100});
  for (int i = 0; i < count; ++i) {
    producer.send(topic, ProducerRecord{.value = std::to_string(i)})
        .expect_ok();
  }
  producer.close().expect_ok();
}

/// Record identity across consumers: (partition, offset).
using RecordId = std::pair<int, std::int64_t>;

std::vector<RecordId> drain_ids(std::vector<ConsumedRecord>& sink,
                                const std::vector<ConsumedRecord>& records) {
  std::vector<RecordId> ids;
  for (const auto& record : records) {
    ids.emplace_back(record.tp.partition, record.offset);
    sink.push_back(record);
  }
  return ids;
}

// --- GroupCoordinator unit tests ---------------------------------------------

TEST(GroupCoordinatorTest, SingleMemberOwnsEverything) {
  GroupCoordinator coordinator;
  const auto member = coordinator.join("g", "t", 4);
  const auto view = coordinator.sync("g", "t", member);
  EXPECT_EQ(view.owned.size(), 4u);
  EXPECT_TRUE(view.revoked.empty());
}

TEST(GroupCoordinatorTest, StickyAssignmentMovesMinimally) {
  GroupCoordinator coordinator;
  const auto a = coordinator.join("g", "t", 4);
  const auto before = coordinator.sync("g", "t", a);
  ASSERT_EQ(before.owned.size(), 4u);

  const auto b = coordinator.join("g", "t", 4);
  // Cooperative protocol: the moving partitions stay with A (as revoked)
  // until A releases them; B starts with none of them.
  auto view_a = coordinator.sync("g", "t", a);
  auto view_b = coordinator.sync("g", "t", b);
  EXPECT_EQ(view_a.owned.size(), 2u);    // keeps exactly its target share
  EXPECT_EQ(view_a.revoked.size(), 2u);  // hands over the rest
  EXPECT_TRUE(view_b.owned.empty());     // nothing until release

  // A keeps a subset of what it had (stickiness: no partition it retains
  // was swapped for another).
  for (const int p : view_a.owned) {
    EXPECT_TRUE(std::count(before.owned.begin(), before.owned.end(), p) == 1);
  }

  for (const int p : view_a.revoked) {
    coordinator.release("g", "t", a, p);
  }
  view_b = coordinator.sync("g", "t", b);
  EXPECT_EQ(view_b.owned.size(), 2u);
  // Disjoint and complete.
  std::set<int> all(view_a.owned.begin(), view_a.owned.end());
  all.insert(view_b.owned.begin(), view_b.owned.end());
  EXPECT_EQ(all.size(), 4u);
}

TEST(GroupCoordinatorTest, GenerationBumpsOnMembershipChange) {
  GroupCoordinator coordinator;
  const auto a = coordinator.join("g", "t", 2);
  const auto g1 = coordinator.generation("g", "t");
  const auto b = coordinator.join("g", "t", 2);
  const auto g2 = coordinator.generation("g", "t");
  EXPECT_GT(g2, g1);
  coordinator.leave("g", "t", b);
  EXPECT_GT(coordinator.generation("g", "t"), g2);
  (void)a;
}

TEST(GroupCoordinatorTest, LeaveReassignsOwnedPartitions) {
  GroupCoordinator coordinator;
  const auto a = coordinator.join("g", "t", 4);
  const auto b = coordinator.join("g", "t", 4);
  // Settle the hand-off.
  for (const int p : coordinator.sync("g", "t", a).revoked) {
    coordinator.release("g", "t", a, p);
  }
  coordinator.leave("g", "t", b);
  // A departed owner transfers immediately (no release possible).
  const auto view = coordinator.sync("g", "t", a);
  EXPECT_EQ(view.owned.size(), 4u);
  EXPECT_TRUE(view.revoked.empty());
}

TEST(GroupCoordinatorTest, BalancedAcrossManyMembers) {
  GroupCoordinator coordinator;
  std::vector<std::string> members;
  for (int m = 0; m < 3; ++m) members.push_back(coordinator.join("g", "t", 8));
  // Settle all pending hand-offs (iterate until no member reports revoked).
  for (int round = 0; round < 8; ++round) {
    bool moved = false;
    for (const auto& member : members) {
      for (const int p : coordinator.sync("g", "t", member).revoked) {
        coordinator.release("g", "t", member, p);
        moved = true;
      }
    }
    if (!moved) break;
  }
  std::set<int> all;
  for (const auto& member : members) {
    const auto view = coordinator.sync("g", "t", member);
    EXPECT_TRUE(view.revoked.empty());
    EXPECT_GE(view.owned.size(), 2u);
    EXPECT_LE(view.owned.size(), 3u);
    all.insert(view.owned.begin(), view.owned.end());
  }
  EXPECT_EQ(all.size(), 8u);
}

// --- Consumer group-mode integration -----------------------------------------

TEST(ConsumerGroupTest, SubscribeGroupRequiresGroupId) {
  Broker broker;
  broker.create_topic("t", partitions(2)).expect_ok();
  Consumer consumer(broker);
  EXPECT_EQ(consumer.subscribe_group("t").code(),
            StatusCode::kInvalidArgument);
}

TEST(ConsumerGroupTest, SingleConsumerDrainsAllPartitions) {
  Broker broker;
  broker.create_topic("t", partitions(4)).expect_ok();
  produce_round_robin(broker, "t", 400);
  Consumer consumer(broker, ConsumerConfig{.group_id = "g"});
  consumer.subscribe_group("t").expect_ok();
  std::vector<ConsumedRecord> out;
  while (out.size() < 400u) {
    for (auto& record : consumer.poll(10)) out.push_back(std::move(record));
  }
  EXPECT_TRUE(consumer.at_end());
}

TEST(ConsumerGroupTest, RebalanceMidStreamLosesAndDuplicatesNothing) {
  // Differential check against a single-consumer drain: A starts alone,
  // B joins mid-stream, later leaves gracefully; the union of what A and B
  // consumed must be exactly every (partition, offset) pair once.
  Broker broker;
  broker.create_topic("t", partitions(8)).expect_ok();
  const int kRecords = 4000;
  produce_round_robin(broker, "t", kRecords);

  Consumer a(broker, ConsumerConfig{.group_id = "g"});
  a.subscribe_group("t").expect_ok();

  std::vector<ConsumedRecord> consumed;
  std::set<RecordId> seen;
  std::size_t duplicates = 0;
  auto account = [&](const std::vector<RecordId>& ids) {
    for (const auto& id : ids) {
      if (!seen.insert(id).second) ++duplicates;
    }
  };

  // Phase 1: A alone, roughly a quarter of the stream.
  while (consumed.size() < static_cast<std::size_t>(kRecords) / 4) {
    account(drain_ids(consumed, a.poll(10)));
  }

  // Phase 2: B joins; both drain concurrently (interleaved polls — the
  // synchronous poll-process-poll pattern the hand-off relies on).
  {
    Consumer b(broker, ConsumerConfig{.group_id = "g"});
    b.subscribe_group("t").expect_ok();
    while (consumed.size() < static_cast<std::size_t>(kRecords) / 2) {
      account(drain_ids(consumed, a.poll(0)));
      account(drain_ids(consumed, b.poll(0)));
    }
    // Phase 3: B leaves gracefully (commits, then hands partitions back).
    b.leave_group().expect_ok();
  }

  // Phase 4: A finishes the stream alone.
  while (consumed.size() < static_cast<std::size_t>(kRecords)) {
    account(drain_ids(consumed, a.poll(10)));
  }

  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRecords));
  // Completeness per partition: offsets [0, end) all present.
  for (int p = 0; p < 8; ++p) {
    const auto end = broker.end_offset({"t", p});
    ASSERT_TRUE(end.is_ok());
    for (std::int64_t o = 0; o < end.value(); ++o) {
      EXPECT_TRUE(seen.count({p, o})) << "missing p" << p << "@" << o;
    }
  }
}

TEST(ConsumerGroupTest, CrashLeaveReplaysUncommittedTail) {
  // A destructs without leave_group() (crash-like): its partitions transfer
  // at the last *committed* offsets, so the survivor re-reads the
  // uncommitted tail — at-least-once, never losing records.
  Broker broker;
  broker.create_topic("t", partitions(2)).expect_ok();
  produce_round_robin(broker, "t", 200);

  Consumer survivor(broker, ConsumerConfig{.group_id = "g"});
  survivor.subscribe_group("t").expect_ok();
  std::set<RecordId> seen;
  {
    Consumer doomed(broker, ConsumerConfig{.group_id = "g"});
    doomed.subscribe_group("t").expect_ok();
    // Both sync in and consume a little; neither commits.
    for (int i = 0; i < 4; ++i) {
      for (const auto& r : survivor.poll(0)) {
        seen.insert({r.tp.partition, r.offset});
      }
      // Dropped on the floor: the crash loses this consumer's progress.
      (void)doomed.poll(0);
    }
  }  // doomed "crashes"

  while (seen.size() < 200u) {
    for (const auto& r : survivor.poll(10)) {
      seen.insert({r.tp.partition, r.offset});
    }
  }
  // No loss: every offset of both partitions was seen by *someone alive*.
  for (int p = 0; p < 2; ++p) {
    const auto end = broker.end_offset({"t", p});
    ASSERT_TRUE(end.is_ok());
    for (std::int64_t o = 0; o < end.value(); ++o) {
      EXPECT_TRUE(seen.count({p, o})) << "lost p" << p << "@" << o;
    }
  }
}

TEST(ConsumerGroupTest, CommittedOffsetsAreIsolatedPerPartition) {
  Broker broker;
  broker.create_topic("t", partitions(3)).expect_ok();
  broker.commit_offset("g", {"t", 0}, 7);
  broker.commit_offset("g", {"t", 2}, 11);
  EXPECT_EQ(broker.committed_offset("g", {"t", 0}), 7);
  EXPECT_EQ(broker.committed_offset("g", {"t", 1}), -1);
  EXPECT_EQ(broker.committed_offset("g", {"t", 2}), 11);
  // Groups are isolated from each other too.
  EXPECT_EQ(broker.committed_offset("other", {"t", 0}), -1);
}

// --- producer partitioners ----------------------------------------------------

TEST(PartitionerTest, RoundRobinSpreadsEvenly) {
  Broker broker;
  broker.create_topic("t", partitions(4)).expect_ok();
  Producer producer(broker,
                    ProducerConfig{.partitioner = Partitioner::kRoundRobin,
                                   .batch_size = 1});
  for (int i = 0; i < 40; ++i) {
    producer.send("t", ProducerRecord{.value = "v"}).expect_ok();
  }
  producer.close().expect_ok();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(broker.end_offset({"t", p}).value(), 10);
  }
}

TEST(PartitionerTest, KeyHashIsStablePerKey) {
  Broker broker;
  broker.create_topic("t", partitions(4)).expect_ok();
  Producer producer(broker,
                    ProducerConfig{.partitioner = Partitioner::kKeyHash,
                                   .batch_size = 1});
  for (int i = 0; i < 30; ++i) {
    producer
        .send("t", ProducerRecord{.key = Payload("key-" + std::to_string(i % 3)),
                                  .value = std::to_string(i)})
        .expect_ok();
  }
  producer.close().expect_ok();
  // Each key's 10 records landed on a single partition: reading any
  // partition, all records of a given key are contiguous per that key.
  std::map<std::string, std::set<int>> key_partitions;
  for (int p = 0; p < 4; ++p) {
    std::vector<StoredRecord> records;
    broker.fetch({"t", p}, 0, 100, records).status().expect_ok();
    for (const auto& record : records) {
      key_partitions[record.key.str()].insert(p);
    }
  }
  EXPECT_EQ(key_partitions.size(), 3u);
  for (const auto& [key, where] : key_partitions) {
    EXPECT_EQ(where.size(), 1u) << key << " spread over partitions";
  }
}

TEST(PartitionerTest, KeylessKeyHashFallsBackToRoundRobin) {
  Broker broker;
  broker.create_topic("t", partitions(4)).expect_ok();
  Producer producer(broker, ProducerConfig{.batch_size = 1});
  for (int i = 0; i < 8; ++i) {
    producer.send("t", ProducerRecord{.value = "v"}).expect_ok();
  }
  producer.close().expect_ok();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(broker.end_offset({"t", p}).value(), 2);
  }
}

}  // namespace
}  // namespace dsps::kafka
