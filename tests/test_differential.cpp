// Randomized differential tests.
//
// 1. Pipeline fuzzing: seeded random chains of map/filter/flatmap transforms
//    over seeded random data, executed on the DirectRunner and on all three
//    engine runners at parallelism 1 and 2 — outputs must be identical as
//    multisets. This is the strongest form of the abstraction-layer
//    correctness claim: ANY pipeline, same answer everywhere.
// 2. Broker fuzzing: seeded random append/fetch/batch sequences checked
//    against a simple in-memory model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/apex_runner.hpp"
#include "beam/runners/direct_runner.hpp"
#include "beam/runners/flink_runner.hpp"
#include "beam/runners/spark_runner.hpp"
#include "common/rng.hpp"

namespace dsps {
namespace {

// --- random pipeline construction --------------------------------------------

/// One randomly chosen deterministic transform over strings, plus its
/// reference implementation over a vector.
struct RandomStage {
  std::function<beam::PCollection<std::string>(
      const beam::PCollection<std::string>&)>
      apply;
  std::function<std::vector<std::string>(std::vector<std::string>)> reference;
};

RandomStage make_stage(std::uint64_t pick, std::uint64_t param) {
  switch (pick % 5) {
    case 0: {  // append a marker
      const std::string marker = "#" + std::to_string(param % 10);
      return RandomStage{
          .apply =
              [marker](const beam::PCollection<std::string>& in) {
                return in.apply(
                    beam::MapElements<std::string, std::string>::via(
                        [marker](const std::string& s) { return s + marker; },
                        "Append"));
              },
          .reference =
              [marker](std::vector<std::string> in) {
                for (auto& s : in) s += marker;
                return in;
              }};
    }
    case 1: {  // keep by length parity
      const bool keep_even = param % 2 == 0;
      return RandomStage{
          .apply =
              [keep_even](const beam::PCollection<std::string>& in) {
                return in.apply(beam::Filter<std::string>::by(
                    [keep_even](const std::string& s) {
                      return (s.size() % 2 == 0) == keep_even;
                    },
                    "LengthParity"));
              },
          .reference =
              [keep_even](std::vector<std::string> in) {
                std::vector<std::string> out;
                for (auto& s : in) {
                  if ((s.size() % 2 == 0) == keep_even) {
                    out.push_back(std::move(s));
                  }
                }
                return out;
              }};
    }
    case 2: {  // duplicate records whose numeric tail is divisible by k
      const auto k = 2 + param % 5;
      return RandomStage{
          .apply =
              [k](const beam::PCollection<std::string>& in) {
                return in.apply(
                    beam::FlatMapElements<std::string, std::string>::via(
                        [k](const std::string& s,
                            const std::function<void(std::string)>& out) {
                          out(s);
                          if (std::hash<std::string>{}(s) % k == 0) out(s);
                        },
                        "MaybeDuplicate"));
              },
          .reference =
              [k](std::vector<std::string> in) {
                std::vector<std::string> out;
                for (auto& s : in) {
                  out.push_back(s);
                  if (std::hash<std::string>{}(s) % k == 0) out.push_back(s);
                }
                return out;
              }};
    }
    case 3: {  // truncate to a prefix
      const std::size_t length = 1 + param % 12;
      return RandomStage{
          .apply =
              [length](const beam::PCollection<std::string>& in) {
                return in.apply(
                    beam::MapElements<std::string, std::string>::via(
                        [length](const std::string& s) {
                          return s.substr(0, length);
                        },
                        "Truncate"));
              },
          .reference =
              [length](std::vector<std::string> in) {
                for (auto& s : in) s = s.substr(0, length);
                return in;
              }};
    }
    default: {  // keep records containing a digit
      const char digit = static_cast<char>('0' + param % 10);
      return RandomStage{
          .apply =
              [digit](const beam::PCollection<std::string>& in) {
                return in.apply(beam::Filter<std::string>::by(
                    [digit](const std::string& s) {
                      return s.find(digit) != std::string::npos;
                    },
                    "HasDigit"));
              },
          .reference =
              [digit](std::vector<std::string> in) {
                std::vector<std::string> out;
                for (auto& s : in) {
                  if (s.find(digit) != std::string::npos) {
                    out.push_back(std::move(s));
                  }
                }
                return out;
              }};
    }
  }
}

std::vector<std::string> random_input(Xoshiro256& rng, std::size_t count) {
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string line = "rec" + std::to_string(rng.next_below(1000));
    const auto extra = rng.next_below(20);
    line.append(extra, 'x');
    lines.push_back(std::move(line));
  }
  return lines;
}

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, AllRunnersMatchReference) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const auto input = random_input(rng, 200 + rng.next_below(200));
  const std::size_t stage_count = 1 + rng.next_below(5);
  std::vector<RandomStage> stages;
  for (std::size_t i = 0; i < stage_count; ++i) {
    stages.push_back(make_stage(rng.next(), rng.next()));
  }

  // Reference result.
  std::vector<std::string> expected = input;
  for (const auto& stage : stages) {
    expected = stage.reference(std::move(expected));
  }
  std::sort(expected.begin(), expected.end());

  struct RunnerCase {
    const char* name;
    std::function<std::unique_ptr<beam::PipelineRunner>()> make;
  };
  const RunnerCase runners[] = {
      {"direct", [] { return std::make_unique<beam::DirectRunner>(); }},
      {"flink-p2",
       [] {
         return std::make_unique<beam::FlinkRunner>(
             beam::FlinkRunnerOptions{.parallelism = 2});
       }},
      {"spark-p2",
       [] {
         return std::make_unique<beam::SparkRunner>(
             beam::SparkRunnerOptions{.parallelism = 2,
                                      .batch_interval_ms = 5});
       }},
      {"apex-p2",
       [] {
         return std::make_unique<beam::ApexRunner>(
             beam::ApexRunnerOptions{.parallelism = 2});
       }},
  };

  for (const auto& runner_case : runners) {
    kafka::Broker broker;
    broker.create_topic("in", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    broker.create_topic("out", kafka::TopicConfig{.partitions = 1})
        .expect_ok();
    for (const auto& line : input) {
      broker.append({"in", 0}, kafka::ProducerRecord{.value = line}, false)
          .status()
          .expect_ok();
    }
    beam::Pipeline pipeline;
    auto collection =
        pipeline
            .apply(beam::KafkaIO::read(broker,
                                       beam::KafkaReadConfig{.topic = "in"}))
            .apply(beam::KafkaIO::without_metadata())
            .apply(beam::Values<runtime::Payload>::create<runtime::Payload>())
            // The fuzz stages are string-typed; materialize once so every
            // seeded stage chain composes unchanged.
            .apply(beam::MapElements<runtime::Payload, std::string>::via(
                [](const runtime::Payload& s) { return s.str(); },
                "Materialize"));
    for (const auto& stage : stages) collection = stage.apply(collection);
    collection.apply(
        beam::KafkaIO::write(broker, beam::KafkaWriteConfig{.topic = "out"}));

    auto runner = runner_case.make();
    auto result = pipeline.run(*runner);
    ASSERT_TRUE(result.is_ok())
        << runner_case.name << ": " << result.status().to_string();

    std::vector<kafka::StoredRecord> stored;
    broker.fetch({"out", 0}, 0, 1'000'000, stored).status().expect_ok();
    std::vector<std::string> actual;
    for (auto& record : stored) actual.push_back(record.value.str());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected)
        << "seed " << seed << " diverged on " << runner_case.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- broker model fuzzing ---------------------------------------------------------

TEST(BrokerFuzzTest, RandomOpsMatchInMemoryModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed);
    kafka::Broker broker;
    const int partitions = 1 + static_cast<int>(rng.next_below(4));
    broker
        .create_topic("t", kafka::TopicConfig{.partitions = partitions})
        .expect_ok();
    std::vector<std::vector<std::string>> model(
        static_cast<std::size_t>(partitions));

    for (int op = 0; op < 500; ++op) {
      const int partition = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(partitions)));
      auto& shadow = model[static_cast<std::size_t>(partition)];
      switch (rng.next_below(3)) {
        case 0: {  // single append
          const std::string value = "v" + std::to_string(rng.next_below(1000));
          broker
              .append({"t", partition},
                      kafka::ProducerRecord{.value = value}, false)
              .status()
              .expect_ok();
          shadow.push_back(value);
          break;
        }
        case 1: {  // batch append
          std::vector<kafka::ProducerRecord> batch;
          const auto n = 1 + rng.next_below(16);
          for (std::uint64_t i = 0; i < n; ++i) {
            const std::string value =
                "b" + std::to_string(rng.next_below(1000));
            batch.push_back(kafka::ProducerRecord{.value = value});
            shadow.push_back(value);
          }
          broker.append_batch({"t", partition}, batch, false)
              .status()
              .expect_ok();
          break;
        }
        default: {  // random range fetch
          if (shadow.empty()) break;
          const auto offset = rng.next_below(shadow.size());
          const auto limit = 1 + rng.next_below(32);
          std::vector<kafka::StoredRecord> fetched;
          broker
              .fetch({"t", partition}, static_cast<std::int64_t>(offset),
                     limit, fetched)
              .status()
              .expect_ok();
          const std::size_t expected_count =
              std::min<std::size_t>(limit, shadow.size() - offset);
          ASSERT_EQ(fetched.size(), expected_count) << "seed " << seed;
          for (std::size_t i = 0; i < fetched.size(); ++i) {
            EXPECT_EQ(fetched[i].value, shadow[offset + i]);
            EXPECT_EQ(fetched[i].offset,
                      static_cast<std::int64_t>(offset + i));
          }
          break;
        }
      }
      EXPECT_EQ(broker.end_offset({"t", partition}).value(),
                static_cast<std::int64_t>(shadow.size()));
    }
  }
}

}  // namespace
}  // namespace dsps
