// Tests for the shared runtime substrate (src/runtime/): refcounted
// payloads, the unified metrics registry, and the supervised task
// lifecycle — plus the cross-engine shutdown contract the substrate
// guarantees: stopping a job mid-stream delivers every record the job
// accepted exactly once, on all three engines, matching a DirectRunner
// reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apex/dag.hpp"
#include "apex/engine.hpp"
#include "apex/operators_library.hpp"
#include "beam/kafka_io.hpp"
#include "beam/pipeline.hpp"
#include "beam/runners/direct_runner.hpp"
#include "flink/environment.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/payload.hpp"
#include "runtime/task_runtime.hpp"
#include "spark/streaming_context.hpp"
#include "yarn/resource_manager.hpp"

namespace dsps {
namespace {

using runtime::MetricsRegistry;
using runtime::Payload;
using runtime::PayloadArena;
using runtime::TaskRuntime;

// Long enough to defeat small-string optimization, so an adopted buffer is
// heap storage whose pointer survives the move.
const std::string kLongText =
    "a-reasonably-long-record-value-that-cannot-live-in-SSO-storage";

// --- Payload -----------------------------------------------------------------

TEST(PayloadTest, DefaultIsEmptyNotNull) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.view(), "");
}

TEST(PayloadTest, AdoptingRvalueStringCopiesNoBytes) {
  std::string text = kLongText;
  const char* buffer = text.data();
  Payload p(std::move(text));
  EXPECT_EQ(p.data(), buffer);  // same heap buffer, zero copies
  EXPECT_EQ(p.view(), kLongText);
}

TEST(PayloadTest, CopySharesStorageInsteadOfCopyingBytes) {
  Payload a{kLongText};
  Payload b = a;
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.data(), b.data());
}

TEST(PayloadTest, SliceSharesStorageAndClamps) {
  Payload p("hello,world");
  Payload field = p.slice(6, 5);
  EXPECT_EQ(field.view(), "world");
  EXPECT_TRUE(field.shares_storage_with(p));
  EXPECT_EQ(p.slice(100, 5).view(), "");    // pos past the end
  EXPECT_EQ(p.slice(6, 100).view(), "world");  // count clamped
}

TEST(PayloadTest, ComparesAgainstStringsAndLiterals) {
  Payload p("value-7");
  EXPECT_EQ(p, "value-7");
  EXPECT_EQ(p, std::string("value-7"));
  EXPECT_EQ(p, std::string_view("value-7"));
  EXPECT_EQ(p, Payload("value-7"));
  EXPECT_FALSE(p == "value-8");
  EXPECT_LT(Payload("a"), Payload("b"));
}

TEST(PayloadTest, HashAgreesWithStringView) {
  Payload p(kLongText);
  EXPECT_EQ(std::hash<Payload>{}(p),
            std::hash<std::string_view>{}(kLongText));
}

TEST(PayloadTest, PayloadKeepsAdoptedStorageAliveAfterSourceDies) {
  Payload p;
  {
    std::string text = kLongText;
    p = Payload(std::move(text));
  }
  EXPECT_EQ(p.view(), kLongText);
}

// --- PayloadArena ------------------------------------------------------------

TEST(PayloadArenaTest, ManySmallPayloadsShareOneChunk) {
  PayloadArena arena(4096);
  std::vector<Payload> payloads;
  for (int i = 0; i < 100; ++i) {
    payloads.push_back(arena.intern("rec" + std::to_string(i)));
  }
  EXPECT_EQ(arena.chunks_allocated(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)],
              "rec" + std::to_string(i));
    EXPECT_TRUE(payloads[0].shares_storage_with(
        payloads[static_cast<std::size_t>(i)]));
  }
}

TEST(PayloadArenaTest, OversizedTextGetsDedicatedChunk) {
  PayloadArena arena(64);
  const std::string big(1000, 'x');
  Payload p = arena.intern(big);
  EXPECT_EQ(p.view(), big);
  EXPECT_GE(arena.chunks_allocated(), 1u);
  EXPECT_EQ(arena.bytes_interned(), 1000u);
}

TEST(PayloadArenaTest, InternedPayloadOutlivesTheArena) {
  Payload survivor;
  {
    PayloadArena arena;
    survivor = arena.intern(kLongText);
  }
  // The chunk is refcounted storage, not owned by the arena object.
  EXPECT_EQ(survivor.view(), kLongText);
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterSumsAcrossConcurrentThreads) {
  MetricsRegistry registry;
  auto counter = registry.counter("records_in");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([counter]() mutable {
      for (int i = 0; i < 10'000; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 80'000u);
  EXPECT_EQ(registry.snapshot().counter("records_in"), 80'000u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.counter("c").add(4);
  EXPECT_EQ(registry.snapshot().counter("c"), 7u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  auto gauge = registry.gauge("depth");
  gauge.set(5.0);
  gauge.set(2.5);
  EXPECT_EQ(registry.snapshot().gauge("depth"), 2.5);
}

TEST(MetricsRegistryTest, HistogramTracksCountSumAndPercentiles) {
  MetricsRegistry registry;
  auto histogram = registry.histogram("batch.duration_us");
  for (std::uint64_t us : {100u, 200u, 400u, 800u}) histogram.record_us(us);
  const auto snapshot = registry.snapshot();
  const auto& summary = snapshot.histograms.at("batch.duration_us");
  EXPECT_EQ(summary.count, 4u);
  EXPECT_EQ(summary.sum_us, 1500u);
  EXPECT_EQ(summary.mean_us(), 375.0);
  EXPECT_GE(summary.percentile_us(1.0), 800u);
  EXPECT_LE(summary.percentile_us(0.0), 128u);  // bucket upper bound
}

TEST(MetricsRegistryTest, SnapshotFallbacksAndPrefixScan) {
  MetricsRegistry registry;
  registry.counter("operator.map.tuples_in").add(7);
  registry.counter("operator.sink.tuples_in").add(9);
  registry.counter("windows.emitted").add(1);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("missing", 42u), 42u);
  EXPECT_EQ(snapshot.gauge("missing", -1.0), -1.0);
  const auto operators = snapshot.counters_with_prefix("operator.");
  ASSERT_EQ(operators.size(), 2u);
  EXPECT_EQ(operators[0].first, "operator.map.tuples_in");
  EXPECT_EQ(operators[0].second, 7u);
  EXPECT_EQ(operators[1].first, "operator.sink.tuples_in");
}

TEST(MetricsRegistryTest, MergeAddsCountersUnderPrefix) {
  MetricsRegistry job;
  job.counter("records").add(10);
  job.gauge("duration_ms").set(12.5);
  job.histogram("latency").record_us(64);

  MetricsRegistry process;
  process.merge(job.snapshot(), "flink.");
  process.merge(job.snapshot(), "flink.");  // two jobs: counters add
  const auto snapshot = process.snapshot();
  EXPECT_EQ(snapshot.counter("flink.records"), 20u);
  EXPECT_EQ(snapshot.gauge("flink.duration_ms"), 12.5);
  EXPECT_EQ(snapshot.histograms.at("flink.latency").count, 2u);
}

TEST(MetricsRegistryTest, ToJsonCarriesAllThreeKinds) {
  MetricsRegistry registry;
  registry.counter("in").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h").record_us(10);
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"in\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- TaskRuntime -------------------------------------------------------------

TEST(TaskRuntimeTest, JoinAllWaitsForEveryTask) {
  TaskRuntime tasks("test");
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    tasks.spawn("worker-" + std::to_string(i), [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  EXPECT_TRUE(tasks.join_all().is_ok());
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(tasks.spawned_count(), 4u);
}

TEST(TaskRuntimeTest, ThrowingTaskFailsTheJobInsteadOfHangingIt) {
  TaskRuntime tasks("test");
  // Supervisor wiring used by every engine: first failure requests stop,
  // so the healthy (potentially blocked) peer task unwinds.
  tasks.set_failure_handler(
      [&tasks](const Status&) { tasks.request_stop(); });
  tasks.spawn("healthy", [&tasks] {
    while (!tasks.stop_requested()) std::this_thread::yield();
  });
  tasks.spawn("crashing", [] {
    throw std::runtime_error("operator exploded");
  });
  const Status status = tasks.join_all();
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("operator exploded"), std::string::npos);
  EXPECT_NE(status.to_string().find("crashing"), std::string::npos);
}

TEST(TaskRuntimeTest, FirstFailureWinsAndIsSticky) {
  TaskRuntime tasks("test");
  tasks.spawn("first", [] { throw std::runtime_error("first"); });
  tasks.wait(0);
  tasks.spawn("second", [] { throw std::runtime_error("second"); });
  EXPECT_FALSE(tasks.join_all().is_ok());
  EXPECT_NE(tasks.first_failure().to_string().find("first"),
            std::string::npos);
}

TEST(TaskRuntimeTest, StopHooksRunOnceAndLateHooksRunImmediately) {
  TaskRuntime tasks("test");
  std::atomic<int> hook_runs{0};
  tasks.on_stop([&hook_runs] { hook_runs.fetch_add(1); });
  tasks.request_stop();
  tasks.request_stop();  // idempotent
  EXPECT_EQ(hook_runs.load(), 1);
  // Registering after stop was requested runs the hook right away (the
  // "close the queue I just created" case during teardown).
  tasks.on_stop([&hook_runs] { hook_runs.fetch_add(1); });
  EXPECT_EQ(hook_runs.load(), 2);
  EXPECT_TRUE(tasks.stop_requested());
}

TEST(TaskRuntimeTest, WaitIsIdempotentAndDestructorJoins) {
  std::atomic<bool> ran{false};
  {
    TaskRuntime tasks("test");
    const auto id = tasks.spawn("one", [&ran] { ran.store(true); });
    tasks.wait(id);
    tasks.wait(id);  // second wait is a no-op
    tasks.spawn("straggler", [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }  // destructor joins the straggler without aborting
  EXPECT_TRUE(ran.load());
}

TEST(TaskRuntimeTest, OrderedDrainSurvivesWorkerThrowingDuringStop) {
  // Regression: wait() used to mark a task joined before its failure was
  // published, so a concurrent ordered drain could read first_failure()
  // too early — or two waiters raced the same std::thread::join and one
  // hung forever. Both drains below must finish and see the error.
  TaskRuntime tasks("test");
  tasks.set_failure_handler(
      [&tasks](const Status&) { tasks.request_stop(); });
  std::atomic<bool> release{false};
  tasks.spawn("blocker", [&] {
    while (!release.load() && !tasks.stop_requested()) {
      std::this_thread::yield();
    }
  });
  const auto thrower = tasks.spawn("thrower", [&] {
    while (!release.load()) std::this_thread::yield();
    throw std::runtime_error("died during drain");
  });
  std::thread concurrent([&tasks, thrower] { tasks.wait(thrower); });
  release.store(true);
  const Status status = tasks.join_all();
  concurrent.join();
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("died during drain"), std::string::npos);
  EXPECT_NE(tasks.first_failure().to_string().find("thrower"),
            std::string::npos);
}

TEST(TaskRuntimeTest, SupervisedTaskRestartsUntilSuccess) {
  const std::uint64_t restarts_before =
      MetricsRegistry::global().snapshot().counter("runtime.task_restarts");
  TaskRuntime tasks("test");
  std::atomic<int> attempts{0};
  tasks.spawn_supervised(
      "flaky",
      [&attempts] {
        if (attempts.fetch_add(1) < 2) throw std::runtime_error("transient");
      },
      runtime::RestartPolicy{.max_attempts = 5,
                             .backoff = {.initial_us = 1, .max_us = 1}});
  EXPECT_TRUE(tasks.join_all().is_ok());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(
      MetricsRegistry::global().snapshot().counter("runtime.task_restarts"),
      restarts_before + 2);
}

TEST(TaskRuntimeTest, SupervisedTaskExhaustionSurfacesLastError) {
  TaskRuntime tasks("test");
  std::atomic<int> attempts{0};
  tasks.spawn_supervised(
      "doomed",
      [&attempts] {
        throw std::runtime_error("attempt " +
                                 std::to_string(attempts.fetch_add(1)));
      },
      runtime::RestartPolicy{.max_attempts = 3,
                             .backoff = {.initial_us = 1, .max_us = 1}});
  const Status status = tasks.join_all();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(attempts.load(), 3);
  // Exhaustion surfaces the *last* attempt's error, not the first.
  EXPECT_NE(status.to_string().find("attempt 2"), std::string::npos);
}

// --- Backoff / run_supervised ------------------------------------------------

TEST(BackoffTest, GrowsExponentiallyWithinJitterBoundsAndCaps) {
  const runtime::BackoffPolicy policy{.initial_us = 100,
                                      .multiplier = 2.0,
                                      .max_us = 1'000,
                                      .jitter = 0.2,
                                      .seed = 1};
  runtime::Backoff backoff(policy);
  std::uint64_t base = policy.initial_us;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t delay = backoff.next_delay_us();
    const double capped =
        static_cast<double>(std::min<std::uint64_t>(base, policy.max_us));
    EXPECT_GE(delay,
              static_cast<std::uint64_t>(capped * (1.0 - policy.jitter)));
    EXPECT_LE(delay,
              static_cast<std::uint64_t>(capped * (1.0 + policy.jitter)) + 1);
    base = std::min<std::uint64_t>(base * 2, policy.max_us);
  }
}

TEST(BackoffTest, JitterIsDeterministicPerSeed) {
  const runtime::BackoffPolicy policy{
      .initial_us = 200, .multiplier = 2.0, .max_us = 20'000, .seed = 7};
  runtime::Backoff a(policy);
  runtime::Backoff b(policy);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next_delay_us(), b.next_delay_us());
  }
  // A different seed draws a different jitter stream.
  runtime::BackoffPolicy other = policy;
  other.seed = 8;
  runtime::Backoff c(policy);
  runtime::Backoff d(other);
  bool any_differs = false;
  for (int i = 0; i < 8; ++i) {
    any_differs |= c.next_delay_us() != d.next_delay_us();
  }
  EXPECT_TRUE(any_differs);
}

TEST(BackoffTest, ResetReplaysTheSequence) {
  runtime::Backoff backoff(runtime::BackoffPolicy{.seed = 99});
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 6; ++i) first.push_back(backoff.next_delay_us());
  backoff.reset();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(backoff.next_delay_us(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(RunSupervisedTest, RetriesUntilSuccess) {
  int attempts = 0;
  int retries = 0;
  const Status status = runtime::run_supervised(
      runtime::RestartPolicy{.max_attempts = 5,
                             .backoff = {.initial_us = 1, .max_us = 1}},
      [&attempts](int attempt) -> Status {
        ++attempts;
        if (attempt < 2) return Status::internal("transient");
        return Status::ok();
      },
      [&retries](int, const Status&) { ++retries; });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retries, 2);
}

TEST(RunSupervisedTest, ExhaustionSurfacesLastErrorAndSkipsFinalRetryHook) {
  int retries = 0;
  const Status status = runtime::run_supervised(
      runtime::RestartPolicy{.max_attempts = 3,
                             .backoff = {.initial_us = 1, .max_us = 1}},
      [](int attempt) -> Status {
        throw std::runtime_error("boom " + std::to_string(attempt));
      },
      [&retries](int, const Status&) { ++retries; });
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("boom 2"), std::string::npos);
  EXPECT_EQ(retries, 2);  // the final, non-retried failure skips on_retry
}

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjectorTest, DisarmedPointsAreNoOps) {
  auto& injector = runtime::FaultInjector::instance();
  injector.disarm();
  EXPECT_FALSE(injector.armed());
  injector.maybe_throw(runtime::FaultPoint::kOperatorThrow, "anywhere");
  injector.maybe_stall(runtime::FaultPoint::kQueueStall, "anywhere");
  EXPECT_FALSE(injector.broker_unavailable("anywhere"));
}

TEST(FaultInjectorTest, FiresAfterHitsAndRespectsTimesCap) {
  auto& injector = runtime::FaultInjector::instance();
  injector.arm(1, {runtime::FaultRule{
                      .point = runtime::FaultPoint::kOperatorThrow,
                      .site = "op",
                      .after_hits = 2,
                      .times = 2}});
  int thrown = 0;
  for (int i = 0; i < 8; ++i) {
    try {
      injector.maybe_throw(runtime::FaultPoint::kOperatorThrow,
                           "engine.op.map");
    } catch (const runtime::FaultInjectedError& error) {
      ++thrown;
      EXPECT_EQ(error.point(), runtime::FaultPoint::kOperatorThrow);
    }
  }
  EXPECT_EQ(thrown, 2);  // hits 3 and 4 fire, then the rule is spent
  EXPECT_EQ(injector.injected_count(), 2u);
  injector.disarm();
}

TEST(FaultInjectorTest, SiteSubstringGatesTheRule) {
  auto& injector = runtime::FaultInjector::instance();
  injector.arm(1, {runtime::FaultRule{
                      .point = runtime::FaultPoint::kOperatorThrow,
                      .site = "flink.source",
                      .after_hits = 1,
                      .times = 1}});
  for (int i = 0; i < 8; ++i) {
    // A non-matching site never advances the rule, let alone fires it.
    injector.maybe_throw(runtime::FaultPoint::kOperatorThrow, "spark.batch");
  }
  injector.maybe_throw(runtime::FaultPoint::kOperatorThrow,
                       "flink.source.topic-in");  // hit 1: passes
  EXPECT_THROW(injector.maybe_throw(runtime::FaultPoint::kOperatorThrow,
                                    "flink.source.topic-in"),
               runtime::FaultInjectedError);
  injector.disarm();
}

TEST(FaultInjectorTest, DerivedTriggerIsDeterministicPerSeed) {
  auto fire_position = [](std::uint64_t seed) {
    auto& injector = runtime::FaultInjector::instance();
    // after_hits == 0: the trigger position is derived from the seed.
    injector.arm(seed, {runtime::FaultRule{
                           .point = runtime::FaultPoint::kOperatorThrow,
                           .site = "x",
                           .after_hits = 0,
                           .times = 1}});
    int position = -1;
    for (int i = 0; i < 64; ++i) {
      try {
        injector.maybe_throw(runtime::FaultPoint::kOperatorThrow, "x");
      } catch (const runtime::FaultInjectedError&) {
        position = i;
        break;
      }
    }
    injector.disarm();
    return position;
  };
  const int base = fire_position(1234);
  EXPECT_GE(base, 1);  // derived positions always pass at least one hit
  EXPECT_EQ(base, fire_position(1234));  // same seed, same kill point
  bool any_differs = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    any_differs |= fire_position(seed) != base;
  }
  EXPECT_TRUE(any_differs);  // distinct seeds spread the kill points
}

// --- cross-engine shutdown contract -----------------------------------------
//
// stop() mid-stream must deliver every record the job accepted exactly
// once: no record may be dropped from a staging buffer, and none may be
// replayed into the sink. Each engine's delivered output is checked
// against a DirectRunner identity pipeline over the same accepted input.

std::vector<std::string> direct_runner_reference(
    const std::vector<std::string>& accepted) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  for (const auto& value : accepted) {
    broker.append({"in", 0}, kafka::ProducerRecord{.value = value}, false)
        .status()
        .expect_ok();
  }
  beam::Pipeline pipeline;
  pipeline
      .apply(beam::KafkaIO::read(broker, beam::KafkaReadConfig{.topic = "in"}))
      .apply(beam::KafkaIO::without_metadata())
      .apply(beam::Values<Payload>::create<Payload>())
      .apply(beam::KafkaIO::write(broker, beam::KafkaWriteConfig{.topic = "out"}));
  beam::DirectRunner runner;
  pipeline.run(runner).status().expect_ok();
  std::vector<kafka::StoredRecord> stored;
  broker.fetch({"out", 0}, 0, 1'000'000, stored).status().expect_ok();
  std::vector<std::string> values;
  for (const auto& record : stored) values.push_back(record.value.str());
  std::sort(values.begin(), values.end());
  return values;
}

TEST(ShutdownContractTest, FlinkCancelMidStreamLosesNoAcceptedRecord) {
  // An unbounded source emits a gapless sequence until cancelled. Every
  // value it managed to emit ("accepted") must reach the sink exactly once
  // — cancel() drains in pipeline order and the Router flushes its staged
  // per-channel buffers instead of dropping them.
  class SequenceSource final : public flink::SourceFunction {
   public:
    explicit SequenceSource(std::atomic<int>* emitted) : emitted_(emitted) {}
    void run(flink::SourceContext& context) override {
      int i = 0;
      while (!context.cancelled()) {
        context.collect(flink::make_elem<int>(i++));
        emitted_->store(i);
      }
    }

   private:
    std::atomic<int>* emitted_;
  };

  flink::StreamExecutionEnvironment env;
  auto emitted = std::make_shared<std::atomic<int>>(0);
  auto delivered = std::make_shared<std::vector<int>>();
  auto mutex = std::make_shared<std::mutex>();
  env.add_source<int>([emitted] {
       return std::make_unique<SequenceSource>(emitted.get());
     })
      .for_each([delivered, mutex](const int& v) {
        std::lock_guard lock(*mutex);
        delivered->push_back(v);
      });
  auto handle = env.execute_async();
  ASSERT_TRUE(handle.is_ok());
  while (emitted->load() < 500) std::this_thread::yield();
  handle.value()->cancel();
  const flink::JobResult result = handle.value()->wait();
  EXPECT_TRUE(result.job_status.is_ok());

  // Exactly once: the delivered stream is exactly 0..n-1, no gap (a gap
  // would mean a staged record was dropped on stop), no duplicate.
  std::lock_guard lock(*mutex);
  std::sort(delivered->begin(), delivered->end());
  ASSERT_FALSE(delivered->empty());
  for (std::size_t i = 0; i < delivered->size(); ++i) {
    ASSERT_EQ((*delivered)[i], static_cast<int>(i));
  }
}

TEST(ShutdownContractTest, SparkStopMidStreamMatchesDirectRunner) {
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  spark::StreamingContext ssc(spark::SparkConf{.default_parallelism = 2}, 5);
  auto delivered = std::make_shared<std::vector<std::string>>();
  auto mutex = std::make_shared<std::mutex>();
  ssc.kafka_direct_stream(broker, "in")
      .foreach_rdd([delivered, mutex](
                       spark::SparkContext& sc,
                       const spark::RDDPtr<kafka::Payload>& rdd) {
        for (auto& value : sc.collect(rdd)) {
          std::lock_guard lock(*mutex);
          delivered->push_back(value.str());
        }
      });
  ASSERT_TRUE(ssc.start().is_ok());
  std::vector<std::string> produced;
  for (int i = 0; i < 40; ++i) {
    produced.push_back("rec-" + std::to_string(i));
    broker.append({"in", 0}, kafka::ProducerRecord{.value = produced.back()},
                  false)
        .status()
        .expect_ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ssc.stop();  // mid-stream: the final drain batch collects the tail

  // Every produced record was accepted before stop (the graceful-stop drain
  // fetches whatever the inputs still held), so accepted == produced and
  // delivery must match the DirectRunner over that same input.
  const auto snapshot = ssc.metrics();
  std::lock_guard lock(*mutex);
  EXPECT_EQ(snapshot.counter("input.records"), delivered->size());
  std::sort(delivered->begin(), delivered->end());
  EXPECT_EQ(*delivered, direct_runner_reference(produced));
}

TEST(ShutdownContractTest, ApexShutdownMatchesDirectRunner) {
  yarn::ResourceManager rm;
  rm.add_node("worker-0", yarn::Resource{8, 16384});
  kafka::Broker broker;
  broker.create_topic("in", kafka::TopicConfig{.partitions = 1}).expect_ok();
  broker.create_topic("out", kafka::TopicConfig{.partitions = 1}).expect_ok();
  std::vector<std::string> produced;
  for (int i = 0; i < 300; ++i) {
    produced.push_back("tuple-" + std::to_string(i));
    broker.append({"in", 0}, kafka::ProducerRecord{.value = produced.back()},
                  false)
        .status()
        .expect_ok();
  }

  apex::Dag dag;
  const int input = dag.add_input_operator(
      "reader", apex::kafka_input_factory(broker, "in"));
  const int identity = dag.add_operator(
      "identity",
      apex::map_payload_factory([](const Payload& p) { return p; }));
  const int output = dag.add_operator(
      "writer", apex::kafka_output_factory(
                    broker, apex::KafkaPayloadOutput::Config{.topic = "out"}));
  dag.add_stream("a", apex::PortRef{input, 0}, apex::PortRef{identity, 0},
                 apex::Locality::kContainerLocal, {});
  dag.add_stream("b", apex::PortRef{identity, 0}, apex::PortRef{output, 0},
                 apex::Locality::kNodeLocal, apex::payload_codec());
  auto stats = apex::launch_application(rm, dag, apex::EngineConfig{});
  stats.status().expect_ok();

  // Shutdown is the engine-initiated drain: EOS propagates reader ->
  // identity -> writer, so the final window flushes before containers stop.
  std::vector<kafka::StoredRecord> stored;
  broker.fetch({"out", 0}, 0, 1'000'000, stored).status().expect_ok();
  std::vector<std::string> delivered;
  for (const auto& record : stored) delivered.push_back(record.value.str());
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, direct_runner_reference(produced));
  EXPECT_EQ(stats.value().counter("operator.identity.tuples_in"), 300u);
}

}  // namespace
}  // namespace dsps
