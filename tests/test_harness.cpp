// Tests for the benchmark harness: the three-phase process, the result
// calculator, the statistics of Figs. 10/11 (relative stddev, slowdown
// factor), the report rendering, and the transcribed paper data.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/benchmark.hpp"
#include "harness/figures.hpp"
#include "harness/paper_data.hpp"
#include "harness/report.hpp"
#include "harness/result_calculator.hpp"
#include "workload/data_sender.hpp"

namespace dsps::harness {
namespace {

using queries::Engine;
using queries::Sdk;
using workload::QueryId;

HarnessConfig tiny_config() {
  HarnessConfig config;
  config.records = 800;
  config.runs = 2;
  config.seed = 42;
  config.broker_rtt_us = 0;  // keep tests fast
  return config;
}

// --- result calculator ----------------------------------------------------------

TEST(ResultCalculatorTest, ComputesFirstToLastAppendSpan) {
  kafka::Broker broker;
  workload::create_benchmark_topic(broker, "out").expect_ok();
  broker.append({"out", 0}, kafka::ProducerRecord{.value = "a"}, false)
      .status()
      .expect_ok();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  broker.append({"out", 0}, kafka::ProducerRecord{.value = "b"}, false)
      .status()
      .expect_ok();
  ResultCalculator calculator(broker);
  auto result = calculator.calculate("out");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().output_records, 2);
  EXPECT_GE(result.value().execution_seconds, 0.010);
  EXPECT_LT(result.value().execution_seconds, 1.0);
}

TEST(ResultCalculatorTest, EmptyTopicIsAnError) {
  kafka::Broker broker;
  workload::create_benchmark_topic(broker, "out").expect_ok();
  ResultCalculator calculator(broker);
  EXPECT_EQ(calculator.calculate("out").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultCalculatorTest, UnknownTopicIsAnError) {
  kafka::Broker broker;
  ResultCalculator calculator(broker);
  EXPECT_FALSE(calculator.calculate("missing").is_ok());
}

// --- setup labels ------------------------------------------------------------------

TEST(SetupLabelTest, MatchesPaperAxisLabels) {
  EXPECT_EQ(setup_label({Engine::kApex, Sdk::kBeam, QueryId::kIdentity, 1}),
            "Apex Beam P1");
  EXPECT_EQ(setup_label({Engine::kFlink, Sdk::kNative, QueryId::kGrep, 2}),
            "Flink P2");
  EXPECT_EQ(setup_label({Engine::kSpark, Sdk::kBeam, QueryId::kSample, 2}),
            "Spark Beam P2");
}

TEST(FigureSetupsTest, TwelveSetupsPerFigureInPaperOrder) {
  const auto setups = figure_setups(QueryId::kIdentity);
  ASSERT_EQ(setups.size(), 12u);
  EXPECT_EQ(setup_label(setups[0]), "Apex Beam P1");
  EXPECT_EQ(setup_label(setups[1]), "Apex Beam P2");
  EXPECT_EQ(setup_label(setups[2]), "Apex P1");
  EXPECT_EQ(setup_label(setups[11]), "Spark P2");
}

TEST(FigureSetupsTest, FullMatrixIsFortyEight) {
  EXPECT_EQ(full_matrix().size(), 48u);
}

// --- harness end to end ----------------------------------------------------------------

TEST(BenchmarkHarnessTest, RunOnceMeasuresAndCleansUp) {
  BenchmarkHarness harness(tiny_config());
  const SetupKey key{Engine::kFlink, Sdk::kNative, QueryId::kIdentity, 1};
  auto measurement = harness.run_once(key);
  ASSERT_TRUE(measurement.is_ok()) << measurement.status().to_string();
  EXPECT_EQ(measurement.value().output_records, 800);
  EXPECT_GE(measurement.value().execution_seconds, 0.0);
  EXPECT_GT(measurement.value().wall_seconds, 0.0);
  // Output topics are deleted after measurement; only the input remains.
  EXPECT_EQ(harness.broker().list_topics(),
            (std::vector<std::string>{"benchmark-input"}));
}

TEST(BenchmarkHarnessTest, RunSetupProducesConfiguredRunCount) {
  BenchmarkHarness harness(tiny_config());
  const SetupKey key{Engine::kSpark, Sdk::kNative, QueryId::kGrep, 1};
  auto measurements = harness.run_setup(key);
  ASSERT_TRUE(measurements.is_ok());
  EXPECT_EQ(measurements.value().runs.size(), 2u);
  EXPECT_EQ(measurements.value().execution_times().size(), 2u);
}

TEST(BenchmarkHarnessTest, GrepOutputsMatchGeneratorPrediction) {
  BenchmarkHarness harness(tiny_config());
  const SetupKey key{Engine::kApex, Sdk::kNative, QueryId::kGrep, 1};
  auto measurement = harness.run_once(key);
  ASSERT_TRUE(measurement.is_ok());
  EXPECT_EQ(static_cast<std::uint64_t>(measurement.value().output_records),
            harness.expected_grep_matches());
}

TEST(BenchmarkHarnessTest, IngestIsIdempotent) {
  BenchmarkHarness harness(tiny_config());
  ASSERT_TRUE(harness.ingest().is_ok());
  ASSERT_TRUE(harness.ingest().is_ok());
  EXPECT_EQ(harness.broker().end_offset({"benchmark-input", 0}).value(), 800);
}

TEST(BenchmarkHarnessTest, NoiseInjectionLengthensMeasuredTime) {
  HarnessConfig config = tiny_config();
  config.noise = NoiseConfig{.enabled = true,
                             .pause_probability = 1.0,
                             .min_pause_ms = 40,
                             .max_pause_ms = 40,
                             .seed = 1};
  BenchmarkHarness harness(config);
  const SetupKey key{Engine::kFlink, Sdk::kNative, QueryId::kIdentity, 1};
  auto measurement = harness.run_once(key);
  ASSERT_TRUE(measurement.is_ok());
  EXPECT_EQ(measurement.value().injected_pause_ms, 40);
  EXPECT_GE(measurement.value().execution_seconds, 0.040);
}

// --- figures math -----------------------------------------------------------------------

SetupMeasurements fake(const SetupKey& key, std::vector<double> times) {
  SetupMeasurements m;
  m.key = key;
  for (const double t : times) {
    m.runs.push_back(RunMeasurement{.execution_seconds = t});
  }
  return m;
}

TEST(FiguresTest, SlowdownFactorMatchesPaperFormula) {
  // sf = (1/Np) * sum_p beam_mean(p) / native_mean(p)
  MeasurementSet set;
  set.add(fake({Engine::kFlink, Sdk::kBeam, QueryId::kGrep, 1}, {20.0}));
  set.add(fake({Engine::kFlink, Sdk::kBeam, QueryId::kGrep, 2}, {21.0}));
  set.add(fake({Engine::kFlink, Sdk::kNative, QueryId::kGrep, 1}, {2.0}));
  set.add(fake({Engine::kFlink, Sdk::kNative, QueryId::kGrep, 2}, {3.0}));
  const double sf = slowdown_factor(set, Engine::kFlink, QueryId::kGrep);
  EXPECT_NEAR(sf, 0.5 * (20.0 / 2.0 + 21.0 / 3.0), 1e-12);
}

TEST(FiguresTest, SlowdownUsesRunMeans) {
  MeasurementSet set;
  set.add(fake({Engine::kApex, Sdk::kBeam, QueryId::kIdentity, 1},
               {10.0, 20.0}));
  set.add(fake({Engine::kApex, Sdk::kBeam, QueryId::kIdentity, 2},
               {30.0, 30.0}));
  set.add(fake({Engine::kApex, Sdk::kNative, QueryId::kIdentity, 1},
               {1.0, 2.0}));
  set.add(fake({Engine::kApex, Sdk::kNative, QueryId::kIdentity, 2},
               {3.0, 3.0}));
  EXPECT_NEAR(slowdown_factor(set, Engine::kApex, QueryId::kIdentity),
              0.5 * (15.0 / 1.5 + 30.0 / 3.0), 1e-12);
}

TEST(FiguresTest, ExecutionTimeFigureHasTwelveRowsInOrder) {
  MeasurementSet set;
  for (const auto& key : figure_setups(QueryId::kSample)) {
    set.add(fake(key, {1.0}));
  }
  const Figure figure = execution_time_figure(set, QueryId::kSample);
  ASSERT_EQ(figure.rows.size(), 12u);
  EXPECT_EQ(figure.rows.front().label, "Apex Beam P1");
  EXPECT_EQ(figure.rows.back().label, "Spark P2");
}

TEST(FiguresTest, StddevFigureAveragesParallelisms) {
  MeasurementSet set;
  // P1 rel-stddev 0 (constant), P2 rel-stddev of {1,3} = sqrt(2)/2.
  for (const auto& key : full_matrix()) {
    set.add(fake(key, key.parallelism == 1 ? std::vector<double>{2.0, 2.0}
                                           : std::vector<double>{1.0, 3.0}));
  }
  const Figure figure = stddev_figure(set);
  ASSERT_EQ(figure.rows.size(), 24u);
  const double expected = 0.5 * (0.0 + std::sqrt(2.0) / 2.0);
  for (const auto& row : figure.rows) {
    EXPECT_NEAR(row.value, expected, 1e-12) << row.label;
  }
}

TEST(FiguresTest, MeasurementSetLookup) {
  MeasurementSet set;
  const SetupKey key{Engine::kSpark, Sdk::kBeam, QueryId::kProjection, 2};
  EXPECT_FALSE(set.contains(key));
  set.add(fake(key, {4.0}));
  ASSERT_TRUE(set.contains(key));
  EXPECT_EQ(set.get(key).runs.size(), 1u);
}

TEST(FiguresTest, SystemQuerySdkLabels) {
  EXPECT_EQ(system_query_sdk_label(Engine::kApex, Sdk::kBeam, QueryId::kGrep),
            "Apex Beam Grep");
  EXPECT_EQ(
      system_query_sdk_label(Engine::kFlink, Sdk::kNative, QueryId::kSample),
      "Flink Sample");
}

// --- report rendering ----------------------------------------------------------------------

TEST(ReportTest, RenderFigureContainsRowsAndBars) {
  Figure figure;
  figure.title = "Test Figure";
  figure.value_axis = "seconds";
  figure.rows = {{"Long Setup", 10.0}, {"Short", 1.0}};
  const std::string rendered = render_figure(figure);
  EXPECT_NE(rendered.find("Test Figure"), std::string::npos);
  EXPECT_NE(rendered.find("Long Setup"), std::string::npos);
  EXPECT_NE(rendered.find("10.0000"), std::string::npos);
  // The longer bar has more '#'.
  const auto long_pos = rendered.find("Long Setup");
  const auto short_pos = rendered.find("Short");
  const auto count_hashes = [&](std::size_t from) {
    std::size_t count = 0;
    for (std::size_t i = from; i < rendered.size() && rendered[i] != '\n'; ++i) {
      count += rendered[i] == '#';
    }
    return count;
  };
  EXPECT_GT(count_hashes(long_pos), count_hashes(short_pos));
}

TEST(ReportTest, ComparisonAlignsWithPaperColumns) {
  Figure measured;
  measured.title = "t";
  measured.rows = {{"A", 2.0}, {"B", 1.0}};
  const std::map<std::string, double> paper = {{"A", 20.0}, {"B", 10.0}};
  const std::string rendered = render_comparison(measured, paper, "Fig. X");
  EXPECT_NE(rendered.find("Fig. X"), std::string::npos);
  // Both columns should report the same x-min ratio (2.0).
  EXPECT_NE(rendered.find("2.0"), std::string::npos);
}

TEST(ReportTest, ComparisonHandlesMissingPaperRows) {
  Figure measured;
  measured.rows = {{"Unknown Setup", 1.0}};
  const std::string rendered =
      render_comparison(measured, {}, "empty reference");
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

TEST(ReportTest, CsvExportHasOneRowPerRun) {
  MeasurementSet set;
  set.add(fake({Engine::kApex, Sdk::kBeam, QueryId::kGrep, 1}, {1.5, 2.5}));
  const std::string csv = to_csv(set);
  EXPECT_NE(csv.find("engine,sdk,query,parallelism,run,execution_seconds,"
                     "output_records"),
            std::string::npos);
  EXPECT_NE(csv.find("Apex,Beam,Grep,1,1,1.500000,0"), std::string::npos);
  EXPECT_NE(csv.find("Apex,Beam,Grep,1,2,2.500000,0"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2
}

TEST(ReportTest, RecoverySummaryIsEmptyWithoutActivity) {
  EXPECT_EQ(render_recovery_summary(runtime::MetricsSnapshot{}), "");
}

TEST(ReportTest, RecoverySummaryShowsPerEngineRowsAndSubstrateCounters) {
  runtime::MetricsSnapshot snapshot;
  snapshot.counters["flink.recovery.restarts"] = 2;
  snapshot.counters["flink.recovery.replayed_records"] = 4000;
  snapshot.gauges["flink.recovery.time_ms"] = 12.5;
  snapshot.counters["spark.recovery.batch_retries"] = 3;
  snapshot.counters["spark.recovery.replayed_records"] = 9000;
  snapshot.counters["fault.injected"] = 5;
  snapshot.counters["fault.operator_throw"] = 5;
  snapshot.counters["runtime.task_restarts"] = 2;
  snapshot.counters["yarn.container_relaunches"] = 1;
  const std::string rendered = render_recovery_summary(snapshot);
  EXPECT_NE(rendered.find("Flink"), std::string::npos);
  EXPECT_NE(rendered.find("4000"), std::string::npos);
  EXPECT_NE(rendered.find("12.50"), std::string::npos);
  EXPECT_NE(rendered.find("9000"), std::string::npos);
  EXPECT_NE(rendered.find("faults injected: 5"), std::string::npos);
  EXPECT_NE(rendered.find("operator_throw=5"), std::string::npos);
  EXPECT_NE(rendered.find("task restarts: 2"), std::string::npos);
  EXPECT_NE(rendered.find("container relaunches: 1"), std::string::npos);
  // Apex saw no activity but still gets a row (all-engine table shape).
  EXPECT_NE(rendered.find("Apex"), std::string::npos);
}

// --- transcribed paper data ------------------------------------------------------------------

TEST(PaperDataTest, AllFiguresFullyTranscribed) {
  for (const QueryId query : {QueryId::kIdentity, QueryId::kSample,
                              QueryId::kProjection, QueryId::kGrep}) {
    EXPECT_EQ(paper::execution_times(query).size(), 12u);
  }
  EXPECT_EQ(paper::relative_stddevs().size(), 24u);
  EXPECT_EQ(paper::slowdown_factors().size(), 12u);
  EXPECT_EQ(paper::flink_identity_runs().p1.size(), 10u);
  EXPECT_EQ(paper::flink_identity_runs().p2.size(), 10u);
}

TEST(PaperDataTest, HeadlineNumbersPresent) {
  // §V: slowdown of up to a factor of 58 (projection on Apex: 58.46);
  // one scenario faster than native (grep on Apex: 0.91).
  EXPECT_NEAR(paper::slowdown_factors().at("Apex Projection"), 58.46, 1e-9);
  EXPECT_NEAR(paper::slowdown_factors().at("Apex Grep"), 0.91, 1e-9);
  EXPECT_NEAR(paper::execution_times(QueryId::kIdentity).at("Apex Beam P1"),
              237.53, 1e-9);
}

TEST(PaperDataTest, SlowdownFactorsConsistentWithExecutionTimes) {
  // The transcribed Fig. 11 factors should approximate the factors
  // recomputed from the transcribed Figs. 6-9 (the paper derives one from
  // the other). Allow tolerance: the figures are rounded.
  for (const auto& [query, name] :
       std::vector<std::pair<QueryId, std::string>>{
           {QueryId::kIdentity, "Identity"},
           {QueryId::kSample, "Sample"},
           {QueryId::kProjection, "Projection"},
           {QueryId::kGrep, "Grep"}}) {
    const auto& times = paper::execution_times(query);
    for (const std::string engine : {"Apex", "Flink", "Spark"}) {
      const double recomputed =
          0.5 * (times.at(engine + " Beam P1") / times.at(engine + " P1") +
                 times.at(engine + " Beam P2") / times.at(engine + " P2"));
      const double published =
          paper::slowdown_factors().at(engine + " " + name);
      EXPECT_NEAR(recomputed, published, published * 0.05)
          << engine << " " << name;
    }
  }
}

TEST(PaperDataTest, FlinkIdentityOutlierStoryHolds) {
  // §III-C2: P1 has outliers (21.56s vs ~3.5s typical), P2 is homogeneous;
  // the transcribed Table III must reproduce the reported means of Fig. 6.
  const auto& runs = paper::flink_identity_runs();
  double p1_mean = 0.0, p2_mean = 0.0;
  for (const double t : runs.p1) p1_mean += t;
  for (const double t : runs.p2) p2_mean += t;
  p1_mean /= 10.0;
  p2_mean /= 10.0;
  EXPECT_NEAR(p1_mean, 6.52, 0.05);  // Fig. 6 "Flink P1"
  EXPECT_NEAR(p2_mean, 3.74, 0.05);  // Fig. 6 "Flink P2"
}

// --- end-to-end slowdown sanity (coarse, keeps CI fast) ---------------------------------------

TEST(EndToEndShapeTest, BeamIsSlowerThanNativeOnEveryEngineForIdentity) {
  HarnessConfig config;
  config.records = 4000;
  config.runs = 1;
  config.broker_rtt_us = 10;
  BenchmarkHarness harness(config);
  for (const Engine engine : {Engine::kFlink, Engine::kSpark, Engine::kApex}) {
    auto beam = harness.run_once(
        SetupKey{engine, Sdk::kBeam, QueryId::kIdentity, 1});
    auto native = harness.run_once(
        SetupKey{engine, Sdk::kNative, QueryId::kIdentity, 1});
    ASSERT_TRUE(beam.is_ok());
    ASSERT_TRUE(native.is_ok());
    EXPECT_GT(beam.value().execution_seconds,
              native.value().execution_seconds)
        << engine_name(engine);
  }
}

}  // namespace
}  // namespace dsps::harness
